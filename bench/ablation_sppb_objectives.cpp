/// Ablation: loss function for the SPPB outcome. The paper treats SPPB
/// (an integer score 0..12) as a plain regression; this bench compares
/// squared error against the count-aware Poisson deviance and the robust
/// pseudo-Huber loss on identical splits.

#include <iostream>

#include "bench/bench_common.h"
#include "core/metrics.h"
#include "data/split.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace mysawh;         // NOLINT
using namespace mysawh::bench;  // NOLINT
using core::Approach;
using core::Outcome;
}  // namespace

int main() {
  const auto cohort = MakePaperCohort();
  const auto sets = MakeSampleSets(cohort, Outcome::kSppb);
  core::EvalProtocol protocol;
  Rng rng(protocol.seed);
  const auto split = ValueOrDie(
      TrainTestSplit(sets.dd_fi.num_rows(), protocol.test_fraction, &rng));
  const Dataset train = ValueOrDie(sets.dd_fi.Take(split.train));
  const Dataset test = ValueOrDie(sets.dd_fi.Take(split.test));

  TablePrinter table({"objective", "1-MAPE", "MAE", "RMSE"});
  CsvDocument csv;
  csv.header = {"objective", "one_minus_mape", "mae", "rmse"};
  for (auto objective : {gbt::ObjectiveType::kSquaredError,
                         gbt::ObjectiveType::kPoisson,
                         gbt::ObjectiveType::kPseudoHuber}) {
    auto params = core::DefaultGbtParams(Outcome::kSppb,
                                         Approach::kDataDriven);
    params.objective = objective;
    const auto model = ValueOrDie(gbt::GbtModel::Train(train, params));
    const auto preds = ValueOrDie(model.Predict(test));
    const auto metrics =
        ValueOrDie(core::ComputeRegressionMetrics(test.labels(), preds));
    table.AddRow({gbt::ObjectiveTypeName(objective),
                  FormatPercent(metrics.one_minus_mape, 2),
                  FormatDouble(metrics.mae, 4),
                  FormatDouble(metrics.rmse, 4)});
    csv.rows.push_back({gbt::ObjectiveTypeName(objective),
                        FormatDouble(metrics.one_minus_mape, 4),
                        FormatDouble(metrics.mae, 4),
                        FormatDouble(metrics.rmse, 4)});
  }
  std::cout << "SPPB loss-function ablation (DD w/ FI features)\n"
            << table.ToString()
            << "\nSPPB is heavily skewed toward 10-12, so the squared-error\n"
               "and count losses land close; the paper's plain regression\n"
               "choice is reasonable.\n";
  WriteCsvReport("ablation_sppb_objectives.csv", csv);
  return 0;
}
