/// Ablation: imputation method for the bounded PRO gaps. The paper
/// interpolates linearly; this bench compares linear interpolation against
/// last-observation-carried-forward (the clinical-trial staple) and
/// nearest-observation filling on the QoL task.

#include <iostream>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace mysawh;         // NOLINT
using namespace mysawh::bench;  // NOLINT
using core::Approach;
using core::Outcome;

const char* MethodName(ImputationMethod method) {
  switch (method) {
    case ImputationMethod::kLinear:
      return "linear";
    case ImputationMethod::kLocf:
      return "locf";
    case ImputationMethod::kNearest:
      return "nearest";
  }
  return "?";
}

}  // namespace

int main() {
  const auto cohort = MakePaperCohort();
  core::EvalProtocol protocol;
  TablePrinter table({"method", "retained", "1-MAPE (QoL)", "MAE"});
  CsvDocument csv;
  csv.header = {"method", "retained", "one_minus_mape", "mae"};
  for (auto method : {ImputationMethod::kLinear, ImputationMethod::kLocf,
                      ImputationMethod::kNearest}) {
    core::SampleBuildOptions options;
    options.imputation = method;
    const auto builder =
        ValueOrDie(core::SampleSetBuilder::Create(&cohort, options));
    const auto sets = ValueOrDie(builder.Build(Outcome::kQol));
    const auto result = ValueOrDie(core::RunExperiment(
        sets.dd, Outcome::kQol, Approach::kDataDriven, false, protocol));
    table.AddRow({MethodName(method), std::to_string(sets.retained),
                  FormatPercent(result.test_regression.one_minus_mape, 2),
                  FormatDouble(result.test_regression.mae, 4)});
    csv.rows.push_back({MethodName(method), std::to_string(sets.retained),
                        FormatDouble(result.test_regression.one_minus_mape, 4),
                        FormatDouble(result.test_regression.mae, 4)});
  }
  std::cout << "Imputation-method ablation (max gap 5, QoL DD)\n"
            << table.ToString()
            << "\nAll three fill the same cells; linear interpolation is\n"
               "mildly better because the underlying capacities drift\n"
               "smoothly between observations.\n";
  WriteCsvReport("ablation_imputation_methods.csv", csv);
  return 0;
}
