/// Reproduces Fig 1: the distributions of the three outcomes in the
/// dataset — (a) QoL histogram with 0.1-wide buckets, (b) SPPB histogram,
/// (c) Falls True/False bar — over the monthly training records.
///
/// Paper shape: QoL mass concentrated in the mid-to-high buckets (log-scale
/// y axis in the paper), SPPB skewed toward 10-12, Falls heavily imbalanced
/// toward False (~2000 vs ~250 in the paper's 2,250-record set).

#include <iostream>

#include "bench/bench_common.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace mysawh;         // NOLINT
using namespace mysawh::bench;  // NOLINT
}  // namespace

int main() {
  const auto cohort = MakePaperCohort();

  // (a) QoL.
  const auto qol_sets = MakeSampleSets(cohort, core::Outcome::kQol);
  std::vector<double> qol_edges;
  for (int i = 0; i <= 10; ++i) qol_edges.push_back(0.1 * i);
  const Histogram qol_hist =
      ValueOrDie(ComputeHistogram(qol_sets.dd.labels(), qol_edges));
  std::vector<std::string> qol_labels;
  std::vector<double> qol_counts;
  for (size_t b = 0; b < qol_hist.counts.size(); ++b) {
    qol_labels.push_back(FormatDouble(qol_edges[b], 1) + "-" +
                         FormatDouble(qol_edges[b + 1], 1));
    qol_counts.push_back(static_cast<double>(qol_hist.counts[b]));
  }
  std::cout << "Fig 1a: QoL distribution (" << qol_sets.retained
            << " monthly records)\n"
            << ValueOrDie(RenderBarChart(qol_labels, qol_counts)) << "\n";

  // (b) SPPB.
  const auto sppb_sets = MakeSampleSets(cohort, core::Outcome::kSppb);
  std::vector<int64_t> sppb_counts(13, 0);
  for (double y : sppb_sets.dd.labels()) {
    sppb_counts[static_cast<size_t>(y)] += 1;
  }
  std::vector<std::string> sppb_labels;
  std::vector<double> sppb_values;
  for (int v = 0; v <= 12; ++v) {
    sppb_labels.push_back(std::to_string(v));
    sppb_values.push_back(static_cast<double>(sppb_counts[static_cast<size_t>(v)]));
  }
  std::cout << "Fig 1b: SPPB distribution\n"
            << ValueOrDie(RenderBarChart(sppb_labels, sppb_values)) << "\n";

  // (c) Falls.
  const auto falls_sets = MakeSampleSets(cohort, core::Outcome::kFalls);
  int64_t truthy = 0;
  for (double y : falls_sets.dd.labels()) truthy += y > 0.5 ? 1 : 0;
  const int64_t falsy = falls_sets.retained - truthy;
  std::cout << "Fig 1c: Falls distribution\n"
            << ValueOrDie(RenderBarChart({"False", "True"},
                                         {static_cast<double>(falsy),
                                          static_cast<double>(truthy)}))
            << "\nFalls positive rate: "
            << FormatPercent(static_cast<double>(truthy) /
                                 static_cast<double>(falls_sets.retained),
                             1)
            << " (paper: ~11% of 2,250 records)\n";

  // CSV export.
  CsvDocument csv;
  csv.header = {"series", "bucket", "count"};
  for (size_t b = 0; b < qol_hist.counts.size(); ++b) {
    csv.rows.push_back({"qol", qol_labels[b],
                        std::to_string(qol_hist.counts[b])});
  }
  for (int v = 0; v <= 12; ++v) {
    csv.rows.push_back({"sppb", std::to_string(v),
                        std::to_string(sppb_counts[static_cast<size_t>(v)])});
  }
  csv.rows.push_back({"falls", "False", std::to_string(falsy)});
  csv.rows.push_back({"falls", "True", std::to_string(truthy)});
  WriteCsvReport("fig1_outcome_distributions.csv", csv);
  return 0;
}
