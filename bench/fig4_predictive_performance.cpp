/// Reproduces Fig 4: predictive performance of the DD and KD approaches,
/// with and without the Frailty Index feature.
///   Left block:  1-MAPE for the QoL and SPPB regressions.
///   Right block: accuracy / per-class precision / recall / F1 for Falls.
///
/// Paper reference values are printed beside the measured ones; absolute
/// agreement is not expected (synthetic cohort), the *shape* is: DD >= KD,
/// FI helps both, and KD without FI collapses on minority-class recall.

#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace mysawh;            // NOLINT
using namespace mysawh::bench;     // NOLINT
using core::Approach;
using core::ExperimentResult;
using core::Outcome;

struct CellKey {
  Outcome outcome;
  Approach approach;
  bool with_fi;
  bool operator<(const CellKey& other) const {
    if (outcome != other.outcome) return outcome < other.outcome;
    if (approach != other.approach) return approach < other.approach;
    return with_fi < other.with_fi;
  }
};

}  // namespace

int main() {
  const auto cohort = MakePaperCohort();
  core::EvalProtocol protocol;

  std::map<CellKey, ExperimentResult> results;
  for (Outcome outcome : {Outcome::kQol, Outcome::kSppb, Outcome::kFalls}) {
    const auto sets = MakeSampleSets(cohort, outcome);
    struct Cell {
      const Dataset* data;
      Approach approach;
      bool with_fi;
    };
    const Cell cells[] = {
        {&sets.kd, Approach::kKnowledgeDriven, false},
        {&sets.kd_fi, Approach::kKnowledgeDriven, true},
        {&sets.dd, Approach::kDataDriven, false},
        {&sets.dd_fi, Approach::kDataDriven, true},
    };
    for (const Cell& cell : cells) {
      auto result = ValueOrDie(core::RunExperiment(
          *cell.data, outcome, cell.approach, cell.with_fi, protocol));
      results[{outcome, cell.approach, cell.with_fi}] = std::move(result);
    }
  }

  // ---- Left block: 1-MAPE for QoL and SPPB. ------------------------------
  // Paper Fig 4 left: rows w/o FI, w/ FI; columns KD, DD for each outcome.
  const std::map<CellKey, double> paper_regression = {
      {{Outcome::kQol, Approach::kKnowledgeDriven, false}, 0.91},
      {{Outcome::kQol, Approach::kDataDriven, false}, 0.92},
      {{Outcome::kQol, Approach::kKnowledgeDriven, true}, 0.92},
      {{Outcome::kQol, Approach::kDataDriven, true}, 0.94},
      {{Outcome::kSppb, Approach::kKnowledgeDriven, false}, 0.93},
      {{Outcome::kSppb, Approach::kDataDriven, false}, 0.92},
      {{Outcome::kSppb, Approach::kKnowledgeDriven, true}, 0.93},
      {{Outcome::kSppb, Approach::kDataDriven, true}, 0.95},
  };
  TablePrinter left({"outcome", "model", "1-MAPE (measured)", "1-MAPE (paper)"});
  for (Outcome outcome : {Outcome::kQol, Outcome::kSppb}) {
    for (bool with_fi : {false, true}) {
      for (Approach approach :
           {Approach::kKnowledgeDriven, Approach::kDataDriven}) {
        const auto& r = results.at({outcome, approach, with_fi});
        std::string model = core::ApproachName(approach);
        model += with_fi ? " w/ FI" : " w/o FI";
        left.AddRow({core::OutcomeName(outcome), model,
                     FormatPercent(r.test_regression.one_minus_mape, 1),
                     FormatPercent(
                         paper_regression.at({outcome, approach, with_fi}),
                         0)});
      }
    }
    left.AddSeparator();
  }
  std::cout << "Fig 4 (left): QoL / SPPB regression, 1-MAPE\n"
            << left.ToString() << "\n";

  // ---- Right block: Falls classification. --------------------------------
  struct PaperFalls {
    double acc, p_true, p_false, r_true, r_false, f1_true, f1_false;
  };
  const std::map<std::pair<bool, Approach>, PaperFalls> paper_falls = {
      {{false, Approach::kKnowledgeDriven},
       {0.84, 0.22, 0.85, 0.02, 0.99, 0.04, 0.91}},
      {{false, Approach::kDataDriven},
       {0.93, 0.97, 0.93, 0.52, 1.00, 0.68, 0.96}},
      {{true, Approach::kKnowledgeDriven},
       {0.89, 0.72, 0.92, 0.54, 0.96, 0.62, 0.94}},
      {{true, Approach::kDataDriven},
       {0.95, 0.98, 0.95, 0.68, 1.00, 0.80, 0.97}},
  };
  TablePrinter right({"model", "metric", "measured", "paper"});
  for (bool with_fi : {false, true}) {
    for (Approach approach :
         {Approach::kKnowledgeDriven, Approach::kDataDriven}) {
      const auto& r =
          results.at({Outcome::kFalls, approach, with_fi}).test_classification;
      const auto& p = paper_falls.at({with_fi, approach});
      std::string model = core::ApproachName(approach);
      model += with_fi ? " w/ FI" : " w/o FI";
      const struct {
        const char* name;
        double measured;
        double paper;
      } rows[] = {
          {"Accuracy", r.accuracy, p.acc},
          {"Prec (True)", r.precision_true, p.p_true},
          {"Prec (False)", r.precision_false, p.p_false},
          {"Rec (True)", r.recall_true, p.r_true},
          {"Rec (False)", r.recall_false, p.r_false},
          {"F1 (True)", r.f1_true, p.f1_true},
          {"F1 (False)", r.f1_false, p.f1_false},
      };
      for (const auto& row : rows) {
        right.AddRow({model, row.name, FormatPercent(row.measured, 1),
                      FormatPercent(row.paper, 0)});
      }
      right.AddSeparator();
    }
  }
  std::cout << "Fig 4 (right): Falls classification effectiveness\n"
            << right.ToString();

  // ---- CSV export. --------------------------------------------------------
  CsvDocument csv;
  csv.header = {"outcome", "approach", "with_fi",      "headline",
                "mae",     "accuracy", "recall_true",  "recall_false",
                "precision_true", "precision_false", "f1_true", "f1_false"};
  for (const auto& [key, r] : results) {
    csv.rows.push_back(
        {core::OutcomeName(key.outcome), core::ApproachName(key.approach),
         key.with_fi ? "1" : "0", FormatDouble(r.HeadlineMetric(), 4),
         FormatDouble(r.is_classification ? 0.0 : r.test_regression.mae, 4),
         FormatDouble(r.test_classification.accuracy, 4),
         FormatDouble(r.test_classification.recall_true, 4),
         FormatDouble(r.test_classification.recall_false, 4),
         FormatDouble(r.test_classification.precision_true, 4),
         FormatDouble(r.test_classification.precision_false, 4),
         FormatDouble(r.test_classification.f1_true, 4),
         FormatDouble(r.test_classification.f1_false, 4)});
  }
  WriteCsvReport("fig4_predictive_performance.csv", csv);
  return 0;
}
