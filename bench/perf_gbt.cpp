/// google-benchmark microbenchmarks for the gradient boosting substrate:
/// training throughput (hist vs exact, by rows/features/depth) and batch
/// prediction latency. These back the DESIGN.md claim that the hist method
/// trades no accuracy (asserted in tests) for substantially faster split
/// finding on wide data.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/perf_json_main.h"
#include "core/audit_log.h"
#include "core/drift_monitor.h"
#include "data/dataset.h"
#include "gbt/binning.h"
#include "gbt/gbt_model.h"
#include "gbt/histogram.h"
#include "util/metrics.h"
#include "util/monitor.h"
#include "util/rng.h"
#include "util/trace.h"

namespace {

using mysawh::Counter;
using mysawh::Dataset;
using mysawh::core::AuditLog;
using mysawh::core::AuditOptions;
using mysawh::core::BuildDriftBaseline;
using mysawh::core::DriftBaseline;
using mysawh::core::DriftMonitorOptions;
using mysawh::core::DriftMonitorRuntime;
using mysawh::MetricsRegistry;
using mysawh::Rng;
using mysawh::Tracer;
using mysawh::gbt::BinnedData;
using mysawh::gbt::BuildBinned;
using mysawh::gbt::GbtModel;
using mysawh::gbt::GbtParams;
using mysawh::gbt::GradientPair;
using mysawh::gbt::HistogramBuilder;
using mysawh::gbt::HistogramLayout;
using mysawh::gbt::NodeHistogram;
using mysawh::gbt::TreeMethod;

Dataset MakeData(int64_t rows, int64_t features, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (int64_t f = 0; f < features; ++f) {
    std::string name = "f";
    name += std::to_string(f);
    names.push_back(std::move(name));
  }
  Dataset ds = Dataset::Create(names);
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<double> row(static_cast<size_t>(features));
    double y = 0;
    for (int64_t f = 0; f < features; ++f) {
      row[static_cast<size_t>(f)] = rng.Uniform(-1, 1);
      y += (f % 3 == 0 ? 1.0 : -0.3) * row[static_cast<size_t>(f)];
    }
    y += 0.5 * row[0] * row[0];
    (void)ds.AddRow(row, y + rng.Normal(0, 0.1));
  }
  return ds;
}

GbtParams BenchParams(TreeMethod method) {
  GbtParams params;
  params.num_trees = 20;
  params.max_depth = 4;
  params.tree_method = method;
  return params;
}

void BM_TrainHist(benchmark::State& state) {
  const Dataset data = MakeData(state.range(0), state.range(1), 1);
  const GbtParams params = BenchParams(TreeMethod::kHist);
  // Histogram pipeline counters live in the metrics registry now; training
  // is deterministic, so the per-run node counts are exactly the counter
  // delta divided by the iteration count.
  Counter* const direct =
      MetricsRegistry::Global().GetCounter("gbt.train.hist_nodes_direct");
  Counter* const subtracted =
      MetricsRegistry::Global().GetCounter("gbt.train.hist_nodes_subtracted");
  const int64_t direct_before = direct->Value();
  const int64_t subtracted_before = subtracted->Value();
  for (auto _ : state) {
    auto model = GbtModel::Train(data, params);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  const auto iterations = static_cast<int64_t>(state.iterations());
  state.counters["nodes_direct"] = static_cast<double>(
      (direct->Value() - direct_before) / iterations);
  state.counters["nodes_subtracted"] = static_cast<double>(
      (subtracted->Value() - subtracted_before) / iterations);
}
BENCHMARK(BM_TrainHist)
    ->Args({500, 16})
    ->Args({2000, 16})
    ->Args({2000, 64})
    ->Args({8000, 64})
    ->Unit(benchmark::kMillisecond);

/// The tracing-enabled twin of BM_TrainHist/2000/64: every span records an
/// event, so comparing against the disabled run bounds the observability
/// overhead (docs/observability.md budgets it at < 5%).
void BM_TrainHistTraceEnabled(benchmark::State& state) {
  const Dataset data = MakeData(state.range(0), state.range(1), 1);
  const GbtParams params = BenchParams(TreeMethod::kHist);
  for (auto _ : state) {
    // Enable() clears the previous iteration's events, so the buffer cost
    // stays bounded and every iteration traces the same span population.
    Tracer::Global().Enable();
    auto model = GbtModel::Train(data, params);
    benchmark::DoNotOptimize(model);
  }
  Tracer::Global().Disable();
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["trace_events"] =
      static_cast<double>(Tracer::Global().event_count());
}
BENCHMARK(BM_TrainHistTraceEnabled)
    ->Args({2000, 64})
    ->Unit(benchmark::kMillisecond);

/// The monitored twin of BM_TrainHist/2000/64: a live Monitor heartbeats
/// at an aggressive 50ms cadence (with the stall watchdog armed) while
/// training runs. Comparing against BM_MonitorDisabled below bounds the
/// monitor's overhead, budgeted at <= 1% — the monitor thread samples
/// /proc and diffs counters off the training threads' critical path.
void BM_MonitorOverhead(benchmark::State& state) {
  const Dataset data = MakeData(state.range(0), state.range(1), 1);
  const GbtParams params = BenchParams(TreeMethod::kHist);
  mysawh::MonitorOptions options;
  options.status_path = "/tmp/mysawh_bench_status.json";
  options.interval_ms = 50;
  options.stall_timeout_ms = 10000;
  mysawh::Monitor monitor(options);
  if (!monitor.Start().ok()) {
    state.SkipWithError("monitor failed to start");
    return;
  }
  for (auto _ : state) {
    auto model = GbtModel::Train(data, params);
    benchmark::DoNotOptimize(model);
  }
  monitor.Stop();
  std::remove(options.status_path.c_str());
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["heartbeats"] =
      static_cast<double>(monitor.heartbeats_written());
}
BENCHMARK(BM_MonitorOverhead)
    ->Args({2000, 64})
    ->Unit(benchmark::kMillisecond);

/// The no-monitor twin, byte-for-byte the same training loop. The
/// perf-trend diff pairs this with BM_MonitorOverhead so the overhead
/// number never conflates monitor cost with unrelated training drift.
void BM_MonitorDisabled(benchmark::State& state) {
  const Dataset data = MakeData(state.range(0), state.range(1), 1);
  const GbtParams params = BenchParams(TreeMethod::kHist);
  for (auto _ : state) {
    auto model = GbtModel::Train(data, params);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MonitorDisabled)
    ->Args({2000, 64})
    ->Unit(benchmark::kMillisecond);

/// The histogram accumulation pass in isolation: one root-node histogram
/// over all rows and features (the single-pass row-major kernel plus the
/// deterministic chunked reduction, without split finding on top).
void BM_HistogramBuild(benchmark::State& state) {
  const Dataset data = MakeData(state.range(0), state.range(1), 1);
  const BinnedData binned = BuildBinned(data, 64, nullptr).value();
  std::vector<int> features;
  for (int64_t f = 0; f < data.num_features(); ++f) {
    features.push_back(static_cast<int>(f));
  }
  const HistogramLayout layout(binned.bins, features);
  const HistogramBuilder builder(binned.bins, binned.matrix, nullptr);
  std::vector<int64_t> rows;
  std::vector<GradientPair> gpairs;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    rows.push_back(r);
    gpairs.push_back({data.label(r), 1.0});
  }
  for (auto _ : state) {
    NodeHistogram hist = builder.Build(layout, rows, gpairs);
    benchmark::DoNotOptimize(hist);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HistogramBuild)
    ->Args({2000, 64})
    ->Args({8000, 64})
    ->Unit(benchmark::kMicrosecond);

void BM_TrainExact(benchmark::State& state) {
  const Dataset data = MakeData(state.range(0), state.range(1), 1);
  const GbtParams params = BenchParams(TreeMethod::kExact);
  for (auto _ : state) {
    auto model = GbtModel::Train(data, params);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrainExact)
    ->Args({500, 16})
    ->Args({2000, 16})
    ->Args({2000, 64})
    ->Unit(benchmark::kMillisecond);

void BM_TrainDepth(benchmark::State& state) {
  const Dataset data = MakeData(2000, 32, 2);
  GbtParams params = BenchParams(TreeMethod::kHist);
  params.max_depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto model = GbtModel::Train(data, params);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_TrainDepth)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Batch prediction through the compiled flat-forest kernel (the default
/// dispatch). BM_PredictBatchRef is the reference-walker twin over the
/// same model and rows; their ratio is the compilation speedup claimed in
/// DESIGN.md and gated by tools/bench_diff.py.
void BM_PredictBatch(benchmark::State& state) {
  const Dataset train = MakeData(2000, 32, 3);
  GbtParams params = BenchParams(TreeMethod::kHist);
  params.num_trees = static_cast<int>(state.range(0));
  const GbtModel model = GbtModel::Train(train, params).value();
  const Dataset test = MakeData(1000, 32, 4);
  for (auto _ : state) {
    auto preds = model.Predict(test);
    benchmark::DoNotOptimize(preds);
  }
  state.SetItemsProcessed(state.iterations() * test.num_rows());
}
BENCHMARK(BM_PredictBatch)->Arg(20)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMillisecond);

/// Reference twin of BM_PredictBatch: the per-row pointer walker over the
/// original tree nodes, bypassing the flat forest.
void BM_PredictBatchRef(benchmark::State& state) {
  const Dataset train = MakeData(2000, 32, 3);
  GbtParams params = BenchParams(TreeMethod::kHist);
  params.num_trees = static_cast<int>(state.range(0));
  const GbtModel model = GbtModel::Train(train, params).value();
  const Dataset test = MakeData(1000, 32, 4);
  for (auto _ : state) {
    auto preds = model.PredictReference(test);
    benchmark::DoNotOptimize(preds);
  }
  state.SetItemsProcessed(state.iterations() * test.num_rows());
}
BENCHMARK(BM_PredictBatchRef)->Arg(20)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMillisecond);

/// Overhead twin of BM_PredictBatch/300: the same batch predict with the
/// audit log armed at the default 1-in-16 sampling. Reconfiguring per
/// iteration clears the record buffer so memory stays bounded; the delta
/// over BM_PredictBatch is the audit overhead budget (<= 1%) gated by
/// tools/bench_diff.py.
void BM_AuditLog(benchmark::State& state) {
  const Dataset train = MakeData(2000, 32, 3);
  GbtParams params = BenchParams(TreeMethod::kHist);
  params.num_trees = static_cast<int>(state.range(0));
  const GbtModel model = GbtModel::Train(train, params).value();
  const Dataset test = MakeData(1000, 32, 4);
  AuditOptions options;
  options.sample_rate = 16;
  for (auto _ : state) {
    (void)AuditLog::Global().Configure(options);
    auto preds = model.Predict(test);
    benchmark::DoNotOptimize(preds);
  }
  AuditLog::Global().Disable();
  state.SetItemsProcessed(state.iterations() * test.num_rows());
}
BENCHMARK(BM_AuditLog)->Arg(300)->Unit(benchmark::kMillisecond);

/// Overhead twin of BM_PredictBatch/300 with the drift monitor armed at
/// the CLI-default 1-in-16 row sampling: every predicted batch streams
/// through the monitor, which scores 256-row windows of sampled rows
/// against a training-time baseline. Configured once so the loop measures
/// the steady-state monitored predict (the criterion's scenario).
void BM_DriftMonitor(benchmark::State& state) {
  const Dataset train = MakeData(2000, 32, 3);
  GbtParams params = BenchParams(TreeMethod::kHist);
  params.num_trees = static_cast<int>(state.range(0));
  const GbtModel model = GbtModel::Train(train, params).value();
  const Dataset test = MakeData(1000, 32, 4);
  const DriftBaseline baseline =
      BuildDriftBaseline(train, model.Predict(train).value(), 10).value();
  DriftMonitorOptions options;
  options.window = 256;
  options.sample_rate = 16;
  (void)DriftMonitorRuntime::Global().Configure(baseline, options);
  for (auto _ : state) {
    auto preds = model.Predict(test);
    benchmark::DoNotOptimize(preds);
  }
  DriftMonitorRuntime::Global().Flush();
  state.SetItemsProcessed(state.iterations() * test.num_rows());
}
BENCHMARK(BM_DriftMonitor)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_Serialize(benchmark::State& state) {
  const Dataset train = MakeData(2000, 32, 5);
  GbtParams params = BenchParams(TreeMethod::kHist);
  params.num_trees = 100;
  const GbtModel model = GbtModel::Train(train, params).value();
  for (auto _ : state) {
    auto text = model.Serialize();
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_Serialize)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mysawh::bench::RunPerfBenchmarks(argc, argv, "BENCH_perf.json");
}
