/// Ablation: ensemble size. Staged predictions of the QoL DD model trace
/// the test 1-MAPE as a function of boosting rounds, justifying the
/// default of a few hundred shrunk trees.

#include <iostream>

#include "bench/bench_common.h"
#include "core/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace mysawh;         // NOLINT
using namespace mysawh::bench;  // NOLINT
using core::Approach;
using core::Outcome;
}  // namespace

int main() {
  const auto cohort = MakePaperCohort();
  const auto sets = MakeSampleSets(cohort, Outcome::kQol);
  core::EvalProtocol protocol;
  auto params = core::DefaultGbtParams(Outcome::kQol, Approach::kDataDriven);
  params.num_trees = 500;
  const auto result = ValueOrDie(core::RunExperiment(
      sets.dd_fi, Outcome::kQol, Approach::kDataDriven, true, params,
      protocol));

  const int stride = 25;
  const gbt::GbtModel* gbt = result.gbt_model();
  const auto stages = ValueOrDie(gbt->PredictStaged(result.test, stride));
  TablePrinter table({"trees", "test 1-MAPE", "test MAE"});
  CsvDocument csv;
  csv.header = {"trees", "one_minus_mape", "mae"};
  for (size_t s = 0; s < stages.size(); ++s) {
    const auto metrics = ValueOrDie(
        core::ComputeRegressionMetrics(result.test.labels(), stages[s]));
    const auto trees = std::min<size_t>((s + 1) * stride,
                                        gbt->trees().size());
    table.AddRow({std::to_string(trees),
                  FormatPercent(metrics.one_minus_mape, 2),
                  FormatDouble(metrics.mae, 4)});
    csv.rows.push_back({std::to_string(trees),
                        FormatDouble(metrics.one_minus_mape, 4),
                        FormatDouble(metrics.mae, 4)});
  }
  std::cout << "Ensemble-size ablation (QoL, DD w/ FI, staged prediction)\n"
            << table.ToString()
            << "\nPerformance saturates after a few hundred rounds at the\n"
               "default learning rate; more trees neither help nor hurt\n"
               "much (shrinkage prevents runaway overfitting).\n";
  WriteCsvReport("ablation_num_trees.csv", csv);
  return 0;
}
