/// Reproduces the paper's Section 5 model-family justification: "The
/// Gradient Boosting algorithm proved to offer better predictive
/// performance than other popular intelligible learning frameworks such as
/// GA2M, suggesting that separating model performance from model
/// interpretability would better suit our needs."
///
/// Compares, on the same DD sample sets: GBT (ours), the GA2M-style
/// additive model (intelligible by construction), and ridge linear /
/// logistic baselines.

#include <iostream>

#include "bench/bench_common.h"
#include "data/split.h"
#include "gam/gam_model.h"
#include "linear/linear_model.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace mysawh;         // NOLINT
using namespace mysawh::bench;  // NOLINT
using core::Approach;
using core::Outcome;

struct Scores {
  double regression_metric = 0.0;  // 1-MAPE
  double accuracy = 0.0;
  double recall_true = 0.0;
};

}  // namespace

int main() {
  const auto cohort = MakePaperCohort();
  core::EvalProtocol protocol;
  Rng rng(protocol.seed);

  TablePrinter table({"outcome", "model family", "headline", "detail"});
  CsvDocument csv;
  csv.header = {"outcome", "family", "headline", "recall_true"};

  for (Outcome outcome : {Outcome::kQol, Outcome::kSppb, Outcome::kFalls}) {
    const auto sets = MakeSampleSets(cohort, outcome);
    const bool classify = core::IsClassification(outcome);

    // Shared split so all families see identical train/test rows.
    Rng split_rng(protocol.seed);
    TrainTestIndices split = ValueOrDie(
        classify ? StratifiedTrainTestSplit(sets.dd.labels(),
                                            protocol.test_fraction, &split_rng)
                 : TrainTestSplit(sets.dd.num_rows(), protocol.test_fraction,
                                  &split_rng));
    const Dataset train = ValueOrDie(sets.dd.Take(split.train));
    const Dataset test = ValueOrDie(sets.dd.Take(split.test));

    auto report = [&](const std::string& family,
                      const std::vector<double>& predictions) {
      if (classify) {
        const auto m = ValueOrDie(core::ComputeClassificationMetrics(
            test.labels(), predictions, protocol.decision_threshold));
        table.AddRow({core::OutcomeName(outcome), family,
                      "acc " + FormatPercent(m.accuracy, 1),
                      "recall(T) " + FormatPercent(m.recall_true, 1)});
        csv.rows.push_back({core::OutcomeName(outcome), family,
                            FormatDouble(m.accuracy, 4),
                            FormatDouble(m.recall_true, 4)});
      } else {
        const auto m = ValueOrDie(
            core::ComputeRegressionMetrics(test.labels(), predictions));
        table.AddRow({core::OutcomeName(outcome), family,
                      "1-MAPE " + FormatPercent(m.one_minus_mape, 1),
                      "MAE " + FormatDouble(m.mae, 4)});
        csv.rows.push_back({core::OutcomeName(outcome), family,
                            FormatDouble(m.one_minus_mape, 4), ""});
      }
    };

    // 1. GBT (the paper's choice).
    auto gbt_params = core::DefaultGbtParams(outcome, Approach::kDataDriven);
    const auto gbt_model =
        ValueOrDie(gbt::GbtModel::Train(train, gbt_params));
    report("GBT (XGBoost-style)", ValueOrDie(gbt_model.Predict(test)));

    // 2. GA2M-style additive model.
    gam::GamParams gam_params;
    gam_params.objective = classify ? gbt::ObjectiveType::kLogistic
                                    : gbt::ObjectiveType::kSquaredError;
    gam_params.num_cycles = 25;
    const auto gam_model = ValueOrDie(gam::GamModel::Train(train, gam_params));
    report("GA2M-style GAM", ValueOrDie(gam_model.Predict(test)));

    // 3. Linear / logistic baselines.
    if (classify) {
      const auto logistic =
          ValueOrDie(linear::LogisticModel::Train(train, 1.0));
      report("Logistic regression", ValueOrDie(logistic.Predict(test)));
    } else {
      const auto ridge = ValueOrDie(linear::LinearModel::Train(train, 1.0));
      report("Ridge regression", ValueOrDie(ridge.Predict(test)));
    }
    table.AddSeparator();
  }

  std::cout << "Model-family ablation on the DD feature sets\n"
            << table.ToString()
            << "\nPaper claim: GBT > intelligible-by-construction models,\n"
               "so combine GBT with post-hoc SHAP instead.\n";
  WriteCsvReport("ablation_model_families.csv", csv);
  return 0;
}
