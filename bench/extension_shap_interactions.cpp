/// Extension beyond the paper: SHAP *interaction* values (Lundberg et al.,
/// Algorithm 3) on the Falls model. The paper's local explanations rank
/// single features; interaction values additionally reveal which feature
/// *pairs* act together. In this cohort the fall hazard is, by
/// construction, an interaction between low locomotion and low sensory
/// capacity — the bench checks that the strongest cross-domain interaction
/// pairs surface exactly there.

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "explain/tree_shap.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace mysawh;         // NOLINT
using namespace mysawh::bench;  // NOLINT
using core::Approach;
using core::Outcome;
}  // namespace

int main() {
  const auto cohort = MakePaperCohort();
  const auto sets = MakeSampleSets(cohort, Outcome::kFalls);
  core::EvalProtocol protocol;
  const auto result = ValueOrDie(core::RunExperiment(
      sets.dd, Outcome::kFalls, Approach::kDataDriven, false, protocol));

  const explain::TreeShap shap(result.gbt_model());
  const auto& names = result.model->FeatureNames();
  const auto m = static_cast<size_t>(result.model->NumFeatures());

  // Mean |interaction| over a sample of test rows (interactions are
  // O(M) SHAP passes per row, so sample).
  const int64_t probe_rows = std::min<int64_t>(result.test.num_rows(), 40);
  std::vector<double> mean_abs(m * m, 0.0);
  for (int64_t r = 0; r < probe_rows; ++r) {
    const auto inter = shap.ShapInteractions(result.test.row(r));
    for (size_t k = 0; k < inter.size(); ++k) mean_abs[k] += std::abs(inter[k]);
  }
  for (double& v : mean_abs) v /= static_cast<double>(probe_rows);

  // Rank off-diagonal pairs.
  struct Pair {
    size_t i, j;
    double value;
  };
  std::vector<Pair> pairs;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      pairs.push_back({i, j, mean_abs[i * m + j]});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.value > b.value; });

  std::cout << "Top 12 SHAP interaction pairs — Falls model (mean |value| "
               "over "
            << probe_rows << " test rows)\n";
  TablePrinter table({"rank", "feature A", "feature B", "mean |interaction|"});
  CsvDocument csv;
  csv.header = {"rank", "feature_a", "feature_b", "mean_abs_interaction"};
  int loco_sensory_pairs_in_top = 0;
  for (size_t k = 0; k < std::min<size_t>(12, pairs.size()); ++k) {
    const auto& p = pairs[k];
    table.AddRow({std::to_string(k + 1), names[p.i], names[p.j],
                  FormatDouble(p.value, 5)});
    csv.rows.push_back({std::to_string(k + 1), names[p.i], names[p.j],
                        FormatDouble(p.value, 6)});
    const bool cross =
        (StartsWith(names[p.i], "pro_locomotion") ||
         names[p.i] == "act_steps") &&
        StartsWith(names[p.j], "pro_sensory");
    const bool cross_rev =
        StartsWith(names[p.i], "pro_sensory") &&
        (StartsWith(names[p.j], "pro_locomotion") ||
         names[p.j] == "act_steps");
    if (cross || cross_rev) ++loco_sensory_pairs_in_top;
  }
  std::cout << table.ToString() << "\n";
  (void)loco_sensory_pairs_in_top;

  // Domain-level aggregation: features within an IC domain are correlated
  // and share interaction credit, so the causal structure shows at the
  // domain x domain block level. Blocks: 5 IC domains + activity.
  auto group_of = [&](size_t f) -> int {
    const std::string& name = names[f];
    for (int d = 0; d < cohort::kNumDomains; ++d) {
      std::string prefix = "pro_";
      prefix += cohort::IcDomainName(static_cast<cohort::IcDomain>(d));
      if (StartsWith(name, prefix)) return d;
    }
    return cohort::kNumDomains;  // activity
  };
  const int num_groups = cohort::kNumDomains + 1;
  std::vector<double> block(
      static_cast<size_t>(num_groups * num_groups), 0.0);
  std::vector<int64_t> block_count(
      static_cast<size_t>(num_groups * num_groups), 0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      const int gi = group_of(i);
      const int gj = group_of(j);
      block[static_cast<size_t>(gi * num_groups + gj)] += mean_abs[i * m + j];
      block_count[static_cast<size_t>(gi * num_groups + gj)] += 1;
    }
  }
  std::vector<std::string> group_names;
  for (int d = 0; d < cohort::kNumDomains; ++d) {
    group_names.push_back(cohort::IcDomainName(static_cast<cohort::IcDomain>(d)));
  }
  group_names.push_back("activity");

  // Rank cross-domain blocks by mean per-pair interaction strength.
  struct Block {
    int a, b;
    double value;
  };
  std::vector<Block> blocks;
  for (int a = 0; a < num_groups; ++a) {
    for (int b = a + 1; b < num_groups; ++b) {
      const auto idx = static_cast<size_t>(a * num_groups + b);
      const auto idx2 = static_cast<size_t>(b * num_groups + a);
      const double total = block[idx] + block[idx2];
      const auto count = static_cast<double>(block_count[idx] +
                                             block_count[idx2]);
      blocks.push_back({a, b, count > 0 ? total / count : 0.0});
    }
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const Block& x, const Block& y) { return x.value > y.value; });
  std::cout << "Cross-domain interaction blocks (mean per feature pair):\n";
  TablePrinter block_table({"rank", "domain A", "domain B", "mean |interaction|"});
  for (size_t k = 0; k < blocks.size(); ++k) {
    block_table.AddRow({std::to_string(k + 1),
                        group_names[static_cast<size_t>(blocks[k].a)],
                        group_names[static_cast<size_t>(blocks[k].b)],
                        FormatDouble(blocks[k].value, 6)});
  }
  std::cout << block_table.ToString()
            << "\nGround truth: the simulated fall hazard couples "
               "locomotion (incl. activity/steps) with sensory capacity.\n";
  WriteCsvReport("extension_shap_interactions.csv", csv);
  return 0;
}
