/// google-benchmark microbenchmarks for exact TreeSHAP: per-row explanation
/// latency as a function of ensemble size and tree depth (the algorithm is
/// O(trees * leaves * depth^2)).

#include <benchmark/benchmark.h>

#include "bench/perf_json_main.h"
#include "data/dataset.h"
#include "explain/tree_shap.h"
#include "gbt/gbt_model.h"
#include "util/rng.h"

namespace {

using mysawh::Dataset;
using mysawh::Rng;
using mysawh::explain::TreeShap;
using mysawh::gbt::GbtModel;
using mysawh::gbt::GbtParams;

Dataset MakeData(int64_t rows, int64_t features, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (int64_t f = 0; f < features; ++f) {
    std::string name = "f";
    name += std::to_string(f);
    names.push_back(std::move(name));
  }
  Dataset ds = Dataset::Create(names);
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<double> row(static_cast<size_t>(features));
    double y = 0;
    for (int64_t f = 0; f < features; ++f) {
      row[static_cast<size_t>(f)] = rng.Uniform(-1, 1);
      y += (f % 2 == 0 ? 0.8 : -0.4) * row[static_cast<size_t>(f)];
    }
    (void)ds.AddRow(row, y + rng.Normal(0, 0.05));
  }
  return ds;
}

void BM_ShapByTrees(benchmark::State& state) {
  const Dataset train = MakeData(2000, 30, 1);
  GbtParams params;
  params.num_trees = static_cast<int>(state.range(0));
  params.max_depth = 4;
  const GbtModel model = GbtModel::Train(train, params).value();
  const TreeShap shap(&model);
  const Dataset probe = MakeData(1, 30, 2);
  for (auto _ : state) {
    auto phi = shap.Shap(probe.row(0));
    benchmark::DoNotOptimize(phi);
  }
}
BENCHMARK(BM_ShapByTrees)->Arg(20)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMicrosecond);

void BM_ShapByDepth(benchmark::State& state) {
  const Dataset train = MakeData(4000, 30, 3);
  GbtParams params;
  params.num_trees = 50;
  params.max_depth = static_cast<int>(state.range(0));
  const GbtModel model = GbtModel::Train(train, params).value();
  const TreeShap shap(&model);
  const Dataset probe = MakeData(1, 30, 4);
  for (auto _ : state) {
    auto phi = shap.Shap(probe.row(0));
    benchmark::DoNotOptimize(phi);
  }
}
BENCHMARK(BM_ShapByDepth)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

/// Batch SHAP through the flat-forest recursion (the default dispatch).
/// BM_ShapBatchRef is the reference per-tree recursion twin; their ratio
/// is the flat SHAP speedup claimed in DESIGN.md.
void BM_ShapBatch(benchmark::State& state) {
  const Dataset train = MakeData(2000, 59, 5);  // paper-width feature space
  GbtParams params;
  params.num_trees = 100;
  params.max_depth = 4;
  const GbtModel model = GbtModel::Train(train, params).value();
  const TreeShap shap(&model);
  const Dataset probe = MakeData(state.range(0), 59, 6);
  for (auto _ : state) {
    auto matrix = shap.ShapBatch(probe);
    benchmark::DoNotOptimize(matrix);
  }
  state.SetItemsProcessed(state.iterations() * probe.num_rows());
}
BENCHMARK(BM_ShapBatch)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

/// Reference twin of BM_ShapBatch: per-(row, tree) recursion over the
/// original tree nodes with a freshly allocated workspace each time.
void BM_ShapBatchRef(benchmark::State& state) {
  const Dataset train = MakeData(2000, 59, 5);
  GbtParams params;
  params.num_trees = 100;
  params.max_depth = 4;
  const GbtModel model = GbtModel::Train(train, params).value();
  const TreeShap shap(&model);
  const Dataset probe = MakeData(state.range(0), 59, 6);
  for (auto _ : state) {
    auto matrix = shap.ShapBatchReference(probe);
    benchmark::DoNotOptimize(matrix);
  }
  state.SetItemsProcessed(state.iterations() * probe.num_rows());
}
BENCHMARK(BM_ShapBatchRef)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mysawh::bench::RunPerfBenchmarks(argc, argv, "BENCH_perf.json");
}
