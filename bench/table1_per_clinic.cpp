/// Reproduces Table 1: single-clinic models. For each clinic (Modena,
/// Sydney, Hong Kong) the full Fig 4 grid is re-run on that clinic's
/// samples only: 1-MAPE for QoL and SPPB, classification effectiveness for
/// Falls, KD vs DD, with and without FI.
///
/// Paper shape: per-clinic results are consistent with the pooled Fig 4
/// models; Hong Kong (n = 33) shows anomalies due to its small sample.

#include <iostream>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace mysawh;         // NOLINT
using namespace mysawh::bench;  // NOLINT
using core::Approach;
using core::Outcome;

/// Rows of one clinic's samples.
Result<Dataset> ClinicSubset(const Dataset& samples, int64_t clinic) {
  MYSAWH_ASSIGN_OR_RETURN(const std::vector<int64_t>* clinics,
                          samples.Attribute("clinic"));
  std::vector<int64_t> rows;
  for (size_t i = 0; i < clinics->size(); ++i) {
    if ((*clinics)[i] == clinic) rows.push_back(static_cast<int64_t>(i));
  }
  return samples.Take(rows);
}

}  // namespace

int main() {
  const auto cohort = MakePaperCohort();
  core::EvalProtocol protocol;

  CsvDocument csv;
  csv.header = {"clinic", "outcome", "approach", "with_fi", "one_minus_mape",
                "accuracy", "p_true", "p_false", "r_true", "r_false",
                "f1_true", "f1_false"};

  for (size_t clinic = 0; clinic < cohort.config.clinics.size(); ++clinic) {
    const std::string& clinic_name = cohort.config.clinics[clinic].name;
    std::cout << "=== " << clinic_name << " (n="
              << cohort.config.clinics[clinic].num_patients
              << " patients) ===\n";
    TablePrinter reg({"outcome", "model", "1-MAPE"});
    TablePrinter cls({"model", "Acc", "P(T)", "P(F)", "R(T)", "R(F)",
                      "F1(T)", "F1(F)"});
    for (Outcome outcome :
         {Outcome::kQol, Outcome::kSppb, Outcome::kFalls}) {
      const auto sets = MakeSampleSets(cohort, outcome);
      struct Cell {
        const Dataset* data;
        Approach approach;
        bool with_fi;
      };
      const Cell cells[] = {
          {&sets.kd, Approach::kKnowledgeDriven, false},
          {&sets.kd_fi, Approach::kKnowledgeDriven, true},
          {&sets.dd, Approach::kDataDriven, false},
          {&sets.dd_fi, Approach::kDataDriven, true},
      };
      for (const Cell& cell : cells) {
        const Dataset subset =
            ValueOrDie(ClinicSubset(*cell.data, static_cast<int64_t>(clinic)));
        auto result_or = core::RunExperiment(subset, outcome, cell.approach,
                                             cell.with_fi, protocol);
        if (!result_or.ok()) {
          // Small clinics can fail stratified splitting in a window; the
          // paper notes Hong Kong anomalies for the same reason.
          std::cout << "  (skipped " << core::OutcomeName(outcome) << " "
                    << core::ApproachName(cell.approach)
                    << (cell.with_fi ? " w/ FI" : " w/o FI") << ": "
                    << result_or.status().ToString() << ")\n";
          continue;
        }
        const auto& result = *result_or;
        std::string model = core::ApproachName(cell.approach);
        model += cell.with_fi ? " w/ FI" : " w/o FI";
        if (result.is_classification) {
          const auto& m = result.test_classification;
          cls.AddRow({model, FormatPercent(m.accuracy, 1),
                      FormatPercent(m.precision_true, 1),
                      FormatPercent(m.precision_false, 1),
                      FormatPercent(m.recall_true, 1),
                      FormatPercent(m.recall_false, 1),
                      FormatPercent(m.f1_true, 1),
                      FormatPercent(m.f1_false, 1)});
        } else {
          reg.AddRow({core::OutcomeName(outcome), model,
                      FormatPercent(result.test_regression.one_minus_mape, 1)});
        }
        const auto& m = result.test_classification;
        csv.rows.push_back(
            {clinic_name, core::OutcomeName(outcome),
             core::ApproachName(cell.approach), cell.with_fi ? "1" : "0",
             FormatDouble(result.is_classification
                              ? 0.0
                              : result.test_regression.one_minus_mape,
                          4),
             FormatDouble(m.accuracy, 4), FormatDouble(m.precision_true, 4),
             FormatDouble(m.precision_false, 4),
             FormatDouble(m.recall_true, 4), FormatDouble(m.recall_false, 4),
             FormatDouble(m.f1_true, 4), FormatDouble(m.f1_false, 4)});
      }
    }
    std::cout << "QoL / SPPB (1-MAPE):\n"
              << reg.ToString() << "Falls:\n"
              << cls.ToString() << "\n";
  }
  WriteCsvReport("table1_per_clinic.csv", csv);
  return 0;
}
