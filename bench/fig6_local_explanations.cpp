/// Reproduces Fig 6: local SHAP interpretation of SPPB predictions. Finds
/// two test-set patients with (nearly) the same predicted SPPB whose top-5
/// SHAP feature rankings differ, and prints both explanations — the paper's
/// personalised-medicine argument: equal outcomes, different reasons,
/// different interventions.

#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "explain/explanation.h"
#include "explain/tree_shap.h"
#include "util/string_util.h"

namespace {
using namespace mysawh;         // NOLINT
using namespace mysawh::bench;  // NOLINT
using core::Approach;
using core::Outcome;
}  // namespace

int main() {
  const auto cohort = MakePaperCohort();
  const auto sets = MakeSampleSets(cohort, Outcome::kSppb);
  core::EvalProtocol protocol;
  const auto result = ValueOrDie(core::RunExperiment(
      sets.dd_fi, Outcome::kSppb, Approach::kDataDriven, true, protocol));

  const explain::TreeShap shap(result.gbt_model());
  const Dataset& test = result.test;
  const auto predictions = ValueOrDie(result.model->PredictBatch(test));
  const auto* patients = ValueOrDie(test.Attribute("patient"));

  // Precompute SHAP once, then find the pair of rows from DIFFERENT
  // patients with the closest predictions whose top features differ.
  const auto shap_matrix = ValueOrDie(shap.ShapBatch(test));
  std::vector<int> top_feature(static_cast<size_t>(test.num_rows()), -1);
  for (int64_t r = 0; r < test.num_rows(); ++r) {
    const auto& phi = shap_matrix[static_cast<size_t>(r)];
    double best_abs = -1.0;
    for (size_t f = 0; f < phi.size(); ++f) {
      if (std::abs(phi[f]) > best_abs) {
        best_abs = std::abs(phi[f]);
        top_feature[static_cast<size_t>(r)] = static_cast<int>(f);
      }
    }
  }
  int64_t best_a = -1, best_b = -1;
  double best_gap = 1e9;
  for (int64_t a = 0; a < test.num_rows(); ++a) {
    for (int64_t b = a + 1; b < test.num_rows(); ++b) {
      if ((*patients)[static_cast<size_t>(a)] ==
          (*patients)[static_cast<size_t>(b)]) {
        continue;
      }
      if (top_feature[static_cast<size_t>(a)] ==
          top_feature[static_cast<size_t>(b)]) {
        continue;  // want differing top features, as in Fig 6
      }
      const double gap = std::abs(predictions[static_cast<size_t>(a)] -
                                  predictions[static_cast<size_t>(b)]);
      if (gap < best_gap) {
        best_gap = gap;
        best_a = a;
        best_b = b;
      }
    }
  }
  CheckOk(best_a >= 0 ? Status::Ok()
                      : Status::NotFound("no matched patient pair found"));

  std::cout << "Fig 6: two patients with matched SPPB predictions and "
               "different explanations\n\n";
  CsvDocument csv;
  csv.header = {"patient", "prediction", "rank", "feature", "value", "shap"};
  for (int64_t row : {best_a, best_b}) {
    const auto explanation = ValueOrDie(explain::ExplainRow(shap, test, row));
    std::cout << "Patient #" << (*patients)[static_cast<size_t>(row)]
              << " — predicted SPPB "
              << FormatDouble(predictions[static_cast<size_t>(row)], 2)
              << " (actual " << FormatDouble(test.label(row), 0) << ")\n"
              << explanation.ToString(5) << "\n";
    int rank = 1;
    for (const auto& c : explanation.Top(5)) {
      csv.rows.push_back(
          {std::to_string((*patients)[static_cast<size_t>(row)]),
           FormatDouble(predictions[static_cast<size_t>(row)], 4),
           std::to_string(rank++), c.feature, FormatDouble(c.value, 4),
           FormatDouble(c.shap, 6)});
    }
  }
  std::cout << "Prediction gap between the two patients: "
            << FormatDouble(best_gap, 4)
            << " SPPB points; top features differ -> different "
               "interventions.\n";
  WriteCsvReport("fig6_local_explanations.csv", csv);
  return 0;
}
