#ifndef MYSAWH_BENCH_BENCH_COMMON_H_
#define MYSAWH_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <string>

#include "cohort/simulator.h"
#include "core/evaluation.h"
#include "core/sample_builder.h"
#include "util/csv.h"
#include "util/status.h"

namespace mysawh::bench {

/// Aborts the bench binary with a message when `status` is not OK. Bench
/// harnesses are leaf executables, so failing fast with context is the
/// right behaviour.
inline void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::cerr << "bench failed: " << status.ToString() << "\n";
    std::exit(1);
  }
}

/// Unwraps a Result or aborts.
template <typename T>
T ValueOrDie(Result<T> result) {
  CheckOk(result.status().ok() ? Status::Ok() : result.status());
  if (!result.ok()) std::exit(1);  // unreachable; silences analyzers
  return std::move(result).value();
}

/// The standard cohort every bench reproduces the paper against.
inline cohort::Cohort MakePaperCohort(uint64_t seed = 42) {
  cohort::CohortConfig config;
  config.seed = seed;
  cohort::CohortSimulator simulator(config);
  return ValueOrDie(simulator.Generate());
}

/// Builds the aligned sample sets of one outcome with default QA options.
inline core::SampleSets MakeSampleSets(const cohort::Cohort& cohort,
                                       core::Outcome outcome) {
  auto builder = ValueOrDie(core::SampleSetBuilder::Create(
      &cohort, core::SampleBuildOptions{}));
  return ValueOrDie(builder.Build(outcome));
}

/// Writes a CSV next to the binary's working directory and reports it.
inline void WriteCsvReport(const std::string& path, const CsvDocument& doc) {
  CheckOk(WriteCsv(path, doc));
  std::cout << "[wrote " << path << "]\n";
}

}  // namespace mysawh::bench

#endif  // MYSAWH_BENCH_BENCH_COMMON_H_
