/// Reproduces the paper's Section 3 quality-assurance experiment: the
/// choice of the maximum interpolation gap. Sweeps the bound over
/// {0, 1, 2, 3, 5, 8, 12, 17} and reports, for each setting, the retained
/// sample count and the QoL DD model's test performance.
///
/// Paper: "We experimentally determined the max size of gaps that could be
/// safely interpolated (five missing steps)" — small bounds discard data,
/// large bounds inject spurious interpolated values.

#include <iostream>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace mysawh;         // NOLINT
using namespace mysawh::bench;  // NOLINT
using core::Approach;
using core::Outcome;
}  // namespace

int main() {
  const auto cohort = MakePaperCohort();
  core::EvalProtocol protocol;

  TablePrinter table({"max gap", "retained", "left-missing gaps",
                      "1-MAPE (QoL)", "MAE"});
  CsvDocument csv;
  csv.header = {"max_gap", "retained", "one_minus_mape", "mae"};

  for (int max_gap : {0, 1, 2, 3, 5, 8, 12, 17}) {
    core::SampleBuildOptions options;
    options.max_interpolation_gap = max_gap;
    const auto builder =
        ValueOrDie(core::SampleSetBuilder::Create(&cohort, options));
    const auto sets = ValueOrDie(builder.Build(Outcome::kQol));
    const auto result = ValueOrDie(core::RunExperiment(
        sets.dd, Outcome::kQol, Approach::kDataDriven, false, protocol));
    table.AddRow({std::to_string(max_gap), std::to_string(sets.retained),
                  std::to_string(sets.gap_stats_after.num_gaps),
                  FormatPercent(result.test_regression.one_minus_mape, 1),
                  FormatDouble(result.test_regression.mae, 4)});
    csv.rows.push_back(
        {std::to_string(max_gap), std::to_string(sets.retained),
         FormatDouble(result.test_regression.one_minus_mape, 4),
         FormatDouble(result.test_regression.mae, 4)});
  }
  std::cout << "Section 3 QA ablation: maximum interpolation gap sweep\n"
            << table.ToString()
            << "\nPaper picked max gap = 5: enough retained samples without\n"
               "flooding the training set with interpolated (spurious) "
               "values.\n";
  WriteCsvReport("ablation_gap_sweep.csv", csv);
  return 0;
}
