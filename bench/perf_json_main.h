#ifndef MYSAWH_BENCH_PERF_JSON_MAIN_H_
#define MYSAWH_BENCH_PERF_JSON_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace mysawh::bench {

/// Rewrites the benchmark JSON in place, inserting the process metrics
/// snapshot as a top-level "mysawh_metrics" member before the final brace.
/// Best-effort: a malformed or unreadable file is left untouched.
inline void EmbedMetricsSnapshot(const char* path) {
  std::ifstream in(path);
  if (!in) return;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string text = buffer.str();
  const size_t brace = text.find_last_of('}');
  if (brace == std::string::npos) return;
  const std::string snapshot = MetricsRegistry::Global().SnapshotJson();
  text.insert(brace, ",\n  \"mysawh_metrics\": " + snapshot);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;
  out << text;
}

/// Runs the registered google-benchmark suite with the usual console
/// reporter, and additionally writes the results as JSON to `default_out`
/// in the working directory — so CI and scripts get machine-readable
/// numbers without extra flags. A caller-provided --benchmark_out wins.
///
/// The extra flags must be injected into argv *before* Initialize: passing
/// a file reporter to RunSpecifiedBenchmarks without --benchmark_out set
/// aborts inside the library.
inline int RunPerfBenchmarks(int argc, char** argv, const char* default_out) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Match only --benchmark_out itself (bare or with a value), not flags
    // that share the prefix such as --benchmark_out_format: a format-only
    // invocation must still get the default JSON output file.
    if (std::strcmp(argv[i], "--benchmark_out") == 0 ||
        std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
      has_out = true;
    }
  }
  // Static storage: benchmark keeps pointers into argv past Initialize.
  static std::string out_flag;
  static std::string format_flag;
  if (!has_out) {
    out_flag = std::string("--benchmark_out=") + default_out;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The default JSON file gets the registry snapshot appended, so the
  // BENCH artifact carries the pipeline counters (node histogram counts,
  // task latencies) alongside the timings. Caller-directed output files
  // are left exactly as google-benchmark wrote them.
  if (!has_out) EmbedMetricsSnapshot(default_out);
  return 0;
}

}  // namespace mysawh::bench

#endif  // MYSAWH_BENCH_PERF_JSON_MAIN_H_
