/// Reproduces Fig 5: the distribution of per-patient regression MAE grouped
/// by clinical center, for QoL and SPPB (box-and-whisker statistics).
///
/// Paper shape: Modena and Sydney are comparable; Hong Kong exhibits more
/// outliers because of its small, more homogeneous cohort (n = 33).

#include <iostream>

#include "bench/bench_common.h"
#include "core/metrics.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace mysawh;         // NOLINT
using namespace mysawh::bench;  // NOLINT
using core::Approach;
using core::Outcome;
}  // namespace

int main() {
  const auto cohort = MakePaperCohort();
  core::EvalProtocol protocol;

  CsvDocument csv;
  csv.header = {"outcome", "clinic",  "q1",      "median",
                "q3",      "whisker_lo", "whisker_hi", "num_outliers",
                "num_patients"};

  for (Outcome outcome : {Outcome::kQol, Outcome::kSppb}) {
    const auto sets = MakeSampleSets(cohort, outcome);
    // The DD w/ FI model, the paper's best performer.
    const auto result = ValueOrDie(core::RunExperiment(
        sets.dd_fi, outcome, Approach::kDataDriven, true, protocol));

    // Per-patient MAE on the held-out test rows.
    const auto predictions =
        ValueOrDie(result.model->PredictBatch(result.test));
    const auto* patients = ValueOrDie(result.test.Attribute("patient"));
    const auto* clinics = ValueOrDie(result.test.Attribute("clinic"));
    const auto per_patient = ValueOrDie(
        core::PerGroupMae(result.test.labels(), predictions, *patients));

    // Patient -> clinic lookup from the test rows.
    std::map<int64_t, int64_t> patient_clinic;
    for (size_t i = 0; i < patients->size(); ++i) {
      patient_clinic[(*patients)[i]] = (*clinics)[i];
    }
    std::map<int64_t, std::vector<double>> by_clinic;
    for (const auto& [patient, mae] : per_patient) {
      by_clinic[patient_clinic.at(patient)].push_back(mae);
    }

    std::cout << "Fig 5: per-patient MAE by clinic — "
              << core::OutcomeName(outcome) << " (DD w/ FI, test partition)\n";
    TablePrinter table({"clinic", "patients", "q1", "median", "q3",
                        "whisker lo", "whisker hi", "outliers"});
    for (const auto& [clinic, maes] : by_clinic) {
      const BoxStats box = ValueOrDie(ComputeBoxStats(maes));
      const std::string name =
          cohort.config.clinics[static_cast<size_t>(clinic)].name;
      table.AddRow({name, std::to_string(maes.size()),
                    FormatDouble(box.q1, 4), FormatDouble(box.median, 4),
                    FormatDouble(box.q3, 4), FormatDouble(box.min, 4),
                    FormatDouble(box.max, 4),
                    std::to_string(box.outliers.size())});
      csv.rows.push_back({core::OutcomeName(outcome), name,
                          FormatDouble(box.q1, 6), FormatDouble(box.median, 6),
                          FormatDouble(box.q3, 6), FormatDouble(box.min, 6),
                          FormatDouble(box.max, 6),
                          std::to_string(box.outliers.size()),
                          std::to_string(maes.size())});
    }
    std::cout << table.ToString() << "\n";

    // Outlier rate comparison (the paper's Hong Kong observation).
    double hk_rate = 0, other_rate = 0;
    int64_t hk_n = 0, other_n = 0;
    for (const auto& [clinic, maes] : by_clinic) {
      const BoxStats box = ValueOrDie(ComputeBoxStats(maes));
      const bool is_hk =
          cohort.config.clinics[static_cast<size_t>(clinic)].name ==
          "HongKong";
      (is_hk ? hk_rate : other_rate) += static_cast<double>(box.outliers.size());
      (is_hk ? hk_n : other_n) += static_cast<int64_t>(maes.size());
    }
    if (hk_n > 0 && other_n > 0) {
      std::cout << "Outlier share — HongKong: "
                << FormatPercent(hk_rate / static_cast<double>(hk_n), 1)
                << ", Modena+Sydney: "
                << FormatPercent(other_rate / static_cast<double>(other_n), 1)
                << "\n\n";
    }
  }
  WriteCsvReport("fig5_mae_distribution.csv", csv);
  return 0;
}
