/// Reproduces Fig 7: the global SHAP dependence of the stress PRO question
/// (1..10 answers) on the QoL model. The paper shows the question's SHAP
/// value flipping from positive to negative with a definite threshold at
/// answer >= 3 — the DD analogue of the KD experts' hand-picked cutoff
/// ("score 1 if the value is lower than 3").

#include <iostream>

#include "bench/bench_common.h"
#include "cohort/pro_questions.h"
#include "explain/explanation.h"
#include "explain/tree_shap.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace mysawh;         // NOLINT
using namespace mysawh::bench;  // NOLINT
using core::Approach;
using core::Outcome;
}  // namespace

int main() {
  const auto cohort = MakePaperCohort();
  const auto sets = MakeSampleSets(cohort, Outcome::kQol);
  core::EvalProtocol protocol;
  const auto result = ValueOrDie(core::RunExperiment(
      sets.dd, Outcome::kQol, Approach::kDataDriven, false, protocol));

  const explain::TreeShap shap(result.gbt_model());
  // Dependence over the full sample population (train + test), as the
  // paper's global plots are population-level.
  Dataset population = result.train;
  CheckOk(population.Append(result.test));
  const auto curve = ValueOrDie(explain::ComputeDependenceCurve(
      shap, population, cohort::kStressQuestionName));

  std::cout << "Fig 7: global SHAP dependence of '"
            << cohort::kStressQuestionName << "' (QoL model, "
            << curve.values.size() << " samples)\n\n";
  TablePrinter table({"answer", "mean SHAP", "direction"});
  CsvDocument csv;
  csv.header = {"answer", "mean_shap"};
  for (size_t i = 0; i < curve.distinct_values.size(); ++i) {
    table.AddRow({FormatDouble(curve.distinct_values[i], 2),
                  FormatDouble(curve.mean_shap[i], 5),
                  curve.mean_shap[i] >= 0 ? "+ (raises QoL)"
                                          : "- (lowers QoL)"});
    csv.rows.push_back({FormatDouble(curve.distinct_values[i], 4),
                        FormatDouble(curve.mean_shap[i], 6)});
  }
  std::cout << table.ToString() << "\n";

  if (curve.has_threshold) {
    std::cout << "Recovered threshold: answers >= "
              << FormatDouble(curve.recovered_threshold, 2)
              << " push the prediction down.\n"
              << "Paper: definite threshold at >= 3 — the KD cutoff the\n"
              << "clinicians chose by hand, recovered from data.\n";
  } else {
    std::cout << "No sign change found (unexpected; see EXPERIMENTS.md).\n";
  }
  WriteCsvReport("fig7_global_dependence.csv", csv);
  return 0;
}
