/// Extension beyond the paper: probability quality of the Falls models.
/// The paper reports threshold metrics (accuracy/precision/recall); for
/// clinical risk scores the ranking (AUC) and calibration (Brier score,
/// reliability diagram) matter as much. Compares DD and KD with/without FI.

#include <iostream>

#include "bench/bench_common.h"
#include "core/metrics.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {
using namespace mysawh;         // NOLINT
using namespace mysawh::bench;  // NOLINT
using core::Approach;
using core::Outcome;
}  // namespace

int main() {
  const auto cohort = MakePaperCohort();
  const auto sets = MakeSampleSets(cohort, Outcome::kFalls);
  core::EvalProtocol protocol;

  TablePrinter table({"model", "AUC", "Brier", "base rate"});
  CsvDocument csv;
  csv.header = {"model", "auc", "brier"};
  struct Cell {
    const char* name;
    const Dataset* data;
    Approach approach;
    bool with_fi;
  };
  const Cell cells[] = {
      {"KD w/o FI", &sets.kd, Approach::kKnowledgeDriven, false},
      {"KD w/ FI", &sets.kd_fi, Approach::kKnowledgeDriven, true},
      {"DD w/o FI", &sets.dd, Approach::kDataDriven, false},
      {"DD w/ FI", &sets.dd_fi, Approach::kDataDriven, true},
  };
  const core::ExperimentResult* best = nullptr;
  static core::ExperimentResult best_storage;
  for (const Cell& cell : cells) {
    auto result = ValueOrDie(core::RunExperiment(
        *cell.data, Outcome::kFalls, cell.approach, cell.with_fi, protocol));
    const auto preds = ValueOrDie(result.model->PredictBatch(result.test));
    const double auc = ValueOrDie(core::RocAuc(result.test.labels(), preds));
    const double brier =
        ValueOrDie(core::BrierScore(result.test.labels(), preds));
    double base_rate = 0;
    for (double y : result.test.labels()) base_rate += y;
    base_rate /= static_cast<double>(result.test.num_rows());
    table.AddRow({cell.name, FormatDouble(auc, 3), FormatDouble(brier, 4),
                  FormatPercent(base_rate, 1)});
    csv.rows.push_back(
        {cell.name, FormatDouble(auc, 4), FormatDouble(brier, 4)});
    if (cell.with_fi && cell.approach == Approach::kDataDriven) {
      best_storage = std::move(result);
      best = &best_storage;
    }
  }
  std::cout << "Falls risk models: ranking and calibration quality\n"
            << table.ToString() << "\n";

  // Reliability diagram of the best model.
  const auto preds = ValueOrDie(best->model->PredictBatch(best->test));
  const auto bins =
      ValueOrDie(core::ComputeCalibrationBins(best->test.labels(), preds, 10));
  TablePrinter reliability(
      {"bin mean p", "observed rate", "count", "gap"});
  for (const auto& bin : bins) {
    reliability.AddRow({FormatDouble(bin.mean_predicted, 3),
                        FormatDouble(bin.observed_rate, 3),
                        std::to_string(bin.count),
                        FormatDouble(bin.observed_rate - bin.mean_predicted,
                                     3)});
  }
  std::cout << "Reliability diagram — DD w/ FI:\n" << reliability.ToString();
  WriteCsvReport("extension_falls_calibration.csv", csv);
  return 0;
}
