/// Quickstart: generate a MySAwH-like cohort, build the paper's sample
/// sets, train the four models of one outcome (DD/KD x with/without FI),
/// and print the headline metrics plus a SHAP explanation for one patient.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "cohort/simulator.h"
#include "core/evaluation.h"
#include "core/sample_builder.h"
#include "explain/explanation.h"
#include "explain/tree_shap.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using mysawh::Dataset;
using mysawh::FormatPercent;
using mysawh::TablePrinter;

int Run() {
  // 1. Generate the synthetic cohort (261 patients across three clinics,
  //    18 months of PRO / wearable / clinical data).
  mysawh::cohort::CohortConfig config;
  config.seed = 42;
  mysawh::cohort::CohortSimulator simulator(config);
  auto cohort = simulator.Generate();
  if (!cohort.ok()) {
    std::cerr << cohort.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Generated cohort: " << cohort->patients.size()
            << " patients, " << cohort->questions.size()
            << " PRO questions\n";

  // 2. Build the aligned DD/KD sample sets for QoL.
  auto builder = mysawh::core::SampleSetBuilder::Create(
      &*cohort, mysawh::core::SampleBuildOptions{});
  if (!builder.ok()) {
    std::cerr << builder.status().ToString() << "\n";
    return 1;
  }
  auto sets = builder->Build(mysawh::core::Outcome::kQol);
  if (!sets.ok()) {
    std::cerr << sets.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Samples: " << sets->retained << " retained of "
            << sets->total_candidates << " candidate patient-months\n";
  std::cout << "PRO gaps before interpolation: " << sets->gap_stats_raw.num_gaps
            << " gaps, mean length " << sets->gap_stats_raw.mean_length
            << ", max " << sets->gap_stats_raw.max_length << "\n\n";

  // 3. Train and evaluate the four models of Fig 4's QoL block.
  mysawh::core::EvalProtocol protocol;
  TablePrinter table({"model", "features", "1-MAPE (test)", "MAE"});
  struct Cell {
    const char* name;
    const Dataset* data;
    mysawh::core::Approach approach;
    bool with_fi;
  };
  const Cell cells[] = {
      {"KD  (ICI)", &sets->kd, mysawh::core::Approach::kKnowledgeDriven, false},
      {"KD+FI", &sets->kd_fi, mysawh::core::Approach::kKnowledgeDriven, true},
      {"DD  (raw)", &sets->dd, mysawh::core::Approach::kDataDriven, false},
      {"DD+FI", &sets->dd_fi, mysawh::core::Approach::kDataDriven, true},
  };
  mysawh::core::ExperimentResult dd_fi_result;
  for (const Cell& cell : cells) {
    auto result = mysawh::core::RunExperiment(
        *cell.data, mysawh::core::Outcome::kQol, cell.approach, cell.with_fi,
        protocol);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({cell.name,
                  std::to_string(cell.data->num_features()),
                  FormatPercent(result->test_regression.one_minus_mape, 1),
                  mysawh::FormatDouble(result->test_regression.mae, 4)});
    if (cell.with_fi && cell.approach == mysawh::core::Approach::kDataDriven) {
      dd_fi_result = std::move(*result);
    }
  }
  std::cout << "QoL prediction (paper Fig 4, left):\n"
            << table.ToString() << "\n";

  // 4. Explain one test-set prediction with TreeSHAP (paper Fig 6).
  mysawh::explain::TreeShap shap(dd_fi_result.gbt_model());
  auto explanation = mysawh::explain::ExplainRow(shap, dd_fi_result.test, 0);
  if (!explanation.ok()) {
    std::cerr << explanation.status().ToString() << "\n";
    return 1;
  }
  std::cout << "SHAP explanation of one patient's QoL prediction:\n"
            << explanation->ToString(5);
  return 0;
}

}  // namespace

int main() { return Run(); }
