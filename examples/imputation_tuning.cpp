/// Walkthrough of the paper's Section 3 quality-assurance step on a user's
/// own configuration: inspect the raw PRO gap statistics, sweep the maximum
/// interpolation gap, and pick the bound balancing retained samples against
/// interpolation-induced error.

#include <iostream>

#include "cohort/simulator.h"
#include "core/evaluation.h"
#include "core/sample_builder.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace mysawh;  // NOLINT

int Fail(const Status& status) {
  std::cerr << status.ToString() << "\n";
  return 1;
}

int Run() {
  cohort::CohortConfig config;
  config.seed = 555;
  // A heavier-missingness scenario than the defaults.
  config.gaps_per_series = 2.6;
  config.low_adherence_fraction = 0.22;
  auto cohort = cohort::CohortSimulator(config).Generate();
  if (!cohort.ok()) return Fail(cohort.status());

  // Step 1: inspect raw gap statistics (build once with no interpolation).
  {
    core::SampleBuildOptions options;
    options.max_interpolation_gap = 0;
    auto builder = core::SampleSetBuilder::Create(&*cohort, options);
    if (!builder.ok()) return Fail(builder.status());
    auto sets = builder->Build(core::Outcome::kQol);
    if (!sets.ok()) return Fail(sets.status());
    std::cout << "Raw PRO missingness: " << sets->gap_stats_raw.num_gaps
              << " gaps, mean length "
              << FormatDouble(sets->gap_stats_raw.mean_length, 2) << ", max "
              << sets->gap_stats_raw.max_length << " ("
              << FormatDouble(static_cast<double>(sets->gap_stats_raw.num_gaps) /
                                  static_cast<double>(cohort->patients.size()),
                              1)
              << " gaps per patient)\n\n";
  }

  // Step 2: sweep the interpolation bound.
  core::EvalProtocol protocol;
  TablePrinter table({"max gap", "retained samples", "1-MAPE", "verdict"});
  double best_score = -1.0;
  int best_gap = 0;
  for (int max_gap : {0, 2, 4, 5, 6, 8, 12}) {
    core::SampleBuildOptions options;
    options.max_interpolation_gap = max_gap;
    auto builder = core::SampleSetBuilder::Create(&*cohort, options);
    if (!builder.ok()) return Fail(builder.status());
    auto sets = builder->Build(core::Outcome::kQol);
    if (!sets.ok()) return Fail(sets.status());
    auto result = core::RunExperiment(sets->dd, core::Outcome::kQol,
                                      core::Approach::kDataDriven, false,
                                      protocol);
    if (!result.ok()) return Fail(result.status());
    // Simple selection score: accuracy with a mild retention incentive,
    // mirroring the paper's balance between gap size and performance.
    const double retention = static_cast<double>(sets->retained) /
                             static_cast<double>(sets->total_candidates);
    const double score =
        result->test_regression.one_minus_mape + 0.02 * retention;
    const bool best_so_far = score > best_score;
    if (best_so_far) {
      best_score = score;
      best_gap = max_gap;
    }
    table.AddRow({std::to_string(max_gap), std::to_string(sets->retained),
                  FormatPercent(result->test_regression.one_minus_mape, 1),
                  best_so_far ? "<- best so far" : ""});
  }
  std::cout << table.ToString() << "\nSelected max interpolation gap: "
            << best_gap << " (paper settled on 5 for the MySAwH data)\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
