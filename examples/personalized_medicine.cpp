/// Personalised medicine with post-hoc explanations (the paper's Sec 5.2
/// workflow): train the SPPB model once, persist it, and for each incoming
/// patient produce the prediction plus the ranked feature contributions a
/// clinician would act on. Two patients with similar predicted SPPB can
/// receive different recommendations because their explanations differ.

#include <iostream>
#include <map>

#include "cohort/simulator.h"
#include "core/evaluation.h"
#include "core/sample_builder.h"
#include "explain/explanation.h"
#include "explain/tree_shap.h"
#include "model/model.h"
#include "util/string_util.h"

namespace {

using namespace mysawh;  // NOLINT

int Run() {
  // Cohort + sample sets.
  cohort::CohortConfig config;
  config.seed = 2026;
  cohort::CohortSimulator simulator(config);
  auto cohort = simulator.Generate();
  if (!cohort.ok()) {
    std::cerr << cohort.status().ToString() << "\n";
    return 1;
  }
  auto builder = core::SampleSetBuilder::Create(
      &*cohort, core::SampleBuildOptions{});
  auto sets = builder->Build(core::Outcome::kSppb);
  if (!sets.ok()) {
    std::cerr << sets.status().ToString() << "\n";
    return 1;
  }

  // Train the deployment model (DD with the FI baseline feature).
  core::EvalProtocol protocol;
  auto result = core::RunExperiment(sets->dd_fi, core::Outcome::kSppb,
                                    core::Approach::kDataDriven, true,
                                    protocol);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "SPPB model: 1-MAPE "
            << FormatPercent(result->test_regression.one_minus_mape, 1)
            << " on held-out patients\n\n";

  // Persist and reload: the clinic deploys a serialized model file. The
  // registry reads the kind header and rebuilds the concrete family.
  const std::string model_path = "sppb_model.mysawh";
  if (auto st = result->model->SaveToFile(model_path); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  auto deployed = model::Model::LoadFromFile(model_path);
  if (!deployed.ok()) {
    std::cerr << deployed.status().ToString() << "\n";
    return 1;
  }
  const auto* deployed_gbt =
      dynamic_cast<const gbt::GbtModel*>(deployed->get());
  if (deployed_gbt == nullptr) {
    std::cerr << "expected a GBT model in " << model_path << "\n";
    return 1;
  }
  std::cout << "Model persisted to " << model_path << " and reloaded ("
            << deployed_gbt->trees().size() << " trees)\n\n";

  // Explain a handful of incoming patients.
  const explain::TreeShap shap(deployed_gbt);
  const Dataset& incoming = result->test;
  const auto* patients = incoming.Attribute("patient").value();
  std::cout << "Per-patient reports (prediction + top 3 drivers):\n\n";
  std::map<std::string, int> top_feature_counts;
  const int64_t n = std::min<int64_t>(incoming.num_rows(), 12);
  for (int64_t r = 0; r < n; ++r) {
    auto explanation = explain::ExplainRow(shap, incoming, r);
    if (!explanation.ok()) {
      std::cerr << explanation.status().ToString() << "\n";
      return 1;
    }
    std::cout << "Patient #" << (*patients)[static_cast<size_t>(r)] << ": "
              << explanation->ToString(3);
    top_feature_counts[explanation->contributions.front().feature] += 1;
  }
  std::cout << "\nDistinct top drivers across these patients: "
            << top_feature_counts.size() << "\n";
  if (top_feature_counts.size() > 1) {
    std::cout << "Similar scores, different reasons, different "
                 "interventions.\n";
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
