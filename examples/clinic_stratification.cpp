/// Clinic stratification study (the paper's Sec 5.1 closing suggestion:
/// "developing separate models by stratifying across clinics ... may be
/// beneficial"). Compares, for QoL:
///   1. one pooled model evaluated per clinic,
///   2. dedicated per-clinic models,
/// and additionally demonstrates leakage-free evaluation by splitting at
/// the *patient* level (every patient's samples stay on one side).

#include <iostream>

#include "cohort/simulator.h"
#include "core/evaluation.h"
#include "core/metrics.h"
#include "core/sample_builder.h"
#include "data/split.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace mysawh;  // NOLINT

int Fail(const Status& status) {
  std::cerr << status.ToString() << "\n";
  return 1;
}

int Run() {
  cohort::CohortConfig config;
  config.seed = 99;
  auto cohort = cohort::CohortSimulator(config).Generate();
  if (!cohort.ok()) return Fail(cohort.status());
  auto builder =
      core::SampleSetBuilder::Create(&*cohort, core::SampleBuildOptions{});
  if (!builder.ok()) return Fail(builder.status());
  auto sets = builder->Build(core::Outcome::kQol);
  if (!sets.ok()) return Fail(sets.status());
  const Dataset& samples = sets->dd_fi;

  // Patient-level 80/20 split: no patient straddles train and test.
  Rng rng(7);
  auto patients = samples.Attribute("patient");
  if (!patients.ok()) return Fail(patients.status());
  auto split = GroupTrainTestSplit(**patients, 0.2, &rng);
  if (!split.ok()) return Fail(split.status());
  auto train = samples.Take(split->train);
  auto test = samples.Take(split->test);
  if (!train.ok() || !test.ok()) return Fail(train.status());

  const auto params =
      core::DefaultGbtParams(core::Outcome::kQol, core::Approach::kDataDriven);

  // 1. Pooled model.
  auto pooled = gbt::GbtModel::Train(*train, params);
  if (!pooled.ok()) return Fail(pooled.status());

  // 2. Per-clinic models.
  auto clinic_of = [](const Dataset& ds, int64_t clinic) {
    const auto* clinics = ds.Attribute("clinic").value();
    std::vector<int64_t> rows;
    for (size_t i = 0; i < clinics->size(); ++i) {
      if ((*clinics)[i] == clinic) rows.push_back(static_cast<int64_t>(i));
    }
    return ds.Take(rows).value();
  };

  TablePrinter table(
      {"clinic", "test rows", "pooled 1-MAPE", "dedicated 1-MAPE"});
  for (size_t clinic = 0; clinic < cohort->config.clinics.size(); ++clinic) {
    const Dataset clinic_train = clinic_of(*train, static_cast<int64_t>(clinic));
    const Dataset clinic_test = clinic_of(*test, static_cast<int64_t>(clinic));
    if (clinic_test.num_rows() == 0 || clinic_train.num_rows() < 20) continue;

    auto pooled_preds = pooled->Predict(clinic_test);
    if (!pooled_preds.ok()) return Fail(pooled_preds.status());
    auto pooled_metrics =
        core::ComputeRegressionMetrics(clinic_test.labels(), *pooled_preds);
    if (!pooled_metrics.ok()) return Fail(pooled_metrics.status());

    auto dedicated = gbt::GbtModel::Train(clinic_train, params);
    if (!dedicated.ok()) return Fail(dedicated.status());
    auto dedicated_preds = dedicated->Predict(clinic_test);
    if (!dedicated_preds.ok()) return Fail(dedicated_preds.status());
    auto dedicated_metrics =
        core::ComputeRegressionMetrics(clinic_test.labels(), *dedicated_preds);
    if (!dedicated_metrics.ok()) return Fail(dedicated_metrics.status());

    table.AddRow({cohort->config.clinics[clinic].name,
                  std::to_string(clinic_test.num_rows()),
                  FormatPercent(pooled_metrics->one_minus_mape, 1),
                  FormatPercent(dedicated_metrics->one_minus_mape, 1)});
  }
  std::cout
      << "QoL, patient-level split (no patient leaks across the split):\n"
      << table.ToString()
      << "\nDedicated models trade data volume for protocol homogeneity —\n"
         "for the small Hong Kong cohort the pooled model usually wins,\n"
         "matching the paper's sample-size caveat.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
