/// Runs the paper's complete DD-vs-KD study with a single library call and
/// writes the result as a Markdown report (REPORT.md in the working
/// directory) — the "one command regenerates the study" workflow a
/// downstream user wants.

#include <fstream>
#include <iostream>

#include "core/study.h"

int main() {
  mysawh::core::StudyConfig config;
  config.cohort.seed = 42;
  auto study = mysawh::core::RunFullStudy(config);
  if (!study.ok()) {
    std::cerr << study.status().ToString() << "\n";
    return 1;
  }
  const std::string report = study->ToMarkdown();
  std::cout << report;
  std::ofstream out("REPORT.md", std::ios::binary);
  if (out) {
    out << report;
    std::cout << "\n[wrote REPORT.md]\n";
  }
  return 0;
}
