/// Prints cohort-level dataset statistics: sample counts before/after the
/// QA filter at several thresholds, gap statistics, outcome distributions
/// and class balance. Useful for eyeballing how closely a configuration
/// matches the paper's Section 3 numbers.
#include <cstdio>
#include <iostream>

#include "cohort/simulator.h"
#include "core/sample_builder.h"
#include "util/stats.h"

using namespace mysawh;

int main() {
  cohort::CohortConfig config;
  cohort::CohortSimulator sim(config);
  auto cohort = sim.Generate();
  if (!cohort.ok()) { std::cerr << cohort.status().ToString() << "\n"; return 1; }

  for (double threshold : {0.30, 0.10, 0.05, 0.03, 0.02, 0.01, 0.0}) {
    core::SampleBuildOptions options;
    options.max_missing_fraction = threshold;
    auto builder = core::SampleSetBuilder::Create(&*cohort, options);
    auto sets = builder->Build(core::Outcome::kQol);
    if (!sets.ok()) { std::cerr << sets.status().ToString() << "\n"; return 1; }
    std::printf("threshold=%.2f retained=%lld / %lld\n", threshold,
                (long long)sets->retained, (long long)sets->total_candidates);
  }
  core::SampleBuildOptions options;
  auto builder = core::SampleSetBuilder::Create(&*cohort, options);
  auto sets = builder->Build(core::Outcome::kQol);
  std::printf("gaps: n=%lld mean_len=%.2f max=%lld per-patient=%.1f\n",
              (long long)sets->gap_stats_raw.num_gaps,
              sets->gap_stats_raw.mean_length,
              (long long)sets->gap_stats_raw.max_length,
              (double)sets->gap_stats_raw.num_gaps / 261.0);
  // Outcome distributions.
  auto falls_sets = builder->Build(core::Outcome::kFalls);
  auto sppb_sets = builder->Build(core::Outcome::kSppb);
  double qol_mean = Mean(sets->dd.labels());
  int64_t falls_true = 0;
  for (double y : falls_sets->dd.labels()) falls_true += y > 0.5;
  std::vector<double> sppb = sppb_sets->dd.labels();
  std::printf("QoL mean=%.3f sd=%.3f | Falls true=%lld/%lld (%.1f%%) | SPPB mean=%.2f sd=%.2f\n",
              qol_mean, StdDev(sets->dd.labels()), (long long)falls_true,
              (long long)falls_sets->dd.labels().size(),
              100.0 * falls_true / falls_sets->dd.labels().size(),
              Mean(sppb), StdDev(sppb));
  // SPPB histogram 0..12.
  std::vector<int64_t> h(13, 0);
  for (double v : sppb) h[(size_t)v]++;
  for (int i = 0; i <= 12; ++i) std::printf("sppb[%d]=%lld ", i, (long long)h[(size_t)i]);
  std::printf("\n");
  std::vector<int64_t> hq(10, 0);
  for (double v : sets->dd.labels()) hq[std::min(9, (int)(v * 10))]++;
  for (int i = 0; i < 10; ++i) std::printf("qol[0.%d]=%lld ", i, (long long)hq[(size_t)i]);
  std::printf("\n");
  return 0;
}
