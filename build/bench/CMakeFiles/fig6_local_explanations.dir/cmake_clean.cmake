file(REMOVE_RECURSE
  "CMakeFiles/fig6_local_explanations.dir/fig6_local_explanations.cpp.o"
  "CMakeFiles/fig6_local_explanations.dir/fig6_local_explanations.cpp.o.d"
  "fig6_local_explanations"
  "fig6_local_explanations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_local_explanations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
