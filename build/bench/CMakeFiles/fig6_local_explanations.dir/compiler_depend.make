# Empty compiler generated dependencies file for fig6_local_explanations.
# This may be replaced when dependencies are built.
