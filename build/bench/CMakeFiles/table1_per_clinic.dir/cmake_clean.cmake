file(REMOVE_RECURSE
  "CMakeFiles/table1_per_clinic.dir/table1_per_clinic.cpp.o"
  "CMakeFiles/table1_per_clinic.dir/table1_per_clinic.cpp.o.d"
  "table1_per_clinic"
  "table1_per_clinic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_per_clinic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
