# Empty compiler generated dependencies file for table1_per_clinic.
# This may be replaced when dependencies are built.
