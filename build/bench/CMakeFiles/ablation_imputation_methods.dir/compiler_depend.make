# Empty compiler generated dependencies file for ablation_imputation_methods.
# This may be replaced when dependencies are built.
