file(REMOVE_RECURSE
  "CMakeFiles/ablation_imputation_methods.dir/ablation_imputation_methods.cpp.o"
  "CMakeFiles/ablation_imputation_methods.dir/ablation_imputation_methods.cpp.o.d"
  "ablation_imputation_methods"
  "ablation_imputation_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_imputation_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
