file(REMOVE_RECURSE
  "CMakeFiles/fig5_mae_distribution.dir/fig5_mae_distribution.cpp.o"
  "CMakeFiles/fig5_mae_distribution.dir/fig5_mae_distribution.cpp.o.d"
  "fig5_mae_distribution"
  "fig5_mae_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mae_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
