file(REMOVE_RECURSE
  "CMakeFiles/fig1_outcome_distributions.dir/fig1_outcome_distributions.cpp.o"
  "CMakeFiles/fig1_outcome_distributions.dir/fig1_outcome_distributions.cpp.o.d"
  "fig1_outcome_distributions"
  "fig1_outcome_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_outcome_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
