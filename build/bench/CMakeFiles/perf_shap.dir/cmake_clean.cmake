file(REMOVE_RECURSE
  "CMakeFiles/perf_shap.dir/perf_shap.cpp.o"
  "CMakeFiles/perf_shap.dir/perf_shap.cpp.o.d"
  "perf_shap"
  "perf_shap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_shap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
