# Empty compiler generated dependencies file for perf_shap.
# This may be replaced when dependencies are built.
