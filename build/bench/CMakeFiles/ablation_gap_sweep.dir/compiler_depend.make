# Empty compiler generated dependencies file for ablation_gap_sweep.
# This may be replaced when dependencies are built.
