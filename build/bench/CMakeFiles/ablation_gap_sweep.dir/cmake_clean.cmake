file(REMOVE_RECURSE
  "CMakeFiles/ablation_gap_sweep.dir/ablation_gap_sweep.cpp.o"
  "CMakeFiles/ablation_gap_sweep.dir/ablation_gap_sweep.cpp.o.d"
  "ablation_gap_sweep"
  "ablation_gap_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gap_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
