# Empty dependencies file for ablation_num_trees.
# This may be replaced when dependencies are built.
