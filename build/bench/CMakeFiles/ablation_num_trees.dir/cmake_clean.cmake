file(REMOVE_RECURSE
  "CMakeFiles/ablation_num_trees.dir/ablation_num_trees.cpp.o"
  "CMakeFiles/ablation_num_trees.dir/ablation_num_trees.cpp.o.d"
  "ablation_num_trees"
  "ablation_num_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_num_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
