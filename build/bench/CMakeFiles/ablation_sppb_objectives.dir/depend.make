# Empty dependencies file for ablation_sppb_objectives.
# This may be replaced when dependencies are built.
