file(REMOVE_RECURSE
  "CMakeFiles/ablation_sppb_objectives.dir/ablation_sppb_objectives.cpp.o"
  "CMakeFiles/ablation_sppb_objectives.dir/ablation_sppb_objectives.cpp.o.d"
  "ablation_sppb_objectives"
  "ablation_sppb_objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sppb_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
