file(REMOVE_RECURSE
  "CMakeFiles/extension_falls_calibration.dir/extension_falls_calibration.cpp.o"
  "CMakeFiles/extension_falls_calibration.dir/extension_falls_calibration.cpp.o.d"
  "extension_falls_calibration"
  "extension_falls_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_falls_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
