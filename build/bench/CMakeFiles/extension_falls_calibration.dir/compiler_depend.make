# Empty compiler generated dependencies file for extension_falls_calibration.
# This may be replaced when dependencies are built.
