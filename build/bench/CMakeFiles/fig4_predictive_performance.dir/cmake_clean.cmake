file(REMOVE_RECURSE
  "CMakeFiles/fig4_predictive_performance.dir/fig4_predictive_performance.cpp.o"
  "CMakeFiles/fig4_predictive_performance.dir/fig4_predictive_performance.cpp.o.d"
  "fig4_predictive_performance"
  "fig4_predictive_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_predictive_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
