# Empty compiler generated dependencies file for extension_shap_interactions.
# This may be replaced when dependencies are built.
