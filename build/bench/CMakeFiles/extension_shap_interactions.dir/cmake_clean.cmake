file(REMOVE_RECURSE
  "CMakeFiles/extension_shap_interactions.dir/extension_shap_interactions.cpp.o"
  "CMakeFiles/extension_shap_interactions.dir/extension_shap_interactions.cpp.o.d"
  "extension_shap_interactions"
  "extension_shap_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_shap_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
