file(REMOVE_RECURSE
  "CMakeFiles/perf_gbt.dir/perf_gbt.cpp.o"
  "CMakeFiles/perf_gbt.dir/perf_gbt.cpp.o.d"
  "perf_gbt"
  "perf_gbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_gbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
