# Empty dependencies file for perf_gbt.
# This may be replaced when dependencies are built.
