file(REMOVE_RECURSE
  "CMakeFiles/fig7_global_dependence.dir/fig7_global_dependence.cpp.o"
  "CMakeFiles/fig7_global_dependence.dir/fig7_global_dependence.cpp.o.d"
  "fig7_global_dependence"
  "fig7_global_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_global_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
