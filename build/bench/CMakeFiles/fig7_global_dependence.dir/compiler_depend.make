# Empty compiler generated dependencies file for fig7_global_dependence.
# This may be replaced when dependencies are built.
