# Empty compiler generated dependencies file for mysawh.
# This may be replaced when dependencies are built.
