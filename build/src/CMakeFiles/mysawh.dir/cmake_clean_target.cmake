file(REMOVE_RECURSE
  "libmysawh.a"
)
