
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cohort/pro_questions.cc" "src/CMakeFiles/mysawh.dir/cohort/pro_questions.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/cohort/pro_questions.cc.o.d"
  "/root/repo/src/cohort/simulator.cc" "src/CMakeFiles/mysawh.dir/cohort/simulator.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/cohort/simulator.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/CMakeFiles/mysawh.dir/core/evaluation.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/core/evaluation.cc.o.d"
  "/root/repo/src/core/fi.cc" "src/CMakeFiles/mysawh.dir/core/fi.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/core/fi.cc.o.d"
  "/root/repo/src/core/ici.cc" "src/CMakeFiles/mysawh.dir/core/ici.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/core/ici.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/mysawh.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/outcomes.cc" "src/CMakeFiles/mysawh.dir/core/outcomes.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/core/outcomes.cc.o.d"
  "/root/repo/src/core/sample_builder.cc" "src/CMakeFiles/mysawh.dir/core/sample_builder.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/core/sample_builder.cc.o.d"
  "/root/repo/src/core/study.cc" "src/CMakeFiles/mysawh.dir/core/study.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/core/study.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/mysawh.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/split.cc" "src/CMakeFiles/mysawh.dir/data/split.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/data/split.cc.o.d"
  "/root/repo/src/data/table.cc" "src/CMakeFiles/mysawh.dir/data/table.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/data/table.cc.o.d"
  "/root/repo/src/explain/explanation.cc" "src/CMakeFiles/mysawh.dir/explain/explanation.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/explain/explanation.cc.o.d"
  "/root/repo/src/explain/permutation_importance.cc" "src/CMakeFiles/mysawh.dir/explain/permutation_importance.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/explain/permutation_importance.cc.o.d"
  "/root/repo/src/explain/tree_shap.cc" "src/CMakeFiles/mysawh.dir/explain/tree_shap.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/explain/tree_shap.cc.o.d"
  "/root/repo/src/gam/gam_model.cc" "src/CMakeFiles/mysawh.dir/gam/gam_model.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/gam/gam_model.cc.o.d"
  "/root/repo/src/gbt/binning.cc" "src/CMakeFiles/mysawh.dir/gbt/binning.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/gbt/binning.cc.o.d"
  "/root/repo/src/gbt/gbt_model.cc" "src/CMakeFiles/mysawh.dir/gbt/gbt_model.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/gbt/gbt_model.cc.o.d"
  "/root/repo/src/gbt/objective.cc" "src/CMakeFiles/mysawh.dir/gbt/objective.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/gbt/objective.cc.o.d"
  "/root/repo/src/gbt/params.cc" "src/CMakeFiles/mysawh.dir/gbt/params.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/gbt/params.cc.o.d"
  "/root/repo/src/gbt/trainer.cc" "src/CMakeFiles/mysawh.dir/gbt/trainer.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/gbt/trainer.cc.o.d"
  "/root/repo/src/gbt/tree.cc" "src/CMakeFiles/mysawh.dir/gbt/tree.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/gbt/tree.cc.o.d"
  "/root/repo/src/linear/dense_solver.cc" "src/CMakeFiles/mysawh.dir/linear/dense_solver.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/linear/dense_solver.cc.o.d"
  "/root/repo/src/linear/linear_model.cc" "src/CMakeFiles/mysawh.dir/linear/linear_model.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/linear/linear_model.cc.o.d"
  "/root/repo/src/model/model.cc" "src/CMakeFiles/mysawh.dir/model/model.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/model/model.cc.o.d"
  "/root/repo/src/model/registry.cc" "src/CMakeFiles/mysawh.dir/model/registry.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/model/registry.cc.o.d"
  "/root/repo/src/series/aggregation.cc" "src/CMakeFiles/mysawh.dir/series/aggregation.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/series/aggregation.cc.o.d"
  "/root/repo/src/series/interpolation.cc" "src/CMakeFiles/mysawh.dir/series/interpolation.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/series/interpolation.cc.o.d"
  "/root/repo/src/series/time_series.cc" "src/CMakeFiles/mysawh.dir/series/time_series.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/series/time_series.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/mysawh.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/util/csv.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/mysawh.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/util/flags.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/mysawh.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/mysawh.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/util/rng.cc.o.d"
  "/root/repo/src/util/serialization.cc" "src/CMakeFiles/mysawh.dir/util/serialization.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/util/serialization.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/mysawh.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/mysawh.dir/util/status.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/mysawh.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/mysawh.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/util/table_printer.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/mysawh.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/mysawh.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
