file(REMOVE_RECURSE
  "CMakeFiles/mysawh_cli.dir/mysawh_cli.cc.o"
  "CMakeFiles/mysawh_cli.dir/mysawh_cli.cc.o.d"
  "mysawh_cli"
  "mysawh_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mysawh_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
