# Empty compiler generated dependencies file for mysawh_cli.
# This may be replaced when dependencies are built.
