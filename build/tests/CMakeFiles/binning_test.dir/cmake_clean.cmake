file(REMOVE_RECURSE
  "CMakeFiles/binning_test.dir/binning_test.cc.o"
  "CMakeFiles/binning_test.dir/binning_test.cc.o.d"
  "binning_test"
  "binning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
