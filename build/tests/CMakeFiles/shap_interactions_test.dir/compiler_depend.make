# Empty compiler generated dependencies file for shap_interactions_test.
# This may be replaced when dependencies are built.
