file(REMOVE_RECURSE
  "CMakeFiles/shap_interactions_test.dir/shap_interactions_test.cc.o"
  "CMakeFiles/shap_interactions_test.dir/shap_interactions_test.cc.o.d"
  "shap_interactions_test"
  "shap_interactions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shap_interactions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
