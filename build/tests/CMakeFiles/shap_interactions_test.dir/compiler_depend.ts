# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for shap_interactions_test.
