file(REMOVE_RECURSE
  "CMakeFiles/explanation_test.dir/explanation_test.cc.o"
  "CMakeFiles/explanation_test.dir/explanation_test.cc.o.d"
  "explanation_test"
  "explanation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explanation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
