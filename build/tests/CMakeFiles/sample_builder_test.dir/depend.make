# Empty dependencies file for sample_builder_test.
# This may be replaced when dependencies are built.
