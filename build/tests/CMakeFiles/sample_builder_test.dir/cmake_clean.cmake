file(REMOVE_RECURSE
  "CMakeFiles/sample_builder_test.dir/sample_builder_test.cc.o"
  "CMakeFiles/sample_builder_test.dir/sample_builder_test.cc.o.d"
  "sample_builder_test"
  "sample_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
