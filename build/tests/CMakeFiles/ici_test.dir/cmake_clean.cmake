file(REMOVE_RECURSE
  "CMakeFiles/ici_test.dir/ici_test.cc.o"
  "CMakeFiles/ici_test.dir/ici_test.cc.o.d"
  "ici_test"
  "ici_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ici_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
