# Empty dependencies file for ici_test.
# This may be replaced when dependencies are built.
