file(REMOVE_RECURSE
  "CMakeFiles/gbt_properties_test.dir/gbt_properties_test.cc.o"
  "CMakeFiles/gbt_properties_test.dir/gbt_properties_test.cc.o.d"
  "gbt_properties_test"
  "gbt_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbt_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
