# Empty compiler generated dependencies file for gam_model_test.
# This may be replaced when dependencies are built.
