file(REMOVE_RECURSE
  "CMakeFiles/gam_model_test.dir/gam_model_test.cc.o"
  "CMakeFiles/gam_model_test.dir/gam_model_test.cc.o.d"
  "gam_model_test"
  "gam_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gam_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
