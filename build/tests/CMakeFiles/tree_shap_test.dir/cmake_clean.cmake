file(REMOVE_RECURSE
  "CMakeFiles/tree_shap_test.dir/tree_shap_test.cc.o"
  "CMakeFiles/tree_shap_test.dir/tree_shap_test.cc.o.d"
  "tree_shap_test"
  "tree_shap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_shap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
