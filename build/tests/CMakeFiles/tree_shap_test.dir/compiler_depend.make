# Empty compiler generated dependencies file for tree_shap_test.
# This may be replaced when dependencies are built.
