# Empty dependencies file for permutation_importance_test.
# This may be replaced when dependencies are built.
