file(REMOVE_RECURSE
  "CMakeFiles/permutation_importance_test.dir/permutation_importance_test.cc.o"
  "CMakeFiles/permutation_importance_test.dir/permutation_importance_test.cc.o.d"
  "permutation_importance_test"
  "permutation_importance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permutation_importance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
