file(REMOVE_RECURSE
  "CMakeFiles/gbt_model_test.dir/gbt_model_test.cc.o"
  "CMakeFiles/gbt_model_test.dir/gbt_model_test.cc.o.d"
  "gbt_model_test"
  "gbt_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbt_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
