file(REMOVE_RECURSE
  "CMakeFiles/monotone_constraints_test.dir/monotone_constraints_test.cc.o"
  "CMakeFiles/monotone_constraints_test.dir/monotone_constraints_test.cc.o.d"
  "monotone_constraints_test"
  "monotone_constraints_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monotone_constraints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
