file(REMOVE_RECURSE
  "CMakeFiles/pro_questions_test.dir/pro_questions_test.cc.o"
  "CMakeFiles/pro_questions_test.dir/pro_questions_test.cc.o.d"
  "pro_questions_test"
  "pro_questions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pro_questions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
