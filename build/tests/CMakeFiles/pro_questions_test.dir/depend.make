# Empty dependencies file for pro_questions_test.
# This may be replaced when dependencies are built.
