file(REMOVE_RECURSE
  "CMakeFiles/clinic_stratification.dir/clinic_stratification.cpp.o"
  "CMakeFiles/clinic_stratification.dir/clinic_stratification.cpp.o.d"
  "clinic_stratification"
  "clinic_stratification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clinic_stratification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
