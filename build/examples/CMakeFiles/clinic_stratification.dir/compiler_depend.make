# Empty compiler generated dependencies file for clinic_stratification.
# This may be replaced when dependencies are built.
