file(REMOVE_RECURSE
  "CMakeFiles/imputation_tuning.dir/imputation_tuning.cpp.o"
  "CMakeFiles/imputation_tuning.dir/imputation_tuning.cpp.o.d"
  "imputation_tuning"
  "imputation_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imputation_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
