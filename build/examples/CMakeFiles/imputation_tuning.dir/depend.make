# Empty dependencies file for imputation_tuning.
# This may be replaced when dependencies are built.
