file(REMOVE_RECURSE
  "CMakeFiles/cohort_report.dir/cohort_report.cpp.o"
  "CMakeFiles/cohort_report.dir/cohort_report.cpp.o.d"
  "cohort_report"
  "cohort_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohort_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
