# Empty dependencies file for cohort_report.
# This may be replaced when dependencies are built.
