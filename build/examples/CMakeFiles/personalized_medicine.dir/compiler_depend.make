# Empty compiler generated dependencies file for personalized_medicine.
# This may be replaced when dependencies are built.
