file(REMOVE_RECURSE
  "CMakeFiles/personalized_medicine.dir/personalized_medicine.cpp.o"
  "CMakeFiles/personalized_medicine.dir/personalized_medicine.cpp.o.d"
  "personalized_medicine"
  "personalized_medicine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personalized_medicine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
