#!/usr/bin/env python3
"""Compare two Google Benchmark JSON outputs for performance regressions.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [--threshold 0.10]
                        [--strict]

Matches benchmarks by name and reports the relative real_time delta for
each. A benchmark is flagged when it is more than ``--threshold`` (default
10%) slower than the baseline. Without ``--strict`` the script always
exits 0 (CI runs it as a non-blocking trend signal — shared-runner noise
easily exceeds 10%); with ``--strict`` any flagged regression exits 1.

Benchmarks present on only one side are reported but never flagged: added
or removed benchmarks are a code-review concern, not a perf regression.

Only the Python standard library is used.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> tuple[dict, dict[str, dict]]:
    """Returns (context, {name: benchmark entry}) for aggregate-free entries."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    benchmarks = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions); the raw
        # entries carry run_type "iteration" (or no run_type at all in
        # older library versions).
        if entry.get("run_type", "iteration") != "iteration":
            continue
        benchmarks[entry["name"]] = entry
    return doc.get("context", {}), benchmarks


def warn_if_debug(side: str, path: str, context: dict) -> None:
    """Screams when a side was timed against a debug benchmark library.

    google-benchmark stamps its own build type into the JSON context; a
    debug library (assertions on, no optimization in the measurement loop)
    inflates every timing, so deltas against a release-built side are
    meaningless. Loud but non-fatal: the trend job still reports, a human
    just must not trust the absolute numbers.
    """
    if context.get("library_build_type", "release") != "debug":
        return
    banner = "!" * 72
    print(
        f"{banner}\n"
        f"!! WARNING: {side} ({path}) was recorded against a DEBUG build\n"
        f"!! of the google-benchmark library (library_build_type: debug).\n"
        f"!! Its timings are inflated; comparisons against a release-built\n"
        f"!! side are not meaningful. Rebuild the benchmark library in\n"
        f"!! Release mode and regenerate before trusting these numbers.\n"
        f"{banner}",
        file=sys.stderr,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("current", help="current benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative real_time slowdown that counts as a regression "
        "(default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any benchmark regresses past the threshold",
    )
    args = parser.parse_args()

    try:
        baseline_context, baseline = load_benchmarks(args.baseline)
        current_context, current = load_benchmarks(args.current)
    except (OSError, json.JSONDecodeError, KeyError) as error:
        print(f"bench_diff: cannot load input: {error}", file=sys.stderr)
        return 2

    warn_if_debug("baseline", args.baseline, baseline_context)
    warn_if_debug("current", args.current, current_context)

    regressions = []
    names = sorted(set(baseline) | set(current))
    width = max((len(n) for n in names), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in names:
        base = baseline.get(name)
        cur = current.get(name)
        if base is None or cur is None:
            side = "baseline" if cur is None else "current"
            print(f"{name:<{width}}  only in {side}")
            continue
        base_time = float(base["real_time"])
        cur_time = float(cur["real_time"])
        unit = base.get("time_unit", "ns")
        delta = (cur_time - base_time) / base_time if base_time > 0 else 0.0
        marker = ""
        if delta > args.threshold:
            marker = "  << REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            marker = "  (improved)"
        print(
            f"{name:<{width}}  {base_time:>10.2f}{unit:>2}  "
            f"{cur_time:>10.2f}{unit:>2}  {delta:+7.1%}{marker}"
        )

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) slower than baseline by "
            f"more than {args.threshold:.0%}:"
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}")
        if args.strict:
            return 1
    else:
        print(f"\nno regressions beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
