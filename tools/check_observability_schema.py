#!/usr/bin/env python3
"""Schema checks for the observability artifacts the CLI writes.

Usage:
    check_observability_schema.py <trace.json> <metrics.json> <manifest.json>
                                  [telemetry.jsonl]
    check_observability_schema.py --status <status.json> [more heartbeats...]
    check_observability_schema.py --manifest <manifest.json>
    check_observability_schema.py --audit <audit.bin>

Validates, with stdlib only:
  * the trace file is Chrome trace-event JSON: a traceEvents array whose
    "X" events carry name/cat/ts/dur/pid/tid and nonnegative times;
  * the metrics file has the counters/gauges/histograms layout with sorted
    keys and structurally sound histograms (20 buckets summing to count);
  * the run manifest has the v1 schema fields, per-cell wall/cpu timings
    for all 12 study cells, data-quality profiles for every non-resumed
    cell, an embedded metrics snapshot, and — when present — a well-formed
    `final_status` heartbeat and `span_costs` cost table;
  * the telemetry file (when given) is mysawh-telemetry v1 JSONL: a header
    line with the stream count, streams in sorted label order, contiguous
    per-stream lines with monotonically increasing rounds, and "features"
    lines whose name/count/gain arrays align;
  * with --status: each file is one mysawh-status v1 heartbeat (monotonic
    seq, nonnegative uptime, resource sample, progress counters, study
    progress, queue depth, counter deltas, bounded event list), and the
    sequence numbers strictly increase across the files in argument order
    (how CI proves it captured distinct mid-run heartbeats);
  * the manifest's per-cell `drift` reports (PSI/KS stats, argmax
    summaries, alert list) and `calibration` entries (classification:
    Brier/ECE/reliability bins; regression: MAE + error quantiles),
    covering exactly the profiled (non-resumed) cells;
  * with --audit: the file is a checksummed mysawh-audit v1 artifact —
    the mysawh-artifact envelope's crc32/byte count match the payload,
    the header's record count matches the body, record lines are
    content-sorted, and every record carries its type's fields.

Exits 0 when everything holds, 1 with a message on the first violation.
"""

import json
import sys
import zlib

NUM_HISTOGRAM_BUCKETS = 20
EXPECTED_STUDY_CELLS = 12


def fail(message):
    print(f"schema check failed: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        trace = json.load(f)
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail(f"{path}: missing traceEvents")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")
    complete = [e for e in events if e.get("ph") == "X"]
    if not complete:
        fail(f"{path}: no complete ('X') events")
    last_ts = None
    for event in complete:
        for key in ("name", "cat", "ts", "dur", "pid", "tid"):
            if key not in event:
                fail(f"{path}: event missing '{key}': {event}")
        if event["ts"] < 0 or event["dur"] < 0:
            fail(f"{path}: negative time in {event}")
        if last_ts is not None and event["ts"] < last_ts:
            fail(f"{path}: events not sorted by ts")
        last_ts = event["ts"]
    names = {e["name"] for e in complete}
    for expected in ("cli.study", "study.cell", "gbt.train"):
        if not any(n.startswith(expected) for n in names):
            fail(f"{path}: expected a span named like '{expected}*', "
                 f"have {sorted(names)[:10]}...")
    return len(complete)


def check_metrics_object(metrics, where):
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics or not isinstance(metrics[section], dict):
            fail(f"{where}: missing '{section}' object")
        keys = list(metrics[section].keys())
        if keys != sorted(keys):
            fail(f"{where}: {section} keys not sorted: {keys}")
    for name, value in metrics["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{where}: counter {name} must be a nonnegative int")
    for name, value in metrics["gauges"].items():
        if not isinstance(value, int):
            fail(f"{where}: gauge {name} must be an int")
    for name, hist in metrics["histograms"].items():
        for key in ("count", "sum_us", "max_us", "buckets"):
            if key not in hist:
                fail(f"{where}: histogram {name} missing '{key}'")
        if len(hist["buckets"]) != NUM_HISTOGRAM_BUCKETS:
            fail(f"{where}: histogram {name} has {len(hist['buckets'])} "
                 f"buckets, want {NUM_HISTOGRAM_BUCKETS}")
        if sum(hist["buckets"]) != hist["count"]:
            fail(f"{where}: histogram {name} buckets sum "
                 f"{sum(hist['buckets'])} != count {hist['count']}")
    return len(metrics["counters"]) + len(metrics["gauges"]) + len(
        metrics["histograms"])


def check_metrics(path):
    with open(path) as f:
        metrics = json.load(f)
    n = check_metrics_object(metrics, path)
    required = (
        "file_io.writes",
        "gbt.predict.flat_blocks",
        "gbt.predict.flat_rows",
        "gbt.train.hist_nodes_direct",
        "study.cells_computed",
        "thread_pool.tasks_dispatched",
    )
    for name in required:
        if name not in metrics["counters"]:
            fail(f"{path}: expected counter '{name}' after a study run")
    if "thread_pool.queue_depth" in metrics["gauges"]:
        if metrics["gauges"]["thread_pool.queue_depth"] != 0:
            fail(f"{path}: queue depth gauge must drain to 0 at exit")
    return n


def check_data_quality(quality, path):
    for name, profile in quality.items():
        for key in ("train_rows", "test_rows", "num_features", "outcome",
                    "features", "max_missing_train", "max_missing_feature",
                    "max_drift", "max_drift_feature", "mean_bin_occupancy"):
            if key not in profile:
                fail(f"{path}: data_quality[{name}] missing '{key}'")
        if profile["train_rows"] <= 0 or profile["test_rows"] <= 0:
            fail(f"{path}: data_quality[{name}] has empty partitions")
        outcome = profile["outcome"]
        if not isinstance(outcome.get("classification"), bool):
            fail(f"{path}: data_quality[{name}] outcome.classification "
                 f"must be a bool")
        if outcome["classification"]:
            for key in ("positives_train", "positives_test"):
                if key not in outcome:
                    fail(f"{path}: data_quality[{name}] classification "
                         f"outcome missing '{key}'")
        features = profile["features"]
        if len(features) != profile["num_features"]:
            fail(f"{path}: data_quality[{name}] has {len(features)} "
                 f"feature profiles, claims {profile['num_features']}")
        for feature in features:
            for key in ("name", "missing_train", "missing_test", "drift",
                        "num_bins", "occupied_bins", "max_bin_count"):
                if key not in feature:
                    fail(f"{path}: data_quality[{name}] feature missing "
                         f"'{key}': {feature}")
            for key in ("missing_train", "missing_test"):
                if not 0.0 <= feature[key] <= 1.0:
                    fail(f"{path}: data_quality[{name}] "
                         f"{feature['name']}.{key} out of [0,1]")
            if feature["occupied_bins"] > feature["num_bins"]:
                fail(f"{path}: data_quality[{name}] {feature['name']} "
                     f"occupies more bins than it has")


def check_drift_stat(stat, where):
    for key in ("name", "psi", "ks", "missing", "rows"):
        if key not in stat:
            fail(f"{where}: drift stat missing '{key}': {stat}")
    for key in ("psi", "ks", "missing"):
        if stat[key] is not None and stat[key] < 0:
            fail(f"{where}: drift stat {stat['name']}.{key} negative")


def check_drift(drift, path):
    for name, report in drift.items():
        where = f"{path}: drift[{name}]"
        for key in ("rows", "max_psi", "max_psi_feature", "max_ks",
                    "max_ks_feature", "alerts", "prediction", "features"):
            if key not in report:
                fail(f"{where} missing '{key}'")
        if report["rows"] <= 0:
            fail(f"{where} has no rows")
        if not isinstance(report["alerts"], list):
            fail(f"{where} alerts must be a list")
        check_drift_stat(report["prediction"], where)
        for stat in report["features"]:
            check_drift_stat(stat, where)
        # The argmax summaries must point at a stat that exists.
        names = {s["name"] for s in report["features"]}
        names.add(report["prediction"]["name"])
        for key in ("max_psi_feature", "max_ks_feature"):
            if report[key] and report[key] not in names:
                fail(f"{where} {key}={report[key]!r} names no stat")
        for alert in report["alerts"]:
            if alert not in names:
                fail(f"{where} alert {alert!r} names no stat")


def check_calibration(calibration, path):
    for name, report in calibration.items():
        where = f"{path}: calibration[{name}]"
        kind = report.get("kind")
        if kind == "classification":
            for key in ("rows", "num_bins", "brier", "ece", "bins"):
                if key not in report:
                    fail(f"{where} missing '{key}'")
            if not 0.0 <= report["brier"] <= 1.0:
                fail(f"{where} brier out of [0,1]")
            if not 0.0 <= report["ece"] <= 1.0:
                fail(f"{where} ece out of [0,1]")
            if sum(b["count"] for b in report["bins"]) != report["rows"]:
                fail(f"{where} bin counts do not sum to rows")
            for bin_ in report["bins"]:
                for key in ("count", "mean_pred", "mean_obs"):
                    if key not in bin_:
                        fail(f"{where} bin missing '{key}': {bin_}")
        elif kind == "regression":
            for key in ("rows", "mae", "p50", "p90", "p99", "max"):
                if key not in report:
                    fail(f"{where} missing '{key}'")
            if not (report["p50"] <= report["p90"] <= report["p99"]
                    <= report["max"]):
                fail(f"{where} error quantiles not monotonic")
        else:
            fail(f"{where} unknown kind: {kind!r}")


def check_manifest(path):
    with open(path) as f:
        manifest = json.load(f)
    if manifest.get("schema") != "mysawh-run-manifest v1":
        fail(f"{path}: bad schema field: {manifest.get('schema')!r}")
    for key in ("git_describe", "fingerprint", "seed", "model_family",
                "cells", "data_quality", "drift", "calibration", "metrics"):
        if key not in manifest:
            fail(f"{path}: missing '{key}'")
    cells = manifest["cells"]
    if len(cells) != EXPECTED_STUDY_CELLS:
        fail(f"{path}: {len(cells)} cells, want {EXPECTED_STUDY_CELLS}")
    for name, timing in cells.items():
        for key in ("wall_ms", "cpu_ms", "resumed"):
            if key not in timing:
                fail(f"{path}: cell {name} missing '{key}'")
        if timing["wall_ms"] < 0 or timing["cpu_ms"] < 0:
            fail(f"{path}: cell {name} has negative timing")
        if not isinstance(timing["resumed"], bool):
            fail(f"{path}: cell {name} 'resumed' must be a bool")
    check_data_quality(manifest["data_quality"], path)
    # Resumed cells are restored from checkpointed metrics without their
    # train/test partitions, so only freshly computed cells are profiled.
    computed = {name for name, t in cells.items() if not t["resumed"]}
    if set(manifest["data_quality"]) != computed:
        fail(f"{path}: data_quality must cover exactly the non-resumed "
             f"cells ({sorted(computed)}), got "
             f"{sorted(manifest['data_quality'])}")
    # The model-quality post-pass scores the same freshly computed cells
    # the profiler sees (resumed cells carry no partitions to score).
    check_drift(manifest["drift"], path)
    check_calibration(manifest["calibration"], path)
    for block in ("drift", "calibration"):
        if set(manifest[block]) != computed:
            fail(f"{path}: {block} must cover exactly the non-resumed "
                 f"cells ({sorted(computed)}), got "
                 f"{sorted(manifest[block])}")
    check_metrics_object(manifest["metrics"], f"{path}:metrics")
    # Optional live-observability blocks (present on monitored / span-cost
    # runs only, but never malformed).
    if "final_status" in manifest:
        check_status_object(manifest["final_status"], f"{path}:final_status")
        if not manifest["final_status"]["final"]:
            fail(f"{path}: final_status must be marked final")
    if "span_costs" in manifest:
        check_span_costs(manifest["span_costs"], f"{path}:span_costs")
    return len(cells)


def check_status_object(status, where):
    if status.get("schema") != "mysawh-status v1":
        fail(f"{where}: bad schema field: {status.get('schema')!r}")
    for key in ("seq", "final", "uptime_ms", "interval_ms",
                "stall_timeout_ms", "resource", "progress", "study",
                "queue_depth", "counters_delta", "events"):
        if key not in status:
            fail(f"{where}: missing '{key}'")
    if not isinstance(status["seq"], int) or status["seq"] < 0:
        fail(f"{where}: seq must be a nonnegative int")
    if not isinstance(status["final"], bool):
        fail(f"{where}: final must be a bool")
    if status["uptime_ms"] < 0:
        fail(f"{where}: negative uptime_ms")
    resource = status["resource"]
    for key in ("rss_bytes", "peak_rss_bytes", "utime_ms", "stime_ms",
                "minor_faults", "major_faults", "threads", "valid"):
        if key not in resource:
            fail(f"{where}: resource missing '{key}'")
    if not isinstance(resource["valid"], bool):
        fail(f"{where}: resource.valid must be a bool")
    if resource["valid"] and resource["rss_bytes"] <= 0:
        fail(f"{where}: a valid resource sample must report RSS")
    for name, value in status["progress"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{where}: progress counter {name} must be a "
                 f"nonnegative int")
    study = status["study"]
    for key in ("cells_done", "cells_total"):
        if key not in study or study[key] < 0:
            fail(f"{where}: study.{key} must be a nonnegative int")
    if study["cells_total"] > 0 and study["cells_done"] > study["cells_total"]:
        fail(f"{where}: study claims more cells done than exist")
    if status["queue_depth"] < 0:
        fail(f"{where}: negative queue_depth")
    for name, delta in status["counters_delta"].items():
        if not isinstance(delta, int) or delta == 0:
            fail(f"{where}: counters_delta[{name}] must be a nonzero int")
    events = status["events"]
    if not isinstance(events, list) or len(events) > 8:
        fail(f"{where}: events must be a list of at most 8 entries")
    for event in events:
        kind = event.get("type")
        if kind == "stall":
            for key in ("at_uptime_ms", "silent_ms", "queue_depth",
                        "recent_spans"):
                if key not in event:
                    fail(f"{where}: stall event missing '{key}'")
            if not isinstance(event["recent_spans"], list):
                fail(f"{where}: stall recent_spans must be a list")
        elif kind == "drift":
            for key in ("window_rows", "max_psi", "max_psi_feature",
                        "max_ks", "max_ks_feature", "alerts"):
                if key not in event:
                    fail(f"{where}: drift event missing '{key}'")
            if not event["alerts"]:
                fail(f"{where}: a drift event must name its alerts")
        else:
            fail(f"{where}: unknown event type: {kind!r}")
    return status["seq"]


def check_status_files(paths):
    last_seq = None
    for path in paths:
        with open(path) as f:
            seq = check_status_object(json.load(f), path)
        if last_seq is not None and seq <= last_seq:
            fail(f"{path}: seq {seq} does not advance past {last_seq} — "
                 f"heartbeats must be distinct and in order")
        last_seq = seq
    return len(paths)


def check_span_costs(costs, where):
    for key in ("by_cpu", "by_bytes"):
        if key not in costs or not isinstance(costs[key], list):
            fail(f"{where}: span_costs missing '{key}' list")
        for entry in costs[key]:
            for field in ("name", "count", "cpu_us", "alloc_bytes"):
                if field not in entry:
                    fail(f"{where}: span_costs entry missing '{field}': "
                         f"{entry}")
            if entry["count"] <= 0 or entry["cpu_us"] < 0:
                fail(f"{where}: span_costs entry out of range: {entry}")
        ranks = [e["cpu_us" if key == "by_cpu" else "alloc_bytes"]
                 for e in costs[key]]
        if ranks != sorted(ranks, reverse=True):
            fail(f"{where}: span_costs.{key} not sorted descending")


def check_audit(path):
    with open(path, "rb") as f:
        blob = f.read()
    newline = blob.find(b"\n")
    if newline < 0:
        fail(f"{path}: no envelope line")
    envelope = blob[:newline].decode("ascii", errors="replace")
    payload = blob[newline + 1:]
    fields = envelope.split(" ")
    if (len(fields) != 4 or fields[0] != "mysawh-artifact"
            or fields[1] != "v1" or not fields[2].startswith("crc32=")
            or not fields[3].startswith("bytes=")):
        fail(f"{path}: bad envelope line: {envelope!r}")
    if int(fields[3][6:]) != len(payload):
        fail(f"{path}: envelope claims {fields[3][6:]} payload bytes, "
             f"file has {len(payload)}")
    crc = f"{zlib.crc32(payload) & 0xffffffff:08x}"
    if fields[2][6:] != crc:
        fail(f"{path}: envelope crc {fields[2][6:]} != payload crc {crc}")
    lines = payload.decode("utf-8").splitlines()
    if not lines:
        fail(f"{path}: empty audit payload")
    header = json.loads(lines[0])
    if header.get("schema") != "mysawh-audit v1":
        fail(f"{path}: bad schema line: {lines[0][:80]}")
    if header.get("sample_rate", 0) < 1 or header.get("top_k", 0) < 1:
        fail(f"{path}: invalid sampling options in header")
    records = lines[1:]
    if header.get("records") != len(records):
        fail(f"{path}: header claims {header.get('records')} records, "
             f"body has {len(records)}")
    if records != sorted(records):
        fail(f"{path}: record lines not content-sorted")
    for i, line in enumerate(records, start=2):
        record = json.loads(line)
        for key in ("type", "fp", "model", "features"):
            if key not in record:
                fail(f"{path}:{i}: record missing '{key}'")
        for key in ("fp", "model"):
            int(record[key], 16)
        if record["type"] == "predict":
            if "prediction" not in record:
                fail(f"{path}:{i}: predict record lacks a prediction")
        elif record["type"] == "shap":
            shap = record.get("shap")
            if not isinstance(shap, list):
                fail(f"{path}:{i}: shap record lacks attributions")
            if len(shap) > header["top_k"]:
                fail(f"{path}:{i}: {len(shap)} attributions exceed "
                     f"top_k {header['top_k']}")
            for entry in shap:
                if "i" not in entry or "v" not in entry:
                    fail(f"{path}:{i}: malformed attribution: {entry}")
        else:
            fail(f"{path}:{i}: unknown record type: {record['type']!r}")
    return len(records)


def check_telemetry(path):
    with open(path) as f:
        lines = [line for line in f.read().splitlines() if line]
    if not lines:
        fail(f"{path}: empty telemetry file")
    header = json.loads(lines[0])
    if header.get("schema") != "mysawh-telemetry v1":
        fail(f"{path}: bad schema line: {lines[0][:80]}")
    stream_order = []
    rounds = {}
    for i, line in enumerate(lines[1:], start=2):
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as error:
            fail(f"{path}:{i}: not JSON: {error}")
        stream = entry.get("stream")
        kind = entry.get("type")
        if not stream or not kind:
            fail(f"{path}:{i}: line lacks stream/type")
        if stream not in stream_order:
            stream_order.append(stream)
        elif stream != stream_order[-1]:
            fail(f"{path}:{i}: stream '{stream}' lines not contiguous")
        if kind == "round":
            expected = rounds.get(stream, 0)
            if entry.get("round") != expected:
                fail(f"{path}:{i}: stream '{stream}' round "
                     f"{entry.get('round')}, want {expected}")
            rounds[stream] = expected + 1
        elif kind == "features":
            names = entry.get("names", [])
            counts = entry.get("split_counts", [])
            gains = entry.get("split_gains", [])
            if not (len(names) == len(counts) == len(gains)):
                fail(f"{path}:{i}: features arrays misaligned "
                     f"({len(names)}/{len(counts)}/{len(gains)})")
    if header.get("streams") != len(stream_order):
        fail(f"{path}: header claims {header.get('streams')} streams, "
             f"file has {len(stream_order)}")
    if stream_order != sorted(stream_order):
        fail(f"{path}: streams not in sorted label order")
    return len(stream_order)


def main(argv):
    if len(argv) >= 3 and argv[1] == "--status":
        n = check_status_files(argv[2:])
        print(f"ok: {n} status heartbeats")
        return 0
    if len(argv) == 3 and argv[1] == "--manifest":
        cells = check_manifest(argv[2])
        print(f"ok: {cells} manifest cells")
        return 0
    if len(argv) == 3 and argv[1] == "--audit":
        n = check_audit(argv[2])
        print(f"ok: {n} audit records")
        return 0
    if len(argv) not in (4, 5):
        print(__doc__, file=sys.stderr)
        return 2
    events = check_trace(argv[1])
    instruments = check_metrics(argv[2])
    cells = check_manifest(argv[3])
    summary = (f"ok: {events} trace events, {instruments} instruments, "
               f"{cells} manifest cells")
    if len(argv) == 5:
        streams = check_telemetry(argv[4])
        summary += f", {streams} telemetry streams"
    print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
