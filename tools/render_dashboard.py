#!/usr/bin/env python3
"""Render a study run into a self-contained HTML dashboard.

Usage:
    tools/render_dashboard.py [--manifest manifest.json]
                              [--telemetry telemetry.jsonl]
                              [--out dashboard.html]

Reads the run manifest (`mysawh-run-manifest v1`) and/or the telemetry
artifact (`mysawh-telemetry v1` JSONL) that `mysawh_cli study
--manifest-out/--telemetry-out` writes, and emits one HTML file with no
external assets: inline SVG learning curves, per-cell timing bars,
data-quality tables, and per-cell model-quality (drift + calibration)
tables. `mysawh_cli report` renders the Markdown flavour of the same
inputs.

Only the Python standard library is used.
"""

from __future__ import annotations

import argparse
import html
import json
import sys

STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a202c; }
h1, h2 { border-bottom: 1px solid #e2e8f0; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: 1rem 0; font-size: .9rem; }
th, td { border: 1px solid #e2e8f0; padding: .3rem .6rem; text-align: left; }
th { background: #f7fafc; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
code { background: #f7fafc; padding: 0 .2rem; }
.bar { display: inline-block; height: .75rem; background: #4299e1; }
.curves { display: flex; flex-wrap: wrap; gap: 1rem; }
.curve { border: 1px solid #e2e8f0; padding: .5rem; }
.curve .label { font-size: .8rem; font-family: monospace; }
svg polyline { fill: none; stroke: #2b6cb0; stroke-width: 1.5; }
"""


def load_manifest(path):
    with open(path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    if manifest.get("schema") != "mysawh-run-manifest v1":
        raise ValueError(f"{path} is not a mysawh-run-manifest v1 artifact")
    return manifest


def load_telemetry(path):
    """Returns [(label, metric, series)] in file order."""
    streams = {}
    order = []
    with open(path, encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line]
    if not lines:
        raise ValueError(f"{path} is empty")
    header = json.loads(lines[0])
    if header.get("schema") != "mysawh-telemetry v1":
        raise ValueError(f"{path} is not a mysawh-telemetry v1 artifact")
    for line in lines[1:]:
        entry = json.loads(line)
        label = entry.get("stream")
        if label is None:
            continue
        if label not in streams:
            streams[label] = {"metric": "", "series": []}
            order.append(label)
        stream = streams[label]
        kind = entry.get("type")
        if kind == "header":
            stream["metric"] = entry.get("metric", "")
        elif kind == "round":
            value = entry.get("valid")
            if value is None:
                value = entry.get("train")
            stream["series"].append(value)
        elif kind == "eval":
            stream["series"].append(entry.get("value"))
    return [(label, streams[label]["metric"], streams[label]["series"])
            for label in order]


def svg_curve(series, width=220, height=60):
    points = [(i, v) for i, v in enumerate(series) if v is not None]
    if len(points) < 2:
        return "<svg width='220' height='60'></svg>"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_span = max(xs) - min(xs) or 1
    y_span = max(ys) - min(ys) or 1
    pad = 4
    coords = " ".join(
        f"{pad + (x - min(xs)) / x_span * (width - 2 * pad):.1f},"
        f"{height - pad - (y - min(ys)) / y_span * (height - 2 * pad):.1f}"
        for x, y in points
    )
    return (f"<svg width='{width}' height='{height}' "
            f"viewBox='0 0 {width} {height}'>"
            f"<polyline points='{coords}'/></svg>")


def render_manifest_sections(manifest, out):
    out.append("<h2>Provenance</h2><table>")
    for field in ("git_describe", "model_family", "seed", "eval_seed",
                  "fingerprint"):
        value = html.escape(str(manifest.get(field, "?")))
        out.append(f"<tr><th>{html.escape(field)}</th>"
                   f"<td><code>{value}</code></td></tr>")
    out.append("</table>")

    cells = manifest.get("cells", {})
    if cells:
        max_wall = max(cell.get("wall_ms", 0.0) for cell in cells.values())
        out.append("<h2>Cell cost</h2><table>"
                   "<tr><th>cell</th><th>wall ms</th><th>cpu ms</th>"
                   "<th>resumed</th><th></th></tr>")
        for name, cell in cells.items():
            wall = cell.get("wall_ms", 0.0)
            bar = int(wall / max_wall * 160) if max_wall > 0 else 0
            out.append(
                f"<tr><td><code>{html.escape(name)}</code></td>"
                f"<td class='num'>{wall:.1f}</td>"
                f"<td class='num'>{cell.get('cpu_ms', 0.0):.1f}</td>"
                f"<td>{'yes' if cell.get('resumed') else 'no'}</td>"
                f"<td><span class='bar' style='width:{bar}px'></span></td>"
                f"</tr>")
        out.append("</table>")

    quality = manifest.get("data_quality", {})
    if quality:
        out.append("<h2>Data quality</h2><table>"
                   "<tr><th>cell</th><th>train/test rows</th>"
                   "<th>outcome</th><th>max missingness</th>"
                   "<th>max drift</th><th>bin occupancy</th></tr>")
        for name, profile in quality.items():
            outcome = profile.get("outcome", {})
            if outcome.get("classification"):
                balance = (f"{outcome.get('positives_train', 0)} positives "
                           f"({outcome.get('mean_train', 0) * 100:.1f}%)")
            else:
                balance = (f"mean {outcome.get('mean_train', 0):.2f} "
                           f"&plusmn; {outcome.get('stddev_train', 0):.2f}")
            out.append(
                f"<tr><td><code>{html.escape(name)}</code></td>"
                f"<td class='num'>{profile.get('train_rows', 0)}/"
                f"{profile.get('test_rows', 0)}</td>"
                f"<td>{balance}</td>"
                f"<td class='num'>"
                f"{profile.get('max_missing_train', 0) * 100:.1f}% "
                f"({html.escape(profile.get('max_missing_feature', '-'))})"
                f"</td>"
                f"<td class='num'>{profile.get('max_drift', 0):.3f} "
                f"({html.escape(profile.get('max_drift_feature', '-'))})</td>"
                f"<td class='num'>"
                f"{profile.get('mean_bin_occupancy', 0) * 100:.1f}%</td>"
                f"</tr>")
        out.append("</table>")

    drift = manifest.get("drift", {})
    if drift:
        out.append("<h2>Drift (test vs train)</h2><table>"
                   "<tr><th>cell</th><th>rows</th><th>max PSI</th>"
                   "<th>max KS</th><th>prediction PSI</th>"
                   "<th>alerts</th></tr>")
        for name, report in drift.items():
            alerts = report.get("alerts", [])
            shown = ", ".join(alerts[:4]) + (" &hellip;" if len(alerts) > 4
                                             else "")
            prediction = report.get("prediction", {})
            out.append(
                f"<tr><td><code>{html.escape(name)}</code></td>"
                f"<td class='num'>{report.get('rows', 0)}</td>"
                f"<td class='num'>{report.get('max_psi', 0):.3f} "
                f"({html.escape(report.get('max_psi_feature', '-'))})</td>"
                f"<td class='num'>{report.get('max_ks', 0):.3f} "
                f"({html.escape(report.get('max_ks_feature', '-'))})</td>"
                f"<td class='num'>{prediction.get('psi', 0):.3f}</td>"
                f"<td>{html.escape(shown) if alerts else '&mdash;'}</td>"
                f"</tr>")
        out.append("</table>")

    calibration = manifest.get("calibration", {})
    if calibration:
        out.append("<h2>Calibration</h2><table>"
                   "<tr><th>cell</th><th>kind</th><th>rows</th>"
                   "<th>summary</th></tr>")
        for name, report in calibration.items():
            if report.get("kind") == "classification":
                summary = (f"Brier {report.get('brier', 0):.4f}, "
                           f"ECE {report.get('ece', 0):.4f} over "
                           f"{report.get('num_bins', 0)} bins")
            else:
                summary = (f"MAE {report.get('mae', 0):.3f}, "
                           f"p50 {report.get('p50', 0):.3f}, "
                           f"p90 {report.get('p90', 0):.3f}, "
                           f"p99 {report.get('p99', 0):.3f}")
            out.append(
                f"<tr><td><code>{html.escape(name)}</code></td>"
                f"<td>{html.escape(report.get('kind', '?'))}</td>"
                f"<td class='num'>{report.get('rows', 0)}</td>"
                f"<td>{summary}</td></tr>")
        out.append("</table>")


def render_telemetry_section(streams, out):
    out.append("<h2>Learning curves</h2><div class='curves'>")
    for label, metric, series in streams:
        finite = [v for v in series if v is not None]
        last = f"{finite[-1]:.4f}" if finite else "-"
        out.append(
            f"<div class='curve'><div class='label'>"
            f"{html.escape(label)}"
            f"{' (' + html.escape(metric) + ')' if metric else ''} "
            f"&rarr; {last}</div>{svg_curve(series)}</div>")
    out.append("</div>")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--manifest", help="run manifest JSON")
    parser.add_argument("--telemetry", help="telemetry JSONL")
    parser.add_argument("--out", default="dashboard.html",
                        help="output HTML path (default dashboard.html)")
    args = parser.parse_args()
    if not args.manifest and not args.telemetry:
        print("render_dashboard: need --manifest and/or --telemetry",
              file=sys.stderr)
        return 2

    out = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>MySAwH run dashboard</title>",
        f"<style>{STYLE}</style></head><body>",
        "<h1>MySAwH run dashboard</h1>",
    ]
    try:
        if args.manifest:
            render_manifest_sections(load_manifest(args.manifest), out)
        if args.telemetry:
            render_telemetry_section(load_telemetry(args.telemetry), out)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"render_dashboard: {error}", file=sys.stderr)
        return 2
    out.append("</body></html>")
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write("\n".join(out) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
