/// mysawh_cli — command-line front end of the library.
///
/// Subcommands:
///   generate   Generate a synthetic cohort and export sample sets as CSV.
///   train      Train a model (GBT, linear, or GAM) from a CSV file.
///   predict    Batch prediction from a saved model of any family.
///   evaluate   Regression or classification metrics on a labelled CSV.
///   explain    TreeSHAP explanation of one row (tree models only).
///   importance Gain / cover / split-count feature importance of a model.
///   study      The full 12-cell DD-vs-KD study, with checkpoint/resume.
///   report     Markdown dashboard from a run manifest and/or telemetry.
///   audit-replay  Re-run a prediction audit log and cmp-assert outputs.
///
/// Run `mysawh_cli help` for flag documentation.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>

#include "cohort/simulator.h"
#include "core/audit_log.h"
#include "core/calibration_monitor.h"
#include "core/drift_monitor.h"
#include "core/evaluation.h"
#include "core/metrics.h"
#include "core/run_manifest.h"
#include "core/sample_builder.h"
#include "core/study.h"
#include "explain/explanation.h"
#include "explain/tree_shap.h"
#include "gam/gam_model.h"
#include "gbt/gbt_model.h"
#include "linear/linear_model.h"
#include "model/model.h"
#include "util/csv.h"
#include "util/file_io.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/monitor.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace mysawh {
namespace {

constexpr const char kUsage[] = R"(mysawh_cli <command> [flags]

commands:
  generate   --outcome QoL|SPPB|Falls [--seed N] [--out-prefix P]
             [--max-gap 5] [--max-missing 0.04]
             Generates the synthetic MySAwH cohort, builds the paper's
             aligned sample sets and writes <P><set>.csv for set in
             dd, dd_fi, kd, kd_fi.

  train      --data FILE [--model_family gbt|linear|gam] [--label label]
             [--exclude a,b,c]
             [--objective reg:squarederror|binary:logistic|reg:pseudohuber]
             [--out model.txt]
             gbt flags:    [--num-trees 300] [--max-depth 4]
                           [--learning-rate 0.07] [--subsample 1.0]
                           [--colsample 1.0] [--seed 7]
             linear flags: [--lambda 1.0]  (binary:logistic objective
                           trains logistic regression)
             gam flags:    [--num-cycles 50] [--max-depth 2]
                           [--learning-rate 0.1] [--lambda 1.0]
             Trains a model on the CSV (all numeric columns except the
             label and excluded ones are features). The model file starts
             with a `kind:` header, so predict/evaluate/explain can load
             any family without being told which one.
             [--drift-baseline-out FILE] additionally writes the training
             distribution (equal-frequency bin edges + expected
             proportions per feature and for the model's own predictions,
             [--drift-bins 10]) as a mysawh-drift-baseline v1 JSON for
             later drift monitoring.

  predict    --model FILE --data FILE [--out preds.csv]
  evaluate   --model FILE --data FILE [--label label] [--threshold 0.5]
             [--calibration-bins 10]
             evaluate also reports calibration: Brier/ECE over the
             reliability bins for classifiers, absolute-error quantiles
             for regressors, published as calibration.evaluate.* gauges.
             Both predict and evaluate accept [--drift-baseline FILE]:
             prediction batches then stream through the drift monitor,
             which scores PSI/KS per rolling window ([--drift-window 256]
             of rows sampled 1-in-[--drift-sample-rate 16] by content key)
             against the baseline and latches a `drift` alert event
             (status stream + drift.alerts counter) when a feature or the
             prediction distribution crosses [--drift-psi-threshold 0.2]
             or [--drift-ks-threshold 0.15]; a clean window re-arms.
  explain    --model FILE --data FILE [--row 0] [--top 5]   (gbt only)
  importance --model FILE [--type gain|cover|split]         (gbt only)

  audit-replay --audit FILE --model FILE [--out replay.csv]
             Re-runs every record of a mysawh-audit v1 log (written via
             --audit-out) through the model: predictions and top-k SHAP
             attributions must reproduce the logged values exactly (same
             model fingerprint, same bits). Exit 1 on any mismatch. With
             --out, writes a deterministic logged-vs-replayed CSV.

  study      [--seed 42] [--model_family gbt|linear|gam] [--threads 0]
             [--cv-folds 5] [--out REPORT.md]
             [--checkpoint-dir DIR] [--resume]
             [--manifest-out FILE]   (default <out>.manifest.json)
             Runs the paper's full 12-cell DD-vs-KD study and writes the
             Markdown report. With --checkpoint-dir, each finished cell is
             persisted (atomic + checksummed); with --resume, valid
             checkpoints are loaded instead of re-trained, so a killed
             study continues where it stopped and produces a report
             bit-identical to an uninterrupted run. A run manifest (source
             revision, config fingerprint, per-cell wall/CPU cost, metrics
             snapshot, per-cell data-quality profile, per-cell drift and
             calibration reports — see [--drift-psi-threshold 0.2]
             [--drift-ks-threshold 0.15] [--drift-bins 10]
             [--calibration-bins 10]) is always written as a sidecar; the
             report itself never changes.

  report     [--manifest FILE] [--telemetry FILE] [--out dashboard.md]
             Renders a Markdown dashboard from a study run manifest
             (provenance, per-cell cost, data-quality summaries) and/or a
             telemetry artifact (per-stream learning curves). At least one
             input is required. tools/render_dashboard.py builds the HTML
             variant from the same inputs.

observability flags (every command):
  --trace-out FILE      record a span timeline and write Chrome/Perfetto
                        trace JSON (open in https://ui.perfetto.dev); with
                        the flag absent, tracing costs one atomic load per
                        span and outputs are bit-identical
  --trace-max-events N  cap each thread's trace buffer at N events; events
                        past the cap are dropped and counted in the
                        trace.dropped_events counter (0 = unbounded)
  --span-costs          with --trace-out: every span also records its
                        thread-CPU-time and tracked-allocation deltas, and
                        the run manifest gains a "span_costs" top-spans
                        table (shown by `report`)
  --metrics-out FILE    write the process metrics snapshot (counters,
                        gauges, latency histograms) as deterministic JSON
  --telemetry-out FILE  record per-iteration training telemetry (train
                        loss, held-out metric, split statistics) and write
                        a mysawh-telemetry v1 JSONL artifact; byte-identical
                        for any --threads value, and REPORT.md is unchanged
                        by recording
  --status-out FILE     run a background monitor that atomically rewrites
                        FILE with a mysawh-status v1 heartbeat (uptime,
                        RSS/CPU, progress counters, study cells, queue
                        depth) while the command executes; tail it live
                        with tools/watch_status.py FILE
  --status-interval-ms N  heartbeat period (default 1000)
  --stall-timeout-ms N  with --status-out: emit a `stall` event (status
                        stream + trace + monitor.stalls counter) when no
                        progress counter advances for N ms (0 = off)
  --audit-out FILE      deterministically sample tree-model predictions
                        (and SHAP batches) into a checksummed mysawh-audit
                        v1 log: per sampled row the feature vector, its
                        content fingerprint, the model fingerprint, the
                        prediction / top-k attributions. Byte-identical
                        for any --threads value; replay with audit-replay
  --audit-sample-rate N keep one row in N, selected by the row's content
                        fingerprint, never by arrival order (default 16;
                        1 keeps every row)
  --audit-top-k K       SHAP attributions kept per sampled row (default 3)
  All artifact paths are probed before the command runs; an unwritable
  path is a usage error (exit 2). Monitoring never changes results: a
  monitored run's outputs are bit-identical to an unmonitored one.

exit codes:
  0  success (including explicit `help`)
  1  a command ran and failed at runtime (I/O error, training failure, ...)
  2  usage error (no/unknown command, malformed flags) or invalid/corrupt
     input (malformed CSV, truncated or bit-flipped model/checkpoint file)
)";

/// Loads a CSV into a Dataset using the label/exclude conventions.
Result<Dataset> LoadDataset(const FlagParser& flags,
                            const model::Model* model_for_schema) {
  const std::string path = flags.GetString("data");
  if (path.empty()) return Status::InvalidArgument("--data is required");
  MYSAWH_ASSIGN_OR_RETURN(Table table, Table::FromCsvFile(path));
  const std::string label = flags.GetString("label", "label");
  std::vector<std::string> exclude =
      Split(flags.GetString("exclude", "patient,clinic,window,month"), ',');
  exclude.push_back(label);
  std::vector<std::string> features;
  if (model_for_schema != nullptr) {
    // Align the columns with the model's training schema.
    features = model_for_schema->FeatureNames();
  } else {
    for (const auto& name : table.ColumnNames()) {
      if (std::find(exclude.begin(), exclude.end(), name) != exclude.end()) {
        continue;
      }
      MYSAWH_ASSIGN_OR_RETURN(const Column* column, table.GetColumn(name));
      if (column->is_numeric()) features.push_back(name);
    }
  }
  if (!table.HasColumn(label)) {
    // Prediction-only input: synthesize a zero label column.
    MYSAWH_RETURN_NOT_OK(table.AddNumericColumn(
        label, std::vector<double>(static_cast<size_t>(table.num_rows()),
                                   0.0)));
  }
  return Dataset::FromTable(table, features, label);
}

/// Loads any registered model family via the serialization registry.
Result<std::unique_ptr<model::Model>> LoadModel(const FlagParser& flags) {
  const std::string path = flags.GetString("model");
  if (path.empty()) return Status::InvalidArgument("--model is required");
  return model::Model::LoadFromFile(path);
}

/// The GBT inside a loaded model, or FailedPrecondition for other families.
Result<const gbt::GbtModel*> AsGbt(const model::Model& model) {
  const auto* gbt = dynamic_cast<const gbt::GbtModel*>(&model);
  if (gbt == nullptr) {
    return Status::FailedPrecondition(
        "this command needs a tree model, got kind '" + model.Kind() + "'");
  }
  return gbt;
}

/// Value of --model_family (hyphen spelling accepted too).
Result<core::ModelFamily> GetModelFamily(const FlagParser& flags) {
  std::string name = flags.GetString("model_family");
  if (name.empty()) name = flags.GetString("model-family", "gbt");
  return core::ParseModelFamily(name);
}

/// The --drift-psi-threshold/--drift-ks-threshold pair.
Result<core::DriftThresholds> GetDriftThresholds(const FlagParser& flags) {
  core::DriftThresholds thresholds;
  MYSAWH_ASSIGN_OR_RETURN(thresholds.psi,
                          flags.GetDouble("drift-psi-threshold", 0.2));
  MYSAWH_ASSIGN_OR_RETURN(thresholds.ks,
                          flags.GetDouble("drift-ks-threshold", 0.15));
  return thresholds;
}

/// Arms the streaming drift monitor from --drift-baseline. Returns false
/// (and does nothing) when the flag is absent; callers that get true must
/// call FinishDriftMonitor() after their prediction batches.
Result<bool> ArmDriftMonitor(const FlagParser& flags) {
  const std::string path = flags.GetString("drift-baseline");
  if (path.empty()) return false;
  MYSAWH_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  MYSAWH_ASSIGN_OR_RETURN(core::DriftBaseline baseline,
                          core::ParseDriftBaseline(text));
  core::DriftMonitorOptions options;
  MYSAWH_ASSIGN_OR_RETURN(options.window, flags.GetInt("drift-window", 256));
  MYSAWH_ASSIGN_OR_RETURN(options.sample_rate,
                          flags.GetInt("drift-sample-rate", 16));
  MYSAWH_ASSIGN_OR_RETURN(options.thresholds, GetDriftThresholds(flags));
  MYSAWH_RETURN_NOT_OK(core::DriftMonitorRuntime::Global().Configure(
      std::move(baseline), options));
  return true;
}

/// Evaluates the monitor's trailing partial window and prints the
/// one-line summary (the detailed report lives in --metrics-out counters
/// and the status event stream).
void FinishDriftMonitor() {
  core::DriftMonitorRuntime& runtime = core::DriftMonitorRuntime::Global();
  runtime.Flush();
  std::cout << "drift monitor: " << runtime.windows_evaluated()
            << " window(s), " << runtime.alerts_fired() << " alert(s)\n";
}

Status RunGenerate(const FlagParser& flags) {
  MYSAWH_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 42));
  MYSAWH_ASSIGN_OR_RETURN(core::Outcome outcome,
                          core::ParseOutcome(flags.GetString("outcome", "QoL")));
  cohort::CohortConfig config;
  config.seed = static_cast<uint64_t>(seed);
  MYSAWH_ASSIGN_OR_RETURN(auto cohort,
                          cohort::CohortSimulator(config).Generate());
  core::SampleBuildOptions options;
  MYSAWH_ASSIGN_OR_RETURN(int64_t max_gap, flags.GetInt("max-gap", 5));
  options.max_interpolation_gap = static_cast<int>(max_gap);
  MYSAWH_ASSIGN_OR_RETURN(options.max_missing_fraction,
                          flags.GetDouble("max-missing", 0.04));
  MYSAWH_ASSIGN_OR_RETURN(auto builder,
                          core::SampleSetBuilder::Create(&cohort, options));
  MYSAWH_ASSIGN_OR_RETURN(auto sets, builder.Build(outcome));
  const std::string prefix = flags.GetString("out-prefix", "mysawh_");
  const struct {
    const char* name;
    const Dataset* data;
  } exports[] = {{"dd", &sets.dd},
                 {"dd_fi", &sets.dd_fi},
                 {"kd", &sets.kd},
                 {"kd_fi", &sets.kd_fi}};
  for (const auto& e : exports) {
    MYSAWH_ASSIGN_OR_RETURN(Table table, e.data->ToTable());
    const std::string path = prefix + e.name + ".csv";
    MYSAWH_RETURN_NOT_OK(table.ToCsvFile(path));
    std::cout << "wrote " << path << " (" << table.num_rows() << " rows, "
              << table.num_columns() << " columns)\n";
  }
  std::cout << "retained " << sets.retained << " of " << sets.total_candidates
            << " candidate patient-months for outcome "
            << core::OutcomeName(outcome) << "\n";
  return Status::Ok();
}

Status RunTrain(const FlagParser& flags) {
  MYSAWH_ASSIGN_OR_RETURN(Dataset data, LoadDataset(flags, nullptr));
  MYSAWH_ASSIGN_OR_RETURN(core::ModelFamily family, GetModelFamily(flags));
  MYSAWH_ASSIGN_OR_RETURN(
      gbt::ObjectiveType objective,
      gbt::ParseObjectiveType(
          flags.GetString("objective", "reg:squarederror")));
  const std::string out = flags.GetString("out", "model.txt");

  std::unique_ptr<model::Model> model;
  std::string trained;  // human summary of what was trained
  switch (family) {
    case core::ModelFamily::kGbt: {
      gbt::GbtParams params;
      params.objective = objective;
      MYSAWH_ASSIGN_OR_RETURN(int64_t trees, flags.GetInt("num-trees", 300));
      params.num_trees = static_cast<int>(trees);
      MYSAWH_ASSIGN_OR_RETURN(int64_t depth, flags.GetInt("max-depth", 4));
      params.max_depth = static_cast<int>(depth);
      MYSAWH_ASSIGN_OR_RETURN(params.learning_rate,
                              flags.GetDouble("learning-rate", 0.07));
      MYSAWH_ASSIGN_OR_RETURN(params.subsample,
                              flags.GetDouble("subsample", 1.0));
      MYSAWH_ASSIGN_OR_RETURN(params.colsample_bytree,
                              flags.GetDouble("colsample", 1.0));
      MYSAWH_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 7));
      params.seed = static_cast<uint64_t>(seed);
      MYSAWH_ASSIGN_OR_RETURN(gbt::GbtModel gbt,
                              gbt::GbtModel::Train(data, params));
      trained = std::to_string(gbt.trees().size()) + " trees";
      model = std::make_unique<gbt::GbtModel>(std::move(gbt));
      break;
    }
    case core::ModelFamily::kLinear: {
      MYSAWH_ASSIGN_OR_RETURN(double lambda, flags.GetDouble("lambda", 1.0));
      if (objective == gbt::ObjectiveType::kLogistic) {
        MYSAWH_ASSIGN_OR_RETURN(linear::LogisticModel logistic,
                                linear::LogisticModel::Train(data, lambda));
        trained = "a logistic model";
        model = std::make_unique<linear::LogisticModel>(std::move(logistic));
      } else {
        MYSAWH_ASSIGN_OR_RETURN(linear::LinearModel lin,
                                linear::LinearModel::Train(data, lambda));
        trained = "a linear model";
        model = std::make_unique<linear::LinearModel>(std::move(lin));
      }
      break;
    }
    case core::ModelFamily::kGam: {
      gam::GamParams params;
      params.objective = objective;
      MYSAWH_ASSIGN_OR_RETURN(int64_t cycles, flags.GetInt("num-cycles", 50));
      params.num_cycles = static_cast<int>(cycles);
      MYSAWH_ASSIGN_OR_RETURN(int64_t depth, flags.GetInt("max-depth", 2));
      params.max_depth = static_cast<int>(depth);
      MYSAWH_ASSIGN_OR_RETURN(params.learning_rate,
                              flags.GetDouble("learning-rate", 0.1));
      MYSAWH_ASSIGN_OR_RETURN(params.reg_lambda,
                              flags.GetDouble("lambda", 1.0));
      MYSAWH_ASSIGN_OR_RETURN(gam::GamModel gam,
                              gam::GamModel::Train(data, params));
      trained = "a gam with " + std::to_string(gam.num_trees()) +
                " shape-function trees";
      model = std::make_unique<gam::GamModel>(std::move(gam));
      break;
    }
  }
  MYSAWH_RETURN_NOT_OK(model->SaveToFile(out));
  std::cout << "trained " << trained << " on " << data.num_rows() << " rows x "
            << data.num_features() << " features; model written to " << out
            << "\n";
  const std::string drift_baseline_out = flags.GetString("drift-baseline-out");
  if (!drift_baseline_out.empty()) {
    MYSAWH_ASSIGN_OR_RETURN(int64_t drift_bins, flags.GetInt("drift-bins", 10));
    MYSAWH_ASSIGN_OR_RETURN(std::vector<double> train_preds,
                            model->PredictBatch(data));
    MYSAWH_ASSIGN_OR_RETURN(
        core::DriftBaseline baseline,
        core::BuildDriftBaseline(data, train_preds,
                                 static_cast<int>(drift_bins)));
    MYSAWH_RETURN_NOT_OK(WriteFileAtomic(drift_baseline_out,
                                         core::DriftBaselineJson(baseline) +
                                             "\n",
                                         "drift_baseline_write"));
    std::cout << "wrote drift baseline (" << baseline.features.size()
              << " features) to " << drift_baseline_out << "\n";
  }
  return Status::Ok();
}

Status RunPredict(const FlagParser& flags) {
  MYSAWH_ASSIGN_OR_RETURN(std::unique_ptr<model::Model> model,
                          LoadModel(flags));
  MYSAWH_ASSIGN_OR_RETURN(Dataset data, LoadDataset(flags, model.get()));
  MYSAWH_ASSIGN_OR_RETURN(bool drift_armed, ArmDriftMonitor(flags));
  MYSAWH_ASSIGN_OR_RETURN(std::vector<double> preds,
                          model->PredictBatch(data));
  if (drift_armed) FinishDriftMonitor();
  const std::string out = flags.GetString("out", "predictions.csv");
  CsvDocument csv;
  csv.header = {"row", "prediction"};
  for (size_t i = 0; i < preds.size(); ++i) {
    csv.rows.push_back({std::to_string(i), FormatDouble(preds[i], 6)});
  }
  MYSAWH_RETURN_NOT_OK(WriteCsv(out, csv));
  std::cout << "wrote " << preds.size() << " predictions to " << out << "\n";
  return Status::Ok();
}

Status RunEvaluate(const FlagParser& flags) {
  MYSAWH_ASSIGN_OR_RETURN(std::unique_ptr<model::Model> model,
                          LoadModel(flags));
  MYSAWH_ASSIGN_OR_RETURN(Dataset data, LoadDataset(flags, model.get()));
  MYSAWH_ASSIGN_OR_RETURN(bool drift_armed, ArmDriftMonitor(flags));
  MYSAWH_ASSIGN_OR_RETURN(std::vector<double> preds,
                          model->PredictBatch(data));
  if (drift_armed) FinishDriftMonitor();
  MYSAWH_ASSIGN_OR_RETURN(int64_t calibration_bins,
                          flags.GetInt("calibration-bins", 10));
  if (model->IsClassifier()) {
    MYSAWH_ASSIGN_OR_RETURN(double threshold,
                            flags.GetDouble("threshold", 0.5));
    MYSAWH_ASSIGN_OR_RETURN(
        auto metrics,
        core::ComputeClassificationMetrics(data.labels(), preds, threshold));
    std::cout << metrics.ToString() << "\n";
    auto auc = core::RocAuc(data.labels(), preds);
    if (auc.ok()) std::cout << "auc=" << FormatDouble(*auc, 4) << "\n";
    MYSAWH_ASSIGN_OR_RETURN(
        core::CalibrationReport calibration,
        core::ComputeCalibration(data.labels(), preds,
                                 static_cast<int>(calibration_bins)));
    core::PublishCalibrationGauges("evaluate", calibration);
    std::cout << "calibration: brier=" << FormatDouble(calibration.brier, 4)
              << " ece=" << FormatDouble(calibration.ece, 4) << " over "
              << calibration.bins.size() << " bins\n";
  } else {
    MYSAWH_ASSIGN_OR_RETURN(auto metrics, core::ComputeRegressionMetrics(
                                              data.labels(), preds));
    std::cout << metrics.ToString() << "\n";
    MYSAWH_ASSIGN_OR_RETURN(core::ErrorQuantiles quantiles,
                            core::ComputeErrorQuantiles(data.labels(), preds));
    core::PublishErrorQuantileGauges("evaluate", quantiles);
    std::cout << "abs error quantiles: p50="
              << FormatDouble(quantiles.p50, 4)
              << " p90=" << FormatDouble(quantiles.p90, 4)
              << " p99=" << FormatDouble(quantiles.p99, 4)
              << " max=" << FormatDouble(quantiles.max_err, 4) << "\n";
  }
  return Status::Ok();
}

Status RunExplain(const FlagParser& flags) {
  MYSAWH_ASSIGN_OR_RETURN(std::unique_ptr<model::Model> model,
                          LoadModel(flags));
  MYSAWH_ASSIGN_OR_RETURN(const gbt::GbtModel* gbt, AsGbt(*model));
  MYSAWH_ASSIGN_OR_RETURN(Dataset data, LoadDataset(flags, model.get()));
  MYSAWH_ASSIGN_OR_RETURN(int64_t row, flags.GetInt("row", 0));
  MYSAWH_ASSIGN_OR_RETURN(int64_t top, flags.GetInt("top", 5));
  const explain::TreeShap shap(gbt);
  MYSAWH_ASSIGN_OR_RETURN(auto explanation,
                          explain::ExplainRow(shap, data, row));
  std::cout << explanation.ToString(static_cast<int>(top));
  return Status::Ok();
}

Status RunImportance(const FlagParser& flags) {
  MYSAWH_ASSIGN_OR_RETURN(std::unique_ptr<model::Model> model,
                          LoadModel(flags));
  MYSAWH_ASSIGN_OR_RETURN(const gbt::GbtModel* gbt, AsGbt(*model));
  const std::string type = flags.GetString("type", "gain");
  std::map<std::string, double> scores;
  if (type == "gain") {
    scores = gbt->GainImportance();
  } else if (type == "cover") {
    scores = gbt->CoverImportance();
  } else if (type == "split") {
    for (const auto& [name, count] : gbt->SplitCountImportance()) {
      scores[name] = static_cast<double>(count);
    }
  } else {
    return Status::InvalidArgument("unknown importance type: " + type);
  }
  std::vector<std::pair<std::string, double>> sorted(scores.begin(),
                                                     scores.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  TablePrinter table({"feature", type});
  for (const auto& [name, score] : sorted) {
    table.AddRow({name, FormatDouble(score, 4)});
  }
  std::cout << table.ToString();
  return Status::Ok();
}

/// 16-hex-digit fingerprint, the audit artifact's spelling.
std::string HexFp(uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

/// Exact replay equality: audit doubles are serialized round-trip-exact,
/// so anything short of the same value (or NaN for NaN) is a mismatch.
bool ReplayMatches(double logged, double replayed) {
  if (std::isnan(logged) || std::isnan(replayed)) {
    return std::isnan(logged) && std::isnan(replayed);
  }
  return logged == replayed;
}

/// "i=v;i=v" rendering of a top-k attribution list for the replay CSV
/// (';' so the cell stays one CSV field).
std::string ShapCell(const std::vector<core::AuditShapEntry>& entries) {
  std::string out;
  for (const core::AuditShapEntry& entry : entries) {
    if (!out.empty()) out += ';';
    out += std::to_string(entry.index);
    out += '=';
    out += TelemetryDouble(entry.value);
  }
  return out.empty() ? "-" : out;
}

Status RunAuditReplay(const FlagParser& flags) {
  const std::string audit_path = flags.GetString("audit");
  if (audit_path.empty()) return Status::InvalidArgument("--audit is required");
  MYSAWH_ASSIGN_OR_RETURN(core::AuditFile audit,
                          core::ReadAuditFile(audit_path));
  MYSAWH_ASSIGN_OR_RETURN(std::unique_ptr<model::Model> model,
                          LoadModel(flags));
  MYSAWH_ASSIGN_OR_RETURN(const gbt::GbtModel* gbt, AsGbt(*model));
  const std::vector<std::string>& names = model->FeatureNames();

  // The log names the exact model that produced it; replaying against a
  // different one cannot reproduce bits, so fail before predicting.
  std::vector<const core::AuditRecord*> predicts;
  std::vector<const core::AuditRecord*> shaps;
  for (const core::AuditRecord& record : audit.records) {
    if (record.model_fp != gbt->fingerprint()) {
      return Status::FailedPrecondition(
          "audit-replay: log was written by model " + HexFp(record.model_fp) +
          " but --model has fingerprint " + HexFp(gbt->fingerprint()));
    }
    if (record.features.size() != names.size()) {
      return Status::FailedPrecondition(
          "audit-replay: record has " + std::to_string(record.features.size()) +
          " features, the model expects " + std::to_string(names.size()));
    }
    (record.type == "predict" ? predicts : shaps).push_back(&record);
  }

  CsvDocument replay;
  replay.header = {"type", "fp", "logged", "replayed", "match"};
  int64_t mismatches = 0;
  const auto report = [&](const char* type, const core::AuditRecord& record,
                          const std::string& logged,
                          const std::string& replayed, bool match) {
    if (!match) {
      ++mismatches;
      std::cerr << "mismatch: " << type << " fp=" << HexFp(record.row_fp)
                << " logged " << logged << " replayed " << replayed << "\n";
    }
    replay.rows.push_back({type, HexFp(record.row_fp), logged, replayed,
                           match ? "yes" : "NO"});
  };

  if (!predicts.empty()) {
    Dataset rows = Dataset::Create(names);
    for (const core::AuditRecord* record : predicts) {
      MYSAWH_RETURN_NOT_OK(rows.AddRow(record->features, 0.0));
    }
    MYSAWH_ASSIGN_OR_RETURN(std::vector<double> preds,
                            model->PredictBatch(rows));
    for (size_t i = 0; i < predicts.size(); ++i) {
      report("predict", *predicts[i], TelemetryDouble(predicts[i]->prediction),
             TelemetryDouble(preds[i]),
             ReplayMatches(predicts[i]->prediction, preds[i]));
    }
  }

  if (!shaps.empty()) {
    Dataset rows = Dataset::Create(names);
    for (const core::AuditRecord* record : shaps) {
      MYSAWH_RETURN_NOT_OK(rows.AddRow(record->features, 0.0));
    }
    const explain::TreeShap shap(gbt);
    MYSAWH_ASSIGN_OR_RETURN(std::vector<std::vector<double>> shap_rows,
                            shap.ShapBatch(rows));
    for (size_t i = 0; i < shaps.size(); ++i) {
      // Re-select the top-k exactly as the recorder did: |value|
      // descending, ties by feature index.
      std::vector<core::AuditShapEntry> entries;
      for (size_t f = 0; f < shap_rows[i].size(); ++f) {
        entries.push_back({static_cast<int>(f), shap_rows[i][f]});
      }
      std::sort(entries.begin(), entries.end(),
                [](const core::AuditShapEntry& a,
                   const core::AuditShapEntry& b) {
                  const double ma = std::fabs(a.value);
                  const double mb = std::fabs(b.value);
                  if (ma != mb) return ma > mb;
                  return a.index < b.index;
                });
      if (entries.size() > static_cast<size_t>(audit.top_k)) {
        entries.resize(static_cast<size_t>(audit.top_k));
      }
      const std::vector<core::AuditShapEntry>& logged = shaps[i]->shap;
      bool match = logged.size() == entries.size();
      for (size_t k = 0; match && k < entries.size(); ++k) {
        match = logged[k].index == entries[k].index &&
                ReplayMatches(logged[k].value, entries[k].value);
      }
      report("shap", *shaps[i], ShapCell(logged), ShapCell(entries), match);
    }
  }

  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    MYSAWH_RETURN_NOT_OK(WriteCsv(out, replay));
    std::cout << "wrote replay table to " << out << "\n";
  }
  std::cout << "replayed " << predicts.size() << " predict and "
            << shaps.size() << " shap record(s) against model "
            << HexFp(gbt->fingerprint()) << ": "
            << (mismatches == 0
                    ? "all match"
                    : std::to_string(mismatches) + " MISMATCHED")
            << "\n";
  if (mismatches > 0) {
    return Status::FailedPrecondition(
        "audit-replay: " + std::to_string(mismatches) +
        " record(s) did not reproduce");
  }
  return Status::Ok();
}

Status RunStudy(const FlagParser& flags) {
  core::StudyConfig config;
  MYSAWH_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 42));
  config.cohort.seed = static_cast<uint64_t>(seed);
  MYSAWH_ASSIGN_OR_RETURN(config.model_family, GetModelFamily(flags));
  MYSAWH_ASSIGN_OR_RETURN(config.drift_thresholds, GetDriftThresholds(flags));
  MYSAWH_ASSIGN_OR_RETURN(int64_t drift_bins, flags.GetInt("drift-bins", 10));
  config.drift_bins = static_cast<int>(drift_bins);
  MYSAWH_ASSIGN_OR_RETURN(int64_t calibration_bins,
                          flags.GetInt("calibration-bins", 10));
  config.calibration_bins = static_cast<int>(calibration_bins);
  MYSAWH_ASSIGN_OR_RETURN(int64_t threads, flags.GetInt("threads", 0));
  config.num_threads = static_cast<int>(threads);
  MYSAWH_ASSIGN_OR_RETURN(int64_t folds, flags.GetInt("cv-folds", 5));
  config.protocol.cv_folds = static_cast<int>(folds);
  config.checkpoint_dir = flags.GetString("checkpoint-dir");
  config.resume = flags.GetBool("resume", false);
  if (config.resume && config.checkpoint_dir.empty()) {
    return Status::InvalidArgument("--resume requires --checkpoint-dir");
  }
  MYSAWH_ASSIGN_OR_RETURN(core::StudyResult result,
                          core::RunFullStudy(config));
  const std::string out = flags.GetString("out", "REPORT.md");
  MYSAWH_RETURN_NOT_OK(WriteFileAtomic(out, result.ToMarkdown(),
                                       "report_write"));
  std::cout << "wrote study report (" << result.cells.size()
            << " cells) to " << out << "\n";
  std::string manifest_out = flags.GetString("manifest-out");
  if (manifest_out.empty()) manifest_out = out + ".manifest.json";
  MYSAWH_RETURN_NOT_OK(core::WriteRunManifest(manifest_out, config, result));
  std::cout << "wrote run manifest to " << manifest_out << "\n";
  return Status::Ok();
}

/// One telemetry stream reduced to a learning-curve summary.
struct StreamSummary {
  std::string label;
  std::string metric;  ///< From the stream header ("rmse", "auc", ...).
  std::vector<double> series;
};

/// Compact Unicode sparkline of `series` (downsampled by bucket mean); NaN
/// buckets render as spaces.
std::string Sparkline(const std::vector<double>& series, int width = 24) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (series.empty()) return "";
  const int n = std::min<int>(width, static_cast<int>(series.size()));
  std::vector<double> buckets(static_cast<size_t>(n),
                              std::numeric_limits<double>::quiet_NaN());
  for (int b = 0; b < n; ++b) {
    const size_t begin = static_cast<size_t>(b) * series.size() /
                         static_cast<size_t>(n);
    const size_t end = static_cast<size_t>(b + 1) * series.size() /
                       static_cast<size_t>(n);
    double sum = 0.0;
    int count = 0;
    for (size_t i = begin; i < end; ++i) {
      if (std::isnan(series[i])) continue;
      sum += series[i];
      ++count;
    }
    if (count > 0) buckets[static_cast<size_t>(b)] = sum / count;
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : buckets) {
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (double v : buckets) {
    if (std::isnan(v)) {
      out += ' ';
    } else if (hi <= lo) {
      out += kLevels[3];
    } else {
      const int level = std::min(
          7, static_cast<int>((v - lo) / (hi - lo) * 8.0));
      out += kLevels[level];
    }
  }
  return out;
}

/// Loads a mysawh-telemetry v1 JSONL artifact into per-stream summaries
/// (in file order, which the writer keeps sorted by label). The curve
/// prefers the held-out series: "valid" then "value" then "train".
Result<std::vector<StreamSummary>> LoadTelemetrySummaries(
    const std::string& path) {
  MYSAWH_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  std::vector<StreamSummary> summaries;
  std::map<std::string, size_t> index;
  std::istringstream lines(text);
  std::string line;
  bool saw_header = false;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    MYSAWH_ASSIGN_OR_RETURN(JsonValue value, ParseJson(line));
    if (!saw_header) {
      if (value.StringOr("schema", "") != "mysawh-telemetry v1") {
        return Status::InvalidArgument(
            path + " is not a mysawh-telemetry v1 artifact");
      }
      saw_header = true;
      continue;
    }
    const std::string stream = value.StringOr("stream", "");
    const std::string type = value.StringOr("type", "");
    if (stream.empty()) {
      return Status::InvalidArgument(path + ": telemetry line lacks stream");
    }
    auto [it, inserted] = index.emplace(stream, summaries.size());
    if (inserted) {
      summaries.push_back(StreamSummary{stream, "", {}});
    }
    StreamSummary& summary = summaries[it->second];
    if (type == "header") {
      summary.metric = value.StringOr("metric", summary.metric);
    } else if (type == "round") {
      summary.series.push_back(
          value.NumberOr("valid", value.NumberOr("train", nan)));
    } else if (type == "eval") {
      summary.series.push_back(value.NumberOr("value", nan));
    }
    // "features" and future line types carry no curve points.
  }
  if (!saw_header) {
    return Status::InvalidArgument(path + " is empty (no telemetry header)");
  }
  return summaries;
}

/// "12.3%" / "0.0421" hybrid for quality table cells: percentages for
/// fractions, plain numbers otherwise.
std::string Pct(double fraction) { return FormatPercent(fraction, 1); }

Status RunReport(const FlagParser& flags) {
  const std::string manifest_path = flags.GetString("manifest");
  const std::string telemetry_path = flags.GetString("telemetry");
  if (manifest_path.empty() && telemetry_path.empty()) {
    return Status::InvalidArgument(
        "report needs --manifest and/or --telemetry");
  }
  const std::string out = flags.GetString("out", "dashboard.md");

  std::ostringstream os;
  os << "# MySAwH run dashboard\n";

  if (!manifest_path.empty()) {
    MYSAWH_ASSIGN_OR_RETURN(std::string text,
                            ReadFileToString(manifest_path));
    MYSAWH_ASSIGN_OR_RETURN(JsonValue manifest, ParseJson(text));
    if (manifest.StringOr("schema", "") != "mysawh-run-manifest v1") {
      return Status::InvalidArgument(
          manifest_path + " is not a mysawh-run-manifest v1 artifact");
    }
    os << "\n## Provenance\n\n"
       << "| field | value |\n|---|---|\n"
       << "| source | `" << manifest.StringOr("git_describe", "?") << "` |\n"
       << "| model family | " << manifest.StringOr("model_family", "?")
       << " |\n"
       << "| cohort seed | " << FormatDouble(manifest.NumberOr("seed", 0), 0)
       << " |\n"
       << "| eval seed | " << FormatDouble(manifest.NumberOr("eval_seed", 0), 0)
       << " |\n"
       << "| fingerprint | `" << manifest.StringOr("fingerprint", "?")
       << "` |\n";

    const JsonValue* cells = manifest.Find("cells");
    if (cells == nullptr || !cells->is_object() ||
        cells->object_members().empty()) {
      // Manifests from partial or legacy runs may lack blocks; the
      // dashboard renders what exists instead of refusing the whole file.
      std::cerr << "warning: " << manifest_path
                << " has no cell timings; skipping Cell cost\n";
    } else {
      os << "\n## Cell cost\n\n"
         << "| cell | wall ms | cpu ms | resumed |\n|---|---|---|---|\n";
      double total_wall = 0.0;
      double total_cpu = 0.0;
      for (const auto& [name, cell] : cells->object_members()) {
        const double wall = cell.NumberOr("wall_ms", 0.0);
        const double cpu = cell.NumberOr("cpu_ms", 0.0);
        total_wall += wall;
        total_cpu += cpu;
        const JsonValue* resumed = cell.Find("resumed");
        os << "| " << name << " | " << FormatDouble(wall, 1) << " | "
           << FormatDouble(cpu, 1) << " | "
           << ((resumed != nullptr && resumed->is_bool() &&
                resumed->bool_value())
                   ? "yes"
                   : "no")
           << " |\n";
      }
      os << "| **total** | " << FormatDouble(total_wall, 1) << " | "
         << FormatDouble(total_cpu, 1) << " | |\n";
    }

    const JsonValue* quality = manifest.Find("data_quality");
    if (quality == nullptr || !quality->is_object() ||
        quality->object_members().empty()) {
      std::cerr << "warning: " << manifest_path
                << " has no data_quality block; skipping Data quality\n";
    } else {
      os << "\n## Data quality\n\n"
         << "| cell | train/test rows | outcome | max missingness "
         << "| max drift | bin occupancy |\n|---|---|---|---|---|---|\n";
      for (const auto& [name, cell] : quality->object_members()) {
        os << "| " << name << " | "
           << FormatDouble(cell.NumberOr("train_rows", 0), 0) << "/"
           << FormatDouble(cell.NumberOr("test_rows", 0), 0) << " | ";
        const JsonValue* outcome = cell.Find("outcome");
        if (outcome != nullptr && outcome->is_object()) {
          const JsonValue* classification = outcome->Find("classification");
          if (classification != nullptr && classification->is_bool() &&
              classification->bool_value()) {
            os << FormatDouble(outcome->NumberOr("positives_train", 0), 0)
               << "+ / " << Pct(outcome->NumberOr("mean_train", 0))
               << " pos";
          } else {
            os << "mean " << FormatDouble(outcome->NumberOr("mean_train", 0), 2)
               << " ± "
               << FormatDouble(outcome->NumberOr("stddev_train", 0), 2);
          }
        } else {
          os << "?";
        }
        os << " | " << Pct(cell.NumberOr("max_missing_train", 0)) << " ("
           << cell.StringOr("max_missing_feature", "-") << ") | "
           << FormatDouble(cell.NumberOr("max_drift", 0), 3) << " ("
           << cell.StringOr("max_drift_feature", "-") << ") | "
           << Pct(cell.NumberOr("mean_bin_occupancy", 0)) << " |\n";
      }
    }

    const JsonValue* drift = manifest.Find("drift");
    if (drift == nullptr || !drift->is_object() ||
        drift->object_members().empty()) {
      std::cerr << "warning: " << manifest_path
                << " has no drift block; skipping Drift\n";
    } else {
      os << "\n## Drift\n\n"
         << "| cell | rows | max PSI | max KS | alerts | per-feature PSI "
         << "|\n|---|---|---|---|---|---|\n";
      for (const auto& [name, cell] : drift->object_members()) {
        std::vector<double> psis;
        const JsonValue* features = cell.Find("features");
        if (features != nullptr && features->is_array()) {
          for (const JsonValue& feature : features->array_items()) {
            psis.push_back(feature.NumberOr("psi", 0.0));
          }
        }
        const JsonValue* alerts = cell.Find("alerts");
        const size_t alert_count =
            (alerts != nullptr && alerts->is_array())
                ? alerts->array_items().size()
                : 0;
        os << "| " << name << " | " << FormatDouble(cell.NumberOr("rows", 0), 0)
           << " | " << FormatDouble(cell.NumberOr("max_psi", 0), 3) << " ("
           << cell.StringOr("max_psi_feature", "-") << ") | "
           << FormatDouble(cell.NumberOr("max_ks", 0), 3) << " ("
           << cell.StringOr("max_ks_feature", "-") << ") | "
           << (alert_count == 0 ? std::string("-")
                                : std::to_string(alert_count))
           << " | `" << Sparkline(psis) << "` |\n";
      }
    }

    const JsonValue* calibration = manifest.Find("calibration");
    if (calibration == nullptr || !calibration->is_object() ||
        calibration->object_members().empty()) {
      std::cerr << "warning: " << manifest_path
                << " has no calibration block; skipping Calibration\n";
    } else {
      os << "\n## Calibration\n\n"
         << "| cell | kind | rows | scores | shape |\n|---|---|---|---|---|\n";
      for (const auto& [name, cell] : calibration->object_members()) {
        const std::string kind = cell.StringOr("kind", "?");
        os << "| " << name << " | " << kind << " | "
           << FormatDouble(cell.NumberOr("rows", 0), 0) << " | ";
        if (kind == "classification") {
          // Shape = observed positive rate per reliability bin; a
          // calibrated model sweeps it monotonically from low to high.
          std::vector<double> observed;
          const JsonValue* bins = cell.Find("bins");
          if (bins != nullptr && bins->is_array()) {
            for (const JsonValue& bin : bins->array_items()) {
              observed.push_back(bin.NumberOr("mean_obs", 0.0));
            }
          }
          os << "brier " << FormatDouble(cell.NumberOr("brier", 0), 4)
             << ", ece " << FormatDouble(cell.NumberOr("ece", 0), 4) << " | `"
             << Sparkline(observed) << "` |\n";
        } else {
          os << "mae " << FormatDouble(cell.NumberOr("mae", 0), 3)
             << " | p50/p90/p99 = " << FormatDouble(cell.NumberOr("p50", 0), 3)
             << "/" << FormatDouble(cell.NumberOr("p90", 0), 3) << "/"
             << FormatDouble(cell.NumberOr("p99", 0), 3) << " |\n";
        }
      }
    }

    // Latency percentiles, re-derived from the snapshot's power-of-two
    // buckets with the same helper the live registry uses.
    const JsonValue* metrics = manifest.Find("metrics");
    const JsonValue* histograms =
        metrics != nullptr ? metrics->Find("histograms") : nullptr;
    if (histograms != nullptr && histograms->is_object() &&
        !histograms->object_members().empty()) {
      os << "\n## Latency percentiles\n\n"
         << "| histogram | count | p50 us | p90 us | p99 us | max us |\n"
         << "|---|---|---|---|---|---|\n";
      for (const auto& [name, histogram] : histograms->object_members()) {
        const double count = histogram.NumberOr("count", 0);
        if (count <= 0) continue;
        std::vector<int64_t> buckets;
        const JsonValue* bucket_array = histogram.Find("buckets");
        if (bucket_array != nullptr && bucket_array->is_array()) {
          for (const JsonValue& b : bucket_array->array_items()) {
            buckets.push_back(static_cast<int64_t>(b.number_value()));
          }
        }
        if (buckets.empty()) continue;
        const auto max_us =
            static_cast<int64_t>(histogram.NumberOr("max_us", 0));
        const auto quantile = [&](double q) {
          return HistogramQuantileFromBuckets(
              buckets.data(), static_cast<int>(buckets.size()), max_us, q);
        };
        os << "| " << name << " | " << FormatDouble(count, 0) << " | "
           << quantile(0.50) << " | " << quantile(0.90) << " | "
           << quantile(0.99) << " | " << max_us << " |\n";
      }
    }

    // Per-span cost attribution (runs traced with --span-costs).
    const JsonValue* span_costs = manifest.Find("span_costs");
    if (span_costs != nullptr && span_costs->is_object()) {
      const struct {
        const char* key;
        const char* title;
      } rankings[] = {{"by_cpu", "by CPU"}, {"by_bytes", "by allocation"}};
      for (const auto& ranking : rankings) {
        const JsonValue* list = span_costs->Find(ranking.key);
        if (list == nullptr || !list->is_array() ||
            list->array_items().empty()) {
          continue;
        }
        os << "\n## Top spans " << ranking.title << "\n\n"
           << "| span | count | cpu ms | alloc bytes |\n|---|---|---|---|\n";
        for (const JsonValue& span : list->array_items()) {
          os << "| " << span.StringOr("name", "?") << " | "
             << FormatDouble(span.NumberOr("count", 0), 0) << " | "
             << FormatDouble(span.NumberOr("cpu_us", 0) / 1000.0, 2) << " | "
             << FormatDouble(span.NumberOr("alloc_bytes", 0), 0) << " |\n";
        }
      }
    }
  }

  if (!telemetry_path.empty()) {
    auto summaries_or = LoadTelemetrySummaries(telemetry_path);
    if (!summaries_or.ok()) {
      // With a manifest already rendered, a broken telemetry sidecar
      // degrades to a warning — the dashboard still carries the rest.
      // Telemetry as the *only* input stays a hard error.
      if (manifest_path.empty()) return summaries_or.status();
      std::cerr << "warning: skipping telemetry: "
                << summaries_or.status().message() << "\n";
    }
    const std::vector<StreamSummary> summaries =
        summaries_or.ok() ? std::move(summaries_or).value()
                          : std::vector<StreamSummary>{};
    if (!summaries.empty()) {
      os << "\n## Learning curves\n\n"
         << "| stream | metric | rounds | first | last | curve |\n"
         << "|---|---|---|---|---|---|\n";
    }
    for (const StreamSummary& summary : summaries) {
      double first = std::numeric_limits<double>::quiet_NaN();
      double last = std::numeric_limits<double>::quiet_NaN();
      for (double v : summary.series) {
        if (std::isnan(v)) continue;
        if (std::isnan(first)) first = v;
        last = v;
      }
      os << "| " << summary.label << " | "
         << (summary.metric.empty() ? "-" : summary.metric) << " | "
         << summary.series.size() << " | "
         << (std::isnan(first) ? "-" : FormatDouble(first, 4)) << " | "
         << (std::isnan(last) ? "-" : FormatDouble(last, 4)) << " | `"
         << Sparkline(summary.series) << "` |\n";
    }
  }

  MYSAWH_RETURN_NOT_OK(WriteFileAtomic(out, os.str(), "dashboard_write"));
  std::cout << "wrote dashboard to " << out << "\n";
  return Status::Ok();
}

int Main(int argc, const char* const* argv) {
  auto flags_or = FlagParser::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status().ToString() << "\n" << kUsage;
    return 2;
  }
  const FlagParser& flags = *flags_or;
  // Observability flags apply to every command: --trace-out starts a span
  // session around the whole command, --metrics-out snapshots the registry
  // after it finishes. Both default off; off costs one atomic load per
  // span and outputs stay bit-identical.
  const std::string trace_out = flags.GetString("trace-out");
  const std::string metrics_out = flags.GetString("metrics-out");
  const std::string telemetry_out = flags.GetString("telemetry-out");
  const std::string status_out = flags.GetString("status-out");
  const std::string audit_out = flags.GetString("audit-out");
  const std::string drift_baseline_out = flags.GetString("drift-baseline-out");
  // Probe every artifact path up front: an unwritable destination is a
  // usage error the user should see before a long run, not after it.
  const struct {
    const char* flag;
    const std::string& path;
  } artifact_flags[] = {{"--trace-out", trace_out},
                        {"--metrics-out", metrics_out},
                        {"--telemetry-out", telemetry_out},
                        {"--status-out", status_out},
                        {"--audit-out", audit_out},
                        {"--drift-baseline-out", drift_baseline_out}};
  for (const auto& artifact : artifact_flags) {
    if (artifact.path.empty()) continue;
    const Status writable = CheckWritable(artifact.path);
    if (!writable.ok()) {
      std::cerr << "error: " << artifact.flag << ": " << writable.message()
                << "\n";
      return 2;
    }
  }
  const bool span_costs = flags.GetBool("span-costs", false);
  if (span_costs && trace_out.empty()) {
    std::cerr << "error: --span-costs requires --trace-out\n";
    return 2;
  }
  auto trace_max_events_or = flags.GetInt("trace-max-events", 0);
  auto status_interval_or = flags.GetInt("status-interval-ms", 1000);
  auto stall_timeout_or = flags.GetInt("stall-timeout-ms", 0);
  auto audit_sample_rate_or = flags.GetInt("audit-sample-rate", 16);
  auto audit_top_k_or = flags.GetInt("audit-top-k", 3);
  if (!trace_max_events_or.ok() || !status_interval_or.ok() ||
      !stall_timeout_or.ok() || !audit_sample_rate_or.ok() ||
      !audit_top_k_or.ok()) {
    std::cerr << "error: malformed observability flag value\n" << kUsage;
    return 2;
  }
  if (!audit_out.empty()) {
    core::AuditOptions audit_options;
    audit_options.sample_rate = *audit_sample_rate_or;
    audit_options.top_k = static_cast<int>(*audit_top_k_or);
    const Status configured =
        core::AuditLog::Global().Configure(audit_options);
    if (!configured.ok()) {
      std::cerr << "error: --audit-out: " << configured.message() << "\n";
      return 2;
    }
  }
  if (*stall_timeout_or > 0 && status_out.empty()) {
    std::cerr << "error: --stall-timeout-ms requires --status-out\n";
    return 2;
  }
  if (!trace_out.empty()) {
    Tracer::Global().SetMaxEventsPerThread(
        static_cast<size_t>(std::max<int64_t>(0, *trace_max_events_or)));
    Tracer::Global().SetCostAttribution(span_costs);
    Tracer::Global().Enable();
  }
  if (!telemetry_out.empty()) Telemetry::Global().Enable();
  std::unique_ptr<Monitor> monitor;
  if (!status_out.empty()) {
    MonitorOptions options;
    options.status_path = status_out;
    options.interval_ms = std::max<int64_t>(1, *status_interval_or);
    options.stall_timeout_ms = std::max<int64_t>(0, *stall_timeout_or);
    monitor = std::make_unique<Monitor>(options);
    const Status started = monitor->Start();
    if (!started.ok()) {
      std::cerr << "error: --status-out: " << started.message() << "\n";
      return 2;
    }
  }
  Status status;
  {
    TraceSpan command_span;
    if (TracingEnabled() && !flags.command().empty()) {
      command_span = TraceSpan("cli." + flags.command(), "cli");
    }
    if (flags.command() == "generate") {
      status = RunGenerate(flags);
    } else if (flags.command() == "train") {
      status = RunTrain(flags);
    } else if (flags.command() == "predict") {
      status = RunPredict(flags);
    } else if (flags.command() == "evaluate") {
      status = RunEvaluate(flags);
    } else if (flags.command() == "explain") {
      status = RunExplain(flags);
    } else if (flags.command() == "importance") {
      status = RunImportance(flags);
    } else if (flags.command() == "study") {
      status = RunStudy(flags);
    } else if (flags.command() == "report") {
      status = RunReport(flags);
    } else if (flags.command() == "audit-replay") {
      status = RunAuditReplay(flags);
    } else if (flags.command() == "help" || flags.command().empty()) {
      std::cout << kUsage;
      return flags.command().empty() ? 2 : 0;
    } else {
      std::cerr << "unknown command: " << flags.command() << "\n" << kUsage;
      return 2;
    }
  }
  if (monitor != nullptr) {
    // Stop before the artifact writes so the final heartbeat (and the
    // metrics snapshot below) reflect the completed command.
    monitor->Stop();
    std::cout << "wrote " << monitor->heartbeats_written()
              << " status heartbeats to " << status_out << "\n";
  }
  if (!audit_out.empty()) {
    core::AuditLog& audit = core::AuditLog::Global();
    audit.Disable();
    const Status written = audit.WriteToFile(audit_out);
    if (!written.ok() && status.ok()) status = written;
    if (written.ok()) {
      std::cout << "wrote audit log (" << audit.record_count()
                << " records) to " << audit_out << "\n";
    }
  }
  if (!metrics_out.empty()) {
    const Status written = WriteFileAtomic(
        metrics_out, MetricsRegistry::Global().SnapshotJson(),
        "metrics_write");
    if (!written.ok() && status.ok()) status = written;
    if (written.ok()) std::cout << "wrote metrics to " << metrics_out << "\n";
  }
  if (!telemetry_out.empty()) {
    const Status written = Telemetry::Global().WriteJsonl(telemetry_out);
    if (!written.ok() && status.ok()) status = written;
    if (written.ok()) {
      std::cout << "wrote telemetry (" << Telemetry::Global().stream_count()
                << " streams) to " << telemetry_out << "\n";
    }
  }
  if (!trace_out.empty()) {
    const Status written = Tracer::Global().WriteJson(trace_out);
    if (!written.ok() && status.ok()) status = written;
    if (written.ok()) {
      std::cout << "wrote trace (" << Tracer::Global().event_count()
                << " events) to " << trace_out << "\n";
    }
  }
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    // Invalid and corrupt inputs share the usage exit code: the caller's
    // request cannot succeed as given (fix the flags or regenerate the
    // artifact). Everything else — I/O trouble, training failure — is a
    // runtime failure.
    const bool bad_input = status.code() == StatusCode::kInvalidArgument ||
                           status.code() == StatusCode::kDataLoss;
    return bad_input ? 2 : 1;
  }
  return 0;
}

}  // namespace
}  // namespace mysawh

int main(int argc, char** argv) { return mysawh::Main(argc, argv); }
