#!/usr/bin/env python3
"""Tail a live mysawh run through its status.json heartbeat file.

Usage:
    watch_status.py <status.json> [--poll-ms 250] [--once]

Point it at the file a running `mysawh_cli ... --status-out FILE` rewrites
(atomic rename, so a read never sees a torn document) and it prints one
line per new heartbeat:

    seq    5  up   5.2s  rss  312.4MB  cpu  18.3s  study  7/12  queue  3

Stall and drift events are surfaced as they appear. Exits when the run
writes its final heartbeat, or on Ctrl-C. Stdlib only.
"""

import argparse
import json
import sys
import time


def fmt_bytes(n):
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024 or unit == "TB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    return f"{n:.1f}TB"


def render(status):
    resource = status.get("resource", {})
    study = status.get("study", {})
    cpu_s = (resource.get("utime_ms", 0) + resource.get("stime_ms", 0)) / 1e3
    line = (f"seq {status.get('seq', '?'):>4}  "
            f"up {status.get('uptime_ms', 0) / 1e3:>7.1f}s  "
            f"rss {fmt_bytes(resource.get('rss_bytes', 0)):>9}  "
            f"cpu {cpu_s:>7.1f}s  "
            f"threads {resource.get('threads', 0):>3}  "
            f"queue {status.get('queue_depth', 0):>4}")
    total = study.get("cells_total", 0)
    if total:
        line += f"  study {study.get('cells_done', 0)}/{total}"
    if status.get("final"):
        line += "  [final]"
    return line


def render_event(event):
    kind = event.get("type")
    if kind == "drift":
        alerts = ",".join(event.get("alerts", []))
        return (f"drift: {event.get('window_rows', '?')} rows, "
                f"max PSI {event.get('max_psi', 0):.3f} "
                f"({event.get('max_psi_feature', '?')}), "
                f"max KS {event.get('max_ks', 0):.3f} "
                f"({event.get('max_ks_feature', '?')}), alerts [{alerts}]")
    return (f"{kind}: silent {event.get('silent_ms', '?')}ms, queue "
            f"{event.get('queue_depth', '?')}, last spans "
            f"{event.get('recent_spans', [])}")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("status_file", help="path written by --status-out")
    parser.add_argument("--poll-ms", type=int, default=250,
                        help="poll period in milliseconds (default 250)")
    parser.add_argument("--once", action="store_true",
                        help="print the current heartbeat and exit")
    args = parser.parse_args(argv[1:])

    last_seq = None
    seen_events = 0
    try:
        while True:
            try:
                with open(args.status_file) as f:
                    status = json.load(f)
            except (FileNotFoundError, json.JSONDecodeError):
                # Not written yet (or mid-rename on exotic filesystems):
                # keep polling, the writer is atomic.
                status = None
            if status is not None and status.get("seq") != last_seq:
                last_seq = status.get("seq")
                print(render(status), flush=True)
                events = status.get("events", [])
                for event in events[seen_events:]:
                    print(f"  !! {render_event(event)}", flush=True)
                seen_events = len(events)
                if status.get("final"):
                    return 0
            if args.once:
                return 0 if status is not None else 1
            time.sleep(max(args.poll_ms, 10) / 1e3)
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main(sys.argv))
