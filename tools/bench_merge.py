#!/usr/bin/env python3
"""Merge several Google Benchmark JSON outputs into one baseline file.

Usage:
    tools/bench_merge.py OUT.json INPUT.json [INPUT.json ...]

The perf binaries (perf_gbt, perf_shap) each write a complete benchmark
JSON; the committed ``BENCH_perf.json`` baseline and the CI trend step
want ONE file covering every suite. This concatenates the ``benchmarks``
arrays of the inputs in order — a later input replaces same-named entries
from an earlier one — and keeps every other top-level member (context,
the embedded ``mysawh_metrics`` snapshot) from the FIRST input.

Regenerating the committed baseline from a Release build:

    (cd build && cmake --build . -j --target perf_gbt perf_shap)
    ./build/bench/perf_gbt                 # writes ./BENCH_perf.json
    (cd /tmp && /path/to/build/bench/perf_shap)  # its own BENCH_perf.json
    tools/bench_merge.py BENCH_perf.json BENCH_perf.json /tmp/BENCH_perf.json

Only the Python standard library is used.
"""

from __future__ import annotations

import json
import sys


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(__doc__.split("\n\n", 1)[0], file=sys.stderr)
        print("usage: bench_merge.py OUT.json INPUT.json [INPUT.json ...]",
              file=sys.stderr)
        return 2
    out_path, input_paths = argv[1], argv[2:]

    merged = None
    by_name: dict[str, int] = {}
    benchmarks: list[dict] = []
    for path in input_paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as error:
            print(f"bench_merge: cannot load {path}: {error}",
                  file=sys.stderr)
            return 2
        if merged is None:
            merged = {k: v for k, v in doc.items() if k != "benchmarks"}
        for entry in doc.get("benchmarks", []):
            name = entry.get("name")
            if name in by_name:
                benchmarks[by_name[name]] = entry
            else:
                by_name[name] = len(benchmarks)
                benchmarks.append(entry)
    assert merged is not None
    merged["benchmarks"] = benchmarks

    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")
    print(f"bench_merge: wrote {len(benchmarks)} benchmarks from "
          f"{len(input_paths)} input(s) to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
