#include "linear/linear_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linear/dense_solver.h"
#include "util/rng.h"

namespace mysawh::linear {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(DenseSolverTest, SolvesSpdSystem) {
  // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11].
  SquareMatrix a(2);
  a.at(0, 0) = 4;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  const auto x = CholeskySolve(a, {1.0, 2.0}).value();
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-12);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-12);
}

TEST(DenseSolverTest, RejectsIndefinite) {
  SquareMatrix a(2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskySolve(a, {1.0, 1.0}).ok());
}

TEST(DenseSolverTest, RejectsSizeMismatch) {
  SquareMatrix a(2);
  a.at(0, 0) = a.at(1, 1) = 1;
  EXPECT_FALSE(CholeskySolve(a, {1.0}).ok());
}

Dataset MakeLinearData(int64_t n, uint64_t seed, double noise = 0.0) {
  Rng rng(seed);
  Dataset ds = Dataset::Create({"x0", "x1"});
  for (int64_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-1, 1);
    const double x1 = rng.Uniform(-1, 1);
    const double y = 2.0 * x0 - 3.0 * x1 + 0.5 + rng.Normal(0, noise);
    EXPECT_TRUE(ds.AddRow({x0, x1}, y).ok());
  }
  return ds;
}

TEST(LinearModelTest, RecoversCoefficientsWithoutNoise) {
  const Dataset train = MakeLinearData(200, 1);
  const LinearModel model = LinearModel::Train(train, /*lambda=*/0.0).value();
  ASSERT_EQ(model.weights().size(), 2u);
  EXPECT_NEAR(model.weights()[0], 2.0, 1e-8);
  EXPECT_NEAR(model.weights()[1], -3.0, 1e-8);
  EXPECT_NEAR(model.intercept(), 0.5, 1e-8);
}

TEST(LinearModelTest, RidgeShrinksWeights) {
  const Dataset train = MakeLinearData(200, 2, 0.1);
  const LinearModel loose = LinearModel::Train(train, 0.0).value();
  const LinearModel tight = LinearModel::Train(train, 1000.0).value();
  EXPECT_LT(std::abs(tight.weights()[0]), std::abs(loose.weights()[0]));
  EXPECT_LT(std::abs(tight.weights()[1]), std::abs(loose.weights()[1]));
}

TEST(LinearModelTest, MeanImputesMissing) {
  Rng rng(3);
  Dataset train = Dataset::Create({"x"});
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(0, 2);
    ASSERT_TRUE(train.AddRow({x}, 5.0 * x).ok());
  }
  const LinearModel model = LinearModel::Train(train, 0.0).value();
  const double missing_row[] = {kNaN};
  // Imputed at the training mean (~1), so prediction ~5.
  EXPECT_NEAR(model.PredictRow(missing_row), 5.0, 0.5);
}

TEST(LinearModelTest, RejectsBadInputs) {
  Dataset empty = Dataset::Create({"x"});
  EXPECT_FALSE(LinearModel::Train(empty).ok());
  const Dataset train = MakeLinearData(10, 4);
  EXPECT_FALSE(LinearModel::Train(train, -1.0).ok());
  Dataset wrong = Dataset::Create({"a", "b", "c"});
  ASSERT_TRUE(wrong.AddRow({0, 0, 0}, 0).ok());
  const LinearModel model = LinearModel::Train(train).value();
  EXPECT_FALSE(model.Predict(wrong).ok());
}

TEST(LogisticModelTest, SeparatesLinearlySeparableData) {
  Rng rng(5);
  Dataset train = Dataset::Create({"a", "b"});
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.Uniform(-1, 1);
    const double b = rng.Uniform(-1, 1);
    ASSERT_TRUE(train.AddRow({a, b}, (a + b > 0) ? 1.0 : 0.0).ok());
  }
  const LogisticModel model = LogisticModel::Train(train, 0.01).value();
  const auto preds = model.Predict(train).value();
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    EXPECT_GE(preds[i], 0.0);
    EXPECT_LE(preds[i], 1.0);
    correct += (preds[i] >= 0.5) == (train.label(static_cast<int64_t>(i)) > 0.5);
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(preds.size()),
            0.97);
}

TEST(LogisticModelTest, RecoverCalibratedProbabilities) {
  // Labels drawn from a known logistic model; fitted probabilities should
  // track the generating ones.
  Rng rng(7);
  Dataset train = Dataset::Create({"x"});
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.Uniform(-2, 2);
    const double p = 1.0 / (1.0 + std::exp(-(1.5 * x - 0.3)));
    ASSERT_TRUE(train.AddRow({x}, rng.Bernoulli(p) ? 1.0 : 0.0).ok());
  }
  const LogisticModel model = LogisticModel::Train(train, 1e-6).value();
  ASSERT_EQ(model.weights().size(), 1u);
  EXPECT_NEAR(model.weights()[0], 1.5, 0.15);
  EXPECT_NEAR(model.intercept(), -0.3, 0.15);
}

TEST(LogisticModelTest, RejectsNonBinaryLabels) {
  Dataset train = Dataset::Create({"x"});
  ASSERT_TRUE(train.AddRow({0.0}, 0.5).ok());
  EXPECT_FALSE(LogisticModel::Train(train).ok());
}

TEST(LogisticModelTest, RejectsBadHyperparameters) {
  Dataset train = Dataset::Create({"x"});
  ASSERT_TRUE(train.AddRow({0.0}, 0.0).ok());
  ASSERT_TRUE(train.AddRow({1.0}, 1.0).ok());
  EXPECT_FALSE(LogisticModel::Train(train, -1.0).ok());
  EXPECT_FALSE(LogisticModel::Train(train, 1.0, 0).ok());
}

TEST(LinearModelTest, SerializationRoundTripsExactly) {
  Rng rng(21);
  Dataset train = Dataset::Create({"a", "b", "c"});
  for (int i = 0; i < 300; ++i) {
    const double a = rng.Uniform(-1, 1);
    const double b = rng.Uniform(-1, 1);
    const double c = i % 7 == 0 ? kNaN : rng.Uniform(-1, 1);
    ASSERT_TRUE(
        train.AddRow({a, b, c}, 2.0 * a - b + rng.Normal(0, 0.01)).ok());
  }
  const LinearModel model = LinearModel::Train(train, 0.5).value();
  const LinearModel loaded = LinearModel::Deserialize(model.Serialize()).value();
  EXPECT_EQ(loaded.feature_names(), model.feature_names());
  EXPECT_EQ(loaded.weights(), model.weights());
  EXPECT_EQ(loaded.intercept(), model.intercept());
  // Imputation means must survive too: probe with a missing value.
  const double probe[] = {0.3, -0.8, kNaN};
  EXPECT_DOUBLE_EQ(loaded.PredictRow(probe), model.PredictRow(probe));
}

TEST(LinearModelTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(LinearModel::Deserialize("not a model").ok());
  EXPECT_FALSE(LinearModel::Deserialize("mysawh-linear v1\njunk").ok());
}

TEST(LogisticModelTest, SerializationRoundTripsExactly) {
  Rng rng(22);
  Dataset train = Dataset::Create({"x", "z"});
  for (int i = 0; i < 400; ++i) {
    const double x = rng.Uniform(-2, 2);
    const double z = rng.Uniform(-1, 1);
    const double p = 1.0 / (1.0 + std::exp(-(1.2 * x - 0.4 * z)));
    ASSERT_TRUE(train.AddRow({x, z}, rng.Bernoulli(p) ? 1.0 : 0.0).ok());
  }
  const LogisticModel model = LogisticModel::Train(train, 0.1).value();
  const LogisticModel loaded =
      LogisticModel::Deserialize(model.Serialize()).value();
  EXPECT_EQ(loaded.weights(), model.weights());
  EXPECT_EQ(loaded.intercept(), model.intercept());
  const double probe[] = {0.7, kNaN};
  EXPECT_DOUBLE_EQ(loaded.PredictRow(probe), model.PredictRow(probe));
  // A logistic payload must not parse as a plain linear model.
  EXPECT_FALSE(LinearModel::Deserialize(model.Serialize()).ok());
}

}  // namespace
}  // namespace mysawh::linear
