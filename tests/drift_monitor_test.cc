#include "core/drift_monitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/audit_log.h"
#include "data/dataset.h"
#include "util/status.h"

namespace mysawh::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// A hand-built two-bin baseline: 50/50 split at 0.5, no missingness.
DriftBaseline TwoBinBaseline() {
  FeatureBaseline feature;
  feature.name = "x";
  feature.edges = {0.5};
  feature.expected = {0.5, 0.5};
  feature.missing_expected = 0.0;
  feature.rows = 100;
  DriftBaseline baseline;
  baseline.num_bins = 2;
  baseline.features = {feature};
  baseline.prediction.name = "__prediction__";
  return baseline;
}

/// One-feature dataset with the given values.
Dataset OneColumn(const std::vector<double>& values) {
  Dataset data = Dataset::Create({"x"});
  for (const double v : values) EXPECT_TRUE(data.AddRow({v}, 0.0).ok());
  return data;
}

TEST(DriftStatsTest, PsiAndKsHandComputed) {
  // Expected [0.5, 0.5], actual [0.9, 0.1]:
  //   PSI = (0.9-0.5)ln(0.9/0.5) + (0.1-0.5)ln(0.1/0.5) = 0.87889...
  //   KS  = |0.5 - 0.9| at the single edge = 0.4
  // (the missing bin contributes 0: both sides clamp to epsilon).
  std::vector<double> values(90, 0.0);
  values.insert(values.end(), 10, 1.0);
  const DriftReport report =
      EvaluateDrift(TwoBinBaseline(), OneColumn(values), {}, DriftThresholds())
          .value();
  ASSERT_EQ(report.features.size(), 1u);
  const double expected_psi =
      0.4 * std::log(0.9 / 0.5) - 0.4 * std::log(0.1 / 0.5);
  EXPECT_NEAR(report.features[0].psi, expected_psi, 1e-12);
  EXPECT_NEAR(report.features[0].ks, 0.4, 1e-12);
  EXPECT_EQ(report.rows, 100);
  EXPECT_EQ(report.max_psi_feature, "x");
  EXPECT_NEAR(report.max_psi, expected_psi, 1e-12);
  // Both statistics crossed their default thresholds -> one alert.
  ASSERT_EQ(report.alerts.size(), 1u);
  EXPECT_EQ(report.alerts[0], "x");
}

TEST(DriftStatsTest, MatchingDistributionScoresZero) {
  // A window with exactly the expected proportions: PSI and KS vanish.
  std::vector<double> values(50, 0.0);
  values.insert(values.end(), 50, 1.0);
  const DriftReport report =
      EvaluateDrift(TwoBinBaseline(), OneColumn(values), {}, DriftThresholds())
          .value();
  EXPECT_NEAR(report.features[0].psi, 0.0, 1e-12);
  EXPECT_NEAR(report.features[0].ks, 0.0, 1e-12);
  EXPECT_TRUE(report.alerts.empty());
}

TEST(DriftStatsTest, MissingnessShiftScoresLikeValueShift) {
  // Baseline has no missing values; a window that is half NaN must drift.
  std::vector<double> values(50, 0.25);
  values.insert(values.end(), 50, kNaN);
  const DriftReport report =
      EvaluateDrift(TwoBinBaseline(), OneColumn(values), {}, DriftThresholds())
          .value();
  EXPECT_NEAR(report.features[0].missing_actual, 0.5, 1e-12);
  EXPECT_GT(report.features[0].psi, 0.2);
  ASSERT_EQ(report.alerts.size(), 1u);
}

TEST(DriftStatsTest, PredictionDistributionIsMonitoredToo) {
  DriftBaseline baseline = TwoBinBaseline();
  baseline.prediction.name = "__prediction__";
  baseline.prediction.edges = {0.5};
  baseline.prediction.expected = {0.5, 0.5};
  baseline.prediction.rows = 100;
  // Features stay on-distribution; every prediction lands in the top bin.
  std::vector<double> values(50, 0.0);
  values.insert(values.end(), 50, 1.0);
  const std::vector<double> preds(100, 0.9);
  const DriftReport report =
      EvaluateDrift(baseline, OneColumn(values), preds, DriftThresholds())
          .value();
  EXPECT_NEAR(report.features[0].psi, 0.0, 1e-12);
  EXPECT_GT(report.prediction.psi, 0.2);
  ASSERT_EQ(report.alerts.size(), 1u);
  EXPECT_EQ(report.alerts[0], "__prediction__");
  EXPECT_EQ(report.max_psi_feature, "__prediction__");
}

TEST(DriftBaselineTest, EqualFrequencyEdgesOverDistinctValues) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  Dataset data = OneColumn(values);
  const DriftBaseline baseline = BuildDriftBaseline(data, {}, 10).value();
  ASSERT_EQ(baseline.features.size(), 1u);
  const FeatureBaseline& feature = baseline.features[0];
  EXPECT_EQ(feature.rows, 100);
  EXPECT_EQ(feature.edges.size(), 9u);
  ASSERT_EQ(feature.expected.size(), 10u);
  double sum = 0.0;
  for (const double p : feature.expected) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(feature.missing_expected, 0.0, 1e-12);
  // Self-evaluation: the data the baseline was built from scores zero.
  const DriftReport report =
      EvaluateDrift(baseline, data, {}, DriftThresholds()).value();
  EXPECT_NEAR(report.max_psi, 0.0, 1e-12);
  EXPECT_NEAR(report.max_ks, 0.0, 1e-12);
  EXPECT_TRUE(report.alerts.empty());
}

TEST(DriftBaselineTest, TiedValuesCollapseBinsAndConstantsKeepZeroEdges) {
  const DriftBaseline tied =
      BuildDriftBaseline(OneColumn({1, 1, 1, 1, 2, 2, 2, 2}), {}, 4).value();
  EXPECT_LT(tied.features[0].edges.size(), 3u);
  // A constant column dedupes to a single edge at the constant; all the
  // expected mass lands in bin 0 and self-evaluation still scores zero.
  const DriftBaseline constant =
      BuildDriftBaseline(OneColumn({3, 3, 3, 3}), {}, 4).value();
  ASSERT_EQ(constant.features[0].edges.size(), 1u);
  EXPECT_EQ(constant.features[0].edges[0], 3.0);
  ASSERT_EQ(constant.features[0].expected.size(), 2u);
  EXPECT_NEAR(constant.features[0].expected[0], 1.0, 1e-12);
  EXPECT_NEAR(constant.features[0].expected[1], 0.0, 1e-12);
  const DriftBaseline all_missing =
      BuildDriftBaseline(OneColumn({kNaN, kNaN}), {}, 4).value();
  EXPECT_EQ(all_missing.features[0].edges.size(), 0u);
  EXPECT_NEAR(all_missing.features[0].missing_expected, 1.0, 1e-12);
}

TEST(DriftBaselineTest, Validation) {
  Dataset empty = Dataset::Create({"x"});
  EXPECT_FALSE(BuildDriftBaseline(empty, {}, 10).ok());
  EXPECT_FALSE(BuildDriftBaseline(OneColumn({1, 2}), {}, 1).ok());
  EXPECT_FALSE(BuildDriftBaseline(OneColumn({1, 2}), {0.5}, 10).ok());
  // Width mismatch at evaluation time.
  Dataset wide = Dataset::Create({"x", "y"});
  EXPECT_TRUE(wide.AddRow({1.0, 2.0}, 0.0).ok());
  EXPECT_FALSE(
      EvaluateDrift(TwoBinBaseline(), wide, {}, DriftThresholds()).ok());
}

TEST(DriftBaselineTest, JsonRoundTripIsExact) {
  std::vector<double> values;
  for (int i = 0; i < 64; ++i) {
    values.push_back(i % 7 == 0 ? kNaN : std::sin(i) * 1e3);
  }
  Dataset data = OneColumn(values);
  const DriftBaseline baseline =
      BuildDriftBaseline(data, std::vector<double>(64, 0.125), 5).value();
  const std::string json = DriftBaselineJson(baseline);
  const DriftBaseline parsed = ParseDriftBaseline(json).value();
  // Doubles serialize round-trip exact, so re-serialization is bytewise
  // identical and both baselines score any window identically.
  EXPECT_EQ(DriftBaselineJson(parsed), json);
  const std::string a =
      DriftReportJson(EvaluateDrift(baseline, data, {}, {}).value());
  const std::string b =
      DriftReportJson(EvaluateDrift(parsed, data, {}, {}).value());
  EXPECT_EQ(a, b);
}

TEST(DriftBaselineTest, ParserRejectsMalformedArtifacts) {
  EXPECT_FALSE(ParseDriftBaseline("not json").ok());
  EXPECT_FALSE(ParseDriftBaseline("{\"schema\":\"wrong v9\"}").ok());
  // A feature whose proportions do not match its edge count is corrupt.
  const auto mismatched = ParseDriftBaseline(
      "{\"schema\":\"mysawh-drift-baseline v1\",\"num_bins\":2,"
      "\"features\":[{\"name\":\"x\",\"rows\":10,\"missing\":0,"
      "\"edges\":[0.5],\"expected\":[0.2,0.3,0.5]}]}");
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kDataLoss);
  // Non-ascending edges are corrupt.
  const auto unsorted = ParseDriftBaseline(
      "{\"schema\":\"mysawh-drift-baseline v1\",\"num_bins\":3,"
      "\"features\":[{\"name\":\"x\",\"rows\":10,\"missing\":0,"
      "\"edges\":[0.7,0.2],\"expected\":[0.3,0.3,0.4]}]}");
  ASSERT_FALSE(unsorted.ok());
  EXPECT_EQ(unsorted.status().code(), StatusCode::kDataLoss);
}

TEST(DriftRuntimeTest, WindowsEvaluateAndAlertsLatchOncePerExcursion) {
  DriftMonitorRuntime& runtime = DriftMonitorRuntime::Global();
  const int64_t windows_before = runtime.windows_evaluated();
  const int64_t alerts_before = runtime.alerts_fired();
  DriftMonitorOptions options;
  options.window = 4;
  ASSERT_TRUE(runtime.Configure(TwoBinBaseline(), options).ok());
  EXPECT_TRUE(DriftMonitoringEnabled());

  // Two dirty windows (all mass in bin 0) -> one latched alert.
  runtime.ObserveBatch(OneColumn(std::vector<double>(8, 0.0)),
                       std::vector<double>(8, 0.0));
  EXPECT_EQ(runtime.windows_evaluated() - windows_before, 2);
  EXPECT_EQ(runtime.alerts_fired() - alerts_before, 1);
  EXPECT_NE(runtime.LastReportJson().find("\"alerts\":[\"x\"]"),
            std::string::npos);

  // A clean 50/50 window re-arms the latch...
  runtime.ObserveBatch(OneColumn({0.0, 0.0, 1.0, 1.0}),
                       std::vector<double>(4, 0.0));
  EXPECT_EQ(runtime.windows_evaluated() - windows_before, 3);
  EXPECT_EQ(runtime.alerts_fired() - alerts_before, 1);

  // ...so the next excursion fires a second alert.
  runtime.ObserveBatch(OneColumn(std::vector<double>(4, 1.0)),
                       std::vector<double>(4, 0.0));
  EXPECT_EQ(runtime.alerts_fired() - alerts_before, 2);

  // A trailing partial window evaluates on Flush, which also disarms.
  runtime.ObserveBatch(OneColumn({0.0, 1.0}), {0.0, 0.0});
  EXPECT_EQ(runtime.windows_evaluated() - windows_before, 4);
  runtime.Flush();
  EXPECT_EQ(runtime.windows_evaluated() - windows_before, 5);
  EXPECT_FALSE(DriftMonitoringEnabled());
}

TEST(DriftRuntimeTest, MismatchedBatchesAreIgnored) {
  DriftMonitorRuntime& runtime = DriftMonitorRuntime::Global();
  const int64_t windows_before = runtime.windows_evaluated();
  DriftMonitorOptions options;
  options.window = 2;
  ASSERT_TRUE(runtime.Configure(TwoBinBaseline(), options).ok());
  // A two-feature batch cannot belong to the one-feature baseline.
  Dataset wide = Dataset::Create({"x", "y"});
  ASSERT_TRUE(wide.AddRow({0.0, 0.0}, 0.0).ok());
  ASSERT_TRUE(wide.AddRow({1.0, 1.0}, 0.0).ok());
  runtime.ObserveBatch(wide, {0.0, 0.0});
  EXPECT_EQ(runtime.windows_evaluated(), windows_before);
  runtime.Disable();
  EXPECT_FALSE(DriftMonitoringEnabled());
}

TEST(DriftRuntimeTest, SampledObservationAdmitsRowsByContentKey) {
  DriftMonitorRuntime& runtime = DriftMonitorRuntime::Global();
  const int64_t windows_before = runtime.windows_evaluated();
  DriftMonitorOptions options;
  options.window = 4;
  options.sample_rate = 3;
  ASSERT_TRUE(runtime.Configure(TwoBinBaseline(), options).ok());

  // Feed values until the monitor has admitted enough sampled rows for
  // exactly one full window, counting admissions with the same content
  // key the monitor uses. The admitted population is a pure function of
  // the values, so the expected count never depends on batch splits.
  std::vector<double> values;
  int64_t admitted = 0;
  for (int i = 0; admitted < options.window; ++i) {
    const double v = 0.01 * static_cast<double>(i);
    values.push_back(v);
    if (AuditSampled(AuditSampleKey(&values.back(), 1), options.sample_rate)) {
      ++admitted;
    }
  }
  ASSERT_GT(values.size(), static_cast<size_t>(options.window))
      << "fixture must reject at least one row";
  runtime.ObserveBatch(OneColumn(values),
                       std::vector<double>(values.size(), 0.0));
  EXPECT_EQ(runtime.windows_evaluated() - windows_before, 1);
  // The window saw only the admitted rows.
  EXPECT_NE(runtime.LastReportJson().find("\"rows\":4"), std::string::npos);
  runtime.Disable();
}

TEST(DriftRuntimeTest, ConfigureValidation) {
  DriftMonitorRuntime& runtime = DriftMonitorRuntime::Global();
  EXPECT_FALSE(runtime.Configure(DriftBaseline(), {}).ok());
  DriftMonitorOptions bad_window;
  bad_window.window = 0;
  EXPECT_FALSE(runtime.Configure(TwoBinBaseline(), bad_window).ok());
  DriftMonitorOptions bad_rate;
  bad_rate.sample_rate = 0;
  EXPECT_FALSE(runtime.Configure(TwoBinBaseline(), bad_rate).ok());
  runtime.Disable();
}

}  // namespace
}  // namespace mysawh::core
