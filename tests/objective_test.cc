#include "gbt/objective.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mysawh::gbt {
namespace {

/// Numeric first derivative of the analytic loss to check gradients.
double NumericGrad(double label, double raw, double (*loss)(double, double)) {
  const double h = 1e-6;
  return (loss(label, raw + h) - loss(label, raw - h)) / (2 * h);
}

double SquaredLoss(double y, double f) { return 0.5 * (y - f) * (y - f); }

double LogisticLoss(double y, double f) {
  // log(1 + exp(-yf)) with y in {0,1} written via cross-entropy.
  const double p = 1.0 / (1.0 + std::exp(-f));
  return -(y * std::log(p) + (1 - y) * std::log(1 - p));
}

double PseudoHuberLoss(double y, double f) {
  const double r = f - y;
  return std::sqrt(1.0 + r * r) - 1.0;
}

class GradientCheckTest : public ::testing::TestWithParam<double> {};

TEST_P(GradientCheckTest, SquaredErrorMatchesNumeric) {
  const auto objective = MakeObjective(ObjectiveType::kSquaredError);
  const double raw = GetParam();
  for (double label : {-2.0, 0.0, 0.7, 3.0}) {
    const GradientPair gp = objective->ComputeGradient(label, raw);
    EXPECT_NEAR(gp.grad, NumericGrad(label, raw, SquaredLoss),
                1e-4);
    EXPECT_DOUBLE_EQ(gp.hess, 1.0);
  }
}

TEST_P(GradientCheckTest, LogisticMatchesNumeric) {
  const auto objective = MakeObjective(ObjectiveType::kLogistic);
  const double raw = GetParam();
  for (double label : {0.0, 1.0}) {
    const GradientPair gp = objective->ComputeGradient(label, raw);
    EXPECT_NEAR(gp.grad, NumericGrad(label, raw, LogisticLoss),
                1e-4);
    EXPECT_GT(gp.hess, 0.0);
  }
}

TEST_P(GradientCheckTest, PseudoHuberMatchesNumeric) {
  const auto objective = MakeObjective(ObjectiveType::kPseudoHuber);
  const double raw = GetParam();
  for (double label : {-1.0, 0.0, 2.5}) {
    const GradientPair gp = objective->ComputeGradient(label, raw);
    EXPECT_NEAR(gp.grad, NumericGrad(label, raw, PseudoHuberLoss),
                1e-4);
    EXPECT_GT(gp.hess, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RawScores, GradientCheckTest,
                         ::testing::Values(-3.0, -0.5, 0.0, 0.5, 3.0));

TEST(ObjectiveTest, LogisticTransformIsSigmoid) {
  const auto objective = MakeObjective(ObjectiveType::kLogistic);
  EXPECT_NEAR(objective->Transform(0.0), 0.5, 1e-12);
  EXPECT_NEAR(objective->Transform(100.0), 1.0, 1e-9);
  EXPECT_NEAR(objective->InverseTransform(0.5), 0.0, 1e-12);
  EXPECT_NEAR(objective->InverseTransform(objective->Transform(1.7)), 1.7,
              1e-9);
}

TEST(ObjectiveTest, InitialPredictionMatchesLabelMean) {
  const auto squared = MakeObjective(ObjectiveType::kSquaredError);
  EXPECT_DOUBLE_EQ(squared->InitialRawPrediction({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(squared->InitialRawPrediction({}), 0.0);
  const auto logistic = MakeObjective(ObjectiveType::kLogistic);
  // Base rate 0.25 -> logit(0.25).
  EXPECT_NEAR(logistic->InitialRawPrediction({0, 0, 0, 1}),
              std::log(0.25 / 0.75), 1e-9);
}

TEST(ObjectiveTest, LabelValidation) {
  const auto logistic = MakeObjective(ObjectiveType::kLogistic);
  EXPECT_TRUE(logistic->ValidateLabels({0, 1, 1, 0}).ok());
  EXPECT_FALSE(logistic->ValidateLabels({0, 0.5}).ok());
  const auto squared = MakeObjective(ObjectiveType::kSquaredError);
  EXPECT_TRUE(squared->ValidateLabels({-5, 100}).ok());
  EXPECT_FALSE(squared->ValidateLabels({std::nan("")}).ok());
}

TEST(ObjectiveTest, DefaultMetrics) {
  const auto squared = MakeObjective(ObjectiveType::kSquaredError);
  EXPECT_STREQ(squared->DefaultMetricName(), "rmse");
  EXPECT_NEAR(squared->EvalDefaultMetric({1, 2}, {2, 2}),
              std::sqrt(0.5), 1e-12);
  const auto logistic = MakeObjective(ObjectiveType::kLogistic);
  EXPECT_STREQ(logistic->DefaultMetricName(), "logloss");
  EXPECT_NEAR(logistic->EvalDefaultMetric({1.0}, {0.5}), std::log(2.0),
              1e-9);
}

double PoissonLoss(double y, double f) {
  // Negative log-likelihood up to constants: exp(f) - y * f.
  return std::exp(f) - y * f;
}

TEST(ObjectiveTest, PoissonGradientsMatchNumeric) {
  const auto objective = MakeObjective(ObjectiveType::kPoisson);
  for (double raw : {-1.0, 0.0, 1.5}) {
    for (double label : {0.0, 1.0, 7.0}) {
      const GradientPair gp = objective->ComputeGradient(label, raw);
      EXPECT_NEAR(gp.grad, NumericGrad(label, raw, PoissonLoss), 1e-4);
      EXPECT_GT(gp.hess, 0.0);
    }
  }
}

TEST(ObjectiveTest, PoissonTransformAndLabels) {
  const auto objective = MakeObjective(ObjectiveType::kPoisson);
  EXPECT_NEAR(objective->Transform(0.0), 1.0, 1e-12);
  EXPECT_NEAR(objective->InverseTransform(objective->Transform(1.3)), 1.3,
              1e-9);
  EXPECT_TRUE(objective->ValidateLabels({0, 3, 12}).ok());
  EXPECT_FALSE(objective->ValidateLabels({-1}).ok());
  // Base score for counts is log of the mean.
  EXPECT_NEAR(objective->InitialRawPrediction({2, 4}), std::log(3.0), 1e-9);
  EXPECT_STREQ(objective->DefaultMetricName(), "poisson-dev");
  // Deviance is zero at a perfect fit.
  EXPECT_NEAR(objective->EvalDefaultMetric({3.0}, {3.0}), 0.0, 1e-9);
  EXPECT_GT(objective->EvalDefaultMetric({3.0}, {1.0}), 0.0);
}

TEST(ObjectiveTest, ParseNames) {
  EXPECT_EQ(ParseObjectiveType("reg:squarederror").value(),
            ObjectiveType::kSquaredError);
  EXPECT_EQ(ParseObjectiveType("binary:logistic").value(),
            ObjectiveType::kLogistic);
  EXPECT_EQ(ParseObjectiveType("reg:pseudohuber").value(),
            ObjectiveType::kPseudoHuber);
  EXPECT_FALSE(ParseObjectiveType("bogus").ok());
  EXPECT_STREQ(ObjectiveTypeName(ObjectiveType::kLogistic),
               "binary:logistic");
}

}  // namespace
}  // namespace mysawh::gbt
