#include "util/status.h"

#include <gtest/gtest.h>

namespace mysawh {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition},
      {Status::AlreadyExists("e"), StatusCode::kAlreadyExists},
      {Status::IoError("f"), StatusCode::kIoError},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented},
      {Status::Internal("h"), StatusCode::kInternal},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
    EXPECT_NE(c.status.ToString().find(c.status.message()), std::string::npos);
  }
}

TEST(StatusTest, ToStringContainsCodeName) {
  EXPECT_EQ(Status::NotFound("xyz").ToString(), "Not found: xyz");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::Ok();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Result<int> DoubleIfPositive(int x) {
  MYSAWH_RETURN_NOT_OK(FailIfNegative(x));
  return 2 * x;
}

Result<int> ChainedViaMacro(int x) {
  MYSAWH_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(DoubleIfPositive(3).ok());
  EXPECT_EQ(DoubleIfPositive(3).value(), 6);
  EXPECT_FALSE(DoubleIfPositive(-1).ok());
}

TEST(ResultTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(ChainedViaMacro(5).ok());
  EXPECT_EQ(ChainedViaMacro(5).value(), 11);
  EXPECT_EQ(ChainedViaMacro(-2).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mysawh
