/// Unit tests of the compiled flat-forest inference block: exact
/// equivalence with the reference pointer walker, compile gates, the
/// checksummed serialization round trip, and Validate strictness.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "gbt/flat_forest.h"
#include "gbt/gbt_model.h"
#include "util/rng.h"

namespace mysawh::gbt {
namespace {

namespace fs = std::filesystem;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Dataset MakeData(int64_t rows, uint64_t seed, double missing_rate = 0.1) {
  Rng rng(seed);
  Dataset ds = Dataset::Create({"a", "b", "c", "d"});
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<double> x(4);
    for (auto& v : x) {
      v = rng.Uniform(0, 1) < missing_rate ? kNaN : rng.Uniform(-2, 2);
    }
    const double a = std::isnan(x[0]) ? 0.0 : x[0];
    const double b = std::isnan(x[1]) ? 0.0 : x[1];
    EXPECT_TRUE(ds.AddRow(x, std::sin(a) + b * b + rng.Normal(0, 0.1)).ok());
  }
  return ds;
}

GbtModel TrainModel(const Dataset& train, TreeMethod method,
                    int num_trees = 20) {
  GbtParams params;
  params.tree_method = method;
  params.num_trees = num_trees;
  params.max_depth = 4;
  return GbtModel::Train(train, params).value();
}

class FlatForestMethodTest : public ::testing::TestWithParam<TreeMethod> {};

TEST_P(FlatForestMethodTest, PredictRawBitIdenticalToReferenceWalker) {
  const Dataset train = MakeData(600, 1);
  const GbtModel model = TrainModel(train, GetParam());
  ASSERT_NE(model.flat_forest(), nullptr);
  const Dataset probe = MakeData(257, 2, /*missing_rate=*/0.25);
  const std::vector<double> flat = model.PredictRaw(probe).value();
  const std::vector<double> reference =
      model.PredictRawReference(probe).value();
  ASSERT_EQ(flat.size(), reference.size());
  for (size_t r = 0; r < flat.size(); ++r) {
    // Bit identity, not closeness: same additions in the same order.
    EXPECT_EQ(flat[r], reference[r]) << "row " << r;
  }
}

TEST_P(FlatForestMethodTest, CompiledShapeMatchesTheTrees) {
  const Dataset train = MakeData(400, 3);
  const GbtModel model = TrainModel(train, GetParam());
  const FlatForest* flat = model.flat_forest();
  ASSERT_NE(flat, nullptr);
  int64_t internal = 0, leaves = 0;
  for (const auto& tree : model.trees()) {
    for (int i = 0; i < tree.num_nodes(); ++i) {
      (tree.node(i).IsLeaf() ? leaves : internal) += 1;
    }
  }
  EXPECT_EQ(flat->num_nodes(), internal);
  EXPECT_EQ(flat->num_leaves(), leaves);
  EXPECT_EQ(flat->num_trees(), static_cast<int>(model.trees().size()));
  EXPECT_EQ(flat->num_features(), model.num_features());
  EXPECT_TRUE(flat->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Methods, FlatForestMethodTest,
                         ::testing::Values(TreeMethod::kHist,
                                           TreeMethod::kExact));

TEST(FlatForestTest, BinRowMatchesThresholdComparisons) {
  // A hand-built tree: bin quantization must reproduce v < t for values
  // on, between, and beyond the cuts, including -0.0 and infinities.
  std::vector<TreeNode> nodes(3);
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[0].feature = 0;
  nodes[0].threshold = 0.0;
  nodes[0].cover = 2.0;
  nodes[1].value = -1.0;
  nodes[1].cover = 1.0;
  nodes[2].value = 1.0;
  nodes[2].cover = 1.0;
  std::vector<RegressionTree> trees;
  trees.push_back(RegressionTree::FromNodes(std::move(nodes)));
  const FlatForest flat = FlatForest::Compile(trees, 1).value();
  for (double v : {-1.0, -0.0, 0.0, 0.5, 1.0,
                   -std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::infinity()}) {
    uint8_t bin = 0;
    flat.BinRow(&v, &bin);
    const bool flat_left = bin < flat.bin_threshold(flat.root(0));
    EXPECT_EQ(flat_left, v < 0.0) << "v=" << v;
  }
  double nan = kNaN;
  uint8_t bin = 0;
  flat.BinRow(&nan, &bin);
  EXPECT_EQ(bin, kFlatMissingBin);
}

TEST(FlatForestTest, SerializeRoundTripsBitIdentically) {
  const Dataset train = MakeData(500, 4);
  const GbtModel model = TrainModel(train, TreeMethod::kHist);
  const FlatForest* flat = model.flat_forest();
  ASSERT_NE(flat, nullptr);
  const std::string text = flat->Serialize();
  const FlatForest restored = FlatForest::Deserialize(text).value();
  EXPECT_EQ(restored.Serialize(), text);
  const Dataset probe = MakeData(100, 5, /*missing_rate=*/0.3);
  std::vector<double> a(static_cast<size_t>(probe.num_rows()));
  std::vector<double> b(a.size());
  flat->PredictRaw(probe, model.base_score(), a.data());
  restored.PredictRaw(probe, model.base_score(), b.data());
  EXPECT_EQ(a, b);
}

TEST(FlatForestTest, FileRoundTripThroughChecksummedEnvelope) {
  const Dataset train = MakeData(300, 6);
  const GbtModel model = TrainModel(train, TreeMethod::kHist, 8);
  const FlatForest* flat = model.flat_forest();
  ASSERT_NE(flat, nullptr);
  const fs::path dir = fs::temp_directory_path() /
                       ("mysawh_flat_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string path = (dir / "forest.flat").string();
  ASSERT_TRUE(flat->SaveToFile(path).ok());
  const FlatForest restored = FlatForest::LoadFromFile(path).value();
  EXPECT_EQ(restored.Serialize(), flat->Serialize());
  fs::remove_all(dir);
}

TEST(FlatForestTest, TooManyDistinctThresholdsFallsBackToReference) {
  // 300 distinct split thresholds on one feature exceed the uint8 bin
  // encoding: Compile must refuse and the model must keep predicting
  // through the reference walker.
  std::vector<RegressionTree> trees;
  for (int t = 0; t < 300; ++t) {
    std::vector<TreeNode> nodes(3);
    nodes[0].left = 1;
    nodes[0].right = 2;
    nodes[0].feature = 0;
    nodes[0].threshold = static_cast<double>(t) / 300.0;
    nodes[0].cover = 2.0;
    nodes[1].value = -1.0;
    nodes[1].cover = 1.0;
    nodes[2].value = 1.0;
    nodes[2].cover = 1.0;
    trees.push_back(RegressionTree::FromNodes(std::move(nodes)));
  }
  const auto compiled = FlatForest::Compile(trees, 1);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FlatForestTest, DeserializedModelCompilesAndMatches) {
  const Dataset train = MakeData(400, 7);
  const GbtModel model = TrainModel(train, TreeMethod::kHist);
  const GbtModel restored =
      GbtModel::Deserialize(model.Serialize()).value();
  ASSERT_NE(restored.flat_forest(), nullptr);
  const Dataset probe = MakeData(64, 8, /*missing_rate=*/0.2);
  EXPECT_EQ(restored.PredictRaw(probe).value(),
            model.PredictRawReference(probe).value());
}

TEST(FlatForestTest, SingleLeafTreesCompile) {
  // Depth-0 trees (e.g. num_trees past convergence) have a leaf root; the
  // flat block must carry them as pure constants.
  std::vector<TreeNode> nodes(1);
  nodes[0].value = 0.25;
  nodes[0].cover = 10.0;
  std::vector<RegressionTree> trees;
  trees.push_back(RegressionTree::FromNodes(std::move(nodes)));
  const FlatForest flat = FlatForest::Compile(trees, 2).value();
  EXPECT_EQ(flat.num_nodes(), 0);
  EXPECT_EQ(flat.num_leaves(), 1);
  EXPECT_EQ(flat.max_depth(), 0);
  EXPECT_TRUE(flat.Validate().ok());
  Dataset probe = Dataset::Create({"a", "b"});
  ASSERT_TRUE(probe.AddRow({0.5, kNaN}, 0.0).ok());
  double out = 0.0;
  flat.PredictRaw(probe, 1.0, &out);
  EXPECT_EQ(out, 1.25);
  const FlatForest restored = FlatForest::Deserialize(flat.Serialize()).value();
  EXPECT_EQ(restored.Serialize(), flat.Serialize());
}

}  // namespace
}  // namespace mysawh::gbt
