/// Unit tests of the split-finding engine itself, on hand-crafted gradient
/// configurations where the optimal split is known analytically.

#include "gbt/trainer.h"

#include <gtest/gtest.h>

#include <array>
#include <limits>

#include "util/metrics.h"

namespace mysawh::gbt {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// A step function in x: y = -1 for x < 0.5, +1 otherwise. The unique
/// optimal first split is at x = 0.5.
Dataset MakeStepData() {
  Dataset ds = Dataset::Create({"x"});
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i) / 100.0;
    EXPECT_TRUE(ds.AddRow({x}, x < 0.5 ? -1.0 : 1.0).ok());
  }
  return ds;
}

class TrainerSplitTest : public ::testing::TestWithParam<TreeMethod> {};

TEST_P(TrainerSplitTest, FindsTheStepBoundary) {
  const Dataset train = MakeStepData();
  GbtParams params;
  params.num_trees = 1;
  params.max_depth = 1;
  params.learning_rate = 1.0;
  params.reg_lambda = 0.0;
  params.tree_method = GetParam();
  params.max_bins = 256;
  const GbtModel model = GbtModel::Train(train, params).value();
  ASSERT_EQ(model.trees().size(), 1u);
  const RegressionTree& tree = model.trees()[0];
  ASSERT_EQ(tree.num_nodes(), 3);
  const TreeNode& root = tree.node(0);
  EXPECT_EQ(root.feature, 0);
  EXPECT_NEAR(root.threshold, 0.495, 0.02);
  // Leaf values recover the two levels exactly (lambda = 0, lr = 1).
  EXPECT_NEAR(tree.node(root.left).value, -1.0, 1e-9);
  EXPECT_NEAR(tree.node(root.right).value, 1.0, 1e-9);
  // Split gain for a clean step: 0.5 * (GL^2/HL + GR^2/HR - G^2/H)
  //  = 0.5 * (50 + 50 - 0) = 50.
  EXPECT_NEAR(root.gain, 50.0, 1.0);
}

TEST_P(TrainerSplitTest, MissingRowsRoutedToBetterSide) {
  // Missing x implies label +1 (same as the right side); the learned
  // default direction must send NaN right.
  Dataset train = Dataset::Create({"x"});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(train.AddRow({0.1}, -1.0).ok());
    ASSERT_TRUE(train.AddRow({0.9}, 1.0).ok());
    ASSERT_TRUE(train.AddRow({kNaN}, 1.0).ok());
  }
  GbtParams params;
  params.num_trees = 1;
  params.max_depth = 1;
  params.learning_rate = 1.0;
  params.tree_method = GetParam();
  const GbtModel model = GbtModel::Train(train, params).value();
  const RegressionTree& tree = model.trees()[0];
  ASSERT_EQ(tree.num_nodes(), 3);
  EXPECT_FALSE(tree.node(0).default_left);
  const double missing_row[] = {kNaN};
  EXPECT_GT(model.PredictRow(missing_row), 0.5);
}

TEST_P(TrainerSplitTest, GammaBlocksWeakSplits) {
  // A weak step (levels +-0.1 -> max gain = 0.5) is below gamma = 2.
  Dataset train = Dataset::Create({"x"});
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i) / 100.0;
    ASSERT_TRUE(train.AddRow({x}, x < 0.5 ? -0.1 : 0.1).ok());
  }
  GbtParams params;
  params.num_trees = 1;
  params.max_depth = 3;
  params.reg_lambda = 0.0;
  params.gamma = 2.0;
  params.tree_method = GetParam();
  const GbtModel model = GbtModel::Train(train, params).value();
  EXPECT_EQ(model.trees()[0].num_nodes(), 1) << "no split should pass gamma";
  params.gamma = 0.0;
  const GbtModel unblocked = GbtModel::Train(train, params).value();
  EXPECT_GT(unblocked.trees()[0].num_nodes(), 1);
}

TEST_P(TrainerSplitTest, MinSamplesLeafRespected) {
  const Dataset train = MakeStepData();
  GbtParams params;
  params.num_trees = 1;
  params.max_depth = 6;
  params.min_samples_leaf = 20;
  params.tree_method = GetParam();
  const GbtModel model = GbtModel::Train(train, params).value();
  const RegressionTree& tree = model.trees()[0];
  // Count rows reaching each leaf.
  std::vector<int> counts(static_cast<size_t>(tree.num_nodes()), 0);
  for (int64_t r = 0; r < train.num_rows(); ++r) {
    counts[static_cast<size_t>(tree.GetLeaf(train.row(r)))] += 1;
  }
  for (int i = 0; i < tree.num_nodes(); ++i) {
    if (tree.node(i).IsLeaf()) {
      EXPECT_GE(counts[static_cast<size_t>(i)], 20) << "leaf " << i;
    }
  }
}

TEST_P(TrainerSplitTest, MinChildWeightRespected) {
  const Dataset train = MakeStepData();
  GbtParams params;
  params.num_trees = 1;
  params.max_depth = 6;
  // Squared error: hessian = 1 per row, so cover == row count.
  params.min_child_weight = 30.0;
  params.tree_method = GetParam();
  const GbtModel model = GbtModel::Train(train, params).value();
  const RegressionTree& tree = model.trees()[0];
  for (int i = 0; i < tree.num_nodes(); ++i) {
    EXPECT_GE(tree.node(i).cover, 30.0 - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, TrainerSplitTest,
                         ::testing::Values(TreeMethod::kHist,
                                           TreeMethod::kExact));

TEST(TrainerTest, L2ShrinksLeafValues) {
  const Dataset train = MakeStepData();
  GbtParams params;
  params.num_trees = 1;
  params.max_depth = 1;
  params.learning_rate = 1.0;
  params.reg_lambda = 50.0;  // 50 rows per leaf -> weight halves
  params.tree_method = TreeMethod::kExact;  // exact 50/50 split
  const GbtModel model = GbtModel::Train(train, params).value();
  const RegressionTree& tree = model.trees()[0];
  ASSERT_EQ(tree.num_nodes(), 3);
  EXPECT_NEAR(tree.node(tree.node(0).right).value, 0.5, 1e-9);
}

/// The histogram-pipeline node counters moved from TrainingLog into the
/// metrics registry; training twice with identical parameters must produce
/// identical per-run deltas through the new API.
TEST(TrainerTest, HistNodeCountersReportedThroughRegistry) {
  auto& registry = MetricsRegistry::Global();
  Counter* direct = registry.GetCounter("gbt.train.hist_nodes_direct");
  Counter* subtracted =
      registry.GetCounter("gbt.train.hist_nodes_subtracted");
  Counter* trees = registry.GetCounter("gbt.train.trees_grown");

  const Dataset train = MakeStepData();
  GbtParams params;
  params.num_trees = 4;
  params.max_depth = 3;  // deep enough for the sibling-subtraction trick
  params.tree_method = TreeMethod::kHist;

  auto train_once = [&] {
    const int64_t d0 = direct->Value();
    const int64_t s0 = subtracted->Value();
    const int64_t t0 = trees->Value();
    EXPECT_TRUE(GbtModel::Train(train, params).ok());
    return std::array<int64_t, 3>{direct->Value() - d0,
                                  subtracted->Value() - s0,
                                  trees->Value() - t0};
  };
  const auto first = train_once();
  const auto second = train_once();
  EXPECT_EQ(first, second) << "training is deterministic, so the registry "
                              "deltas must match run to run";
  EXPECT_GT(first[0], 0) << "hist mode accumulates node histograms";
  EXPECT_GT(first[1], 0) << "depth 3 must exercise sibling subtraction";
  EXPECT_EQ(first[2], 4) << "one trees_grown increment per boosted tree";
}

TEST(TrainerTest, ExactModeLeavesHistCountersUntouched) {
  auto& registry = MetricsRegistry::Global();
  Counter* direct = registry.GetCounter("gbt.train.hist_nodes_direct");
  Counter* subtracted =
      registry.GetCounter("gbt.train.hist_nodes_subtracted");
  const int64_t d0 = direct->Value();
  const int64_t s0 = subtracted->Value();
  const Dataset train = MakeStepData();
  GbtParams params;
  params.num_trees = 2;
  params.max_depth = 3;
  params.tree_method = TreeMethod::kExact;
  ASSERT_TRUE(GbtModel::Train(train, params).ok());
  EXPECT_EQ(direct->Value(), d0);
  EXPECT_EQ(subtracted->Value(), s0);
}

TEST(TrainerTest, L1ZeroesSmallLeaves) {
  // With alpha larger than |G| of a leaf, its weight is exactly zero.
  Dataset train = Dataset::Create({"x"});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(train.AddRow({static_cast<double>(i)}, 0.01).ok());
  }
  GbtParams params;
  params.num_trees = 1;
  params.max_depth = 1;
  params.learning_rate = 1.0;
  params.reg_alpha = 1.0;  // |G| = 0.1 at the root
  params.base_score = 0.0;
  const GbtModel model = GbtModel::Train(train, params).value();
  const double row[] = {5.0};
  EXPECT_DOUBLE_EQ(model.PredictRow(row), 0.0);
}

}  // namespace
}  // namespace mysawh::gbt
