#include "cohort/simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace mysawh::cohort {
namespace {

/// A small cohort for fast structural checks.
CohortConfig SmallConfig() {
  CohortConfig config;
  config.seed = 7;
  config.clinics = {{"A", 20, 0.0, 1.0}, {"B", 10, 0.05, 1.5}};
  return config;
}

TEST(SimulatorTest, PatientCountsPerClinic) {
  const Cohort cohort = CohortSimulator(SmallConfig()).Generate().value();
  EXPECT_EQ(cohort.patients.size(), 30u);
  int count_a = 0, count_b = 0;
  for (const auto& p : cohort.patients) {
    (p.clinic == 0 ? count_a : count_b) += 1;
  }
  EXPECT_EQ(count_a, 20);
  EXPECT_EQ(count_b, 10);
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  const Cohort a = CohortSimulator(SmallConfig()).Generate().value();
  const Cohort b = CohortSimulator(SmallConfig()).Generate().value();
  ASSERT_EQ(a.patients.size(), b.patients.size());
  for (size_t i = 0; i < a.patients.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.patients[i].frailty, b.patients[i].frailty);
    EXPECT_EQ(a.patients[i].outcomes[0].sppb, b.patients[i].outcomes[0].sppb);
    // Compare one PRO series cell-by-cell (NaN-aware).
    const auto& sa = a.patients[i].pro_weekly[0];
    const auto& sb = b.patients[i].pro_weekly[0];
    ASSERT_EQ(sa.size(), sb.size());
    for (int64_t w = 0; w < sa.size(); ++w) {
      EXPECT_EQ(sa.IsMissing(w), sb.IsMissing(w));
      if (!sa.IsMissing(w)) {
        EXPECT_DOUBLE_EQ(sa.at(w), sb.at(w));
      }
    }
  }
}

TEST(SimulatorTest, DifferentSeedsDiffer) {
  CohortConfig config_a = SmallConfig();
  CohortConfig config_b = SmallConfig();
  config_b.seed = 8;
  const Cohort a = CohortSimulator(config_a).Generate().value();
  const Cohort b = CohortSimulator(config_b).Generate().value();
  int different = 0;
  for (size_t i = 0; i < a.patients.size(); ++i) {
    different += a.patients[i].frailty != b.patients[i].frailty;
  }
  EXPECT_GT(different, 25);
}

TEST(SimulatorTest, AnswersWithinQuestionScales) {
  const Cohort cohort = CohortSimulator(SmallConfig()).Generate().value();
  for (const auto& patient : cohort.patients) {
    ASSERT_EQ(patient.pro_weekly.size(),
              static_cast<size_t>(cohort.questions.size()));
    for (int64_t q = 0; q < cohort.questions.size(); ++q) {
      const auto& question = cohort.questions.question(q);
      const auto& series = patient.pro_weekly[static_cast<size_t>(q)];
      EXPECT_EQ(series.size(), 18 * 4);
      for (int64_t w = 0; w < series.size(); ++w) {
        if (series.IsMissing(w)) continue;
        EXPECT_GE(series.at(w), 1.0);
        EXPECT_LE(series.at(w), question.levels);
        EXPECT_EQ(series.at(w), std::floor(series.at(w)))
            << "answers are ordinal integers";
      }
    }
  }
}

TEST(SimulatorTest, ActivityTracesPlausible) {
  const Cohort cohort = CohortSimulator(SmallConfig()).Generate().value();
  for (const auto& patient : cohort.patients) {
    EXPECT_EQ(patient.steps_daily.size(), 18 * 30);
    for (int64_t d = 0; d < patient.steps_daily.size(); ++d) {
      if (!patient.steps_daily.IsMissing(d)) {
        EXPECT_GE(patient.steps_daily.at(d), 0.0);
        EXPECT_LT(patient.steps_daily.at(d), 60000.0);
      }
      if (!patient.sleep_daily.IsMissing(d)) {
        EXPECT_GE(patient.sleep_daily.at(d), 3.0);
        EXPECT_LE(patient.sleep_daily.at(d), 11.0);
      }
      if (!patient.calories_daily.IsMissing(d)) {
        EXPECT_GT(patient.calories_daily.at(d), 500.0);
      }
    }
  }
}

TEST(SimulatorTest, OutcomesInRange) {
  const Cohort cohort = CohortSimulator(SmallConfig()).Generate().value();
  for (const auto& patient : cohort.patients) {
    ASSERT_EQ(patient.outcomes.size(), 2u);
    for (const auto& visit : patient.outcomes) {
      EXPECT_GE(visit.qol, 0.0);
      EXPECT_LE(visit.qol, 1.0);
      EXPECT_GE(visit.sppb, 0);
      EXPECT_LE(visit.sppb, 12);
    }
  }
}

TEST(SimulatorTest, DeficitsAreBinaryAndPerVisit) {
  const Cohort cohort = CohortSimulator(SmallConfig()).Generate().value();
  for (const auto& patient : cohort.patients) {
    ASSERT_EQ(patient.deficits_at_visit.size(), 3u);  // months 0, 9, 18
    for (const auto& visit : patient.deficits_at_visit) {
      ASSERT_EQ(visit.size(), 37u);
      for (double d : visit) EXPECT_TRUE(d == 0.0 || d == 1.0);
    }
  }
}

TEST(SimulatorTest, FrailtyDrivesCapacityDown) {
  const Cohort cohort = CohortSimulator(SmallConfig()).Generate().value();
  std::vector<double> frailty, capacity;
  for (const auto& patient : cohort.patients) {
    frailty.push_back(patient.frailty);
    double mean = 0;
    for (int d = 0; d < kNumDomains; ++d) {
      mean += patient.domain_by_month[0][static_cast<size_t>(d)];
    }
    capacity.push_back(mean / kNumDomains);
  }
  EXPECT_LT(PearsonCorrelation(frailty, capacity).value(), -0.5);
}

TEST(SimulatorTest, InjectedGapsRespectCap) {
  CohortConfig config = SmallConfig();
  config.gaps_per_series = 3.0;
  const Cohort cohort = CohortSimulator(config).Generate().value();
  GapStats stats;
  for (const auto& patient : cohort.patients) {
    for (const auto& series : patient.pro_weekly) {
      stats.Merge(ComputeGapStats(series));
    }
  }
  EXPECT_GT(stats.num_gaps, 0);
  EXPECT_LE(stats.max_length, config.max_gap_length);
  EXPECT_GT(stats.mean_length, 2.0);
  EXPECT_LT(stats.mean_length, 8.0);
}

TEST(SimulatorTest, PaperScaleCohortShape) {
  // Default config reproduces the paper's cohort dimensions.
  const CohortConfig config;
  const Cohort cohort = CohortSimulator(config).Generate().value();
  EXPECT_EQ(cohort.patients.size(), 261u);
  EXPECT_EQ(config.TotalPatients(), 261);
  EXPECT_EQ(config.NumWindows(), 2);
  EXPECT_EQ(cohort.questions.size(), 56);
  // Falls base rate in the paper's ~9-16% band.
  int64_t falls = 0, visits = 0;
  for (const auto& patient : cohort.patients) {
    for (const auto& outcome : patient.outcomes) {
      falls += outcome.falls ? 1 : 0;
      ++visits;
    }
  }
  const double rate = static_cast<double>(falls) / static_cast<double>(visits);
  EXPECT_GT(rate, 0.06);
  EXPECT_LT(rate, 0.20);
}

TEST(SimulatorTest, ConfigValidation) {
  CohortConfig config = SmallConfig();
  config.clinics.clear();
  EXPECT_FALSE(CohortSimulator(config).Generate().ok());
  config = SmallConfig();
  config.num_months = 10;  // not a multiple of 9
  EXPECT_FALSE(CohortSimulator(config).Generate().ok());
  config = SmallConfig();
  config.clinics[0].num_patients = 0;
  EXPECT_FALSE(CohortSimulator(config).Generate().ok());
  config = SmallConfig();
  config.low_adherence_fraction = 1.5;
  EXPECT_FALSE(CohortSimulator(config).Generate().ok());
  config = SmallConfig();
  config.activity_missing_day_prob = 1.0;
  EXPECT_FALSE(CohortSimulator(config).Generate().ok());
}

TEST(SimulatorTest, SingleWindowStudy) {
  // A 9-month study: one window, visits at months 0 and 9.
  CohortConfig config = SmallConfig();
  config.num_months = 9;
  const Cohort cohort = CohortSimulator(config).Generate().value();
  EXPECT_EQ(config.NumWindows(), 1);
  for (const auto& patient : cohort.patients) {
    EXPECT_EQ(patient.outcomes.size(), 1u);
    EXPECT_EQ(patient.deficits_at_visit.size(), 2u);
    EXPECT_EQ(patient.pro_weekly[0].size(), 9 * 4);
    EXPECT_EQ(patient.steps_daily.size(), 9 * 30);
    EXPECT_EQ(patient.domain_by_month.size(), 9u);
  }
}

TEST(SimulatorTest, IllnessEpisodesDepressCapacity) {
  CohortConfig config = SmallConfig();
  config.episodes_per_patient = 3.0;
  config.episode_depth_lo = 0.2;
  config.episode_depth_hi = 0.3;
  const Cohort with = CohortSimulator(config).Generate().value();
  config.episodes_per_patient = 0.0;
  const Cohort without = CohortSimulator(config).Generate().value();
  auto mean_capacity = [](const Cohort& cohort) {
    double total = 0;
    int64_t count = 0;
    for (const auto& patient : cohort.patients) {
      for (const auto& month : patient.domain_by_month) {
        for (double level : month) {
          total += level;
          ++count;
        }
      }
    }
    return total / static_cast<double>(count);
  };
  EXPECT_LT(mean_capacity(with), mean_capacity(without) - 0.01);
  // Episodes are recorded in the ground truth.
  int64_t episodes = 0;
  for (const auto& patient : with.patients) {
    episodes += static_cast<int64_t>(patient.episodes.size());
    for (const auto& episode : patient.episodes) {
      EXPECT_GE(episode.start_month, 0);
      EXPECT_LT(episode.start_month, config.num_months);
      EXPECT_GE(episode.depth, config.episode_depth_lo);
      EXPECT_LE(episode.depth, config.episode_depth_hi);
    }
  }
  EXPECT_GT(episodes, 30);
}

TEST(SimulatorTest, NoisyClinicHasNoisierAnswers) {
  // Generate two single-clinic cohorts differing only in noise_scale and
  // compare within-patient answer variance of a linear question.
  CohortConfig quiet;
  quiet.seed = 11;
  quiet.clinics = {{"Quiet", 40, 0.0, 0.4}};
  CohortConfig noisy = quiet;
  noisy.clinics = {{"Noisy", 40, 0.0, 2.5}};
  const Cohort a = CohortSimulator(quiet).Generate().value();
  const Cohort b = CohortSimulator(noisy).Generate().value();
  auto mean_variance = [](const Cohort& cohort) {
    double total = 0;
    int64_t count = 0;
    for (const auto& patient : cohort.patients) {
      std::vector<double> observed;
      for (int64_t w = 0; w < patient.pro_weekly[0].size(); ++w) {
        if (!patient.pro_weekly[0].IsMissing(w)) {
          observed.push_back(patient.pro_weekly[0].at(w));
        }
      }
      if (observed.size() > 5) {
        total += Variance(observed);
        ++count;
      }
    }
    return total / static_cast<double>(count);
  };
  EXPECT_GT(mean_variance(b), mean_variance(a) * 1.3);
}

}  // namespace
}  // namespace mysawh::cohort
