#!/bin/sh
# End-to-end smoke test of mysawh_cli: generate -> train -> predict ->
# evaluate -> explain -> importance, verifying outputs exist and the
# pipeline round-trips through CSV and the model file.
set -e
CLI="$1"
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT
cd "$WORKDIR"

"$CLI" help > /dev/null

"$CLI" generate --outcome SPPB --seed 7 --out-prefix smoke_ | grep -q "retained"
test -f smoke_dd_fi.csv
test -f smoke_kd.csv

"$CLI" train --data smoke_dd_fi.csv --num-trees 25 --out smoke.model \
  | grep -q "trained 25 trees"
test -f smoke.model

"$CLI" predict --model smoke.model --data smoke_dd_fi.csv --out preds.csv
test -f preds.csv
# Header plus one line per sample.
rows=$(wc -l < preds.csv)
test "$rows" -gt 1000

"$CLI" evaluate --model smoke.model --data smoke_dd_fi.csv | grep -q "1-MAPE"
"$CLI" explain --model smoke.model --data smoke_dd_fi.csv --row 2 --top 3 \
  | grep -q "prediction="
"$CLI" importance --model smoke.model --type gain | grep -q "fi_baseline"

# Unknown command fails with usage.
if "$CLI" bogus 2> /dev/null; then
  echo "expected failure for unknown command" >&2
  exit 1
fi
echo "cli smoke test passed"
