#!/bin/sh
# End-to-end smoke test of mysawh_cli: generate -> train -> predict ->
# evaluate -> explain -> importance, verifying outputs exist and the
# pipeline round-trips through CSV and the model file — for every model
# family — plus the documented exit-code contract (0 ok / 1 runtime
# failure / 2 usage error).
set -e
CLI="$1"
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT
cd "$WORKDIR"

# Captures the exit code of a command without tripping `set -e`.
code_of() {
  code=0
  "$@" > /dev/null 2>&1 || code=$?
}

# --- exit-code contract ---------------------------------------------------
code_of "$CLI" help
test "$code" -eq 0 || { echo "help must exit 0, got $code" >&2; exit 1; }

code_of "$CLI"
test "$code" -eq 2 || { echo "no command must exit 2, got $code" >&2; exit 1; }

code_of "$CLI" bogus
test "$code" -eq 2 || { echo "unknown command must exit 2, got $code" >&2; exit 1; }

# Malformed flags (repeated) are a usage error.
code_of "$CLI" train --seed 1 --seed 2
test "$code" -eq 2 || { echo "bad flags must exit 2, got $code" >&2; exit 1; }

# A well-formed command that fails at runtime exits 1.
code_of "$CLI" predict --model does_not_exist.model --data nope.csv
test "$code" -eq 1 || { echo "runtime failure must exit 1, got $code" >&2; exit 1; }

# --- GBT pipeline ---------------------------------------------------------
"$CLI" generate --outcome SPPB --seed 7 --out-prefix smoke_ | grep -q "retained"
test -f smoke_dd_fi.csv
test -f smoke_kd.csv

"$CLI" train --data smoke_dd_fi.csv --num-trees 25 --out smoke.model \
  | grep -q "trained 25 trees"
test -f smoke.model
grep -q "^kind: gbt$" smoke.model

"$CLI" predict --model smoke.model --data smoke_dd_fi.csv --out preds.csv
test -f preds.csv
# Header plus one line per sample.
rows=$(wc -l < preds.csv)
test "$rows" -gt 1000

"$CLI" evaluate --model smoke.model --data smoke_dd_fi.csv | grep -q "1-MAPE"
"$CLI" explain --model smoke.model --data smoke_dd_fi.csv --row 2 --top 3 \
  | grep -q "prediction="
"$CLI" importance --model smoke.model --type gain | grep -q "fi_baseline"

# --- linear and GAM families through the same registry --------------------
"$CLI" train --data smoke_dd_fi.csv --model_family linear --out smoke_linear.model \
  | grep -q "trained a linear model"
grep -q "^kind: linear$" smoke_linear.model
"$CLI" predict --model smoke_linear.model --data smoke_dd_fi.csv --out preds_linear.csv
test "$(wc -l < preds_linear.csv)" -eq "$rows"
"$CLI" evaluate --model smoke_linear.model --data smoke_dd_fi.csv | grep -q "1-MAPE"

"$CLI" train --data smoke_dd_fi.csv --model_family gam --num-cycles 5 \
  --out smoke_gam.model | grep -q "shape-function trees"
grep -q "^kind: gam$" smoke_gam.model
"$CLI" predict --model smoke_gam.model --data smoke_dd_fi.csv --out preds_gam.csv
test "$(wc -l < preds_gam.csv)" -eq "$rows"

# SHAP explanations stay tree-only: a clean failure, not a crash.
code_of "$CLI" explain --model smoke_linear.model --data smoke_dd_fi.csv
test "$code" -eq 1 || { echo "explain on linear must exit 1, got $code" >&2; exit 1; }

# --- corrupt input is detected and rejected with exit 2, never a crash ----
# A truncated model file fails its CRC32 envelope check (kDataLoss).
head -c "$(( $(wc -c < smoke.model) / 2 ))" smoke.model > truncated.model
code_of "$CLI" evaluate --model truncated.model --data smoke_dd_fi.csv
test "$code" -eq 2 || { echo "truncated model must exit 2, got $code" >&2; exit 1; }

# Trailing garbage breaks the envelope's byte count, too.
{ cat smoke.model; printf 'trailing garbage'; } > padded.model
code_of "$CLI" predict --model padded.model --data smoke_dd_fi.csv
test "$code" -eq 2 || { echo "padded model must exit 2, got $code" >&2; exit 1; }

# A malformed CSV (ragged row) is an invalid-input error (kInvalidArgument).
printf 'a,b\n1,2\n3,4,5\n' > malformed.csv
code_of "$CLI" predict --model smoke.model --data malformed.csv
test "$code" -eq 2 || { echo "malformed csv must exit 2, got $code" >&2; exit 1; }

# --- study checkpoint/resume ----------------------------------------------
# Not run here (a full 12-cell study is too slow for the smoke test); the
# resume contract is covered by tests/checkpoint_resume_test.cc, and the
# --resume flag contract is cheap to check:
code_of "$CLI" study --resume
test "$code" -eq 2 || { echo "--resume without dir must exit 2, got $code" >&2; exit 1; }

# --- unwritable artifact paths fail fast with exit 2 ----------------------
# The observability flags probe their destinations before the command runs,
# so a bad path is a usage error up front, not data loss at the end.
for flag in --trace-out --metrics-out --telemetry-out --audit-out --drift-baseline-out; do
  code_of "$CLI" evaluate "$flag" /does/not/exist/artifact.json
  test "$code" -eq 2 || { echo "$flag to a bad path must exit 2, got $code" >&2; exit 1; }
done

# --- telemetry artifact and the report dashboard --------------------------
"$CLI" train --data smoke_dd_fi.csv --num-trees 25 --out smoke2.model \
  --telemetry-out smoke.telemetry.jsonl | grep -q "wrote telemetry (1 streams)"
test -f smoke.telemetry.jsonl
head -1 smoke.telemetry.jsonl | grep -q '"schema":"mysawh-telemetry v1"'
grep -q '"stream":"train","type":"round","round":24' smoke.telemetry.jsonl
grep -q '"type":"features"' smoke.telemetry.jsonl

# Telemetry recording never changes what is trained.
cmp smoke.model smoke2.model || { echo "telemetry changed the model" >&2; exit 1; }

"$CLI" report --telemetry smoke.telemetry.jsonl --out smoke_dash.md \
  | grep -q "wrote dashboard"
grep -q "Learning curves" smoke_dash.md
grep -q "| train |" smoke_dash.md

# report needs at least one input, and rejects non-artifact files, as
# usage errors.
code_of "$CLI" report
test "$code" -eq 2 || { echo "report without inputs must exit 2, got $code" >&2; exit 1; }
code_of "$CLI" report --manifest smoke_dd_fi.csv
test "$code" -eq 2 || { echo "report on a CSV must exit 2, got $code" >&2; exit 1; }

# --- live-run status heartbeats -------------------------------------------
# A monitored run writes a final mysawh-status v1 heartbeat and, above all,
# trains exactly the same model as an unmonitored run.
"$CLI" train --data smoke_dd_fi.csv --num-trees 25 --out smoke3.model \
  --status-out smoke_status.json --status-interval-ms 20 \
  | grep -q "status heartbeats"
test -f smoke_status.json
grep -q '"schema":"mysawh-status v1"' smoke_status.json
grep -q '"final":true' smoke_status.json
cmp smoke.model smoke3.model || { echo "monitoring changed the model" >&2; exit 1; }

# The tailer reads the final heartbeat and exits cleanly.
if command -v python3 > /dev/null 2>&1; then
  SCRIPT_DIR=$(dirname "$0")
  python3 "$SCRIPT_DIR/../tools/watch_status.py" smoke_status.json --once \
    | grep -q "final" || { echo "watch_status.py missed the final heartbeat" >&2; exit 1; }
fi

# Observability flag contract: dependent flags are usage errors when their
# prerequisite is absent, and status paths are probed up front.
code_of "$CLI" evaluate --status-out /does/not/exist/status.json
test "$code" -eq 2 || { echo "bad --status-out must exit 2, got $code" >&2; exit 1; }
code_of "$CLI" train --data smoke_dd_fi.csv --span-costs --out x.model
test "$code" -eq 2 || { echo "--span-costs without --trace-out must exit 2, got $code" >&2; exit 1; }
code_of "$CLI" train --data smoke_dd_fi.csv --stall-timeout-ms 100 --out x.model
test "$code" -eq 2 || { echo "--stall-timeout-ms without --status-out must exit 2, got $code" >&2; exit 1; }
code_of "$CLI" train --data smoke_dd_fi.csv --status-interval-ms banana \
  --status-out s.json --out x.model
test "$code" -eq 2 || { echo "malformed --status-interval-ms must exit 2, got $code" >&2; exit 1; }

# --- model-quality observability: drift, calibration, audit ---------------
# Training can emit a drift baseline; evaluating the same cohort against it
# with a full-size window is self-evaluation and must stay clean — and
# capturing the baseline must not change the trained model. Sampling is
# pinned to 1: the exactly-clean property holds for the full population,
# while a subsample carries sampling noise by design.
"$CLI" train --data smoke_dd_fi.csv --num-trees 25 --out smoke4.model \
  --drift-baseline-out smoke_drift.json | grep -q "wrote drift baseline"
test -f smoke_drift.json
grep -q '"schema":"mysawh-drift-baseline v1"' smoke_drift.json
cmp smoke.model smoke4.model || { echo "baseline capture changed the model" >&2; exit 1; }
"$CLI" evaluate --model smoke4.model --data smoke_dd_fi.csv \
  --drift-baseline smoke_drift.json --drift-window 100000 --drift-sample-rate 1 \
  | grep -q "drift monitor: 1 window(s), 0 alert(s)"
# The regression evaluator reports absolute-error quantiles.
"$CLI" evaluate --model smoke.model --data smoke_dd_fi.csv \
  | grep -q "abs error quantiles:"

# An audited prediction run logs a deterministic sample and never changes
# the predictions themselves.
"$CLI" predict --model smoke.model --data smoke_dd_fi.csv --out preds_audited.csv \
  --audit-out smoke_audit.bin --audit-sample-rate 4 | grep -q "wrote audit log"
test -f smoke_audit.bin
cmp preds.csv preds_audited.csv || { echo "auditing changed predictions" >&2; exit 1; }

# audit-replay re-runs the logged rows and must match bit-for-bit — twice,
# with identical replay tables.
"$CLI" audit-replay --audit smoke_audit.bin --model smoke.model --out replay1.csv \
  | grep -q "all match"
"$CLI" audit-replay --audit smoke_audit.bin --model smoke.model --out replay2.csv > /dev/null
cmp replay1.csv replay2.csv || { echo "replay is not deterministic" >&2; exit 1; }

# Replaying against a different model is a runtime failure (exit 1): the
# log's model fingerprint no longer matches.
"$CLI" train --data smoke_dd_fi.csv --num-trees 5 --out smoke_small.model > /dev/null
code_of "$CLI" audit-replay --audit smoke_audit.bin --model smoke_small.model
test "$code" -eq 1 || { echo "wrong-model replay must exit 1, got $code" >&2; exit 1; }

# A truncated audit log fails its checksum envelope (exit 2).
head -c "$(( $(wc -c < smoke_audit.bin) / 2 ))" smoke_audit.bin > truncated.audit
code_of "$CLI" audit-replay --audit truncated.audit --model smoke.model
test "$code" -eq 2 || { echo "truncated audit log must exit 2, got $code" >&2; exit 1; }

# --- report degrades gracefully on sparse manifests -----------------------
# A manifest from an older pipeline (no cells / data_quality / telemetry
# blocks) must render with warnings, not fail: exit 0, warning on stderr.
printf '{"schema":"mysawh-run-manifest v1","git_describe":"none","fingerprint":"f0","seed":1,"eval_seed":2,"model_family":"gbt","cells":{},"data_quality":{},"metrics":{"counters":{},"gauges":{},"histograms":{}}}\n' > sparse_manifest.json
code=0
"$CLI" report --manifest sparse_manifest.json --out sparse_dash.md 2> sparse_warnings.txt || code=$?
test "$code" -eq 0 || { echo "sparse manifest must exit 0, got $code" >&2; exit 1; }
test -f sparse_dash.md
grep -q "warning:" sparse_warnings.txt || { echo "sparse manifest must warn on stderr" >&2; exit 1; }
# Manifests that predate the drift/calibration blocks skip those sections
# with a warning each, rather than failing.
grep -q "no drift block" sparse_warnings.txt || { echo "missing drift-block warning" >&2; exit 1; }
grep -q "no calibration block" sparse_warnings.txt || { echo "missing calibration-block warning" >&2; exit 1; }
grep -q "Provenance" sparse_dash.md

echo "cli smoke test passed"
