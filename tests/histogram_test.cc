/// Tests of the single-pass histogram pipeline: sibling subtraction must
/// reproduce a directly built histogram, the chunked parallel reduction
/// must match inline accumulation, and hist split decisions must be
/// unchanged relative to a straightforward per-feature boundary scan.

#include "gbt/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "gbt/binning.h"
#include "gbt/gbt_model.h"
#include "util/thread_pool.h"

namespace mysawh::gbt {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Fixture with ~12% missing cells. Labels are small integers so every
/// gradient sum is exactly representable and bit-equality assertions are
/// meaningful regardless of accumulation order.
Dataset MakeData(int64_t rows) {
  Dataset ds = Dataset::Create({"a", "b", "c", "d"});
  uint64_t state = 7;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 11;
  };
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<double> x(4);
    for (auto& v : x) {
      const uint64_t u = next();
      v = (u % 100) < 12 ? kNaN : static_cast<double>(u % 997);
    }
    const double y = static_cast<double>(next() % 17) - 8.0;
    EXPECT_TRUE(ds.AddRow(x, y).ok());
  }
  return ds;
}

/// Integer-valued gradients (hessian 1), exactly representable.
std::vector<GradientPair> MakeGpairs(const Dataset& data) {
  std::vector<GradientPair> gpairs;
  gpairs.reserve(static_cast<size_t>(data.num_rows()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    gpairs.push_back({-data.label(r), 1.0});
  }
  return gpairs;
}

TEST(HistogramTest, SiblingSubtractionMatchesDirectBuild) {
  const Dataset data = MakeData(3000);
  const BinnedData binned = BuildBinned(data, 64, nullptr).value();
  const std::vector<GradientPair> gpairs = MakeGpairs(data);
  const HistogramBuilder builder(binned.bins, binned.matrix, nullptr);
  const HistogramLayout layout(binned.bins, {0, 1, 2, 3});

  std::vector<int64_t> all, left, right;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    all.push_back(r);
    (r % 3 == 0 ? left : right).push_back(r);
  }
  const NodeHistogram parent = builder.Build(layout, all, gpairs);
  const NodeHistogram left_direct = builder.Build(layout, left, gpairs);
  const NodeHistogram right_direct = builder.Build(layout, right, gpairs);
  const NodeHistogram subtracted = NodeHistogram::Subtract(parent, left_direct);

  ASSERT_EQ(subtracted.num_slots(), right_direct.num_slots());
  for (int64_t i = 0; i < subtracted.num_slots(); ++i) {
    EXPECT_EQ(subtracted.slots_data()[i].sum_g, right_direct.slots_data()[i].sum_g);
    EXPECT_EQ(subtracted.slots_data()[i].sum_h, right_direct.slots_data()[i].sum_h);
    EXPECT_EQ(subtracted.slots_data()[i].count, right_direct.slots_data()[i].count);
  }
  ASSERT_EQ(subtracted.num_miss(), right_direct.num_miss());
  for (int64_t i = 0; i < subtracted.num_miss(); ++i) {
    EXPECT_EQ(subtracted.miss_data()[i].sum_g, right_direct.miss_data()[i].sum_g);
    EXPECT_EQ(subtracted.miss_data()[i].count, right_direct.miss_data()[i].count);
  }
}

TEST(HistogramTest, ParallelBuildMatchesInlineBuild) {
  const Dataset data = MakeData(5000);  // several 2048-row chunks
  const BinnedData binned = BuildBinned(data, 64, nullptr).value();
  const std::vector<GradientPair> gpairs = MakeGpairs(data);
  const HistogramLayout layout(binned.bins, {0, 1, 2, 3});
  std::vector<int64_t> rows;
  for (int64_t r = 0; r < data.num_rows(); ++r) rows.push_back(r);

  const HistogramBuilder inline_builder(binned.bins, binned.matrix, nullptr);
  const NodeHistogram a = inline_builder.Build(layout, rows, gpairs);
  ThreadPool pool(4);
  const HistogramBuilder pooled(binned.bins, binned.matrix, &pool);
  const NodeHistogram b = pooled.Build(layout, rows, gpairs);

  ASSERT_EQ(a.num_slots(), b.num_slots());
  for (int64_t i = 0; i < a.num_slots(); ++i) {
    EXPECT_EQ(a.slots_data()[i].sum_g, b.slots_data()[i].sum_g);
    EXPECT_EQ(a.slots_data()[i].sum_h, b.slots_data()[i].sum_h);
    EXPECT_EQ(a.slots_data()[i].count, b.slots_data()[i].count);
  }
  for (int64_t i = 0; i < a.num_miss(); ++i) {
    EXPECT_EQ(a.miss_data()[i].sum_g, b.miss_data()[i].sum_g);
    EXPECT_EQ(a.miss_data()[i].count, b.miss_data()[i].count);
  }
}

/// The best root split of one feature found by the pre-refactor style
/// single-feature scan: accumulate the feature's bins in ascending order
/// and evaluate each occupied boundary with missing routed either way,
/// using the trainer's exact gain formula and tie-breaks.
struct RefSplit {
  bool valid = false;
  int feature = -1;
  double threshold = 0.0;
  bool default_left = true;
  double gain = 0.0;
};

void RefScanFeature(const Dataset& data, const FeatureBins& bins, int feature,
                    const std::vector<GradientPair>& gpairs, double lambda,
                    RefSplit* best) {
  const int nb = bins.num_bins(feature);
  std::vector<HistEntry> slots(static_cast<size_t>(nb));
  HistEntry miss;
  double parent_g = 0.0, parent_h = 0.0;
  int64_t parent_c = 0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    const uint16_t b = bins.BinFor(feature, data.At(r, feature));
    HistEntry& e = b == kMissingBin ? miss : slots[b];
    e.sum_g += gpairs[static_cast<size_t>(r)].grad;
    e.sum_h += gpairs[static_cast<size_t>(r)].hess;
    ++e.count;
    parent_g += gpairs[static_cast<size_t>(r)].grad;
    parent_h += gpairs[static_cast<size_t>(r)].hess;
    ++parent_c;
  }
  auto score = [lambda](double g, double h) { return g * g / (h + lambda); };
  const double parent_score = score(parent_g, parent_h);
  const int64_t present = parent_c - miss.count;
  double acc_g = 0.0, acc_h = 0.0;
  int64_t acc_c = 0;
  for (int b = 0; b + 1 < nb; ++b) {
    acc_g += slots[static_cast<size_t>(b)].sum_g;
    acc_h += slots[static_cast<size_t>(b)].sum_h;
    acc_c += slots[static_cast<size_t>(b)].count;
    if (slots[static_cast<size_t>(b)].count == 0) continue;
    const double threshold = bins.cut(feature, b);
    const double rg = parent_g - miss.sum_g - acc_g;
    const double rh = parent_h - miss.sum_h - acc_h;
    const int64_t rc = parent_c - miss.count - acc_c;
    for (const bool miss_left : {true, false}) {
      if (!miss_left && miss.count == 0) break;
      const double gl = acc_g + (miss_left ? miss.sum_g : 0.0);
      const double hl = acc_h + (miss_left ? miss.sum_h : 0.0);
      const int64_t cl = acc_c + (miss_left ? miss.count : 0);
      const double gr = rg + (miss_left ? 0.0 : miss.sum_g);
      const double hr = rh + (miss_left ? 0.0 : miss.sum_h);
      const int64_t cr = rc + (miss_left ? 0 : miss.count);
      if (cl < 1 || cr < 1 || hl < 1.0 || hr < 1.0) continue;
      const double gain = 0.5 * (score(gl, hl) + score(gr, hr) - parent_score);
      if (gain <= 1e-10) continue;
      const bool better =
          !best->valid || gain > best->gain ||
          (gain == best->gain &&
           (feature < best->feature ||
            (feature == best->feature && threshold < best->threshold)));
      if (better) {
        best->valid = true;
        best->feature = feature;
        best->threshold = threshold;
        best->default_left = miss_left;
        best->gain = gain;
      }
    }
    if (acc_c == present) break;
  }
}

TEST(HistogramTest, HistSplitDecisionMatchesReferenceScan) {
  const Dataset data = MakeData(2500);
  // Exact gradients: base_score 0 and squared error make the root
  // gradient of row r equal to -label(r), an integer.
  GbtParams params;
  params.tree_method = TreeMethod::kHist;
  params.num_trees = 1;
  params.max_depth = 1;
  params.learning_rate = 1.0;
  params.base_score = 0.0;
  const GbtModel model = GbtModel::Train(data, params).value();
  ASSERT_EQ(model.trees().size(), 1u);
  const RegressionTree& tree = model.trees()[0];
  ASSERT_EQ(tree.num_nodes(), 3);
  const TreeNode& root = tree.node(0);

  const FeatureBins bins = FeatureBins::Build(data, params.max_bins).value();
  const std::vector<GradientPair> gpairs = MakeGpairs(data);
  RefSplit ref;
  for (int f = 0; f < 4; ++f) {
    RefScanFeature(data, bins, f, gpairs, params.reg_lambda, &ref);
  }
  ASSERT_TRUE(ref.valid);
  EXPECT_EQ(root.feature, ref.feature);
  EXPECT_DOUBLE_EQ(root.threshold, ref.threshold);
  EXPECT_EQ(root.default_left, ref.default_left);
  EXPECT_DOUBLE_EQ(root.gain, ref.gain);
}

}  // namespace
}  // namespace mysawh::gbt
