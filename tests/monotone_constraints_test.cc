#include <gtest/gtest.h>

#include <cmath>

#include "gbt/gbt_model.h"
#include "util/rng.h"

namespace mysawh::gbt {
namespace {

/// Noisy mostly-monotone relation in x0 plus a free second feature.
Dataset MakeData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds = Dataset::Create({"x0", "x1"});
  for (int64_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(0, 1);
    const double x1 = rng.Uniform(-1, 1);
    // Monotone trend + a local non-monotone wiggle + noise: without a
    // constraint the model happily fits the wiggle.
    const double y = 2.0 * x0 + 0.5 * std::sin(12.0 * x0) + 0.7 * x1 +
                     rng.Normal(0, 0.05);
    EXPECT_TRUE(ds.AddRow({x0, x1}, y).ok());
  }
  return ds;
}

/// Max violation of non-decreasing-ness of the model in feature 0 along a
/// grid, with feature 1 fixed.
double MaxDecrease(const GbtModel& model, double x1) {
  double worst = 0.0;
  double previous = -1e300;
  for (double x0 = 0.0; x0 <= 1.0; x0 += 0.01) {
    const double row[] = {x0, x1};
    const double pred = model.PredictRow(row);
    worst = std::max(worst, previous - pred);
    previous = pred;
  }
  return worst;
}

class MonotoneTest : public ::testing::TestWithParam<TreeMethod> {};

TEST_P(MonotoneTest, IncreasingConstraintHolds) {
  const Dataset train = MakeData(3000, 1);
  GbtParams params;
  params.num_trees = 80;
  params.tree_method = GetParam();
  params.monotone_constraints = {+1, 0};
  const GbtModel model = GbtModel::Train(train, params).value();
  for (double x1 : {-0.8, 0.0, 0.8}) {
    EXPECT_LE(MaxDecrease(model, x1), 1e-9) << "x1=" << x1;
  }
}

TEST_P(MonotoneTest, DecreasingConstraintHolds) {
  // Flip the target so the true trend is decreasing.
  Dataset train = MakeData(3000, 2);
  for (int64_t i = 0; i < train.num_rows(); ++i) {
    train.set_label(i, -train.label(i));
  }
  GbtParams params;
  params.num_trees = 80;
  params.tree_method = GetParam();
  params.monotone_constraints = {-1, 0};
  const GbtModel model = GbtModel::Train(train, params).value();
  // Non-increasing: the negated-decrease check.
  for (double x1 : {-0.5, 0.5}) {
    double previous = 1e300;
    for (double x0 = 0.0; x0 <= 1.0; x0 += 0.01) {
      const double row[] = {x0, x1};
      const double pred = model.PredictRow(row);
      EXPECT_LE(pred, previous + 1e-9);
      previous = pred;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, MonotoneTest,
                         ::testing::Values(TreeMethod::kHist,
                                           TreeMethod::kExact));

TEST(MonotoneConstraintsTest, UnconstrainedModelViolates) {
  // Sanity check that the test data actually tempts the model to be
  // non-monotone, so the constrained tests are meaningful.
  const Dataset train = MakeData(3000, 3);
  GbtParams params;
  params.num_trees = 80;
  const GbtModel model = GbtModel::Train(train, params).value();
  EXPECT_GT(MaxDecrease(model, 0.0), 0.01);
}

TEST(MonotoneConstraintsTest, ConstrainedFitStillTracksTrend) {
  const Dataset train = MakeData(3000, 4);
  GbtParams params;
  params.num_trees = 80;
  params.monotone_constraints = {+1, 0};
  const GbtModel model = GbtModel::Train(train, params).value();
  const double low[] = {0.05, 0.0};
  const double high[] = {0.95, 0.0};
  EXPECT_GT(model.PredictRow(high) - model.PredictRow(low), 1.0);
}

TEST(MonotoneConstraintsTest, ValidatesLengthAndValues) {
  const Dataset train = MakeData(50, 5);
  GbtParams params;
  params.monotone_constraints = {+1};  // wrong length (2 features)
  EXPECT_FALSE(GbtModel::Train(train, params).ok());
  params.monotone_constraints = {+2, 0};
  EXPECT_FALSE(params.Validate().ok());
}

TEST(MonotoneConstraintsTest, LogisticObjectiveRespectsConstraint) {
  Rng rng(6);
  Dataset train = Dataset::Create({"risk"});
  for (int i = 0; i < 2000; ++i) {
    const double risk = rng.Uniform(0, 1);
    const double p = 0.1 + 0.75 * risk;
    ASSERT_TRUE(train.AddRow({risk}, rng.Bernoulli(p) ? 1.0 : 0.0).ok());
  }
  GbtParams params;
  params.objective = ObjectiveType::kLogistic;
  params.num_trees = 60;
  params.monotone_constraints = {+1};
  const GbtModel model = GbtModel::Train(train, params).value();
  double previous = -1.0;
  for (double risk = 0.0; risk <= 1.0; risk += 0.02) {
    const double row[] = {risk};
    const double pred = model.PredictRow(row);
    EXPECT_GE(pred, previous - 1e-9);
    previous = pred;
  }
}

}  // namespace
}  // namespace mysawh::gbt
