#include "core/study.h"

#include <gtest/gtest.h>

namespace mysawh::core {
namespace {

/// One shared small, fast study for all assertions.
const StudyResult& GetStudy() {
  static const StudyResult* study = [] {
    StudyConfig config;
    config.cohort.seed = 31;
    config.cohort.clinics = {{"A", 30, 0.0, 1.0}, {"B", 15, 0.0, 1.4}};
    config.protocol.cv_folds = 3;
    auto result = RunFullStudy(config);
    return new StudyResult(std::move(result).value());
  }();
  return *study;
}

TEST(StudyTest, GridIsComplete) {
  const StudyResult& study = GetStudy();
  EXPECT_EQ(study.cells.size(), 12u);  // 3 outcomes x 2 approaches x 2 FI
  for (Outcome outcome : {Outcome::kQol, Outcome::kSppb, Outcome::kFalls}) {
    for (Approach approach :
         {Approach::kKnowledgeDriven, Approach::kDataDriven}) {
      for (bool with_fi : {false, true}) {
        EXPECT_TRUE(study.Cell(outcome, approach, with_fi).ok());
      }
    }
  }
  EXPECT_GT(study.retained, 0);
  EXPECT_LE(study.retained, study.total_candidates);
}

TEST(StudyTest, CentralClaimHolds) {
  const StudyResult& study = GetStudy();
  for (Outcome outcome : {Outcome::kQol, Outcome::kSppb}) {
    const auto* dd = study.Cell(outcome, Approach::kDataDriven, true).value();
    const auto* kd =
        study.Cell(outcome, Approach::kKnowledgeDriven, false).value();
    EXPECT_GT(dd->test_regression.one_minus_mape,
              kd->test_regression.one_minus_mape)
        << OutcomeName(outcome);
  }
  const auto* dd_falls =
      study.Cell(Outcome::kFalls, Approach::kDataDriven, true).value();
  const auto* kd_falls =
      study.Cell(Outcome::kFalls, Approach::kKnowledgeDriven, false).value();
  EXPECT_GE(dd_falls->test_classification.accuracy,
            kd_falls->test_classification.accuracy);
}

TEST(StudyTest, MarkdownReportContainsTables) {
  const StudyResult& study = GetStudy();
  const std::string report = study.ToMarkdown();
  EXPECT_NE(report.find("# DD vs KD study report"), std::string::npos);
  EXPECT_NE(report.find("| QoL |"), std::string::npos);
  EXPECT_NE(report.find("| SPPB |"), std::string::npos);
  EXPECT_NE(report.find("Falls classification"), std::string::npos);
  EXPECT_NE(report.find("DD w/ FI"), std::string::npos);
}

TEST(StudyTest, ResultsIndependentOfThreadCount) {
  // GetStudy ran with the default pool (hardware threads). A sequential
  // rerun of the same configuration must produce identical metrics: every
  // cell derives its randomness from the protocol seed alone.
  StudyConfig config;
  config.cohort.seed = 31;
  config.cohort.clinics = {{"A", 30, 0.0, 1.0}, {"B", 15, 0.0, 1.4}};
  config.protocol.cv_folds = 3;
  config.num_threads = 1;
  const StudyResult sequential = RunFullStudy(config).value();
  EXPECT_EQ(sequential.ToMarkdown(), GetStudy().ToMarkdown());
  for (const auto& [key, cell] : GetStudy().cells) {
    const auto it = sequential.cells.find(key);
    ASSERT_NE(it, sequential.cells.end());
    EXPECT_EQ(cell.HeadlineMetric(), it->second.HeadlineMetric());
    EXPECT_EQ(cell.model->Serialize(), it->second.model->Serialize());
  }
}

TEST(StudyTest, MissingCellLookupFails) {
  StudyResult empty;
  EXPECT_FALSE(empty.Cell(Outcome::kQol, Approach::kDataDriven, true).ok());
}

}  // namespace
}  // namespace mysawh::core
