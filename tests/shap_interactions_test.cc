#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "explain/tree_shap.h"
#include "gbt/gbt_model.h"
#include "util/rng.h"

namespace mysawh::explain {
namespace {

using gbt::GbtModel;
using gbt::GbtParams;

/// y = 2*a + b*c: a pure main effect plus a pure pairwise interaction.
Dataset MakeInteractionData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds = Dataset::Create({"a", "b", "c"});
  for (int64_t i = 0; i < n; ++i) {
    const double a = rng.Uniform(-1, 1);
    const double b = rng.Uniform(-1, 1);
    const double c = rng.Uniform(-1, 1);
    EXPECT_TRUE(ds.AddRow({a, b, c}, 2.0 * a + b * c).ok());
  }
  return ds;
}

GbtModel TrainModel(const Dataset& train, int depth = 4) {
  GbtParams params;
  params.num_trees = 120;
  params.max_depth = depth;
  params.learning_rate = 0.15;
  return GbtModel::Train(train, params).value();
}

TEST(ShapInteractionsTest, RowSumsEqualShapValues) {
  const Dataset train = MakeInteractionData(2000, 1);
  const GbtModel model = TrainModel(train);
  const TreeShap shap(&model);
  const Dataset probe = MakeInteractionData(15, 2);
  const auto m = static_cast<size_t>(model.num_features());
  for (int64_t r = 0; r < probe.num_rows(); ++r) {
    const auto phi = shap.Shap(probe.row(r));
    const auto inter = shap.ShapInteractions(probe.row(r));
    for (size_t i = 0; i < m; ++i) {
      double row_sum = 0.0;
      for (size_t j = 0; j < m; ++j) row_sum += inter[i * m + j];
      EXPECT_NEAR(row_sum, phi[i], 1e-6) << "row " << r << " feature " << i;
    }
  }
}

TEST(ShapInteractionsTest, LocalAccuracy) {
  const Dataset train = MakeInteractionData(1500, 3);
  const GbtModel model = TrainModel(train);
  const TreeShap shap(&model);
  const Dataset probe = MakeInteractionData(10, 4);
  for (int64_t r = 0; r < probe.num_rows(); ++r) {
    const auto inter = shap.ShapInteractions(probe.row(r));
    const double total =
        std::accumulate(inter.begin(), inter.end(), shap.expected_value());
    EXPECT_NEAR(total, model.PredictRowRaw(probe.row(r)), 1e-6);
  }
}

TEST(ShapInteractionsTest, ApproximatelySymmetric) {
  const Dataset train = MakeInteractionData(1500, 5);
  const GbtModel model = TrainModel(train);
  const TreeShap shap(&model);
  const Dataset probe = MakeInteractionData(8, 6);
  const auto m = static_cast<size_t>(model.num_features());
  for (int64_t r = 0; r < probe.num_rows(); ++r) {
    const auto inter = shap.ShapInteractions(probe.row(r));
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        EXPECT_NEAR(inter[i * m + j], inter[j * m + i], 1e-6);
      }
    }
  }
}

TEST(ShapInteractionsTest, IdentifiesTheInteractingPair) {
  const Dataset train = MakeInteractionData(3000, 7);
  const GbtModel model = TrainModel(train, /*depth=*/5);
  const TreeShap shap(&model);
  const auto m = static_cast<size_t>(model.num_features());
  // Average |interaction| over several rows: the (b, c) pair must dominate
  // every other off-diagonal entry; a participates only via its main effect.
  const Dataset probe = MakeInteractionData(40, 8);
  std::vector<double> mean_abs(m * m, 0.0);
  for (int64_t r = 0; r < probe.num_rows(); ++r) {
    const auto inter = shap.ShapInteractions(probe.row(r));
    for (size_t k = 0; k < inter.size(); ++k) {
      mean_abs[k] += std::abs(inter[k]);
    }
  }
  for (double& v : mean_abs) v /= static_cast<double>(probe.num_rows());
  const double bc = mean_abs[1 * m + 2];
  const double ab = mean_abs[0 * m + 1];
  const double ac = mean_abs[0 * m + 2];
  EXPECT_GT(bc, 3.0 * ab);
  EXPECT_GT(bc, 3.0 * ac);
  // a's main effect dominates its interactions.
  EXPECT_GT(mean_abs[0 * m + 0], 5.0 * ab);
}

TEST(ShapInteractionsTest, AdditiveModelHasNoInteractions) {
  // Purely additive target -> off-diagonals near zero.
  Rng rng(9);
  Dataset train = Dataset::Create({"x", "y"});
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.Uniform(-1, 1);
    const double y = rng.Uniform(-1, 1);
    ASSERT_TRUE(train.AddRow({x, y}, 1.5 * x - 0.8 * y).ok());
  }
  GbtParams params;
  params.num_trees = 80;
  params.max_depth = 3;
  const GbtModel model = GbtModel::Train(train, params).value();
  const TreeShap shap(&model);
  const double row[] = {0.4, -0.6};
  const auto inter = shap.ShapInteractions(row);
  EXPECT_LT(std::abs(inter[0 * 2 + 1]), 0.05);
  EXPECT_GT(std::abs(inter[0 * 2 + 0]), 0.3);
}

TEST(ShapInteractionsTest, WorksWithMissingInput) {
  const Dataset train = MakeInteractionData(1000, 10);
  const GbtModel model = TrainModel(train);
  const TreeShap shap(&model);
  const double row[] = {0.5, std::numeric_limits<double>::quiet_NaN(), 0.3};
  const auto inter = shap.ShapInteractions(row);
  const double total =
      std::accumulate(inter.begin(), inter.end(), shap.expected_value());
  EXPECT_NEAR(total, model.PredictRowRaw(row), 1e-6);
}

}  // namespace
}  // namespace mysawh::explain
