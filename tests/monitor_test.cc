/// Tests of the live-run monitor (util/monitor.h): heartbeat documents,
/// the stall watchdog's one-event latch, the failpoint-driven wedged-pool
/// scenario, and the /proc resource sampler feeding the heartbeats.

#include "util/monitor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "util/failpoint.h"
#include "util/file_io.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/resource_stats.h"
#include "util/thread_pool.h"

namespace mysawh {
namespace {

std::string TempStatusPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

JsonValue ReadStatus(const std::string& path) {
  auto text = ReadFileToString(path);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  auto parsed = ParseJson(*text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? *parsed : JsonValue();
}

void SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(MonitorTest, HeartbeatIsValidStatusV1WithAdvancingSeq) {
  MonitorOptions options;
  options.status_path = TempStatusPath("monitor_heartbeat.json");
  options.interval_ms = 600000;  // Only explicit ticks in this test.
  Monitor monitor(options);
  ASSERT_TRUE(monitor.Start().ok());
  EXPECT_EQ(Monitor::Current(), &monitor);

  // Start() writes seq 0 synchronously: the file exists before any work.
  JsonValue first = ReadStatus(options.status_path);
  ASSERT_TRUE(first.is_object());
  EXPECT_EQ(first.StringOr("schema", ""), "mysawh-status v1");
  EXPECT_EQ(first.NumberOr("seq", -1), 0);
  const JsonValue* final_flag = first.Find("final");
  ASSERT_NE(final_flag, nullptr);
  EXPECT_TRUE(final_flag->is_bool());
  EXPECT_FALSE(final_flag->bool_value());
  EXPECT_GE(first.NumberOr("uptime_ms", -1), 0);
  EXPECT_EQ(first.NumberOr("interval_ms", -1), 600000);
  const JsonValue* resource = first.Find("resource");
  ASSERT_NE(resource, nullptr);
  ASSERT_TRUE(resource->is_object());
  const JsonValue* progress = first.Find("progress");
  ASSERT_NE(progress, nullptr);
  EXPECT_TRUE(progress->is_object());
  ASSERT_NE(first.Find("study"), nullptr);
  ASSERT_NE(first.Find("queue_depth"), nullptr);
  const JsonValue* deltas = first.Find("counters_delta");
  ASSERT_NE(deltas, nullptr);
  EXPECT_TRUE(deltas->is_object());
  const JsonValue* events = first.Find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());

  ASSERT_TRUE(monitor.ForceHeartbeat().ok());
  EXPECT_EQ(ReadStatus(options.status_path).NumberOr("seq", -1), 1);

  monitor.Stop();
  EXPECT_EQ(Monitor::Current(), nullptr);
  JsonValue last = ReadStatus(options.status_path);
  EXPECT_EQ(last.NumberOr("seq", -1), 2);
  const JsonValue* final_last = last.Find("final");
  ASSERT_NE(final_last, nullptr);
  EXPECT_TRUE(final_last->bool_value());
  EXPECT_EQ(monitor.heartbeats_written(), 3);
}

TEST(MonitorTest, CounterDeltasReportOnlyChangedCounters) {
  Counter* moved = MetricsRegistry::Global().GetCounter("test.monitor_moved");
  Counter* still = MetricsRegistry::Global().GetCounter("test.monitor_still");
  (void)still;  // Registered but never incremented between heartbeats.
  MonitorOptions options;
  options.status_path = TempStatusPath("monitor_deltas.json");
  options.interval_ms = 600000;
  Monitor monitor(options);
  ASSERT_TRUE(monitor.Start().ok());

  moved->Increment(5);
  ASSERT_TRUE(monitor.ForceHeartbeat().ok());
  JsonValue status = ReadStatus(options.status_path);
  const JsonValue* deltas = status.Find("counters_delta");
  ASSERT_NE(deltas, nullptr);
  const JsonValue* moved_delta = deltas->Find("test.monitor_moved");
  ASSERT_NE(moved_delta, nullptr);
  EXPECT_EQ(moved_delta->number_value(), 5);
  EXPECT_EQ(deltas->Find("test.monitor_still"), nullptr)
      << "unchanged counters must not appear in the delta block";

  // A quiescent tick reports an empty delta for the moved counter too.
  ASSERT_TRUE(monitor.ForceHeartbeat().ok());
  status = ReadStatus(options.status_path);
  deltas = status.Find("counters_delta");
  ASSERT_NE(deltas, nullptr);
  EXPECT_EQ(deltas->Find("test.monitor_moved"), nullptr);
  monitor.Stop();
}

TEST(MonitorTest, StallLatchFiresOnceAndRearmsOnProgress) {
  Counter* progress =
      MetricsRegistry::Global().GetCounter("test.monitor_latch_progress");
  MonitorOptions options;
  options.status_path = TempStatusPath("monitor_latch.json");
  options.interval_ms = 600000;  // Ticks are driven explicitly below.
  options.stall_timeout_ms = 50;
  Monitor monitor(options);
  monitor.RegisterProgressCounter("test.monitor_latch_progress");
  ASSERT_TRUE(monitor.Start().ok());

  // Progress observed: no stall, baseline re-primed.
  progress->Increment();
  ASSERT_TRUE(monitor.ForceHeartbeat().ok());
  EXPECT_EQ(monitor.stall_events(), 0);

  // A full timeout of silence: exactly one stall, then the latch holds.
  SleepMs(120);
  ASSERT_TRUE(monitor.ForceHeartbeat().ok());
  EXPECT_EQ(monitor.stall_events(), 1);
  SleepMs(60);
  ASSERT_TRUE(monitor.ForceHeartbeat().ok());
  EXPECT_EQ(monitor.stall_events(), 1) << "latched stalls must not repeat";

  JsonValue status = ReadStatus(options.status_path);
  const JsonValue* events = status.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array_items().size(), 1u);
  const JsonValue& stall = events->array_items()[0];
  EXPECT_EQ(stall.StringOr("type", ""), "stall");
  EXPECT_GE(stall.NumberOr("silent_ms", -1), options.stall_timeout_ms);
  EXPECT_GE(stall.NumberOr("queue_depth", -1), 0);
  const JsonValue* spans = stall.Find("recent_spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_TRUE(spans->is_array());

  // Progress re-arms the latch; a second silent window is a second stall.
  progress->Increment();
  ASSERT_TRUE(monitor.ForceHeartbeat().ok());
  EXPECT_EQ(monitor.stall_events(), 1);
  SleepMs(120);
  ASSERT_TRUE(monitor.ForceHeartbeat().ok());
  EXPECT_EQ(monitor.stall_events(), 2);
  monitor.Stop();
}

TEST(MonitorTest, WedgedPoolTaskTriggersOneStallAndRunSurvives) {
  Counter* progress =
      MetricsRegistry::Global().GetCounter("test.monitor_wedge_progress");
  const int64_t progress_before = progress->Value();
  MonitorOptions options;
  options.status_path = TempStatusPath("monitor_wedge.json");
  options.interval_ms = 10;
  options.stall_timeout_ms = 60;
  Monitor monitor(options);
  monitor.RegisterProgressCounter("test.monitor_wedge_progress");
  ASSERT_TRUE(monitor.Start().ok());

  // One worker, first task wedged (the failpoint sleeps it for 250ms
  // before running the body): the pool goes silent for several timeout
  // windows with work queued behind the wedge. The watchdog must report
  // the stall exactly once, and every task must still complete.
  FailpointRegistry::Global().Enable("thread_pool/wedge",
                                     FailpointSpec::Once());
  {
    ThreadPool pool(1);
    for (int i = 0; i < 4; ++i) {
      pool.Submit([progress] { progress->Increment(); });
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (monitor.stall_events() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      SleepMs(5);
    }
    pool.Wait();
  }
  FailpointRegistry::Global().DisableAll();

  EXPECT_EQ(monitor.stall_events(), 1)
      << "one wedge is one stall event, not one per tick";
  EXPECT_EQ(progress->Value(), progress_before + 4)
      << "the wedged run must survive and finish its work";
  monitor.Stop();
  JsonValue status = ReadStatus(options.status_path);
  const JsonValue* events = status.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array_items().size(), 1u);
  EXPECT_EQ(events->array_items()[0].StringOr("type", ""), "stall");
}

TEST(MonitorTest, StartFailsCleanlyOnUnwritableStatusPath) {
  MonitorOptions options;
  options.status_path = ::testing::TempDir() + "/no_such_dir/status.json";
  Monitor monitor(options);
  EXPECT_FALSE(monitor.Start().ok());
  EXPECT_EQ(Monitor::Current(), nullptr);
  monitor.Stop();  // Must be a safe no-op after a failed Start().
}

TEST(ResourceStatsTest, SampleReportsLiveProcessNumbers) {
  const ResourceSample sample = SampleResources();
#ifdef __linux__
  ASSERT_TRUE(sample.valid);
  EXPECT_GT(sample.rss_bytes, 0);
  EXPECT_GE(sample.peak_rss_bytes, sample.rss_bytes);
  EXPECT_GE(sample.utime_ms + sample.stime_ms, 0);
  EXPECT_GE(sample.num_threads, 1);
  EXPECT_GT(sample.minor_faults, 0);
#else
  EXPECT_FALSE(sample.valid);
#endif
  const std::string json = ResourceSampleJson(sample);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->is_object());
  ASSERT_NE(parsed->Find("rss_bytes"), nullptr);
  ASSERT_NE(parsed->Find("valid"), nullptr);
}

TEST(ResourceStatsTest, TrackAllocFeedsGaugeAndThreadTotal) {
  Gauge* gauge = MetricsRegistry::Global().GetGauge(
      AllocCategoryGaugeName(AllocCategory::kCheckpoint));
  const int64_t gauge_before = gauge->Value();
  const int64_t thread_before = ThreadAllocBytes();
  TrackAlloc(AllocCategory::kCheckpoint, 4096);
  TrackAlloc(AllocCategory::kCheckpoint, 1024);
  EXPECT_EQ(gauge->Value(), gauge_before + 5120);
  EXPECT_EQ(ThreadAllocBytes(), thread_before + 5120);
  // The per-thread total is thread-local: another thread's allocations
  // must not leak into this thread's span cost deltas.
  std::thread other([] { TrackAlloc(AllocCategory::kCheckpoint, 999); });
  other.join();
  EXPECT_EQ(ThreadAllocBytes(), thread_before + 5120);
}

}  // namespace
}  // namespace mysawh
