#include "core/evaluation.h"

#include <gtest/gtest.h>

#include "cohort/simulator.h"
#include "core/sample_builder.h"

namespace mysawh::core {
namespace {

/// Shared small cohort + sample sets; built once for the whole test binary
/// because experiments train real models.
struct Fixture {
  cohort::Cohort cohort;
  SampleSets qol;
  SampleSets falls;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    cohort::CohortConfig config;
    config.seed = 23;
    config.clinics = {{"A", 40, 0.0, 1.0}, {"B", 20, 0.0, 1.4}};
    auto cohort = cohort::CohortSimulator(config).Generate().value();
    auto builder =
        SampleSetBuilder::Create(&cohort, SampleBuildOptions{}).value();
    auto qol = builder.Build(Outcome::kQol).value();
    auto falls = builder.Build(Outcome::kFalls).value();
    return new Fixture{std::move(cohort), std::move(qol), std::move(falls)};
  }();
  return *fixture;
}

gbt::GbtParams FastParams(Outcome outcome, Approach approach) {
  gbt::GbtParams params = DefaultGbtParams(outcome, approach);
  params.num_trees = 60;  // keep unit tests quick
  return params;
}

TEST(EvaluationTest, RegressionExperimentProducesSaneMetrics) {
  const auto& fixture = GetFixture();
  EvalProtocol protocol;
  const auto result =
      RunExperiment(fixture.qol.dd, Outcome::kQol, Approach::kDataDriven,
                    false, FastParams(Outcome::kQol, Approach::kDataDriven),
                    protocol)
          .value();
  EXPECT_FALSE(result.is_classification);
  EXPECT_GT(result.test_regression.one_minus_mape, 0.80);
  EXPECT_LT(result.test_regression.mae, 0.2);
  EXPECT_GT(result.cv_regression.one_minus_mape, 0.80);
  // 80/20 split.
  EXPECT_NEAR(static_cast<double>(result.test.num_rows()) /
                  static_cast<double>(fixture.qol.dd.num_rows()),
              0.2, 0.02);
  EXPECT_EQ(result.train.num_rows() + result.test.num_rows(),
            fixture.qol.dd.num_rows());
}

TEST(EvaluationTest, ClassificationExperimentStratifies) {
  const auto& fixture = GetFixture();
  EvalProtocol protocol;
  const auto result =
      RunExperiment(fixture.falls.dd, Outcome::kFalls, Approach::kDataDriven,
                    false, FastParams(Outcome::kFalls, Approach::kDataDriven),
                    protocol)
          .value();
  EXPECT_TRUE(result.is_classification);
  EXPECT_GT(result.test_classification.accuracy, 0.7);
  // Both classes present on both sides of the split.
  auto has_both = [](const Dataset& ds) {
    bool pos = false, neg = false;
    for (double y : ds.labels()) (y > 0.5 ? pos : neg) = true;
    return pos && neg;
  };
  EXPECT_TRUE(has_both(result.train));
  EXPECT_TRUE(has_both(result.test));
  EXPECT_DOUBLE_EQ(result.HeadlineMetric(),
                   result.test_classification.accuracy);
}

TEST(EvaluationTest, DataDrivenBeatsKnowledgeDriven) {
  // The paper's core claim, on a small cohort with fast parameters.
  const auto& fixture = GetFixture();
  EvalProtocol protocol;
  const auto dd =
      RunExperiment(fixture.qol.dd, Outcome::kQol, Approach::kDataDriven,
                    false, FastParams(Outcome::kQol, Approach::kDataDriven),
                    protocol)
          .value();
  const auto kd = RunExperiment(fixture.qol.kd, Outcome::kQol,
                                Approach::kKnowledgeDriven, false,
                                FastParams(Outcome::kQol,
                                           Approach::kKnowledgeDriven),
                                protocol)
                      .value();
  EXPECT_GT(dd.test_regression.one_minus_mape,
            kd.test_regression.one_minus_mape);
}

TEST(EvaluationTest, FiFeatureImproves) {
  const auto& fixture = GetFixture();
  EvalProtocol protocol;
  const auto without =
      RunExperiment(fixture.qol.kd, Outcome::kQol, Approach::kKnowledgeDriven,
                    false,
                    FastParams(Outcome::kQol, Approach::kKnowledgeDriven),
                    protocol)
          .value();
  const auto with_fi =
      RunExperiment(fixture.qol.kd_fi, Outcome::kQol,
                    Approach::kKnowledgeDriven, true,
                    FastParams(Outcome::kQol, Approach::kKnowledgeDriven),
                    protocol)
          .value();
  EXPECT_GT(with_fi.test_regression.one_minus_mape,
            without.test_regression.one_minus_mape - 0.005);
  EXPECT_TRUE(with_fi.with_fi);
  EXPECT_FALSE(without.with_fi);
}

TEST(EvaluationTest, ValidatesArguments) {
  const auto& fixture = GetFixture();
  EvalProtocol protocol;
  protocol.cv_folds = 1;
  EXPECT_FALSE(RunExperiment(fixture.qol.dd, Outcome::kQol,
                             Approach::kDataDriven, false, protocol)
                   .ok());
  Dataset tiny = Dataset::Create({"x"});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tiny.AddRow({1.0 * i}, 1.0).ok());
  }
  EXPECT_FALSE(RunExperiment(tiny, Outcome::kQol, Approach::kDataDriven,
                             false, EvalProtocol{})
                   .ok());
}

TEST(EvaluationTest, DefaultParamsMatchOutcome) {
  const auto falls_params =
      DefaultGbtParams(Outcome::kFalls, Approach::kDataDriven);
  EXPECT_EQ(falls_params.objective, gbt::ObjectiveType::kLogistic);
  const auto qol_params =
      DefaultGbtParams(Outcome::kQol, Approach::kDataDriven);
  EXPECT_EQ(qol_params.objective, gbt::ObjectiveType::kSquaredError);
  const auto kd_params =
      DefaultGbtParams(Outcome::kQol, Approach::kKnowledgeDriven);
  EXPECT_LE(kd_params.max_depth, qol_params.max_depth);
  EXPECT_TRUE(qol_params.Validate().ok());
  EXPECT_TRUE(kd_params.Validate().ok());
}

TEST(EvaluationTest, ApproachNames) {
  EXPECT_STREQ(ApproachName(Approach::kDataDriven), "DD");
  EXPECT_STREQ(ApproachName(Approach::kKnowledgeDriven), "KD");
}

}  // namespace
}  // namespace mysawh::core
