// Deterministic corruption corpus: a saved model file and a checksummed CSV
// are subjected to hundreds of byte-level mutations (truncations, bit flips,
// line swaps and removals, garbage appends). Every mutated artifact must be
// rejected with a non-OK Status — never accepted, never a crash. Runs under
// ASan/UBSan in the CI robustness job, where any out-of-bounds read or
// overflow in the parsers turns into a hard failure.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/audit_log.h"
#include "data/dataset.h"
#include "gbt/flat_forest.h"
#include "gbt/gbt_model.h"
#include "model/model.h"
#include "util/csv.h"
#include "util/file_io.h"
#include "util/rng.h"
#include "util/status.h"

namespace mysawh {
namespace {

namespace fs = std::filesystem;

/// All mutations of the corpus, derived deterministically from `original`
/// with a fixed-seed Rng: the corpus is identical on every run.
std::vector<std::string> BuildMutations(const std::string& original) {
  Rng rng(20260806);
  std::vector<std::string> corpus;

  // Truncations: evenly spaced prefixes, plus every length near the ends
  // (header truncation, last-byte truncation).
  for (size_t len = 0; len < 16 && len < original.size(); ++len) {
    corpus.push_back(original.substr(0, len));
    corpus.push_back(original.substr(0, original.size() - 1 - len));
  }
  for (int i = 1; i <= 48; ++i) {
    corpus.push_back(
        original.substr(0, original.size() * static_cast<size_t>(i) / 50));
  }

  // Single bit flips at random offsets.
  for (int i = 0; i < 80; ++i) {
    std::string m = original;
    const auto pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(m.size()) - 1));
    m[pos] = static_cast<char>(
        m[pos] ^ static_cast<char>(1 << rng.UniformInt(0, 7)));
    corpus.push_back(std::move(m));
  }

  // Random byte replacements (multi-bit corruption).
  for (int i = 0; i < 40; ++i) {
    std::string m = original;
    const auto pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(m.size()) - 1));
    m[pos] = static_cast<char>(rng.UniformInt(0, 255));
    corpus.push_back(std::move(m));
  }

  // Line swaps and line removals (field/record reordering).
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < original.size()) {
    size_t end = original.find('\n', start);
    if (end == std::string::npos) end = original.size();
    lines.push_back(original.substr(start, end - start));
    start = end + 1;
  }
  auto join = [](const std::vector<std::string>& ls) {
    std::string out;
    for (const auto& l : ls) {
      out += l;
      out += '\n';
    }
    return out;
  };
  const auto num_lines = static_cast<int64_t>(lines.size());
  for (int i = 0; i < 30 && num_lines >= 2; ++i) {
    std::vector<std::string> swapped = lines;
    const auto a = static_cast<size_t>(rng.UniformInt(0, num_lines - 1));
    const auto b = static_cast<size_t>(rng.UniformInt(0, num_lines - 1));
    std::swap(swapped[a], swapped[b]);
    corpus.push_back(join(swapped));
  }
  for (int i = 0; i < 20 && num_lines >= 2; ++i) {
    std::vector<std::string> removed = lines;
    removed.erase(removed.begin() + rng.UniformInt(0, num_lines - 1));
    corpus.push_back(join(removed));
  }

  // Garbage appends (partial-write tails from a crashed producer).
  for (int i = 0; i < 20; ++i) {
    std::string m = original;
    const int64_t extra = rng.UniformInt(1, 64);
    for (int64_t j = 0; j < extra; ++j) {
      m += static_cast<char>(rng.UniformInt(0, 255));
    }
    corpus.push_back(std::move(m));
  }

  // Wholesale garbage of assorted sizes.
  for (int i = 0; i < 10; ++i) {
    std::string m;
    const int64_t size = rng.UniformInt(0, 256);
    for (int64_t j = 0; j < size; ++j) {
      m += static_cast<char>(rng.UniformInt(0, 255));
    }
    corpus.push_back(std::move(m));
  }

  // Any mutation that happens to reproduce the original (e.g. swapping two
  // identical lines) is not a corruption; drop it.
  corpus.erase(std::remove(corpus.begin(), corpus.end(), original),
               corpus.end());
  return corpus;
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

class CorruptionCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mysawh_corpus_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(CorruptionCorpusTest, MutatedModelFilesAlwaysRejected) {
  // A small but real model: multiple trees, several features.
  Rng rng(7);
  Dataset train = Dataset::Create({"x0", "x1", "x2"});
  for (int i = 0; i < 200; ++i) {
    const double x0 = rng.Uniform(-1.0, 1.0);
    const double x1 = rng.Uniform(-1.0, 1.0);
    const double x2 = rng.Uniform(-1.0, 1.0);
    ASSERT_TRUE(train.AddRow({x0, x1, x2}, x0 - 0.5 * x1 * x2).ok());
  }
  gbt::GbtParams params;
  params.num_trees = 10;
  params.max_depth = 3;
  auto model = gbt::GbtModel::Train(train, params);
  ASSERT_TRUE(model.ok());
  const std::string path = Path("model.txt");
  ASSERT_TRUE(model->SaveToFile(path).ok());
  auto original_or = ReadFileToString(path);
  ASSERT_TRUE(original_or.ok());
  const std::string original = *original_or;

  // Control: the untouched file loads.
  ASSERT_TRUE(model::Model::LoadFromFile(path).ok());

  const std::vector<std::string> corpus = BuildMutations(original);
  ASSERT_GE(corpus.size(), 200u);
  const std::string mutant_path = Path("mutant.model");
  int64_t rejected = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    WriteRaw(mutant_path, corpus[i]);
    auto loaded = model::Model::LoadFromFile(mutant_path);
    EXPECT_FALSE(loaded.ok()) << "mutation " << i << " was accepted";
    if (!loaded.ok()) ++rejected;
  }
  EXPECT_EQ(rejected, static_cast<int64_t>(corpus.size()));
}

TEST_F(CorruptionCorpusTest, MutatedChecksummedCsvAlwaysRejected) {
  CsvDocument doc;
  doc.header = {"patient", "month", "value"};
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    doc.rows.push_back({std::to_string(i % 7), std::to_string(i % 12),
                        std::to_string(rng.Uniform(0.0, 1.0))});
  }
  const std::string path = Path("data.csv");
  ASSERT_TRUE(WriteCsv(path, doc, /*checksummed=*/true).ok());
  auto original_or = ReadFileToString(path);
  ASSERT_TRUE(original_or.ok());
  const std::string original = *original_or;

  ASSERT_TRUE(ReadCsv(path, /*require_checksum=*/true).ok());

  const std::vector<std::string> corpus = BuildMutations(original);
  ASSERT_GE(corpus.size(), 200u);
  const std::string mutant_path = Path("mutant.csv");
  for (size_t i = 0; i < corpus.size(); ++i) {
    WriteRaw(mutant_path, corpus[i]);
    auto read = ReadCsv(mutant_path, /*require_checksum=*/true);
    EXPECT_FALSE(read.ok()) << "mutation " << i << " was accepted";
  }
}

/// A small trained model whose flat forest the flat-block tests mutate.
gbt::GbtModel TrainSmallModel() {
  Rng rng(13);
  Dataset train = Dataset::Create({"x0", "x1", "x2"});
  for (int i = 0; i < 200; ++i) {
    const double x0 = rng.Uniform(-1.0, 1.0);
    const double x1 = rng.Uniform(-1.0, 1.0);
    const double x2 = rng.Uniform(-1.0, 1.0);
    EXPECT_TRUE(train.AddRow({x0, x1, x2}, x0 + x1 * x2).ok());
  }
  gbt::GbtParams params;
  params.num_trees = 8;
  params.max_depth = 3;
  return gbt::GbtModel::Train(train, params).value();
}

TEST_F(CorruptionCorpusTest, MutatedFlatForestFilesAlwaysRejected) {
  const gbt::GbtModel model = TrainSmallModel();
  ASSERT_NE(model.flat_forest(), nullptr);
  const std::string path = Path("forest.flat");
  ASSERT_TRUE(model.flat_forest()->SaveToFile(path).ok());
  auto original_or = ReadFileToString(path);
  ASSERT_TRUE(original_or.ok());

  // Control: the untouched artifact loads.
  ASSERT_TRUE(gbt::FlatForest::LoadFromFile(path).ok());

  const std::vector<std::string> corpus = BuildMutations(*original_or);
  ASSERT_GE(corpus.size(), 200u);
  const std::string mutant_path = Path("mutant.flat");
  for (size_t i = 0; i < corpus.size(); ++i) {
    WriteRaw(mutant_path, corpus[i]);
    auto loaded = gbt::FlatForest::LoadFromFile(mutant_path);
    EXPECT_FALSE(loaded.ok()) << "mutation " << i << " was accepted";
  }
}

TEST_F(CorruptionCorpusTest, MutatedFlatPayloadsNeverCrashTheParser) {
  // Past the envelope CRC: the raw payload mutated directly, so the flat
  // parser and Validate() see every corruption. Under ASan/UBSan a missed
  // bounds check here becomes a hard failure.
  const gbt::GbtModel model = TrainSmallModel();
  ASSERT_NE(model.flat_forest(), nullptr);
  const std::string payload = model.flat_forest()->Serialize();
  int64_t accepted = 0, rejected = 0;
  for (const std::string& mutated : BuildMutations(payload)) {
    auto parsed = gbt::FlatForest::Deserialize(mutated);
    (parsed.ok() ? accepted : rejected) += 1;
  }
  EXPECT_GT(rejected, accepted);
}

TEST_F(CorruptionCorpusTest, FlatValidateRejectsTargetedCorruptionAsDataLoss) {
  // Surgical single-field corruptions that parse cleanly but violate the
  // structural invariants: Validate() must classify each as kDataLoss
  // (a corrupt artifact, not a caller error).
  const gbt::GbtModel model = TrainSmallModel();
  ASSERT_NE(model.flat_forest(), nullptr);
  const std::string payload = model.flat_forest()->Serialize();

  std::vector<std::string> lines;
  size_t start = 0;
  while (start < payload.size()) {
    size_t end = payload.find('\n', start);
    if (end == std::string::npos) end = payload.size();
    lines.push_back(payload.substr(start, end - start));
    start = end + 1;
  }
  auto join = [](const std::vector<std::string>& ls) {
    std::string out;
    for (const auto& l : ls) {
      out += l;
      out += '\n';
    }
    return out;
  };
  auto first_line_with = [&](const std::string& prefix) {
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].rfind(prefix, 0) == 0) return i;
    }
    ADD_FAILURE() << "no line with prefix " << prefix;
    return size_t{0};
  };
  // node <feature> <bin_threshold> <left> <right> <dl> <lf-hex> <rf-hex>
  const size_t node_line = first_line_with("node ");
  auto mutate_node_field = [&](size_t field, const std::string& value) {
    std::vector<std::string> mutated = lines;
    std::istringstream is(mutated[node_line]);
    std::vector<std::string> fields;
    std::string tok;
    while (is >> tok) fields.push_back(tok);
    fields[field] = value;
    std::string rebuilt = fields[0];
    for (size_t i = 1; i < fields.size(); ++i) rebuilt += " " + fields[i];
    mutated[node_line] = rebuilt;
    return join(mutated);
  };

  const struct {
    const char* what;
    std::string text;
  } cases[] = {
      // Split feature outside the compiled 3-feature space.
      {"feature out of range", mutate_node_field(1, "2000")},
      // Bin threshold 0 can never be reached (bins count cuts <= v).
      {"bin threshold zero", mutate_node_field(2, "0")},
      // Bin threshold beyond the feature's cut count.
      {"bin threshold too large", mutate_node_field(2, "254")},
      // Child ref far outside the node block.
      {"child out of range", mutate_node_field(3, "1000000")},
      // Self-loop: a child that is not strictly after its parent.
      {"child cycle", mutate_node_field(3, "0")},
      // Leaf ref outside the leaf array.
      {"leaf out of range", mutate_node_field(4, "-1000000")},
  };
  for (const auto& test_case : cases) {
    auto parsed = gbt::FlatForest::Deserialize(test_case.text);
    ASSERT_FALSE(parsed.ok()) << test_case.what << " was accepted";
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss)
        << test_case.what << ": " << parsed.status().ToString();
  }
}

/// A small audit log with a few dozen predict records.
std::string BuildAuditPayload() {
  core::AuditLog& log = core::AuditLog::Global();
  core::AuditOptions options;
  options.sample_rate = 1;
  EXPECT_TRUE(log.Configure(options).ok());
  Rng rng(17);
  Dataset data = Dataset::Create({"x0", "x1"});
  std::vector<double> preds;
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(
        data.AddRow({rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)}, 0.0)
            .ok());
    preds.push_back(rng.Uniform(0.0, 1.0));
  }
  log.RecordPredictBatch(123, data, preds);
  log.Disable();
  return log.SerializePayload();
}

TEST_F(CorruptionCorpusTest, MutatedAuditLogsAlwaysRejected) {
  core::AuditLog& log = core::AuditLog::Global();
  BuildAuditPayload();  // Populates the global log's record buffer.
  const std::string path = Path("audit.bin");
  ASSERT_TRUE(log.WriteToFile(path).ok());
  ASSERT_TRUE(core::ReadAuditFile(path).ok());
  auto original_or = ReadFileToString(path);
  ASSERT_TRUE(original_or.ok());

  const std::vector<std::string> corpus = BuildMutations(*original_or);
  ASSERT_GE(corpus.size(), 200u);
  const std::string mutant_path = Path("mutant.audit");
  for (size_t i = 0; i < corpus.size(); ++i) {
    WriteRaw(mutant_path, corpus[i]);
    auto read = core::ReadAuditFile(mutant_path);
    EXPECT_FALSE(read.ok()) << "mutation " << i << " was accepted";
    if (!read.ok()) {
      EXPECT_EQ(read.status().code(), StatusCode::kDataLoss)
          << "mutation " << i << ": " << read.status().ToString();
    }
  }
}

TEST_F(CorruptionCorpusTest, MutatedAuditPayloadsNeverCrashTheParser) {
  // Past the envelope CRC: the raw payload mutated directly, so every
  // corruption reaches the record parser (and its fingerprint integrity
  // check) instead of being caught by the checksum.
  const std::string payload = BuildAuditPayload();
  int64_t accepted = 0, rejected = 0;
  for (const std::string& mutated : BuildMutations(payload)) {
    auto parsed = core::ParseAuditPayload(mutated);
    (parsed.ok() ? accepted : rejected) += 1;
  }
  EXPECT_GT(rejected, accepted);
}

TEST_F(CorruptionCorpusTest, MutatedPayloadsNeverCrashTheParsers) {
  // Corrupt the *payload* and re-wrap it in a fresh, valid envelope, so the
  // mutation reaches the model/CSV parsers instead of being caught by the
  // CRC. Parsers must return cleanly either way (a mutated payload can in
  // principle still be well-formed, so acceptance is not asserted) — under
  // the sanitizers this drives out-of-bounds reads and overflows into the
  // open.
  Rng rng(3);
  Dataset train = Dataset::Create({"a", "b"});
  for (int i = 0; i < 100; ++i) {
    const double a = rng.Uniform(-1.0, 1.0);
    const double b = rng.Uniform(-1.0, 1.0);
    ASSERT_TRUE(train.AddRow({a, b}, a + b).ok());
  }
  gbt::GbtParams params;
  params.num_trees = 5;
  params.max_depth = 2;
  auto model = gbt::GbtModel::Train(train, params);
  ASSERT_TRUE(model.ok());
  const std::string payload = model->Serialize();
  int64_t accepted = 0, rejected = 0;
  for (const std::string& mutated : BuildMutations(payload)) {
    auto loaded = model::Model::Deserialize(mutated);
    (loaded.ok() ? accepted : rejected) += 1;
  }
  // The overwhelming majority of structural mutations must be rejected.
  EXPECT_GT(rejected, accepted);
}

}  // namespace
}  // namespace mysawh
