#include "series/time_series.h"

#include <gtest/gtest.h>

#include <limits>

namespace mysawh {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(TimeSeriesTest, BasicAccess) {
  TimeSeries s({1.0, kNaN, 3.0});
  EXPECT_EQ(s.size(), 3);
  EXPECT_FALSE(s.IsMissing(0));
  EXPECT_TRUE(s.IsMissing(1));
  EXPECT_EQ(s.NumMissing(), 1);
  s.set(1, 2.0);
  EXPECT_EQ(s.NumMissing(), 0);
}

TEST(TimeSeriesTest, FindGapsIdentifiesRuns) {
  TimeSeries s({kNaN, 1.0, kNaN, kNaN, 2.0, kNaN});
  const auto gaps = FindGaps(s);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0].start, 0);
  EXPECT_EQ(gaps[0].length, 1);
  EXPECT_EQ(gaps[1].start, 2);
  EXPECT_EQ(gaps[1].length, 2);
  EXPECT_EQ(gaps[2].start, 5);
  EXPECT_EQ(gaps[2].length, 1);
}

TEST(TimeSeriesTest, FindGapsNoMissing) {
  EXPECT_TRUE(FindGaps(TimeSeries({1, 2, 3})).empty());
  EXPECT_TRUE(FindGaps(TimeSeries(std::vector<double>{})).empty());
}

TEST(TimeSeriesTest, FindGapsAllMissing) {
  const auto gaps = FindGaps(TimeSeries({kNaN, kNaN}));
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].length, 2);
}

TEST(TimeSeriesTest, GapStats) {
  const auto stats =
      ComputeGapStats(TimeSeries({kNaN, 1.0, kNaN, kNaN, kNaN, 2.0}));
  EXPECT_EQ(stats.num_gaps, 2);
  EXPECT_EQ(stats.total_missing, 4);
  EXPECT_EQ(stats.max_length, 3);
  EXPECT_DOUBLE_EQ(stats.mean_length, 2.0);
}

TEST(TimeSeriesTest, GapStatsMergeWeightsMeans) {
  GapStats a;
  a.num_gaps = 2;
  a.total_missing = 4;
  a.max_length = 3;
  a.mean_length = 2.0;
  GapStats b;
  b.num_gaps = 6;
  b.total_missing = 30;
  b.max_length = 10;
  b.mean_length = 5.0;
  a.Merge(b);
  EXPECT_EQ(a.num_gaps, 8);
  EXPECT_EQ(a.total_missing, 34);
  EXPECT_EQ(a.max_length, 10);
  EXPECT_NEAR(a.mean_length, (2.0 * 2 + 5.0 * 6) / 8.0, 1e-12);
}

TEST(TimeSeriesTest, GapStatsMergeWithEmpty) {
  GapStats a;
  GapStats b;
  b.num_gaps = 1;
  b.total_missing = 5;
  b.max_length = 5;
  b.mean_length = 5.0;
  a.Merge(b);
  EXPECT_EQ(a.num_gaps, 1);
  EXPECT_DOUBLE_EQ(a.mean_length, 5.0);
}

}  // namespace
}  // namespace mysawh
