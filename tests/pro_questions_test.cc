#include "cohort/pro_questions.h"

#include <gtest/gtest.h>

#include <set>

namespace mysawh::cohort {
namespace {

TEST(ProQuestionBankTest, Has56Questions) {
  const ProQuestionBank bank = ProQuestionBank::Standard();
  EXPECT_EQ(bank.size(), 56);
}

TEST(ProQuestionBankTest, DomainCoverage) {
  const ProQuestionBank bank = ProQuestionBank::Standard();
  EXPECT_EQ(bank.DomainQuestions(IcDomain::kLocomotion).size(), 12u);
  EXPECT_EQ(bank.DomainQuestions(IcDomain::kCognition).size(), 11u);
  EXPECT_EQ(bank.DomainQuestions(IcDomain::kPsychological).size(), 11u);
  EXPECT_EQ(bank.DomainQuestions(IcDomain::kVitality).size(), 11u);
  EXPECT_EQ(bank.DomainQuestions(IcDomain::kSensory).size(), 11u);
}

TEST(ProQuestionBankTest, NamesAreUnique) {
  const ProQuestionBank bank = ProQuestionBank::Standard();
  const auto names = bank.Names();
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(ProQuestionBankTest, ScalesAreOrdinalRanges) {
  const ProQuestionBank bank = ProQuestionBank::Standard();
  for (const auto& q : bank.questions()) {
    EXPECT_GE(q.levels, 4) << q.name;
    EXPECT_LE(q.levels, 11) << q.name;
    EXPECT_GT(q.noise_sd, 0.0);
  }
}

TEST(ProQuestionBankTest, StressQuestionConfiguredForFig7) {
  const ProQuestionBank bank = ProQuestionBank::Standard();
  const int idx = bank.IndexOf(kStressQuestionName).value();
  const ProQuestion& q = bank.question(idx);
  EXPECT_EQ(q.domain, IcDomain::kPsychological);
  EXPECT_EQ(q.levels, 10);
  EXPECT_TRUE(q.reversed);
  EXPECT_EQ(q.shape, QuestionShape::kLinear);
}

TEST(ProQuestionBankTest, IndexOfUnknownFails) {
  const ProQuestionBank bank = ProQuestionBank::Standard();
  EXPECT_FALSE(bank.IndexOf("pro_unknown_99").ok());
}

TEST(ProQuestionBankTest, DeterministicAcrossCalls) {
  const ProQuestionBank a = ProQuestionBank::Standard();
  const ProQuestionBank b = ProQuestionBank::Standard();
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.question(i).name, b.question(i).name);
    EXPECT_EQ(a.question(i).levels, b.question(i).levels);
    EXPECT_EQ(a.question(i).reversed, b.question(i).reversed);
  }
}

TEST(ProQuestionBankTest, DomainNames) {
  EXPECT_STREQ(IcDomainName(IcDomain::kLocomotion), "locomotion");
  EXPECT_STREQ(IcDomainName(IcDomain::kSensory), "sensory");
}

}  // namespace
}  // namespace mysawh::cohort
