#include "explain/permutation_importance.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mysawh::explain {
namespace {

using gbt::GbtModel;
using gbt::GbtParams;

Dataset MakeData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds = Dataset::Create({"strong", "weak", "noise"});
  for (int64_t i = 0; i < n; ++i) {
    const double strong = rng.Uniform(-1, 1);
    const double weak = rng.Uniform(-1, 1);
    const double noise = rng.Uniform(-1, 1);
    const double y = 3.0 * strong + 0.3 * weak + rng.Normal(0, 0.02);
    EXPECT_TRUE(ds.AddRow({strong, weak, noise}, y).ok());
  }
  return ds;
}

TEST(PermutationImportanceTest, RanksFeaturesBySignal) {
  const Dataset train = MakeData(1500, 1);
  GbtParams params;
  params.num_trees = 60;
  const GbtModel model = GbtModel::Train(train, params).value();
  const Dataset test = MakeData(400, 2);
  const auto importance =
      ComputePermutationImportance(model, test, 3, 7).value();
  ASSERT_EQ(importance.features.size(), 3u);
  EXPECT_EQ(importance.features[0], "strong");
  EXPECT_EQ(importance.features[1], "weak");
  EXPECT_EQ(importance.features[2], "noise");
  // Shuffling the strong feature degrades the metric a lot; the noise
  // feature essentially not at all.
  EXPECT_GT(importance.importance[0], 10.0 * importance.importance[2] + 0.01);
  EXPECT_LT(importance.importance[2], 0.05);
  EXPECT_GT(importance.baseline_metric, 0.0);
}

TEST(PermutationImportanceTest, DeterministicGivenSeed) {
  const Dataset train = MakeData(400, 3);
  GbtParams params;
  params.num_trees = 20;
  const GbtModel model = GbtModel::Train(train, params).value();
  const auto a = ComputePermutationImportance(model, train, 2, 99).value();
  const auto b = ComputePermutationImportance(model, train, 2, 99).value();
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.importance, b.importance);
}

TEST(PermutationImportanceTest, ValidatesArguments) {
  const Dataset train = MakeData(100, 4);
  GbtParams params;
  params.num_trees = 5;
  const GbtModel model = GbtModel::Train(train, params).value();
  EXPECT_FALSE(ComputePermutationImportance(model, train, 0).ok());
  Dataset narrow = Dataset::Create({"x"});
  ASSERT_TRUE(narrow.AddRow({0.0}, 0.0).ok());
  ASSERT_TRUE(narrow.AddRow({1.0}, 1.0).ok());
  EXPECT_FALSE(ComputePermutationImportance(model, narrow).ok());
  Dataset tiny = train.Take({0}).value();
  EXPECT_FALSE(ComputePermutationImportance(model, tiny).ok());
}

TEST(PermutationImportanceTest, WorksForClassification) {
  Rng rng(5);
  Dataset train = Dataset::Create({"signal", "noise"});
  for (int i = 0; i < 1200; ++i) {
    const double signal = rng.Uniform(-1, 1);
    const double noise = rng.Uniform(-1, 1);
    ASSERT_TRUE(train.AddRow({signal, noise}, signal > 0 ? 1.0 : 0.0).ok());
  }
  GbtParams params;
  params.objective = gbt::ObjectiveType::kLogistic;
  params.num_trees = 40;
  const GbtModel model = GbtModel::Train(train, params).value();
  const auto importance =
      ComputePermutationImportance(model, train, 2, 11).value();
  EXPECT_EQ(importance.features[0], "signal");
  EXPECT_GT(importance.importance[0], importance.importance[1]);
}

}  // namespace
}  // namespace mysawh::explain
