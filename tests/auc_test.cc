#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.h"
#include "util/rng.h"

namespace mysawh::core {
namespace {

TEST(RocAucTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(RocAuc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}).value(), 1.0);
}

TEST(RocAucTest, PerfectlyWrongRanking) {
  EXPECT_DOUBLE_EQ(RocAuc({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}).value(), 0.0);
}

TEST(RocAucTest, AllTiedScoresIsChance) {
  EXPECT_DOUBLE_EQ(RocAuc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}).value(), 0.5);
}

TEST(RocAucTest, HandComputedMixedCase) {
  // positives {0.8, 0.4}, negatives {0.5, 0.2}.
  // Pairs: (0.8>0.5)=1, (0.8>0.2)=1, (0.4<0.5)=0, (0.4>0.2)=1 -> 3/4.
  EXPECT_DOUBLE_EQ(RocAuc({1, 0, 1, 0}, {0.8, 0.5, 0.4, 0.2}).value(), 0.75);
}

TEST(RocAucTest, TiesCountHalf) {
  // positive 0.5 ties negative 0.5 -> 0.5 credit of 1 pair.
  EXPECT_DOUBLE_EQ(RocAuc({1, 0}, {0.5, 0.5}).value(), 0.5);
}

TEST(RocAucTest, InvarianceToMonotoneTransform) {
  Rng rng(1);
  std::vector<double> labels, scores, squashed;
  for (int i = 0; i < 500; ++i) {
    const double s = rng.Uniform(-3, 3);
    labels.push_back(rng.Bernoulli(1.0 / (1.0 + std::exp(-s))) ? 1.0 : 0.0);
    scores.push_back(s);
    squashed.push_back(1.0 / (1.0 + std::exp(-s)));  // sigmoid
  }
  EXPECT_NEAR(RocAuc(labels, scores).value(),
              RocAuc(labels, squashed).value(), 1e-12);
  EXPECT_GT(RocAuc(labels, scores).value(), 0.7);
}

TEST(RocAucTest, Validation) {
  EXPECT_FALSE(RocAuc({}, {}).ok());
  EXPECT_FALSE(RocAuc({1.0}, {0.5, 0.6}).ok());
  EXPECT_FALSE(RocAuc({1, 1}, {0.5, 0.6}).ok());   // one class only
  EXPECT_FALSE(RocAuc({0, 0}, {0.5, 0.6}).ok());
  EXPECT_FALSE(RocAuc({0, 0.5}, {0.5, 0.6}).ok()); // non-binary label
}

TEST(BrierScoreTest, HandComputed) {
  EXPECT_DOUBLE_EQ(BrierScore({1, 0}, {1.0, 0.0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(BrierScore({1, 0}, {0.5, 0.5}).value(), 0.25);
  EXPECT_NEAR(BrierScore({1, 0, 1}, {0.8, 0.3, 0.6}).value(),
              (0.04 + 0.09 + 0.16) / 3.0, 1e-12);
}

TEST(BrierScoreTest, Validation) {
  EXPECT_FALSE(BrierScore({}, {}).ok());
  EXPECT_FALSE(BrierScore({0.5}, {0.5}).ok());
  EXPECT_FALSE(BrierScore({1.0}, {0.5, 0.6}).ok());
}

TEST(CalibrationTest, PerfectlyCalibratedModel) {
  Rng rng(2);
  std::vector<double> labels, probs;
  for (int i = 0; i < 20000; ++i) {
    const double p = rng.Uniform();
    probs.push_back(p);
    labels.push_back(rng.Bernoulli(p) ? 1.0 : 0.0);
  }
  const auto bins = ComputeCalibrationBins(labels, probs, 10).value();
  ASSERT_EQ(bins.size(), 10u);
  for (const auto& bin : bins) {
    EXPECT_NEAR(bin.observed_rate, bin.mean_predicted, 0.05);
    EXPECT_GT(bin.count, 0);
  }
}

TEST(CalibrationTest, OverconfidentModelShowsGap) {
  // Model always predicts 0.95 but the true rate is 0.5.
  std::vector<double> labels, probs;
  for (int i = 0; i < 100; ++i) {
    labels.push_back(i % 2 == 0 ? 1.0 : 0.0);
    probs.push_back(0.95);
  }
  const auto bins = ComputeCalibrationBins(labels, probs, 10).value();
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_NEAR(bins[0].mean_predicted, 0.95, 1e-12);
  EXPECT_NEAR(bins[0].observed_rate, 0.5, 1e-12);
  EXPECT_EQ(bins[0].count, 100);
}

TEST(CalibrationTest, ProbabilityOneLandsInLastBin) {
  const auto bins =
      ComputeCalibrationBins({1.0, 0.0}, {1.0, 0.0}, 4).value();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins.front().count, 1);
  EXPECT_EQ(bins.back().count, 1);
  EXPECT_DOUBLE_EQ(bins.back().mean_predicted, 1.0);
}

TEST(CalibrationTest, Validation) {
  EXPECT_FALSE(ComputeCalibrationBins({}, {}).ok());
  EXPECT_FALSE(ComputeCalibrationBins({1.0}, {0.5}, 0).ok());
  EXPECT_FALSE(ComputeCalibrationBins({1.0}, {1.5}).ok());
  EXPECT_FALSE(ComputeCalibrationBins({0.3}, {0.5}).ok());
}

}  // namespace
}  // namespace mysawh::core
