/// Regression tests of training determinism. The histogram pipeline
/// accumulates in fixed-size chunks merged in a fixed order and the
/// per-round gradient/prediction loops partition work identically for any
/// worker count, so a trained model must be bit-identical no matter how
/// many threads are used. The no-constraint fast split scan must likewise
/// match the generic scan exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/audit_log.h"
#include "core/drift_monitor.h"
#include "explain/tree_shap.h"
#include "gbt/gbt_model.h"
#include "util/monitor.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace mysawh::gbt {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Deterministic synthetic data: a nonlinear target over five features
/// with ~10% missing cells. A hand-rolled LCG keeps the fixture stable
/// across platforms and standard-library versions.
Dataset MakeData(int64_t rows) {
  Dataset ds = Dataset::Create({"a", "b", "c", "d", "e"});
  uint64_t state = 42;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) /
           static_cast<double>(uint64_t{1} << 53);
  };
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<double> x(5);
    for (auto& v : x) {
      const double u = next();
      v = u < 0.1 ? kNaN : u;
    }
    const double a = std::isnan(x[0]) ? 0.5 : x[0];
    const double b = std::isnan(x[1]) ? 0.5 : x[1];
    const double y = a * a + std::sin(6.28 * b) + 0.1 * next();
    EXPECT_TRUE(ds.AddRow(x, y).ok());
  }
  return ds;
}

GbtParams BaseParams(TreeMethod method) {
  GbtParams params;
  params.tree_method = method;
  params.num_trees = 12;
  params.max_depth = 4;
  params.subsample = 0.8;
  params.colsample_bytree = 0.8;
  params.seed = 19;
  return params;
}

class DeterminismTest : public ::testing::TestWithParam<TreeMethod> {};

TEST_P(DeterminismTest, BitIdenticalAcrossThreadCounts) {
  // 3000 rows exceeds one 2048-row histogram chunk, so the chunked
  // reduction is genuinely exercised (not just the single-chunk path).
  const Dataset train = MakeData(3000);
  GbtParams params = BaseParams(GetParam());
  params.num_threads = 1;
  const std::string reference =
      GbtModel::Train(train, params).value().Serialize();
  for (int threads : {2, 8}) {
    params.num_threads = threads;
    const std::string serialized =
        GbtModel::Train(train, params).value().Serialize();
    EXPECT_EQ(serialized, reference) << "num_threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, DeterminismTest,
                         ::testing::Values(TreeMethod::kHist,
                                           TreeMethod::kExact));

TEST(DeterminismTest, TelemetryBitIdenticalAcrossThreadCounts) {
  // The telemetry artifact is part of the determinism contract: streams
  // buffer per producer and serialize in sorted label order, so the JSONL
  // must be byte-identical for any worker count.
  const Dataset train = MakeData(3000);
  const Dataset valid = MakeData(500);
  GbtParams params = BaseParams(TreeMethod::kHist);
  std::string reference;
  for (int threads : {1, 2, 8}) {
    params.num_threads = threads;
    Telemetry::Global().Enable();
    ASSERT_TRUE(GbtModel::Train(train, params, &valid).ok());
    const std::string jsonl = Telemetry::Global().ToJsonl();
    Telemetry::Global().Disable();
    ASSERT_FALSE(jsonl.empty());
    EXPECT_NE(jsonl.find("\"schema\":\"mysawh-telemetry v1\""),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"valid\":"), std::string::npos);
    if (threads == 1) {
      reference = jsonl;
    } else {
      EXPECT_EQ(jsonl, reference) << "num_threads=" << threads;
    }
  }
}

TEST(DeterminismTest, TelemetryRecordingDoesNotChangeModel) {
  // Recording telemetry (and passing a validation set for the learning
  // curve) must never feed back into training: the serialized model with
  // telemetry on equals the plain run bit for bit.
  const Dataset train = MakeData(1500);
  const Dataset valid = MakeData(300);
  const GbtParams params = BaseParams(TreeMethod::kHist);
  const std::string plain =
      GbtModel::Train(train, params).value().Serialize();
  Telemetry::Global().Enable();
  const std::string instrumented =
      GbtModel::Train(train, params, &valid).value().Serialize();
  Telemetry::Global().Disable();
  EXPECT_EQ(instrumented, plain);
}

TEST(DeterminismTest, LiveMonitorDoesNotChangeModelOrTelemetry) {
  // The monitor only observes: a run watched by a fast heartbeat (with the
  // stall watchdog armed) must produce a bit-identical model and telemetry
  // artifact, because nothing in the monitor feeds back into training.
  const Dataset train = MakeData(1500);
  const Dataset valid = MakeData(300);
  const GbtParams params = BaseParams(TreeMethod::kHist);

  Telemetry::Global().Enable();
  const std::string plain_model =
      GbtModel::Train(train, params, &valid).value().Serialize();
  const std::string plain_telemetry = Telemetry::Global().ToJsonl();
  Telemetry::Global().Disable();

  MonitorOptions options;
  options.status_path = ::testing::TempDir() + "/determinism_status.json";
  options.interval_ms = 2;  // Aggressive: many heartbeats inside one train.
  options.stall_timeout_ms = 50;
  Monitor monitor(options);
  ASSERT_TRUE(monitor.Start().ok());
  Telemetry::Global().Enable();
  const std::string monitored_model =
      GbtModel::Train(train, params, &valid).value().Serialize();
  const std::string monitored_telemetry = Telemetry::Global().ToJsonl();
  Telemetry::Global().Disable();
  monitor.Stop();

  EXPECT_GE(monitor.heartbeats_written(), 2)
      << "the monitor must actually have observed the run";
  EXPECT_EQ(monitored_model, plain_model);
  EXPECT_EQ(monitored_telemetry, plain_telemetry);
}

TEST(DeterminismTest, FlatPredictBitIdenticalToReferenceAcrossThreadCounts) {
  // The compiled flat-forest kernel must reproduce the reference pointer
  // walker bit for bit — blocks write disjoint slots and every row sums
  // its trees in ascending order, so the worker count must not matter.
  const Dataset train = MakeData(1500);
  const Dataset probe = MakeData(333);
  for (TreeMethod method : {TreeMethod::kHist, TreeMethod::kExact}) {
    const GbtModel model =
        GbtModel::Train(train, BaseParams(method)).value();
    ASSERT_NE(model.flat_forest(), nullptr);
    const std::vector<double> reference =
        model.PredictRawReference(probe).value();
    for (int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      std::vector<double> flat(static_cast<size_t>(probe.num_rows()));
      model.flat_forest()->PredictRaw(probe, model.base_score(), flat.data(),
                                      &pool);
      ASSERT_EQ(flat.size(), reference.size());
      for (size_t r = 0; r < flat.size(); ++r) {
        EXPECT_EQ(flat[r], reference[r])
            << "row " << r << " threads " << threads;
      }
    }
  }
}

TEST(DeterminismTest, FlatStagedPredictionsMatchReferenceWalker) {
  // PredictStaged accumulates tree by tree; the flat path quantizes once
  // and replays the same per-row summation order, so every stage must be
  // bit-identical to walking the trees directly.
  const Dataset train = MakeData(1200);
  const Dataset probe = MakeData(200);
  const GbtModel model =
      GbtModel::Train(train, BaseParams(TreeMethod::kHist)).value();
  ASSERT_NE(model.flat_forest(), nullptr);
  const auto staged = model.PredictStaged(probe, 5).value();
  // Reference stages: per-row raw accumulation over tree prefixes.
  const auto objective = MakeObjective(model.objective_type());
  std::vector<double> raw(static_cast<size_t>(probe.num_rows()),
                          model.base_score());
  size_t stage = 0;
  for (size_t t = 0; t < model.trees().size(); ++t) {
    for (int64_t r = 0; r < probe.num_rows(); ++r) {
      raw[static_cast<size_t>(r)] += model.trees()[t].Predict(probe.row(r));
    }
    if ((t + 1) % 5 == 0 || t + 1 == model.trees().size()) {
      ASSERT_LT(stage, staged.size());
      for (int64_t r = 0; r < probe.num_rows(); ++r) {
        EXPECT_EQ(staged[stage][static_cast<size_t>(r)],
                  objective->Transform(raw[static_cast<size_t>(r)]))
            << "stage " << stage << " row " << r;
      }
      ++stage;
    }
  }
  EXPECT_EQ(stage, staged.size());
}

TEST(DeterminismTest, FlatShapBitIdenticalToReferenceAcrossThreadCounts) {
  // The flat TreeSHAP recursion mirrors the reference recursion operand
  // for operand (precomputed cover fractions divide the same values the
  // reference divides per visit), so attributions are bit-identical for
  // any worker count.
  const Dataset train = MakeData(1000);
  const GbtModel model =
      GbtModel::Train(train, BaseParams(TreeMethod::kHist)).value();
  ASSERT_NE(model.flat_forest(), nullptr);
  const explain::TreeShap shap(&model);
  // A handful of rows keeps ShapBatch on the per-row recursion; several
  // hundred crosses its pattern-table threshold — both batch strategies
  // must match the reference exactly.
  for (int64_t rows : {12, 300}) {
    const Dataset probe = MakeData(rows);
    const auto reference = shap.ShapBatchReference(probe).value();
    for (int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      const auto flat = shap.ShapBatch(probe, &pool).value();
      ASSERT_EQ(flat.size(), reference.size());
      for (size_t r = 0; r < flat.size(); ++r) {
        ASSERT_EQ(flat[r].size(), reference[r].size());
        for (size_t f = 0; f < flat[r].size(); ++f) {
          EXPECT_EQ(flat[r][f], reference[r][f])
              << "rows " << rows << " row " << r << " feature " << f
              << " threads " << threads;
        }
      }
    }
  }
}

TEST(DeterminismTest, AuditLogBitIdenticalAcrossThreadCounts) {
  // The audit log is part of the determinism contract: sampling is a pure
  // function of row content and records are content-sorted at
  // serialization, so the payload must be byte-identical no matter how
  // many workers predicted or explained the rows.
  const Dataset train = MakeData(1500);
  const Dataset probe = MakeData(300);
  const GbtModel model =
      GbtModel::Train(train, BaseParams(TreeMethod::kHist)).value();
  const explain::TreeShap shap(&model);
  std::string reference;
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    core::AuditOptions options;
    options.sample_rate = 4;
    ASSERT_TRUE(core::AuditLog::Global().Configure(options).ok());
    ASSERT_TRUE(model.Predict(probe).ok());
    ASSERT_TRUE(shap.ShapBatch(probe, &pool).ok());
    const std::string payload = core::AuditLog::Global().SerializePayload();
    core::AuditLog::Global().Disable();
    EXPECT_NE(payload.find("\"type\":\"predict\""), std::string::npos);
    EXPECT_NE(payload.find("\"type\":\"shap\""), std::string::npos);
    if (threads == 1) {
      reference = payload;
    } else {
      EXPECT_EQ(payload, reference) << "threads=" << threads;
    }
  }
}

TEST(DeterminismTest, AuditAndDriftObservationDoesNotChangePredictions) {
  // Both hooks run on the calling thread after the parallel prediction
  // loop: an audited, drift-monitored run must produce bit-identical
  // predictions to a plain one.
  const Dataset train = MakeData(1500);
  const Dataset probe = MakeData(400);
  const GbtModel model =
      GbtModel::Train(train, BaseParams(TreeMethod::kHist)).value();
  const std::vector<double> plain = model.Predict(probe).value();
  const core::DriftBaseline baseline =
      core::BuildDriftBaseline(train, model.Predict(train).value(), 10)
          .value();

  core::AuditOptions audit_options;
  audit_options.sample_rate = 1;
  ASSERT_TRUE(core::AuditLog::Global().Configure(audit_options).ok());
  core::DriftMonitorOptions drift_options;
  drift_options.window = 64;
  ASSERT_TRUE(core::DriftMonitorRuntime::Global()
                  .Configure(baseline, drift_options)
                  .ok());
  const std::vector<double> observed = model.Predict(probe).value();
  core::DriftMonitorRuntime::Global().Flush();
  core::AuditLog::Global().Disable();

  EXPECT_EQ(core::AuditLog::Global().record_count(), probe.num_rows());
  EXPECT_GT(core::DriftMonitorRuntime::Global().windows_evaluated(), 0);
  ASSERT_EQ(observed.size(), plain.size());
  for (size_t r = 0; r < observed.size(); ++r) {
    EXPECT_EQ(observed[r], plain[r]) << "row " << r;
  }
}

TEST(DeterminismTest, FastSplitPathMatchesGenericPath) {
  // All-zero monotone constraints force the generic ConsiderSplit scan;
  // empty constraints take the specialized array scan. Both must produce
  // the same model bit for bit.
  const Dataset train = MakeData(1500);
  GbtParams params = BaseParams(TreeMethod::kHist);
  const std::string fast = GbtModel::Train(train, params).value().Serialize();
  params.monotone_constraints.assign(5, 0);
  const std::string generic =
      GbtModel::Train(train, params).value().Serialize();
  EXPECT_EQ(fast, generic);
}

}  // namespace
}  // namespace mysawh::gbt
