/// End-to-end integration test of the full paper pipeline on a reduced
/// cohort: simulate -> build sample sets -> train DD and KD models ->
/// evaluate -> explain with TreeSHAP. Asserts the paper's qualitative
/// claims and the SHAP consistency properties on real pipeline output.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "cohort/simulator.h"
#include "core/evaluation.h"
#include "core/sample_builder.h"
#include "explain/explanation.h"
#include "explain/tree_shap.h"
#include "model/model.h"

namespace mysawh {
namespace {

using core::Approach;
using core::Outcome;

struct PipelineFixture {
  cohort::Cohort cohort;
  core::SampleSets qol;
  core::ExperimentResult dd_result;
  core::ExperimentResult kd_result;
};

const PipelineFixture& GetPipeline() {
  static const PipelineFixture* fixture = [] {
    cohort::CohortConfig config;
    config.seed = 42;
    config.clinics = {{"Modena", 40, 0.0, 1.0},
                      {"Sydney", 30, 0.03, 1.1},
                      {"HongKong", 12, -0.02, 1.8}};
    auto cohort = cohort::CohortSimulator(config).Generate().value();
    auto builder =
        core::SampleSetBuilder::Create(&cohort, core::SampleBuildOptions{})
            .value();
    auto qol = builder.Build(Outcome::kQol).value();
    auto params = core::DefaultGbtParams(Outcome::kQol, Approach::kDataDriven);
    params.num_trees = 120;
    core::EvalProtocol protocol;
    auto dd = core::RunExperiment(qol.dd_fi, Outcome::kQol,
                                  Approach::kDataDriven, true, params,
                                  protocol)
                  .value();
    auto kd_params =
        core::DefaultGbtParams(Outcome::kQol, Approach::kKnowledgeDriven);
    kd_params.num_trees = 120;
    auto kd = core::RunExperiment(qol.kd, Outcome::kQol,
                                  Approach::kKnowledgeDriven, false,
                                  kd_params, protocol)
                  .value();
    return new PipelineFixture{std::move(cohort), std::move(qol),
                               std::move(dd), std::move(kd)};
  }();
  return *fixture;
}

TEST(PipelineIntegrationTest, SampleConstructionMatchesPaperShape) {
  const auto& fixture = GetPipeline();
  // 82 patients x 16 candidate months.
  EXPECT_EQ(fixture.qol.total_candidates, 82 * 16);
  EXPECT_GT(fixture.qol.retained, fixture.qol.total_candidates / 3);
  // Gap statistics in the paper's regime.
  EXPECT_GT(fixture.qol.gap_stats_raw.mean_length, 3.0);
  EXPECT_LT(fixture.qol.gap_stats_raw.mean_length, 8.0);
  EXPECT_LE(fixture.qol.gap_stats_raw.max_length, 17);
}

TEST(PipelineIntegrationTest, DataDrivenOutperformsKnowledgeDriven) {
  const auto& fixture = GetPipeline();
  EXPECT_GT(fixture.dd_result.test_regression.one_minus_mape,
            fixture.kd_result.test_regression.one_minus_mape);
  // Both land in the paper's >85% regime.
  EXPECT_GT(fixture.dd_result.test_regression.one_minus_mape, 0.88);
  EXPECT_GT(fixture.kd_result.test_regression.one_minus_mape, 0.80);
}

TEST(PipelineIntegrationTest, ShapExplainsRealPredictionsConsistently) {
  const auto& fixture = GetPipeline();
  const gbt::GbtModel* gbt = fixture.dd_result.gbt_model();
  ASSERT_NE(gbt, nullptr);
  const explain::TreeShap shap(gbt);
  const Dataset& test = fixture.dd_result.test;
  const int64_t probe = std::min<int64_t>(test.num_rows(), 25);
  for (int64_t r = 0; r < probe; ++r) {
    const auto phi = shap.Shap(test.row(r));
    const double total =
        std::accumulate(phi.begin(), phi.end(), shap.expected_value());
    EXPECT_NEAR(total, gbt->PredictRowRaw(test.row(r)), 1e-6);
  }
}

TEST(PipelineIntegrationTest, ExplanationsDifferAcrossPatients) {
  // Fig 6's point: two patients can share a prediction while their top
  // contributing features differ. Verify rankings are not all identical.
  const auto& fixture = GetPipeline();
  const explain::TreeShap shap(fixture.dd_result.gbt_model());
  const Dataset& test = fixture.dd_result.test;
  ASSERT_GE(test.num_rows(), 10);
  std::string first_top;
  bool differs = false;
  for (int64_t r = 0; r < 10; ++r) {
    const auto explanation = explain::ExplainRow(shap, test, r).value();
    const std::string top = explanation.contributions.front().feature;
    if (r == 0) {
      first_top = top;
    } else if (top != first_top) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs) << "all patients had identical top features";
}

TEST(PipelineIntegrationTest, GlobalImportanceIsFiniteAndOrdered) {
  const auto& fixture = GetPipeline();
  const explain::TreeShap shap(fixture.dd_result.gbt_model());
  const auto importance =
      explain::ComputeGlobalImportance(shap, fixture.dd_result.test).value();
  ASSERT_EQ(importance.features.size(),
            static_cast<size_t>(fixture.dd_result.model->NumFeatures()));
  for (size_t i = 0; i < importance.mean_abs_shap.size(); ++i) {
    EXPECT_TRUE(std::isfinite(importance.mean_abs_shap[i]));
    if (i > 0) {
      EXPECT_GE(importance.mean_abs_shap[i - 1], importance.mean_abs_shap[i]);
    }
  }
}

TEST(PipelineIntegrationTest, ModelSerializationSurvivesPipeline) {
  const auto& fixture = GetPipeline();
  // Round-trip through the registry: the serialized text carries a kind
  // header, so the base-layer Deserialize rebuilds the right family.
  const auto text = fixture.dd_result.model->SerializeWithKind();
  const auto loaded = model::Model::Deserialize(text).value();
  EXPECT_EQ(loaded->Kind(), "gbt");
  const Dataset& test = fixture.dd_result.test;
  for (int64_t r = 0; r < std::min<int64_t>(test.num_rows(), 20); ++r) {
    EXPECT_DOUBLE_EQ(loaded->Predict(test.row(r)),
                     fixture.dd_result.model->Predict(test.row(r)));
  }
}

}  // namespace
}  // namespace mysawh
