#include "gbt/gbt_model.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/rng.h"
#include "util/string_util.h"

namespace mysawh::gbt {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// y = x0^2 - 2*x1 with noise; a smooth nonlinear regression task.
Dataset MakeRegressionData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds = Dataset::Create({"x0", "x1"});
  for (int64_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-2.0, 2.0);
    const double x1 = rng.Uniform(-1.0, 1.0);
    const double y = x0 * x0 - 2.0 * x1 + rng.Normal(0.0, 0.05);
    EXPECT_TRUE(ds.AddRow({x0, x1}, y).ok());
  }
  return ds;
}

/// Binary task separable by x0 > 0.3 XOR-free.
Dataset MakeClassificationData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds = Dataset::Create({"x0", "x1"});
  for (int64_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-1.0, 1.0);
    const double x1 = rng.Uniform(-1.0, 1.0);
    const double label = (x0 + 0.4 * x1 > 0.2) ? 1.0 : 0.0;
    EXPECT_TRUE(ds.AddRow({x0, x1}, label).ok());
  }
  return ds;
}

double Rmse(const std::vector<double>& y, const std::vector<double>& p) {
  double ss = 0;
  for (size_t i = 0; i < y.size(); ++i) ss += (y[i] - p[i]) * (y[i] - p[i]);
  return std::sqrt(ss / static_cast<double>(y.size()));
}

TEST(GbtModelTest, FitsNonlinearRegression) {
  const Dataset train = MakeRegressionData(2000, 1);
  const Dataset test = MakeRegressionData(500, 2);
  GbtParams params;
  params.num_trees = 150;
  params.learning_rate = 0.1;
  const GbtModel model = GbtModel::Train(train, params).value();
  const auto preds = model.Predict(test).value();
  EXPECT_LT(Rmse(test.labels(), preds), 0.15);
}

TEST(GbtModelTest, ExactAndHistAgreeClosely) {
  const Dataset train = MakeRegressionData(800, 3);
  const Dataset test = MakeRegressionData(200, 4);
  GbtParams hist;
  hist.num_trees = 60;
  hist.tree_method = TreeMethod::kHist;
  hist.max_bins = 256;
  GbtParams exact = hist;
  exact.tree_method = TreeMethod::kExact;
  const auto hist_preds =
      GbtModel::Train(train, hist).value().Predict(test).value();
  const auto exact_preds =
      GbtModel::Train(train, exact).value().Predict(test).value();
  // Both should fit well; they need not be identical.
  EXPECT_LT(Rmse(test.labels(), hist_preds), 0.2);
  EXPECT_LT(Rmse(test.labels(), exact_preds), 0.2);
  EXPECT_LT(Rmse(hist_preds, exact_preds), 0.15);
}

TEST(GbtModelTest, ClassifiesSeparableData) {
  const Dataset train = MakeClassificationData(2000, 5);
  const Dataset test = MakeClassificationData(500, 6);
  GbtParams params;
  params.objective = ObjectiveType::kLogistic;
  params.num_trees = 100;
  const GbtModel model = GbtModel::Train(train, params).value();
  const auto preds = model.Predict(test).value();
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    EXPECT_GE(preds[i], 0.0);
    EXPECT_LE(preds[i], 1.0);
    correct += (preds[i] >= 0.5) == (test.label(static_cast<int64_t>(i)) > 0.5);
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(preds.size()),
            0.95);
}

TEST(GbtModelTest, LearnsMissingValueDirection) {
  // Missing x0 implies high label; model must route NaN accordingly.
  Rng rng(7);
  Dataset train = Dataset::Create({"x0"});
  for (int i = 0; i < 1000; ++i) {
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(train.AddRow({kNaN}, 5.0 + rng.Normal(0, 0.01)).ok());
    } else {
      const double x = rng.Uniform(0.0, 1.0);
      ASSERT_TRUE(train.AddRow({x}, x + rng.Normal(0, 0.01)).ok());
    }
  }
  GbtParams params;
  params.num_trees = 50;
  const GbtModel model = GbtModel::Train(train, params).value();
  const double missing_row[] = {kNaN};
  EXPECT_NEAR(model.PredictRow(missing_row), 5.0, 0.2);
  const double present_row[] = {0.5};
  EXPECT_NEAR(model.PredictRow(present_row), 0.5, 0.2);
}

TEST(GbtModelTest, DeterministicGivenSeed) {
  const Dataset train = MakeRegressionData(500, 8);
  GbtParams params;
  params.num_trees = 30;
  params.subsample = 0.7;
  params.colsample_bytree = 0.5;
  params.seed = 99;
  const GbtModel a = GbtModel::Train(train, params).value();
  const GbtModel b = GbtModel::Train(train, params).value();
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST(GbtModelTest, EarlyStoppingTruncates) {
  const Dataset train = MakeRegressionData(800, 9);
  const Dataset valid = MakeRegressionData(200, 10);
  GbtParams params;
  params.num_trees = 400;
  params.learning_rate = 0.3;
  params.early_stopping_rounds = 10;
  TrainingLog log;
  const GbtModel model = GbtModel::Train(train, params, &valid, &log).value();
  EXPECT_LT(static_cast<int>(model.trees().size()), 400);
  EXPECT_EQ(static_cast<int>(model.trees().size()),
            model.best_iteration() + 1);
  EXPECT_FALSE(log.rounds.empty());
  EXPECT_EQ(log.metric_name, "rmse");
}

TEST(GbtModelTest, EarlyStoppingRequiresValidation) {
  const Dataset train = MakeRegressionData(100, 11);
  GbtParams params;
  params.early_stopping_rounds = 5;
  EXPECT_FALSE(GbtModel::Train(train, params).ok());
}

TEST(GbtModelTest, SerializationRoundTripsPredictions) {
  const Dataset train = MakeRegressionData(600, 12);
  const Dataset test = MakeRegressionData(50, 13);
  GbtParams params;
  params.num_trees = 40;
  params.subsample = 0.8;
  const GbtModel model = GbtModel::Train(train, params).value();
  const GbtModel loaded = GbtModel::Deserialize(model.Serialize()).value();
  EXPECT_EQ(loaded.feature_names(), model.feature_names());
  EXPECT_EQ(loaded.objective_type(), model.objective_type());
  for (int64_t r = 0; r < test.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(loaded.PredictRow(test.row(r)),
                     model.PredictRow(test.row(r)));
  }
}

TEST(GbtModelTest, SaveLoadFile) {
  const Dataset train = MakeRegressionData(200, 14);
  GbtParams params;
  params.num_trees = 10;
  const GbtModel model = GbtModel::Train(train, params).value();
  const std::string path = ::testing::TempDir() + "/gbt_model_test.txt";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  const auto loaded = mysawh::model::Model::LoadFromFile(path).value();
  EXPECT_EQ(loaded->Kind(), "gbt");
  EXPECT_EQ(loaded->Serialize(), model.Serialize());
  std::remove(path.c_str());
}

TEST(GbtModelTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(GbtModel::Deserialize("not a model").ok());
  EXPECT_FALSE(GbtModel::Deserialize("mysawh-gbt v1\njunk").ok());
}

TEST(GbtModelTest, DeserializeRejectsOutOfWidthSplitFeature) {
  // Regression test for the load-path bounds contract: Predict indexes the
  // input row by node feature without a per-call check, so a model whose
  // serialized tree references feature 57 in a 2-feature space must be
  // rejected at Deserialize (via Validate(num_features)), never loaded.
  const Dataset train = MakeRegressionData(200, 17);
  GbtParams params;
  params.num_trees = 3;
  params.max_depth = 3;
  const GbtModel model = GbtModel::Train(train, params).value();
  const std::string good = model.Serialize();
  ASSERT_TRUE(GbtModel::Deserialize(good).ok());
  // Node lines are "<left> <right> <feature> ..."; rewrite the first split
  // node's feature index to one far beyond the declared width.
  std::istringstream is(good);
  std::ostringstream os;
  std::string line;
  bool tampered = false;
  while (std::getline(is, line)) {
    if (!tampered && !line.empty() && line.find(' ') != std::string::npos &&
        (std::isdigit(line[0]) != 0 || line[0] == '-')) {
      auto fields = Split(line, ' ');
      if (fields.size() == 8 && fields[2] != "-1" && fields[0] != "-1") {
        fields[2] = "57";
        line = Join(fields, " ");
        tampered = true;
      }
    }
    os << line << "\n";
  }
  ASSERT_TRUE(tampered);
  EXPECT_FALSE(GbtModel::Deserialize(os.str()).ok());
}

TEST(GbtModelTest, GainImportanceIdentifiesSignalFeature) {
  // x1 carries all the signal; x0 is noise.
  Rng rng(15);
  Dataset train = Dataset::Create({"noise", "signal"});
  for (int i = 0; i < 1000; ++i) {
    const double noise = rng.Uniform(0, 1);
    const double signal = rng.Uniform(0, 1);
    ASSERT_TRUE(train.AddRow({noise, signal}, 3.0 * signal).ok());
  }
  GbtParams params;
  params.num_trees = 30;
  const GbtModel model = GbtModel::Train(train, params).value();
  const auto importance = model.GainImportance();
  ASSERT_TRUE(importance.count("signal"));
  const double noise_gain =
      importance.count("noise") ? importance.at("noise") : 0.0;
  EXPECT_GT(importance.at("signal"), 10.0 * (noise_gain + 1e-9));
  const auto counts = model.SplitCountImportance();
  EXPECT_GT(counts.at("signal"), 0);
}

TEST(GbtModelTest, CoverImportanceTracksUsage) {
  Rng rng(25);
  Dataset train = Dataset::Create({"used", "unused"});
  for (int i = 0; i < 500; ++i) {
    const double used = rng.Uniform(0, 1);
    ASSERT_TRUE(train.AddRow({used, 0.0}, 2.0 * used).ok());
  }
  GbtParams params;
  params.num_trees = 20;
  const GbtModel model = GbtModel::Train(train, params).value();
  const auto cover = model.CoverImportance();
  ASSERT_TRUE(cover.count("used"));
  EXPECT_GT(cover.at("used"), 0.0);
  EXPECT_EQ(cover.count("unused"), 0u);
}

TEST(GbtModelTest, ConstantLabelsYieldConstantPrediction) {
  Dataset train = Dataset::Create({"x"});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(train.AddRow({static_cast<double>(i)}, 7.0).ok());
  }
  GbtParams params;
  params.num_trees = 5;
  const GbtModel model = GbtModel::Train(train, params).value();
  const double row[] = {25.0};
  EXPECT_NEAR(model.PredictRow(row), 7.0, 1e-9);
}

TEST(GbtModelTest, PredictStagedConvergesToFinal) {
  const Dataset train = MakeRegressionData(500, 21);
  GbtParams params;
  params.num_trees = 30;
  const GbtModel model = GbtModel::Train(train, params).value();
  const Dataset test = MakeRegressionData(40, 22);
  const auto stages = model.PredictStaged(test, 10).value();
  ASSERT_EQ(stages.size(), 3u);  // after 10, 20, 30 trees
  const auto final_preds = model.Predict(test).value();
  for (size_t i = 0; i < final_preds.size(); ++i) {
    EXPECT_DOUBLE_EQ(stages.back()[i], final_preds[i]);
  }
  // Earlier stages are worse or equal on training-like data.
  EXPECT_NE(stages.front(), stages.back());
}

TEST(GbtModelTest, PredictStagedValidates) {
  const Dataset train = MakeRegressionData(100, 23);
  GbtParams params;
  params.num_trees = 5;
  const GbtModel model = GbtModel::Train(train, params).value();
  EXPECT_FALSE(model.PredictStaged(train, 0).ok());
  Dataset narrow = Dataset::Create({"x"});
  ASSERT_TRUE(narrow.AddRow({1.0}, 0.0).ok());
  EXPECT_FALSE(model.PredictStaged(narrow, 1).ok());
}

TEST(GbtModelTest, PoissonObjectiveFitsCounts) {
  Rng rng(24);
  Dataset train = Dataset::Create({"rate"});
  for (int i = 0; i < 3000; ++i) {
    const double rate = rng.Uniform(0.5, 6.0);
    ASSERT_TRUE(train
                    .AddRow({rate}, static_cast<double>(rng.Poisson(rate)))
                    .ok());
  }
  GbtParams params;
  params.objective = ObjectiveType::kPoisson;
  params.num_trees = 80;
  const GbtModel model = GbtModel::Train(train, params).value();
  for (double rate : {1.0, 3.0, 5.0}) {
    const double row[] = {rate};
    const double pred = model.PredictRow(row);
    EXPECT_GT(pred, 0.0) << "Poisson predictions are positive";
    EXPECT_NEAR(pred, rate, 0.5) << "rate=" << rate;
  }
}

TEST(GbtModelTest, RejectsBadInputs) {
  Dataset empty = Dataset::Create({"x"});
  GbtParams params;
  EXPECT_FALSE(GbtModel::Train(empty, params).ok());
  Dataset no_features = Dataset::Create({});
  EXPECT_FALSE(GbtModel::Train(no_features, params).ok());
  Dataset train = MakeRegressionData(50, 16);
  params.learning_rate = 0.0;
  EXPECT_FALSE(GbtModel::Train(train, params).ok());
}

TEST(GbtModelTest, PredictChecksWidth) {
  const Dataset train = MakeRegressionData(100, 17);
  GbtParams params;
  params.num_trees = 5;
  const GbtModel model = GbtModel::Train(train, params).value();
  Dataset wrong = Dataset::Create({"only_one"});
  ASSERT_TRUE(wrong.AddRow({1.0}, 0.0).ok());
  EXPECT_FALSE(model.Predict(wrong).ok());
}

TEST(GbtModelTest, TreesSatisfyStructuralInvariants) {
  const Dataset train = MakeRegressionData(500, 18);
  GbtParams params;
  params.num_trees = 25;
  params.subsample = 0.8;
  const GbtModel model = GbtModel::Train(train, params).value();
  for (const auto& tree : model.trees()) {
    EXPECT_TRUE(tree.Validate().ok());
    EXPECT_LE(tree.MaxDepth(), params.max_depth);
  }
}

TEST(GbtModelTest, ScalePosWeightIncreasesMinorityRecall) {
  // Imbalanced task: 5% positives with weak signal.
  Rng rng(19);
  Dataset train = Dataset::Create({"x"});
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.Uniform(0, 1);
    const double p = 0.02 + 0.25 * x;
    ASSERT_TRUE(train.AddRow({x}, rng.Bernoulli(p) ? 1.0 : 0.0).ok());
  }
  GbtParams params;
  params.objective = ObjectiveType::kLogistic;
  params.num_trees = 50;
  const GbtModel plain = GbtModel::Train(train, params).value();
  params.scale_pos_weight = 8.0;
  const GbtModel weighted = GbtModel::Train(train, params).value();
  const double row[] = {0.9};
  EXPECT_GT(weighted.PredictRow(row), plain.PredictRow(row));
}

/// Depth sweep: deeper trees never use more than allowed depth and training
/// remains finite.
class DepthSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(DepthSweepTest, RespectsMaxDepth) {
  const Dataset train = MakeRegressionData(400, 20);
  GbtParams params;
  params.num_trees = 10;
  params.max_depth = GetParam();
  const GbtModel model = GbtModel::Train(train, params).value();
  for (const auto& tree : model.trees()) {
    EXPECT_LE(tree.MaxDepth(), GetParam());
  }
  const double row[] = {0.5, 0.5};
  EXPECT_TRUE(std::isfinite(model.PredictRow(row)));
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace mysawh::gbt
