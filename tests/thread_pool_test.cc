#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mysawh {
namespace {

TEST(ThreadPoolTest, InlineModeRunsOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0);
  int value = 0;
  pool.Submit([&] { value = 7; });
  EXPECT_EQ(value, 7);  // ran synchronously
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<int> touched(1000, 0);
    pool.ParallelFor(1000, [&](int64_t i) {
      touched[static_cast<size_t>(i)] += 1;
    });
    EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 1000)
        << "threads=" << threads;
    for (int t : touched) EXPECT_EQ(t, 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndNegative) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  pool.ParallelFor(-5, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.ParallelFor(50, [&](int64_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 5 * (49 * 50 / 2));
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace mysawh
