#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "util/failpoint.h"
#include "util/metrics.h"

namespace mysawh {
namespace {

TEST(ThreadPoolTest, InlineModeRunsOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0);
  int value = 0;
  pool.Submit([&] { value = 7; });
  EXPECT_EQ(value, 7);  // ran synchronously
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<int> touched(1000, 0);
    pool.ParallelFor(1000, [&](int64_t i) {
      touched[static_cast<size_t>(i)] += 1;
    });
    EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 1000)
        << "threads=" << threads;
    for (int t : touched) EXPECT_EQ(t, 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndNegative) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t) { ++calls; });
  pool.ParallelFor(-5, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.ParallelFor(50, [&](int64_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 5 * (49 * 50 / 2));
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, PendingTasksCountsBacklogAndDrains) {
  ThreadPool pool(2);
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> started{0};
  // Occupy both workers so further submissions stay queued.
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      started.fetch_add(1);
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return release; });
    });
  }
  while (started.load() < 2) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) pool.Submit([] {});
  EXPECT_EQ(pool.PendingTasks(), 5);
  Gauge* depth =
      MetricsRegistry::Global().GetGauge("thread_pool.queue_depth");
  EXPECT_GE(depth->Value(), 5);
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  EXPECT_EQ(pool.PendingTasks(), 0);
  EXPECT_EQ(depth->Value(), 0);
}

TEST(ThreadPoolTest, InlineModeHasNoBacklog) {
  ThreadPool pool(1);
  pool.Submit([] {});
  EXPECT_EQ(pool.PendingTasks(), 0);
}

class ThreadPoolFailureTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().DisableAll(); }
};

TEST_F(ThreadPoolFailureTest, DroppedTaskDoesNotDeadlockWait) {
  ThreadPool pool(4);
  FailpointRegistry::Global().Enable("thread_pool/task",
                                     FailpointSpec::Once());
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) pool.Submit([&] { ran.fetch_add(1); });
  pool.Wait();  // must return even though one task body was dropped
  EXPECT_EQ(ran.load(), 19);
}

TEST_F(ThreadPoolFailureTest, FailedRoundDoesNotPoisonLaterRounds) {
  ThreadPool pool(4);
  FailpointRegistry::Global().Enable("thread_pool/task",
                                     FailpointSpec::Once());
  std::vector<int> touched(200, 0);
  pool.ParallelFor(200, [&](int64_t i) { touched[static_cast<size_t>(i)] = 1; });
  const int first_round =
      std::accumulate(touched.begin(), touched.end(), 0);
  EXPECT_LT(first_round, 200);  // one dispatch chunk was dropped

  // The pool is healthy again: the next rounds are complete and, run
  // twice, deterministic.
  FailpointRegistry::Global().DisableAll();
  for (int round = 0; round < 2; ++round) {
    std::vector<int> again(200, 0);
    pool.ParallelFor(200, [&](int64_t i) { again[static_cast<size_t>(i)] = 1; });
    EXPECT_EQ(std::accumulate(again.begin(), again.end(), 0), 200)
        << "round " << round;
  }
}

TEST_F(ThreadPoolFailureTest, ConsumersSeeMissingResultsViaStatusSlots) {
  // The contract the study runner relies on: a dropped cell leaves its
  // pre-filled error Status in place instead of vanishing silently.
  ThreadPool pool(2);
  FailpointRegistry::Global().Enable("thread_pool/task",
                                     FailpointSpec::Nth(2));
  std::vector<Status> slots(8, Status::Internal("cell never ran"));
  pool.ParallelFor(static_cast<int64_t>(slots.size()), [&](int64_t i) {
    slots[static_cast<size_t>(i)] = Status::Ok();
  });
  int missing = 0;
  for (const auto& status : slots) {
    if (!status.ok()) ++missing;
  }
  EXPECT_GT(missing, 0);
  EXPECT_LT(missing, static_cast<int>(slots.size()));
}

TEST_F(ThreadPoolFailureTest, QueueDepthGaugeZeroAfterDroppedTask) {
  // Regression: the depth gauge is decremented on dequeue, before the drop
  // failpoint fires, so a task that dies without running still balances
  // the gauge back to zero.
  Gauge* depth =
      MetricsRegistry::Global().GetGauge("thread_pool.queue_depth");
  Counter* dropped =
      MetricsRegistry::Global().GetCounter("thread_pool.tasks_dropped");
  const int64_t dropped_before = dropped->Value();
  ThreadPool pool(4);
  FailpointRegistry::Global().Enable("thread_pool/task",
                                     FailpointSpec::Once());
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) pool.Submit([&] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 49);
  EXPECT_EQ(dropped->Value(), dropped_before + 1);
  EXPECT_EQ(pool.PendingTasks(), 0);
  EXPECT_EQ(depth->Value(), 0);
}

TEST_F(ThreadPoolFailureTest, InlinePoolDropsWholeRangeButReturns) {
  ThreadPool pool(1);  // inline mode
  FailpointRegistry::Global().Enable("thread_pool/task",
                                     FailpointSpec::Once());
  int calls = 0;
  pool.ParallelFor(10, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);  // the single inline dispatch was dropped
  pool.ParallelFor(10, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 10);  // and the pool works again
}

}  // namespace
}  // namespace mysawh
