/// Tests of the minimal JSON reader used by `mysawh_cli report`: it must
/// round-trip everything the pipeline's own writers emit (run manifests,
/// telemetry lines, benchmark JSON) and reject malformed input cleanly.

#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace mysawh {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null").value().is_null());
  EXPECT_TRUE(ParseJson("true").value().bool_value());
  EXPECT_FALSE(ParseJson("false").value().bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("42").value().number_value(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-3.25e2").value().number_value(), -325.0);
  EXPECT_EQ(ParseJson("\"hi\"").value().string_value(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  const auto doc =
      ParseJson(R"({"cells":{"QoL-DD-fi0":{"wall_ms":12.5,"resumed":false}},)"
                R"("list":[1,2,3],"empty":[],"none":{}})");
  ASSERT_TRUE(doc.ok());
  const JsonValue* cells = doc->Find("cells");
  ASSERT_NE(cells, nullptr);
  const JsonValue* cell = cells->Find("QoL-DD-fi0");
  ASSERT_NE(cell, nullptr);
  EXPECT_DOUBLE_EQ(cell->NumberOr("wall_ms", 0.0), 12.5);
  ASSERT_NE(cell->Find("resumed"), nullptr);
  EXPECT_FALSE(cell->Find("resumed")->bool_value());
  EXPECT_EQ(doc->Find("list")->array_items().size(), 3u);
  EXPECT_TRUE(doc->Find("empty")->array_items().empty());
  EXPECT_TRUE(doc->Find("none")->object_members().empty());
}

TEST(JsonTest, PreservesObjectMemberOrder) {
  const auto doc = ParseJson(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(doc.ok());
  const auto& members = doc->object_members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonTest, DecodesStringEscapes) {
  const auto doc = ParseJson(R"("a\"b\\c\n\t\u0041\u00e9")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->string_value(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonTest, DecodesSurrogatePairs) {
  const auto doc = ParseJson(R"("\ud83d\ude00")");  // 😀 U+1F600
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->string_value(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, ParsesTelemetryLineShape) {
  const auto doc = ParseJson(
      R"({"stream":"QoL-DD-fi0/cv0/train","type":"round","round":7,)"
      R"("train":0.21387,"valid":null})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->StringOr("stream", ""), "QoL-DD-fi0/cv0/train");
  EXPECT_DOUBLE_EQ(doc->NumberOr("round", -1.0), 7.0);
  ASSERT_NE(doc->Find("valid"), nullptr);
  EXPECT_TRUE(doc->Find("valid")->is_null());
  // NumberOr falls back on null (kind mismatch), which is how the report
  // command treats NaN metric points.
  EXPECT_DOUBLE_EQ(doc->NumberOr("valid", -1.0), -1.0);
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "01x", "\"unterm",
        "{\"a\":1} trailing", "[1 2]", "{'a':1}", "\"bad\\q\"", "nan",
        "\"\\u12\"", "+1"}) {
    const auto doc = ParseJson(bad);
    EXPECT_FALSE(doc.ok()) << "input: " << bad;
    EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(JsonTest, RejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonTest, AccessorsFallBackOnKindMismatch) {
  const auto doc = ParseJson(R"({"s":"x","n":5})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->NumberOr("s", -1.0), -1.0);
  EXPECT_EQ(doc->StringOr("n", "fallback"), "fallback");
  EXPECT_EQ(doc->NumberOr("missing", 9.0), 9.0);
  EXPECT_EQ(doc->Find("missing"), nullptr);
  EXPECT_EQ(ParseJson("[1]").value().Find("x"), nullptr);
}

}  // namespace
}  // namespace mysawh
