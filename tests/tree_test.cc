#include "gbt/tree.h"

#include <gtest/gtest.h>

#include <limits>

namespace mysawh::gbt {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// root: [f0 < 2.0] -> left leaf -1, right: [f1 < 0.5] -> 5 / 9.
RegressionTree MakeSmallTree() {
  RegressionTree tree;
  auto [left, right] = tree.Split(0, 0, 2.0, /*default_left=*/true, 1.0);
  tree.mutable_node(left)->value = -1.0;
  auto [rl, rr] = tree.Split(right, 1, 0.5, /*default_left=*/false, 0.5);
  tree.mutable_node(rl)->value = 5.0;
  tree.mutable_node(rr)->value = 9.0;
  tree.mutable_node(0)->cover = 10.0;
  tree.mutable_node(left)->cover = 4.0;
  tree.mutable_node(right)->cover = 6.0;
  tree.mutable_node(rl)->cover = 3.0;
  tree.mutable_node(rr)->cover = 3.0;
  return tree;
}

TEST(TreeTest, SingleLeafDefaults) {
  RegressionTree tree;
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_EQ(tree.num_leaves(), 1);
  EXPECT_EQ(tree.MaxDepth(), 0);
  const double row[] = {1.0};
  EXPECT_DOUBLE_EQ(tree.Predict(row), 0.0);
}

TEST(TreeTest, StructureCounters) {
  const RegressionTree tree = MakeSmallTree();
  EXPECT_EQ(tree.num_nodes(), 5);
  EXPECT_EQ(tree.num_leaves(), 3);
  EXPECT_EQ(tree.MaxDepth(), 2);
}

TEST(TreeTest, RoutingLessThanGoesLeft) {
  const RegressionTree tree = MakeSmallTree();
  const double a[] = {1.9, 0.0};
  EXPECT_DOUBLE_EQ(tree.Predict(a), -1.0);
  const double b[] = {2.0, 0.4};  // equality goes right
  EXPECT_DOUBLE_EQ(tree.Predict(b), 5.0);
  const double c[] = {3.0, 0.6};
  EXPECT_DOUBLE_EQ(tree.Predict(c), 9.0);
}

TEST(TreeTest, MissingFollowsDefaultDirection) {
  const RegressionTree tree = MakeSmallTree();
  const double a[] = {kNaN, 0.0};  // default_left at root
  EXPECT_DOUBLE_EQ(tree.Predict(a), -1.0);
  const double b[] = {5.0, kNaN};  // default right at the inner node
  EXPECT_DOUBLE_EQ(tree.Predict(b), 9.0);
}

TEST(TreeTest, GetLeafReturnsLeafIndex) {
  const RegressionTree tree = MakeSmallTree();
  const double a[] = {0.0, 0.0};
  const int leaf = tree.GetLeaf(a);
  EXPECT_TRUE(tree.node(leaf).IsLeaf());
  EXPECT_DOUBLE_EQ(tree.node(leaf).value, -1.0);
}

TEST(TreeTest, ValidatePassesOnWellFormed) {
  EXPECT_TRUE(MakeSmallTree().Validate().ok());
}

TEST(TreeTest, ValidateCatchesBadLinks) {
  RegressionTree tree = MakeSmallTree();
  tree.mutable_node(0)->left = 99;
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(TreeTest, ValidateCatchesCoverInflation) {
  RegressionTree tree = MakeSmallTree();
  tree.mutable_node(1)->cover = 100.0;  // child exceeds parent
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(TreeTest, ValidateCatchesNonFiniteThreshold) {
  RegressionTree tree = MakeSmallTree();
  tree.mutable_node(0)->threshold = kNaN;
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(TreeTest, FromNodesRoundTrip) {
  const RegressionTree tree = MakeSmallTree();
  std::vector<TreeNode> nodes;
  for (int i = 0; i < tree.num_nodes(); ++i) nodes.push_back(tree.node(i));
  const RegressionTree rebuilt = RegressionTree::FromNodes(nodes);
  ASSERT_TRUE(rebuilt.Validate().ok());
  const double row[] = {2.5, 0.1};
  EXPECT_DOUBLE_EQ(rebuilt.Predict(row), tree.Predict(row));
}

TEST(TreeTest, ToStringMentionsFeatureNames) {
  const RegressionTree tree = MakeSmallTree();
  const std::string dump = tree.ToString({"age", "bmi"});
  EXPECT_NE(dump.find("age"), std::string::npos);
  EXPECT_NE(dump.find("bmi"), std::string::npos);
  EXPECT_NE(dump.find("leaf="), std::string::npos);
}

}  // namespace
}  // namespace mysawh::gbt
