/// Tests of the process-wide metrics registry (util/metrics.h): exactness
/// under concurrency, snapshot determinism, and the latency histogram's
/// power-of-two bucketing.

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace mysawh {
namespace {

TEST(MetricsRegistryTest, InstrumentPointersAreStable) {
  auto& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("test.stable_counter");
  Counter* b = registry.GetCounter("test.stable_counter");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.GetGauge("test.stable_gauge"),
            registry.GetGauge("test.stable_gauge"));
  EXPECT_EQ(registry.GetHistogram("test.stable_hist"),
            registry.GetHistogram("test.stable_hist"));
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  Gauge* gauge = MetricsRegistry::Global().GetGauge("test.concurrent_gauge");
  const int64_t counter_before = counter->Value();
  const int64_t gauge_before = gauge->Value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(2);
        gauge->Add(-1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), counter_before + kThreads * kPerThread);
  EXPECT_EQ(gauge->Value(), gauge_before + kThreads * kPerThread);
}

TEST(MetricsRegistryTest, HistogramBucketsArePowersOfTwo) {
  LatencyHistogram hist;
  hist.Record(0);    // bucket 0: exactly 0
  hist.Record(1);    // bucket 1: [1, 2)
  hist.Record(2);    // bucket 2: [2, 4)
  hist.Record(3);    // bucket 2
  hist.Record(4);    // bucket 3: [4, 8)
  hist.Record(1000);  // bucket 10: [512, 1024)
  hist.Record(-5);   // clamped to 0 -> bucket 0
  EXPECT_EQ(hist.Count(), 7);
  EXPECT_EQ(hist.MaxMicros(), 1000);
  EXPECT_EQ(hist.SumMicros(), 0 + 1 + 2 + 3 + 4 + 1000 + 0);
  EXPECT_EQ(hist.BucketCount(0), 2);
  EXPECT_EQ(hist.BucketCount(1), 1);
  EXPECT_EQ(hist.BucketCount(2), 2);
  EXPECT_EQ(hist.BucketCount(3), 1);
  EXPECT_EQ(hist.BucketCount(10), 1);
}

TEST(MetricsRegistryTest, HistogramLastBucketIsUnbounded) {
  LatencyHistogram hist;
  hist.Record(int64_t{1} << 40);  // far beyond the 20-bucket range
  EXPECT_EQ(hist.BucketCount(LatencyHistogram::kNumBuckets - 1), 1);
}

TEST(MetricsRegistryTest, ConcurrentHistogramRecordsSumExactly) {
  LatencyHistogram* hist =
      MetricsRegistry::Global().GetHistogram("test.concurrent_hist");
  const int64_t before = hist->Count();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) hist->Record(t + 1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist->Count(), before + kThreads * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotIsDeterministicAndSorted) {
  auto& registry = MetricsRegistry::Global();
  // Register in non-sorted order; the snapshot must not care.
  registry.GetCounter("test.zzz_counter")->Increment(3);
  registry.GetCounter("test.aaa_counter")->Increment(7);
  const std::string first = registry.SnapshotJson();
  const std::string second = registry.SnapshotJson();
  EXPECT_EQ(first, second) << "quiescent snapshots must be byte-identical";
  const size_t aaa = first.find("\"test.aaa_counter\"");
  const size_t zzz = first.find("\"test.zzz_counter\"");
  ASSERT_NE(aaa, std::string::npos);
  ASSERT_NE(zzz, std::string::npos);
  EXPECT_LT(aaa, zzz) << "keys must appear in sorted order";
  EXPECT_NE(first.find("\"counters\""), std::string::npos);
  EXPECT_NE(first.find("\"gauges\""), std::string::npos);
  EXPECT_NE(first.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZeroesEverything) {
  auto& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.reset_counter");
  Gauge* gauge = registry.GetGauge("test.reset_gauge");
  LatencyHistogram* hist = registry.GetHistogram("test.reset_hist");
  counter->Increment(5);
  gauge->Set(-3);
  hist->Record(17);
  registry.ResetAll();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(hist->Count(), 0);
  EXPECT_EQ(hist->SumMicros(), 0);
  EXPECT_EQ(hist->MaxMicros(), 0);
}

TEST(MetricsRegistryTest, QuantilesResolveToBucketUpperEdges) {
  // A three-mode distribution with hand-computable ranks: 50 samples of
  // 1µs (bucket 1), 40 of 100µs (bucket 7: [64, 128)), 10 of 5000µs
  // (bucket 13: [4096, 8192)).
  LatencyHistogram hist;
  for (int i = 0; i < 50; ++i) hist.Record(1);
  for (int i = 0; i < 40; ++i) hist.Record(100);
  for (int i = 0; i < 10; ++i) hist.Record(5000);
  ASSERT_EQ(hist.Count(), 100);
  // rank 50 lands at the end of bucket 1 -> upper edge 2^1 - 1 = 1.
  EXPECT_EQ(hist.ApproxQuantileMicros(0.50), 1);
  // rank 90 is the last 100µs sample -> 2^7 - 1 = 127.
  EXPECT_EQ(hist.ApproxQuantileMicros(0.90), 127);
  // rank 99 is a 5000µs sample -> 2^13 - 1 = 8191.
  EXPECT_EQ(hist.ApproxQuantileMicros(0.99), 8191);
  EXPECT_EQ(hist.ApproxQuantileMicros(1.0), 8191);
  // Out-of-range q clamps: below to the first sample, above to the last.
  EXPECT_EQ(hist.ApproxQuantileMicros(0.0), 1);
  EXPECT_EQ(hist.ApproxQuantileMicros(1.5), 8191);
}

TEST(MetricsRegistryTest, QuantileEdgeCases) {
  LatencyHistogram empty;
  EXPECT_EQ(empty.ApproxQuantileMicros(0.5), 0);

  LatencyHistogram zeros;  // All-zero durations live in bucket 0.
  for (int i = 0; i < 10; ++i) zeros.Record(0);
  EXPECT_EQ(zeros.ApproxQuantileMicros(0.5), 0);
  EXPECT_EQ(zeros.ApproxQuantileMicros(0.99), 0);

  // The unbounded last bucket reports the recorded max, not an edge.
  LatencyHistogram huge;
  huge.Record(int64_t{1} << 40);
  EXPECT_EQ(huge.ApproxQuantileMicros(0.5), int64_t{1} << 40);
}

TEST(MetricsRegistryTest, QuantileFromRawBucketArray) {
  // The free function is what the `report` dashboard runs over manifest
  // snapshots; exercise it on a hand-built layout. 2 zeros, 6 samples in
  // bucket 3 ([4, 8)), 2 in the unbounded last bucket.
  const int64_t buckets[5] = {2, 0, 0, 6, 2};
  EXPECT_EQ(HistogramQuantileFromBuckets(buckets, 5, 999, 0.10), 0);
  EXPECT_EQ(HistogramQuantileFromBuckets(buckets, 5, 999, 0.50), 7);
  EXPECT_EQ(HistogramQuantileFromBuckets(buckets, 5, 999, 0.80), 7);
  EXPECT_EQ(HistogramQuantileFromBuckets(buckets, 5, 999, 0.90), 999);
  EXPECT_EQ(HistogramQuantileFromBuckets(buckets, 5, 999, 1.00), 999);
  EXPECT_EQ(HistogramQuantileFromBuckets(nullptr, 0, 0, 0.5), 0);
}

TEST(MetricsRegistryTest, CounterValuesAreSortedAndComplete) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test.values_b")->Increment(2);
  registry.GetCounter("test.values_a")->Increment(1);
  const auto values = registry.CounterValues();
  ASSERT_GE(values.size(), 2u);
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(values[i - 1].first, values[i].first)
        << "names must come back strictly sorted";
  }
  int64_t a = -1, b = -1;
  for (const auto& [name, value] : values) {
    if (name == "test.values_a") a = value;
    if (name == "test.values_b") b = value;
  }
  EXPECT_GE(a, 1);
  EXPECT_GE(b, 2);
}

TEST(MetricsRegistryTest, ScopedTimerRecordsOneSample) {
  LatencyHistogram hist;
  { ScopedLatencyTimer timer(&hist); }
  EXPECT_EQ(hist.Count(), 1);
  { ScopedLatencyTimer timer(nullptr); }  // null target is a no-op
}

}  // namespace
}  // namespace mysawh
