#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/stats.h"

namespace mysawh {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.NextUint64() == b.NextUint64();
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ForkIsIndependentOfParentContinuation) {
  Rng parent1(7), parent2(7);
  Rng child1 = parent1.Fork();
  Rng child2 = parent2.Fork();
  // Children of identical parents are identical.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(child1.NextUint64(), child2.NextUint64());
  }
  // Child stream differs from the parent's continuation.
  EXPECT_NE(parent1.NextUint64(), child1.NextUint64());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(11);
  int64_t hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) stats.Add(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) stats.Add(rng.Exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(RngTest, PoissonMoments) {
  Rng rng(19);
  RunningStats small, large;
  for (int i = 0; i < 20000; ++i) {
    small.Add(static_cast<double>(rng.Poisson(3.5)));
    large.Add(static_cast<double>(rng.Poisson(80.0)));
  }
  EXPECT_NEAR(small.mean(), 3.5, 0.1);
  EXPECT_NEAR(small.variance(), 3.5, 0.25);
  EXPECT_NEAR(large.mean(), 80.0, 0.5);
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, GammaMoments) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) stats.Add(rng.Gamma(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 6.0, 0.15);        // k * theta
  EXPECT_NEAR(stats.variance(), 18.0, 1.0);    // k * theta^2
}

TEST(RngTest, GammaSmallShape) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) {
    const double g = rng.Gamma(0.5, 1.0);
    EXPECT_GE(g, 0.0);
    stats.Add(g);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.05);
}

TEST(RngTest, BetaMomentsAndSupport) {
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) {
    const double b = rng.Beta(2.0, 5.0);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    stats.Add(b);
  }
  EXPECT_NEAR(stats.mean(), 2.0 / 7.0, 0.01);
}

TEST(RngTest, BinomialMean) {
  Rng rng(37);
  RunningStats stats;
  for (int i = 0; i < 10000; ++i) {
    stats.Add(static_cast<double>(rng.Binomial(10, 0.4)));
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<int64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (int64_t idx : sample) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, 20);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(47);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(1);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

/// Property sweep: UniformInt is unbiased over several ranges.
class UniformIntRangeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(UniformIntRangeTest, MeanMatchesMidpoint) {
  const int64_t hi = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(hi));
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(static_cast<double>(rng.UniformInt(0, hi)));
  }
  const double expected = static_cast<double>(hi) / 2.0;
  EXPECT_NEAR(stats.mean(), expected, 0.02 * (hi + 1));
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformIntRangeTest,
                         ::testing::Values<int64_t>(1, 2, 9, 63, 1000));

}  // namespace
}  // namespace mysawh
