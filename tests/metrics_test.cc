#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mysawh::core {
namespace {

TEST(RegressionMetricsTest, HandComputed) {
  const auto m =
      ComputeRegressionMetrics({1.0, 2.0, 4.0}, {1.5, 1.5, 5.0}).value();
  EXPECT_NEAR(m.mae, (0.5 + 0.5 + 1.0) / 3.0, 1e-12);
  EXPECT_NEAR(m.rmse, std::sqrt((0.25 + 0.25 + 1.0) / 3.0), 1e-12);
  EXPECT_NEAR(m.mape, (0.5 / 1.0 + 0.5 / 2.0 + 1.0 / 4.0) / 3.0, 1e-12);
  EXPECT_NEAR(m.one_minus_mape, 1.0 - m.mape, 1e-12);
  EXPECT_EQ(m.n, 3);
  EXPECT_EQ(m.mape_skipped, 0);
}

TEST(RegressionMetricsTest, SkipsZeroLabelsInMape) {
  const auto m = ComputeRegressionMetrics({0.0, 2.0}, {1.0, 3.0}).value();
  EXPECT_EQ(m.mape_skipped, 1);
  EXPECT_NEAR(m.mape, 0.5, 1e-12);  // only the y=2 sample
  EXPECT_NEAR(m.mae, 1.0, 1e-12);   // MAE still uses all samples
}

TEST(RegressionMetricsTest, PerfectPrediction) {
  const auto m = ComputeRegressionMetrics({1, 2, 3}, {1, 2, 3}).value();
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.one_minus_mape, 1.0);
}

TEST(RegressionMetricsTest, Validation) {
  EXPECT_FALSE(ComputeRegressionMetrics({}, {}).ok());
  EXPECT_FALSE(ComputeRegressionMetrics({1.0}, {1.0, 2.0}).ok());
}

TEST(ClassificationMetricsTest, HandComputedConfusion) {
  // labels:      1  1  1  0  0  0  0  0
  // predictions: 1  0  1  0  0  1  0  0   (threshold 0.5)
  const std::vector<double> labels = {1, 1, 1, 0, 0, 0, 0, 0};
  const std::vector<double> probs = {0.9, 0.2, 0.8, 0.1, 0.3, 0.7, 0.4, 0.0};
  const auto m = ComputeClassificationMetrics(labels, probs).value();
  EXPECT_EQ(m.tp, 2);
  EXPECT_EQ(m.fn, 1);
  EXPECT_EQ(m.fp, 1);
  EXPECT_EQ(m.tn, 4);
  EXPECT_NEAR(m.accuracy, 6.0 / 8.0, 1e-12);
  EXPECT_NEAR(m.precision_true, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.recall_true, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.precision_false, 4.0 / 5.0, 1e-12);
  EXPECT_NEAR(m.recall_false, 4.0 / 5.0, 1e-12);
  EXPECT_NEAR(m.f1_true, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.f1_false, 4.0 / 5.0, 1e-12);
}

TEST(ClassificationMetricsTest, DegenerateAllNegativePredictions) {
  // Never predicting True: recall_true = 0, precision_true reported as 0.
  const auto m =
      ComputeClassificationMetrics({1, 0, 0, 1}, {0.1, 0.1, 0.2, 0.3}).value();
  EXPECT_EQ(m.tp, 0);
  EXPECT_DOUBLE_EQ(m.recall_true, 0.0);
  EXPECT_DOUBLE_EQ(m.precision_true, 0.0);
  EXPECT_DOUBLE_EQ(m.f1_true, 0.0);
  EXPECT_DOUBLE_EQ(m.recall_false, 1.0);
}

TEST(ClassificationMetricsTest, CustomThreshold) {
  const auto strict =
      ComputeClassificationMetrics({1, 0}, {0.6, 0.4}, 0.7).value();
  EXPECT_EQ(strict.tp, 0);
  const auto loose =
      ComputeClassificationMetrics({1, 0}, {0.6, 0.4}, 0.5).value();
  EXPECT_EQ(loose.tp, 1);
}

TEST(ClassificationMetricsTest, Validation) {
  EXPECT_FALSE(ComputeClassificationMetrics({}, {}).ok());
  EXPECT_FALSE(ComputeClassificationMetrics({0.5}, {0.5}).ok());
  EXPECT_FALSE(ComputeClassificationMetrics({1.0}, {0.5, 0.5}).ok());
}

TEST(PerGroupMaeTest, GroupsAndAverages) {
  const auto result =
      PerGroupMae({1.0, 2.0, 3.0, 4.0}, {1.5, 2.5, 3.0, 2.0},
                  {7, 7, 9, 9})
          .value();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].first, 7);
  EXPECT_NEAR(result[0].second, 0.5, 1e-12);
  EXPECT_EQ(result[1].first, 9);
  EXPECT_NEAR(result[1].second, 1.0, 1e-12);
}

TEST(PerGroupMaeTest, Validation) {
  EXPECT_FALSE(PerGroupMae({1.0}, {1.0, 2.0}, {1}).ok());
  EXPECT_FALSE(PerGroupMae({1.0}, {1.0}, {1, 2}).ok());
}

TEST(MetricsToStringTest, ContainsKeyNumbers) {
  const auto reg = ComputeRegressionMetrics({1.0}, {0.9}).value();
  EXPECT_NE(reg.ToString().find("1-MAPE"), std::string::npos);
  const auto cls = ComputeClassificationMetrics({1, 0}, {1.0, 0.0}).value();
  EXPECT_NE(cls.ToString().find("acc=100"), std::string::npos);
}

}  // namespace
}  // namespace mysawh::core
