#include "util/flags.h"

#include <gtest/gtest.h>

namespace mysawh {
namespace {

Result<FlagParser> ParseArgs(std::vector<const char*> args) {
  return FlagParser::Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, CommandAndFlags) {
  const auto parser =
      ParseArgs({"train", "--data", "x.csv", "--num-trees", "50"}).value();
  EXPECT_EQ(parser.command(), "train");
  EXPECT_EQ(parser.GetString("data"), "x.csv");
  EXPECT_EQ(parser.GetInt("num-trees", 0).value(), 50);
}

TEST(FlagsTest, EqualsSyntax) {
  const auto parser = ParseArgs({"run", "--lr=0.05", "--name=model a"}).value();
  EXPECT_DOUBLE_EQ(parser.GetDouble("lr", 0).value(), 0.05);
  EXPECT_EQ(parser.GetString("name"), "model a");
}

TEST(FlagsTest, BooleanSwitch) {
  const auto parser = ParseArgs({"run", "--verbose", "--flag", "false"}).value();
  EXPECT_TRUE(parser.GetBool("verbose"));
  EXPECT_FALSE(parser.GetBool("flag", true));
  EXPECT_FALSE(parser.GetBool("absent", false));
  EXPECT_TRUE(parser.GetBool("absent", true));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const auto parser = ParseArgs({"cmd"}).value();
  EXPECT_EQ(parser.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(parser.GetInt("missing", 7).value(), 7);
  EXPECT_DOUBLE_EQ(parser.GetDouble("missing", 1.5).value(), 1.5);
  EXPECT_FALSE(parser.Has("missing"));
}

TEST(FlagsTest, PositionalArguments) {
  const auto parser = ParseArgs({"explain", "--top", "3", "a.csv", "b.csv"}).value();
  EXPECT_EQ(parser.command(), "explain");
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"a.csv", "b.csv"}));
}

TEST(FlagsTest, ErrorsOnBadInput) {
  EXPECT_FALSE(ParseArgs({"cmd", "--a", "1", "--a", "2"}).ok());
  EXPECT_FALSE(ParseArgs({"cmd", "--=x"}).ok());
  const auto parser = ParseArgs({"cmd", "--n", "abc"}).value();
  EXPECT_FALSE(parser.GetInt("n", 0).ok());
  EXPECT_FALSE(parser.GetDouble("n", 0).ok());
}

TEST(FlagsTest, EmptyArgv) {
  const auto parser = ParseArgs({}).value();
  EXPECT_EQ(parser.command(), "");
  EXPECT_TRUE(parser.positional().empty());
}

}  // namespace
}  // namespace mysawh
