#include "util/string_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mysawh {
namespace {

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("one", ','), (std::vector<std::string>{"one"}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "", "z z", "42"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble(" -1e3 ").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(StringUtilTest, ParseDoubleAllowMissing) {
  EXPECT_TRUE(std::isnan(ParseDoubleAllowMissing("").value()));
  EXPECT_TRUE(std::isnan(ParseDoubleAllowMissing("nan").value()));
  EXPECT_TRUE(std::isnan(ParseDoubleAllowMissing("NaN").value()));
  EXPECT_TRUE(std::isnan(ParseDoubleAllowMissing("NA").value()));
  EXPECT_DOUBLE_EQ(ParseDoubleAllowMissing("2.5").value(), 2.5);
  EXPECT_FALSE(ParseDoubleAllowMissing("junk").ok());
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(1.25, 6), "1.25");
  EXPECT_EQ(FormatDouble(3.0, 6), "3");
  EXPECT_EQ(FormatDouble(0.001, 6), "0.001");
  EXPECT_EQ(FormatDouble(-0.0, 3), "0");
  EXPECT_EQ(FormatDouble(std::nan(""), 3), "nan");
}

TEST(StringUtilTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.943, 1), "94.3%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
  EXPECT_EQ(FormatPercent(0.0235, 2), "2.35%");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("feature x", "feature "));
  EXPECT_FALSE(StartsWith("feat", "feature"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

}  // namespace
}  // namespace mysawh
