#include "core/sample_builder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cohort/simulator.h"

namespace mysawh::core {
namespace {

const cohort::Cohort& SmallCohort() {
  static const cohort::Cohort* cohort = [] {
    cohort::CohortConfig config;
    config.seed = 17;
    config.clinics = {{"A", 25, 0.0, 1.0}, {"B", 12, 0.0, 1.6}};
    auto result = cohort::CohortSimulator(config).Generate();
    return new cohort::Cohort(std::move(result).value());
  }();
  return *cohort;
}

TEST(SampleBuilderTest, AlignedSampleSets) {
  const auto builder =
      SampleSetBuilder::Create(&SmallCohort(), SampleBuildOptions{}).value();
  const auto sets = builder.Build(Outcome::kQol).value();
  // All four datasets share rows and labels.
  EXPECT_EQ(sets.dd.num_rows(), sets.retained);
  EXPECT_EQ(sets.dd_fi.num_rows(), sets.retained);
  EXPECT_EQ(sets.kd.num_rows(), sets.retained);
  EXPECT_EQ(sets.kd_fi.num_rows(), sets.retained);
  for (int64_t r = 0; r < sets.retained; ++r) {
    EXPECT_DOUBLE_EQ(sets.dd.label(r), sets.kd.label(r));
    EXPECT_DOUBLE_EQ(sets.dd.label(r), sets.dd_fi.label(r));
    EXPECT_DOUBLE_EQ(sets.dd.label(r), sets.kd_fi.label(r));
  }
  EXPECT_GT(sets.retained, 0);
  EXPECT_LE(sets.retained, sets.total_candidates);
  // 37 patients x 2 windows x 8 months.
  EXPECT_EQ(sets.total_candidates, 37 * 16);
}

TEST(SampleBuilderTest, FeatureSchemas) {
  const auto builder =
      SampleSetBuilder::Create(&SmallCohort(), SampleBuildOptions{}).value();
  const auto sets = builder.Build(Outcome::kQol).value();
  EXPECT_EQ(sets.dd.num_features(), 59);  // 56 PRO + 3 activity
  EXPECT_EQ(sets.dd_fi.num_features(), 60);
  EXPECT_EQ(sets.kd.num_features(), 1);
  EXPECT_EQ(sets.kd_fi.num_features(), 2);
  EXPECT_EQ(sets.dd_fi.feature_names().back(), kFiFeature);
  EXPECT_EQ(sets.kd.feature_names()[0], "ici");
  // DD schema ends with the three activity features.
  const auto& names = sets.dd.feature_names();
  EXPECT_EQ(names[56], kStepsFeature);
  EXPECT_EQ(names[57], kCaloriesFeature);
  EXPECT_EQ(names[58], kSleepFeature);
}

TEST(SampleBuilderTest, AttributesAttached) {
  const auto builder =
      SampleSetBuilder::Create(&SmallCohort(), SampleBuildOptions{}).value();
  const auto sets = builder.Build(Outcome::kSppb).value();
  for (const Dataset* ds : {&sets.dd, &sets.dd_fi, &sets.kd, &sets.kd_fi}) {
    for (const char* attr : {"patient", "clinic", "window", "month"}) {
      EXPECT_TRUE(ds->HasAttribute(attr)) << attr;
    }
  }
  const auto* months = sets.dd.Attribute("month").value();
  for (int64_t m : *months) {
    EXPECT_NE(m % 9, 0) << "visit months must not appear as samples";
    EXPECT_GE(m, 1);
    EXPECT_LT(m, 18);
  }
  const auto* windows = sets.dd.Attribute("window").value();
  for (int64_t w : *windows) {
    EXPECT_TRUE(w == 0 || w == 1);
  }
}

TEST(SampleBuilderTest, KdFeaturesNeverMissing) {
  const auto builder =
      SampleSetBuilder::Create(&SmallCohort(), SampleBuildOptions{}).value();
  const auto sets = builder.Build(Outcome::kQol).value();
  for (int64_t r = 0; r < sets.kd.num_rows(); ++r) {
    EXPECT_FALSE(std::isnan(sets.kd.At(r, 0)));
    EXPECT_GE(sets.kd.At(r, 0), 0.0);
    EXPECT_LE(sets.kd.At(r, 0), 1.0);
    EXPECT_FALSE(std::isnan(sets.kd_fi.At(r, 1)));  // FI
  }
}

TEST(SampleBuilderTest, LabelsMatchOutcomeKind) {
  const auto builder =
      SampleSetBuilder::Create(&SmallCohort(), SampleBuildOptions{}).value();
  const auto qol = builder.Build(Outcome::kQol).value();
  for (double y : qol.dd.labels()) {
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
  const auto sppb = builder.Build(Outcome::kSppb).value();
  for (double y : sppb.dd.labels()) {
    EXPECT_EQ(y, std::floor(y));
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 12.0);
  }
  const auto falls = builder.Build(Outcome::kFalls).value();
  for (double y : falls.dd.labels()) {
    EXPECT_TRUE(y == 0.0 || y == 1.0);
  }
}

TEST(SampleBuilderTest, GapStatsTrackInterpolation) {
  const auto builder =
      SampleSetBuilder::Create(&SmallCohort(), SampleBuildOptions{}).value();
  const auto sets = builder.Build(Outcome::kQol).value();
  EXPECT_GT(sets.gap_stats_raw.num_gaps, 0);
  // Bounded interpolation can only remove gaps.
  EXPECT_LE(sets.gap_stats_after.total_missing,
            sets.gap_stats_raw.total_missing);
  // Every remaining gap is longer than the interpolation bound.
  if (sets.gap_stats_after.num_gaps > 0) {
    EXPECT_GT(sets.gap_stats_after.mean_length, 5.0);
  }
}

/// QA-threshold sweep: retention is monotone in the threshold, and a
/// threshold of 1.0 keeps every candidate.
class QaThresholdTest : public ::testing::TestWithParam<double> {};

TEST_P(QaThresholdTest, RetentionMonotone) {
  SampleBuildOptions loose;
  loose.max_missing_fraction = 1.0;
  SampleBuildOptions tight;
  tight.max_missing_fraction = GetParam();
  const auto loose_sets = SampleSetBuilder::Create(&SmallCohort(), loose)
                              .value()
                              .Build(Outcome::kQol)
                              .value();
  const auto tight_sets = SampleSetBuilder::Create(&SmallCohort(), tight)
                              .value()
                              .Build(Outcome::kQol)
                              .value();
  EXPECT_LE(tight_sets.retained, loose_sets.retained);
  EXPECT_EQ(loose_sets.retained, loose_sets.total_candidates);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, QaThresholdTest,
                         ::testing::Values(0.0, 0.02, 0.05, 0.2, 0.5));

TEST(SampleBuilderTest, InterpolationGapAffectsRetention) {
  SampleBuildOptions none;
  none.max_interpolation_gap = 0;
  SampleBuildOptions generous;
  generous.max_interpolation_gap = 17;
  const auto sets_none = SampleSetBuilder::Create(&SmallCohort(), none)
                             .value()
                             .Build(Outcome::kQol)
                             .value();
  const auto sets_generous =
      SampleSetBuilder::Create(&SmallCohort(), generous)
          .value()
          .Build(Outcome::kQol)
          .value();
  EXPECT_GE(sets_generous.retained, sets_none.retained);
  EXPECT_EQ(sets_generous.gap_stats_after.num_gaps, 0);
}

TEST(SampleBuilderTest, ImputationMethodsProduceAlignedSets) {
  for (auto method : {ImputationMethod::kLinear, ImputationMethod::kLocf,
                      ImputationMethod::kNearest}) {
    SampleBuildOptions options;
    options.imputation = method;
    const auto sets = SampleSetBuilder::Create(&SmallCohort(), options)
                          .value()
                          .Build(Outcome::kQol)
                          .value();
    // Identical retention regardless of fill method (the same cells are
    // filled, only with different values).
    EXPECT_GT(sets.retained, 0);
    EXPECT_EQ(sets.dd.num_rows(), sets.kd.num_rows());
  }
  // Fill values differ between methods on at least some cells.
  SampleBuildOptions linear_options;
  SampleBuildOptions locf_options;
  locf_options.imputation = ImputationMethod::kLocf;
  const auto linear_sets = SampleSetBuilder::Create(&SmallCohort(), linear_options)
                               .value()
                               .Build(Outcome::kQol)
                               .value();
  const auto locf_sets = SampleSetBuilder::Create(&SmallCohort(), locf_options)
                             .value()
                             .Build(Outcome::kQol)
                             .value();
  ASSERT_EQ(linear_sets.dd.num_rows(), locf_sets.dd.num_rows());
  bool any_difference = false;
  for (int64_t r = 0; r < linear_sets.dd.num_rows() && !any_difference; ++r) {
    for (int64_t f = 0; f < linear_sets.dd.num_features(); ++f) {
      const double a = linear_sets.dd.At(r, f);
      const double b = locf_sets.dd.At(r, f);
      if (!std::isnan(a) && !std::isnan(b) && a != b) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(SampleBuilderTest, ValidatesOptions) {
  SampleBuildOptions bad;
  bad.max_interpolation_gap = -1;
  EXPECT_FALSE(SampleSetBuilder::Create(&SmallCohort(), bad).ok());
  bad = SampleBuildOptions{};
  bad.max_missing_fraction = 1.5;
  EXPECT_FALSE(SampleSetBuilder::Create(&SmallCohort(), bad).ok());
  EXPECT_FALSE(
      SampleSetBuilder::Create(nullptr, SampleBuildOptions{}).ok());
}

TEST(OutcomesTest, NamesRoundTrip) {
  EXPECT_STREQ(OutcomeName(Outcome::kQol), "QoL");
  EXPECT_EQ(ParseOutcome("SPPB").value(), Outcome::kSppb);
  EXPECT_EQ(ParseOutcome("Falls").value(), Outcome::kFalls);
  EXPECT_FALSE(ParseOutcome("qol").ok());
  EXPECT_TRUE(IsClassification(Outcome::kFalls));
  EXPECT_FALSE(IsClassification(Outcome::kQol));
}

TEST(OutcomesTest, LabelExtraction) {
  cohort::VisitOutcomes visit;
  visit.qol = 0.73;
  visit.sppb = 11;
  visit.falls = true;
  EXPECT_DOUBLE_EQ(OutcomeLabel(visit, Outcome::kQol), 0.73);
  EXPECT_DOUBLE_EQ(OutcomeLabel(visit, Outcome::kSppb), 11.0);
  EXPECT_DOUBLE_EQ(OutcomeLabel(visit, Outcome::kFalls), 1.0);
}

}  // namespace
}  // namespace mysawh::core
