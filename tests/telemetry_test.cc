/// Tests of the training-telemetry sink: enabled-flag discipline, scope
/// labelling, deterministic serialization, and the JSONL artifact shape.

#include "util/telemetry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace mysawh {
namespace {

/// Disables telemetry on scope exit so a failing test never leaks an
/// enabled session into its neighbours.
struct TelemetrySession {
  TelemetrySession() { Telemetry::Global().Enable(); }
  ~TelemetrySession() { Telemetry::Global().Disable(); }
};

TEST(TelemetryTest, DisabledByDefaultAndStreamsInactive) {
  EXPECT_FALSE(TelemetryEnabled());
  TelemetryStream stream = Telemetry::Global().StartStream("train");
  EXPECT_FALSE(stream.active());
  stream.Line("round", "\"round\":0");  // no-op when inactive
  stream.Finish();
  EXPECT_EQ(Telemetry::Global().stream_count(), 0u);
}

TEST(TelemetryTest, EnableStartsAFreshSession) {
  {
    TelemetrySession session;
    TelemetryStream stream = Telemetry::Global().StartStream("first");
    stream.Finish();
    EXPECT_EQ(Telemetry::Global().stream_count(), 1u);
  }
  TelemetrySession session;  // Enable() must clear the previous session
  EXPECT_EQ(Telemetry::Global().stream_count(), 0u);
}

TEST(TelemetryTest, ScopesBuildHierarchicalLabels) {
  TelemetrySession session;
  EXPECT_EQ(TelemetryContextLabel(), "");
  {
    TelemetryScope cell("QoL-DD-fi0");
    EXPECT_EQ(TelemetryContextLabel(), "QoL-DD-fi0");
    {
      TelemetryScope fold("cv3");
      EXPECT_EQ(TelemetryContextLabel(), "QoL-DD-fi0/cv3");
      TelemetryStream stream = Telemetry::Global().StartStream("train");
      EXPECT_EQ(stream.label(), "QoL-DD-fi0/cv3/train");
    }
    EXPECT_EQ(TelemetryContextLabel(), "QoL-DD-fi0");
  }
  EXPECT_EQ(TelemetryContextLabel(), "");
}

TEST(TelemetryTest, ScopesAreThreadLocal) {
  TelemetrySession session;
  TelemetryScope outer("main-thread");
  std::string other_label;
  std::thread worker([&other_label] {
    TelemetryScope scope("worker");
    other_label = TelemetryContextLabel();
  });
  worker.join();
  EXPECT_EQ(other_label, "worker");
  EXPECT_EQ(TelemetryContextLabel(), "main-thread");
}

TEST(TelemetryTest, JsonlHasHeaderAndSortedStreams) {
  TelemetrySession session;
  // Deposit out of label order; serialization must sort.
  {
    TelemetryStream b = Telemetry::Global().StartStream("b");
    b.Line("round", "\"round\":0,\"train\":0.5");
  }
  {
    TelemetryStream a = Telemetry::Global().StartStream("a");
    a.Line("header", "\"rows\":10");
  }
  const std::string jsonl = Telemetry::Global().ToJsonl();
  const std::vector<std::string> expected = {
      "{\"schema\":\"mysawh-telemetry v1\",\"streams\":2}",
      "{\"stream\":\"a\",\"type\":\"header\",\"rows\":10}",
      "{\"stream\":\"b\",\"type\":\"round\",\"round\":0,\"train\":0.5}",
  };
  std::string want;
  for (const auto& line : expected) {
    want += line;
    want += '\n';
  }
  EXPECT_EQ(jsonl, want);
}

TEST(TelemetryTest, ConcurrentDepositsSerializeDeterministically) {
  std::string reference;
  for (int round = 0; round < 3; ++round) {
    TelemetrySession session;
    std::vector<std::thread> workers;
    for (int t = 0; t < 8; ++t) {
      workers.emplace_back([t] {
        std::string segment = "w";
        segment += std::to_string(t);
        TelemetryScope scope(segment);
        TelemetryStream stream = Telemetry::Global().StartStream("train");
        for (int i = 0; i < 50; ++i) {
          stream.Line("round", "\"round\":" + std::to_string(i));
        }
      });
    }
    for (auto& w : workers) w.join();
    const std::string jsonl = Telemetry::Global().ToJsonl();
    if (round == 0) {
      reference = jsonl;
    } else {
      EXPECT_EQ(jsonl, reference);
    }
  }
}

TEST(TelemetryTest, DoubleRenderingIsRoundTripExactAndDeterministic) {
  for (double value :
       {0.1, 1.0 / 3.0, 123456.789, 1e-300, 1e300, -0.0, 42.0}) {
    const std::string text = TelemetryDouble(value);
    EXPECT_EQ(std::stod(text), value) << text;
  }
  EXPECT_EQ(TelemetryDouble(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(TelemetryDouble(0.5), "0.5");
  EXPECT_EQ(TelemetryDouble(2.0), "2");
}

TEST(TelemetryTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(TelemetryJsonEscape("plain"), "plain");
  EXPECT_EQ(TelemetryJsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(TelemetryJsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(TelemetryTest, MoveTransfersOwnership) {
  TelemetrySession session;
  TelemetryStream stream = Telemetry::Global().StartStream("moved");
  stream.Line("header", "\"rows\":1");
  TelemetryStream taken = std::move(stream);
  EXPECT_FALSE(stream.active());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(taken.active());
  taken.Finish();
  EXPECT_EQ(Telemetry::Global().stream_count(), 1u);
}

}  // namespace
}  // namespace mysawh
