#include "core/calibration_monitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace mysawh::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(CalibrationTest, HandComputedReliabilityTable) {
  // Two occupied bins of the 10-bin grid:
  //   [0.0, 0.1): 4 rows at p=0.05, 1 positive  -> observed 0.25
  //   [0.8, 0.9): 2 rows at p=0.85, 2 positives -> observed 1.0
  const std::vector<double> labels = {1, 0, 0, 0, 1, 1};
  const std::vector<double> preds = {0.05, 0.05, 0.05, 0.05, 0.85, 0.85};
  const CalibrationReport report =
      ComputeCalibration(labels, preds, 10).value();
  EXPECT_EQ(report.rows, 6);
  ASSERT_EQ(report.bins.size(), 2u);
  EXPECT_EQ(report.bins[0].count, 4);
  EXPECT_NEAR(report.bins[0].mean_predicted, 0.05, 1e-12);
  EXPECT_NEAR(report.bins[0].observed_rate, 0.25, 1e-12);
  EXPECT_EQ(report.bins[1].count, 2);
  EXPECT_NEAR(report.bins[1].observed_rate, 1.0, 1e-12);
  // ECE = (4*|0.05-0.25| + 2*|0.85-1.0|) / 6.
  EXPECT_NEAR(report.ece, (4 * 0.2 + 2 * 0.15) / 6.0, 1e-12);
  // Brier = ((0.05-1)^2 + 3*0.05^2 + 2*(0.85-1)^2) / 6.
  EXPECT_NEAR(report.brier, (0.9025 + 3 * 0.0025 + 2 * 0.0225) / 6.0, 1e-12);
}

TEST(CalibrationTest, PerfectCalibrationScoresZeroEce) {
  // Each bin's mean prediction equals its observed rate exactly.
  const std::vector<double> labels = {0, 1, 0, 1};
  const std::vector<double> preds = {0.5, 0.5, 0.5, 0.5};
  const CalibrationReport report =
      ComputeCalibration(labels, preds, 10).value();
  EXPECT_NEAR(report.ece, 0.0, 1e-12);
  EXPECT_NEAR(report.brier, 0.25, 1e-12);
}

TEST(CalibrationTest, NanRowsAreSkipped) {
  const std::vector<double> labels = {1, 0, kNaN, 1};
  const std::vector<double> preds = {0.9, 0.1, 0.5, kNaN};
  const CalibrationReport report =
      ComputeCalibration(labels, preds, 10).value();
  EXPECT_EQ(report.rows, 2);
  const CalibrationReport clean =
      ComputeCalibration({1, 0}, {0.9, 0.1}, 10).value();
  EXPECT_EQ(CalibrationJson(report), CalibrationJson(clean));
}

TEST(CalibrationTest, Validation) {
  EXPECT_FALSE(ComputeCalibration({1}, {0.5, 0.5}, 10).ok());
  EXPECT_FALSE(ComputeCalibration({}, {}, 10).ok());
  EXPECT_FALSE(ComputeCalibration({kNaN}, {0.5}, 10).ok());
  // The metrics primitives enforce 0/1 labels and [0, 1] probabilities.
  EXPECT_FALSE(ComputeCalibration({0.5}, {0.5}, 10).ok());
  EXPECT_FALSE(ComputeCalibration({1}, {1.5}, 10).ok());
}

TEST(ErrorQuantilesTest, ExactOrderStatisticsOverOneToHundred) {
  std::vector<double> labels;
  for (int i = 1; i <= 100; ++i) labels.push_back(i);
  const std::vector<double> preds(100, 0.0);
  const ErrorQuantiles q = ComputeErrorQuantiles(labels, preds).value();
  EXPECT_EQ(q.rows, 100);
  EXPECT_NEAR(q.mae, 50.5, 1e-12);
  // rank = ceil(q * 100), 1-based: exact order statistics.
  EXPECT_EQ(q.p50, 50.0);
  EXPECT_EQ(q.p90, 90.0);
  EXPECT_EQ(q.p99, 99.0);
  EXPECT_EQ(q.max_err, 100.0);
}

TEST(ErrorQuantilesTest, SingleRowAndNanSkipping) {
  const ErrorQuantiles q =
      ComputeErrorQuantiles({3.0, kNaN}, {1.0, 5.0}).value();
  EXPECT_EQ(q.rows, 1);
  EXPECT_EQ(q.p50, 2.0);
  EXPECT_EQ(q.p99, 2.0);
  EXPECT_EQ(q.max_err, 2.0);
  EXPECT_FALSE(ComputeErrorQuantiles({kNaN}, {1.0}).ok());
  EXPECT_FALSE(ComputeErrorQuantiles({1.0}, {1.0, 2.0}).ok());
}

TEST(CalibrationJsonTest, DeterministicShapes) {
  const CalibrationReport report =
      ComputeCalibration({1, 0}, {0.75, 0.25}, 4).value();
  const std::string json = CalibrationJson(report);
  EXPECT_NE(json.find("\"kind\":\"classification\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":2"), std::string::npos);
  EXPECT_NE(json.find("\"bins\":["), std::string::npos);
  EXPECT_EQ(json, CalibrationJson(report)) << "rendering must be stable";

  const ErrorQuantiles q = ComputeErrorQuantiles({2.0}, {1.0}).value();
  const std::string qjson = ErrorQuantilesJson(q);
  EXPECT_NE(qjson.find("\"kind\":\"regression\""), std::string::npos);
  EXPECT_NE(qjson.find("\"p99\":1"), std::string::npos);
}

TEST(CalibrationGaugesTest, PublishesPpmScaledValues) {
  const CalibrationReport report =
      ComputeCalibration({1, 0, 0, 0, 1, 1},
                         {0.05, 0.05, 0.05, 0.05, 0.85, 0.85}, 10)
          .value();
  PublishCalibrationGauges("unit", report);
  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetGauge("calibration.unit.ece_ppm")->Value(),
            std::llround(report.ece * 1e6));
  EXPECT_EQ(registry.GetGauge("calibration.unit.brier_ppm")->Value(),
            std::llround(report.brier * 1e6));
  EXPECT_EQ(registry.GetGauge("calibration.unit.rows")->Value(), 6);

  const ErrorQuantiles q =
      ComputeErrorQuantiles({1.0, 2.0}, {0.0, 0.0}).value();
  PublishErrorQuantileGauges("unit_reg", q);
  EXPECT_EQ(registry.GetGauge("calibration.unit_reg.mae_ppm")->Value(),
            std::llround(1.5 * 1e6));
  EXPECT_EQ(registry.GetGauge("calibration.unit_reg.p90_ppm")->Value(),
            std::llround(2.0 * 1e6));
}

}  // namespace
}  // namespace mysawh::core
