#include "core/audit_log.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace mysawh::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Dataset MakeData(int rows, int features, uint64_t seed) {
  std::vector<std::string> names;
  for (int f = 0; f < features; ++f) names.push_back("f" + std::to_string(f));
  Dataset data = Dataset::Create(names);
  uint64_t state = seed;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) /
           static_cast<double>(uint64_t{1} << 53);
  };
  for (int r = 0; r < rows; ++r) {
    std::vector<double> row(static_cast<size_t>(features));
    for (auto& v : row) {
      const double u = next();
      v = u < 0.1 ? kNaN : u;
    }
    EXPECT_TRUE(data.AddRow(row, 0.0).ok());
  }
  return data;
}

TEST(HashRowTest, NanPayloadsHashIdentically) {
  // JSON cannot preserve NaN payloads, so the fingerprint must not depend
  // on them — any NaN hashes as the canonical quiet NaN.
  const double a[] = {1.0, std::nan("1"), 3.0};
  const double b[] = {1.0, std::nan("0x7ff"), 3.0};
  const double c[] = {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0};
  EXPECT_EQ(HashRow(a, 3), HashRow(b, 3));
  EXPECT_EQ(HashRow(a, 3), HashRow(c, 3));
  const double d[] = {1.0, 2.0, 3.0};
  EXPECT_NE(HashRow(a, 3), HashRow(d, 3));
}

TEST(HashRowTest, SamplingIsAPureFunctionOfTheFingerprint) {
  EXPECT_TRUE(AuditSampled(12345, 1));
  EXPECT_TRUE(AuditSampled(32, 16));
  EXPECT_FALSE(AuditSampled(33, 16));
}

TEST(AuditLogTest, PredictRoundTripPreservesEveryField) {
  AuditLog& log = AuditLog::Global();
  AuditOptions options;
  options.sample_rate = 1;  // Keep every row.
  ASSERT_TRUE(log.Configure(options).ok());
  Dataset data = Dataset::Create({"a", "b"});
  ASSERT_TRUE(data.AddRow({1.5, kNaN}, 0.0).ok());
  ASSERT_TRUE(data.AddRow({-0.25, 1e-300}, 0.0).ok());
  log.RecordPredictBatch(0xabcdef, data, {0.75, kNaN});
  log.Disable();
  EXPECT_EQ(log.record_count(), 2);

  const AuditFile parsed = ParseAuditPayload(log.SerializePayload()).value();
  ASSERT_EQ(parsed.records.size(), 2u);
  for (const AuditRecord& record : parsed.records) {
    EXPECT_EQ(record.type, "predict");
    EXPECT_EQ(record.model_fp, 0xabcdefu);
    ASSERT_EQ(record.features.size(), 2u);
  }
  // Content sort orders by serialized text, not insertion order; find the
  // row by its first feature.
  const AuditRecord& first = parsed.records[0].features[0] == 1.5
                                 ? parsed.records[0]
                                 : parsed.records[1];
  const AuditRecord& second = &first == &parsed.records[0]
                                  ? parsed.records[1]
                                  : parsed.records[0];
  EXPECT_TRUE(std::isnan(first.features[1]));
  EXPECT_EQ(first.prediction, 0.75);
  EXPECT_EQ(second.features[1], 1e-300);
  EXPECT_TRUE(std::isnan(second.prediction));
}

TEST(HashRowTest, SampleKeyIsTheAvalanchedHashOfTheLeadingFeatures) {
  // The sampling decision runs for every row, so the key only reads the
  // first min(4, n) features (the full-row hash is reserved for the
  // fingerprint of sampled rows), avalanched so `key % rate` is unbiased.
  const double row[8] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  EXPECT_EQ(AuditSampleKey(row, 8), KeyAvalanche(HashRow(row, 4)));
  EXPECT_EQ(AuditSampleKey(row, 3), KeyAvalanche(HashRow(row, 3)));
  EXPECT_NE(AuditSampleKey(row, 8), KeyAvalanche(HashRow(row, 8)));
}

TEST(AuditLogTest, SamplingSelectsByContentFingerprint) {
  AuditLog& log = AuditLog::Global();
  AuditOptions options;
  options.sample_rate = 16;
  ASSERT_TRUE(log.Configure(options).ok());
  const Dataset data = MakeData(400, 4, 99);
  int64_t expected = 0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    if (AuditSampled(AuditSampleKey(data.row(r), 4), 16)) ++expected;
  }
  ASSERT_GT(expected, 0) << "fixture must sample at least one row";
  ASSERT_LT(expected, data.num_rows());
  log.RecordPredictBatch(1, data, std::vector<double>(400, 0.5));
  log.Disable();
  EXPECT_EQ(log.record_count(), expected);
}

TEST(AuditLogTest, SerializationIsInsertionOrderInvariant) {
  const Dataset a = MakeData(64, 3, 7);
  const Dataset b = MakeData(64, 3, 8);
  const std::vector<double> preds(64, 0.25);
  AuditLog& log = AuditLog::Global();
  AuditOptions options;
  options.sample_rate = 1;
  ASSERT_TRUE(log.Configure(options).ok());
  log.RecordPredictBatch(5, a, preds);
  log.RecordPredictBatch(5, b, preds);
  const std::string forward = log.SerializePayload();
  ASSERT_TRUE(log.Configure(options).ok());  // Clears the buffer.
  log.RecordPredictBatch(5, b, preds);
  log.RecordPredictBatch(5, a, preds);
  const std::string reversed = log.SerializePayload();
  log.Disable();
  EXPECT_EQ(forward, reversed);
}

TEST(AuditLogTest, ShapRecordsKeepTopKByMagnitude) {
  AuditLog& log = AuditLog::Global();
  AuditOptions options;
  options.sample_rate = 1;
  options.top_k = 2;
  ASSERT_TRUE(log.Configure(options).ok());
  Dataset data = Dataset::Create({"a", "b", "c", "d"});
  ASSERT_TRUE(data.AddRow({1.0, 2.0, 3.0, 4.0}, 0.0).ok());
  log.RecordShapBatch(9, data, {{0.1, -0.5, 0.3, 0.2}});
  log.Disable();
  const AuditFile parsed = ParseAuditPayload(log.SerializePayload()).value();
  ASSERT_EQ(parsed.records.size(), 1u);
  const AuditRecord& record = parsed.records[0];
  EXPECT_EQ(record.type, "shap");
  ASSERT_EQ(record.shap.size(), 2u);
  EXPECT_EQ(record.shap[0].index, 1);
  EXPECT_EQ(record.shap[0].value, -0.5);
  EXPECT_EQ(record.shap[1].index, 2);
  EXPECT_EQ(record.shap[1].value, 0.3);
}

TEST(AuditLogTest, ConfigureValidation) {
  AuditLog& log = AuditLog::Global();
  AuditOptions bad_rate;
  bad_rate.sample_rate = 0;
  EXPECT_FALSE(log.Configure(bad_rate).ok());
  AuditOptions bad_top_k;
  bad_top_k.top_k = 0;
  EXPECT_FALSE(log.Configure(bad_top_k).ok());
  EXPECT_FALSE(AuditEnabled());
}

TEST(AuditParseTest, FingerprintGuardsRecordIntegrity) {
  // A record whose features were tampered with no longer hashes to its
  // fp — corrupt even though the JSON itself parses.
  AuditLog& log = AuditLog::Global();
  AuditOptions options;
  options.sample_rate = 1;
  ASSERT_TRUE(log.Configure(options).ok());
  Dataset data = Dataset::Create({"a"});
  ASSERT_TRUE(data.AddRow({2.0}, 0.0).ok());
  log.RecordPredictBatch(1, data, {0.5});
  log.Disable();
  std::string payload = log.SerializePayload();
  ASSERT_TRUE(ParseAuditPayload(payload).ok());
  const size_t pos = payload.find("\"features\":[2]");
  ASSERT_NE(pos, std::string::npos);
  payload.replace(pos, 14, "\"features\":[3]");
  const auto tampered = ParseAuditPayload(payload);
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.status().code(), StatusCode::kDataLoss);
}

TEST(AuditParseTest, MalformedPayloadsAreDataLoss) {
  const char* cases[] = {
      // Empty and non-JSON.
      "", "not json\n",
      // Wrong schema.
      "{\"schema\":\"mysawh-telemetry v1\",\"sample_rate\":1,\"top_k\":1,"
      "\"records\":0}\n",
      // Header record count disagrees with the body.
      "{\"schema\":\"mysawh-audit v1\",\"sample_rate\":1,\"top_k\":1,"
      "\"records\":2}\n",
      // Invalid options.
      "{\"schema\":\"mysawh-audit v1\",\"sample_rate\":0,\"top_k\":1,"
      "\"records\":0}\n",
      // Record with a malformed fingerprint.
      "{\"schema\":\"mysawh-audit v1\",\"sample_rate\":1,\"top_k\":1,"
      "\"records\":1}\n"
      "{\"type\":\"predict\",\"fp\":\"XYZ\",\"model\":\"0\","
      "\"features\":[1],\"prediction\":0.5}\n",
      // Unknown record type.
      "{\"schema\":\"mysawh-audit v1\",\"sample_rate\":1,\"top_k\":1,"
      "\"records\":1}\n"
      "{\"type\":\"evict\",\"fp\":\"0\",\"model\":\"0\",\"features\":[1],"
      "\"prediction\":0.5}\n",
  };
  for (const char* payload : cases) {
    const auto parsed = ParseAuditPayload(payload);
    ASSERT_FALSE(parsed.ok()) << payload;
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss) << payload;
  }
}

TEST(AuditFileTest, ChecksummedFileRoundTrip) {
  AuditLog& log = AuditLog::Global();
  AuditOptions options;
  options.sample_rate = 2;
  options.top_k = 4;
  ASSERT_TRUE(log.Configure(options).ok());
  const Dataset data = MakeData(100, 3, 21);
  log.RecordPredictBatch(77, data, std::vector<double>(100, 1.25));
  log.Disable();
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("mysawh_audit_" + std::to_string(::getpid()) + ".bin"))
          .string();
  ASSERT_TRUE(log.WriteToFile(path).ok());
  const AuditFile parsed = ReadAuditFile(path).value();
  EXPECT_EQ(parsed.sample_rate, 2);
  EXPECT_EQ(parsed.top_k, 4);
  EXPECT_EQ(static_cast<int64_t>(parsed.records.size()), log.record_count());
  std::filesystem::remove(path);
  EXPECT_FALSE(ReadAuditFile(path).ok()) << "a missing file cannot parse";
}

}  // namespace
}  // namespace mysawh::core
