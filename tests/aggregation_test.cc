#include "series/aggregation.h"

#include <gtest/gtest.h>

#include <limits>

namespace mysawh {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(AggregationTest, MeanPerPeriod) {
  const TimeSeries daily({1, 2, 3, 4, 5, 6});
  const TimeSeries monthly = AggregateByPeriod(daily, 3, AggregateOp::kMean).value();
  ASSERT_EQ(monthly.size(), 2);
  EXPECT_DOUBLE_EQ(monthly.at(0), 2.0);
  EXPECT_DOUBLE_EQ(monthly.at(1), 5.0);
}

TEST(AggregationTest, SkipsMissingWithinPeriod) {
  const TimeSeries daily({1.0, kNaN, 3.0, kNaN, kNaN, kNaN});
  const TimeSeries monthly =
      AggregateByPeriod(daily, 3, AggregateOp::kMean).value();
  EXPECT_DOUBLE_EQ(monthly.at(0), 2.0);
  EXPECT_TRUE(monthly.IsMissing(1));
}

TEST(AggregationTest, SumMinMax) {
  const TimeSeries daily({4.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(
      AggregateByPeriod(daily, 3, AggregateOp::kSum).value().at(0), 8.0);
  EXPECT_DOUBLE_EQ(
      AggregateByPeriod(daily, 3, AggregateOp::kMin).value().at(0), 1.0);
  EXPECT_DOUBLE_EQ(
      AggregateByPeriod(daily, 3, AggregateOp::kMax).value().at(0), 4.0);
}

TEST(AggregationTest, PartialFinalBucket) {
  const TimeSeries daily({2.0, 4.0, 6.0, 10.0});
  const TimeSeries monthly =
      AggregateByPeriod(daily, 3, AggregateOp::kMean).value();
  ASSERT_EQ(monthly.size(), 2);
  EXPECT_DOUBLE_EQ(monthly.at(1), 10.0);
}

TEST(AggregationTest, EmptyInput) {
  const TimeSeries monthly =
      AggregateByPeriod(TimeSeries(std::vector<double>{}), 3, AggregateOp::kMean).value();
  EXPECT_EQ(monthly.size(), 0);
}

TEST(AggregationTest, InvalidPeriod) {
  EXPECT_FALSE(AggregateByPeriod(TimeSeries({1.0}), 0, AggregateOp::kMean).ok());
  EXPECT_FALSE(
      AggregateByPeriod(TimeSeries({1.0}), -2, AggregateOp::kMean).ok());
}

TEST(AggregationTest, DailyToMonthlyMeanUses30Days) {
  std::vector<double> days(60, 0.0);
  for (int i = 0; i < 30; ++i) days[static_cast<size_t>(i)] = 1.0;
  for (int i = 30; i < 60; ++i) days[static_cast<size_t>(i)] = 5.0;
  const TimeSeries monthly = DailyToMonthlyMean(TimeSeries(days)).value();
  ASSERT_EQ(monthly.size(), 2);
  EXPECT_DOUBLE_EQ(monthly.at(0), 1.0);
  EXPECT_DOUBLE_EQ(monthly.at(1), 5.0);
}

}  // namespace
}  // namespace mysawh
