#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mysawh {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Dataset MakeSample() {
  Dataset ds = Dataset::Create({"f0", "f1"});
  EXPECT_TRUE(ds.AddRow({1.0, 2.0}, 10.0).ok());
  EXPECT_TRUE(ds.AddRow({3.0, kNaN}, 20.0).ok());
  EXPECT_TRUE(ds.AddRow({5.0, 6.0}, 30.0).ok());
  EXPECT_TRUE(ds.SetAttribute("clinic", {0, 1, 2}).ok());
  return ds;
}

TEST(DatasetTest, ShapeAndAccess) {
  const Dataset ds = MakeSample();
  EXPECT_EQ(ds.num_rows(), 3);
  EXPECT_EQ(ds.num_features(), 2);
  EXPECT_DOUBLE_EQ(ds.At(0, 1), 2.0);
  EXPECT_TRUE(std::isnan(ds.At(1, 1)));
  EXPECT_DOUBLE_EQ(ds.label(2), 30.0);
  EXPECT_DOUBLE_EQ(ds.row(2)[0], 5.0);
}

TEST(DatasetTest, FeatureIndex) {
  const Dataset ds = MakeSample();
  EXPECT_EQ(ds.FeatureIndex("f1").value(), 1);
  EXPECT_FALSE(ds.FeatureIndex("zz").ok());
}

TEST(DatasetTest, AddRowWidthChecked) {
  Dataset ds = Dataset::Create({"a"});
  EXPECT_FALSE(ds.AddRow({1.0, 2.0}, 0.0).ok());
}

TEST(DatasetTest, AddRowAfterAttributesRejected) {
  Dataset ds = MakeSample();
  EXPECT_FALSE(ds.AddRow({1.0, 1.0}, 0.0).ok());
}

TEST(DatasetTest, FeatureColumn) {
  const Dataset ds = MakeSample();
  const auto col = ds.FeatureColumn(0);
  EXPECT_EQ(col, (std::vector<double>{1.0, 3.0, 5.0}));
}

TEST(DatasetTest, AttributesFollowTake) {
  const Dataset ds = MakeSample();
  const Dataset taken = ds.Take({2, 0}).value();
  EXPECT_EQ(taken.num_rows(), 2);
  EXPECT_DOUBLE_EQ(taken.label(0), 30.0);
  EXPECT_DOUBLE_EQ(taken.At(1, 0), 1.0);
  const auto* clinic = taken.Attribute("clinic").value();
  EXPECT_EQ(*clinic, (std::vector<int64_t>{2, 0}));
}

TEST(DatasetTest, TakeOutOfRangeFails) {
  const Dataset ds = MakeSample();
  EXPECT_FALSE(ds.Take({5}).ok());
  EXPECT_FALSE(ds.Take({-1}).ok());
}

TEST(DatasetTest, AttributeLengthChecked) {
  Dataset ds = MakeSample();
  EXPECT_FALSE(ds.SetAttribute("bad", {1, 2}).ok());
  EXPECT_FALSE(ds.Attribute("unknown").ok());
  EXPECT_TRUE(ds.HasAttribute("clinic"));
}

TEST(DatasetTest, AppendChecksSchema) {
  Dataset a = MakeSample();
  const Dataset b = MakeSample();
  ASSERT_TRUE(a.Append(b).ok());
  EXPECT_EQ(a.num_rows(), 6);
  EXPECT_EQ(a.Attribute("clinic").value()->size(), 6u);
  Dataset c = Dataset::Create({"other"});
  ASSERT_TRUE(c.AddRow({1.0}, 0.0).ok());
  EXPECT_FALSE(a.Append(c).ok());
}

TEST(DatasetTest, FromTable) {
  Table t;
  ASSERT_TRUE(t.AddNumericColumn("a", {1, 2}).ok());
  ASSERT_TRUE(t.AddNumericColumn("b", {3, 4}).ok());
  ASSERT_TRUE(t.AddNumericColumn("y", {0, 1}).ok());
  ASSERT_TRUE(t.AddNumericColumn("grp", {7, 8}).ok());
  const Dataset ds = Dataset::FromTable(t, {"b", "a"}, "y", {"grp"}).value();
  EXPECT_EQ(ds.num_features(), 2);
  EXPECT_DOUBLE_EQ(ds.At(0, 0), 3.0);  // column order follows request
  EXPECT_DOUBLE_EQ(ds.At(0, 1), 1.0);
  EXPECT_EQ(*ds.Attribute("grp").value(), (std::vector<int64_t>{7, 8}));
}

TEST(DatasetTest, ToTableRoundTripsThroughFromTable) {
  const Dataset ds = MakeSample();
  const Table table = ds.ToTable().value();
  EXPECT_EQ(table.num_rows(), ds.num_rows());
  EXPECT_TRUE(table.HasColumn("label"));
  EXPECT_TRUE(table.HasColumn("clinic"));
  const Dataset back =
      Dataset::FromTable(table, {"f0", "f1"}, "label", {"clinic"}).value();
  EXPECT_EQ(back.num_rows(), ds.num_rows());
  for (int64_t r = 0; r < ds.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(back.label(r), ds.label(r));
    for (int64_t f = 0; f < ds.num_features(); ++f) {
      if (std::isnan(ds.At(r, f))) {
        EXPECT_TRUE(std::isnan(back.At(r, f)));
      } else {
        EXPECT_DOUBLE_EQ(back.At(r, f), ds.At(r, f));
      }
    }
  }
  EXPECT_EQ(*back.Attribute("clinic").value(),
            *ds.Attribute("clinic").value());
}

TEST(DatasetTest, ToTableRejectsLabelNameClash) {
  Dataset ds = Dataset::Create({"label"});
  ASSERT_TRUE(ds.AddRow({1.0}, 2.0).ok());
  EXPECT_FALSE(ds.ToTable().ok());
}

TEST(DatasetTest, FromTableRejectsFractionalAttribute) {
  Table t;
  ASSERT_TRUE(t.AddNumericColumn("a", {1}).ok());
  ASSERT_TRUE(t.AddNumericColumn("y", {0}).ok());
  ASSERT_TRUE(t.AddNumericColumn("frac", {1.5}).ok());
  EXPECT_FALSE(Dataset::FromTable(t, {"a"}, "y", {"frac"}).ok());
}

}  // namespace
}  // namespace mysawh
