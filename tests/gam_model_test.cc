#include "gam/gam_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.h"

namespace mysawh::gam {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Purely additive target: y = sin(2 x0) + |x1| - 0.5 x2.
Dataset MakeAdditiveData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds = Dataset::Create({"x0", "x1", "x2"});
  for (int64_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-2, 2);
    const double x1 = rng.Uniform(-1, 1);
    const double x2 = rng.Uniform(-1, 1);
    const double y =
        std::sin(2 * x0) + std::abs(x1) - 0.5 * x2 + rng.Normal(0, 0.03);
    EXPECT_TRUE(ds.AddRow({x0, x1, x2}, y).ok());
  }
  return ds;
}

double Rmse(const std::vector<double>& y, const std::vector<double>& p) {
  double ss = 0;
  for (size_t i = 0; i < y.size(); ++i) ss += (y[i] - p[i]) * (y[i] - p[i]);
  return std::sqrt(ss / static_cast<double>(y.size()));
}

TEST(GamModelTest, FitsAdditiveFunction) {
  const Dataset train = MakeAdditiveData(2000, 1);
  const Dataset test = MakeAdditiveData(400, 2);
  GamParams params;
  params.num_cycles = 40;
  const GamModel model = GamModel::Train(train, params).value();
  EXPECT_LT(Rmse(test.labels(), model.Predict(test).value()), 0.12);
}

TEST(GamModelTest, ShapeFunctionRecoversMonotoneEffect) {
  // y depends on x0 monotonically; shape function must increase overall.
  Rng rng(3);
  Dataset train = Dataset::Create({"x0", "noise"});
  for (int i = 0; i < 1500; ++i) {
    const double x0 = rng.Uniform(0, 1);
    const double noise = rng.Uniform(0, 1);
    ASSERT_TRUE(train.AddRow({x0, noise}, 3.0 * x0 + rng.Normal(0, 0.02)).ok());
  }
  GamParams params;
  params.num_cycles = 30;
  const GamModel model = GamModel::Train(train, params).value();
  const auto shape =
      model.ShapeFunction(0, {0.05, 0.25, 0.5, 0.75, 0.95}).value();
  EXPECT_LT(shape.front(), shape.back());
  EXPECT_GT(shape.back() - shape.front(), 1.5);
  // The noise feature's shape function should be comparatively flat.
  const auto flat = model.ShapeFunction(1, {0.05, 0.5, 0.95}).value();
  double flat_span = *std::max_element(flat.begin(), flat.end()) -
                     *std::min_element(flat.begin(), flat.end());
  EXPECT_LT(flat_span, 0.3);
}

TEST(GamModelTest, ClassificationOnSeparableData) {
  Rng rng(5);
  Dataset train = Dataset::Create({"a", "b"});
  for (int i = 0; i < 1500; ++i) {
    const double a = rng.Uniform(-1, 1);
    const double b = rng.Uniform(-1, 1);
    ASSERT_TRUE(train.AddRow({a, b}, (a - b > 0.0) ? 1.0 : 0.0).ok());
  }
  GamParams params;
  params.objective = gbt::ObjectiveType::kLogistic;
  params.num_cycles = 30;
  const GamModel model = GamModel::Train(train, params).value();
  const auto preds = model.Predict(train).value();
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    correct += (preds[i] >= 0.5) == (train.label(static_cast<int64_t>(i)) > 0.5);
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(preds.size()),
            0.93);
}

TEST(GamModelTest, HandlesMissingValues) {
  Rng rng(7);
  Dataset train = Dataset::Create({"x"});
  for (int i = 0; i < 800; ++i) {
    if (rng.Bernoulli(0.25)) {
      ASSERT_TRUE(train.AddRow({kNaN}, 4.0).ok());
    } else {
      const double x = rng.Uniform(0, 1);
      ASSERT_TRUE(train.AddRow({x}, x).ok());
    }
  }
  GamParams params;
  params.num_cycles = 25;
  const GamModel model = GamModel::Train(train, params).value();
  const double missing_row[] = {kNaN};
  EXPECT_NEAR(model.PredictRow(missing_row), 4.0, 0.3);
  const double present_row[] = {0.4};
  EXPECT_NEAR(model.PredictRow(present_row), 0.4, 0.3);
}

TEST(GamModelTest, ShapValuesSatisfyLocalAccuracy) {
  const Dataset train = MakeAdditiveData(1000, 15);
  GamParams params;
  params.num_cycles = 20;
  const GamModel model = GamModel::Train(train, params).value();
  for (int64_t r = 0; r < 25; ++r) {
    const auto phi = model.ShapValues(train.row(r)).value();
    double total = model.expected_value();
    for (double v : phi) total += v;
    // For regression the transform is the identity, so the prediction is
    // the raw score.
    EXPECT_NEAR(total, model.PredictRow(train.row(r)), 1e-9);
  }
}

TEST(GamModelTest, ExpectedValueMatchesTrainMean) {
  const Dataset train = MakeAdditiveData(1000, 17);
  GamParams params;
  params.num_cycles = 20;
  const GamModel model = GamModel::Train(train, params).value();
  const auto preds = model.Predict(train).value();
  double mean = 0;
  for (double p : preds) mean += p;
  mean /= static_cast<double>(preds.size());
  EXPECT_NEAR(model.expected_value(), mean, 1e-9);
}

TEST(GamModelTest, ShapValuesTrackFeatureEffects) {
  Rng rng(19);
  Dataset train = Dataset::Create({"strong", "null"});
  for (int i = 0; i < 1500; ++i) {
    const double strong = rng.Uniform(-1, 1);
    ASSERT_TRUE(train.AddRow({strong, rng.Uniform(-1, 1)}, 4.0 * strong).ok());
  }
  GamParams params;
  params.num_cycles = 25;
  const GamModel model = GamModel::Train(train, params).value();
  const double row[] = {0.9, 0.0};
  const auto phi = model.ShapValues(row).value();
  EXPECT_GT(phi[0], 2.0);
  EXPECT_LT(std::abs(phi[1]), 0.3);
}

TEST(GamModelTest, ValidatesInputs) {
  Dataset empty = Dataset::Create({"x"});
  GamParams params;
  EXPECT_FALSE(GamModel::Train(empty, params).ok());
  params.learning_rate = 0.0;
  Dataset ok_data = MakeAdditiveData(50, 9);
  EXPECT_FALSE(GamModel::Train(ok_data, params).ok());
  params.learning_rate = 0.1;
  params.num_cycles = 0;
  EXPECT_FALSE(GamModel::Train(ok_data, params).ok());
}

TEST(GamModelTest, ShapeFunctionBounds) {
  const Dataset train = MakeAdditiveData(100, 11);
  GamParams params;
  params.num_cycles = 2;
  const GamModel model = GamModel::Train(train, params).value();
  EXPECT_FALSE(model.ShapeFunction(-1, {0.0}).ok());
  EXPECT_FALSE(model.ShapeFunction(3, {0.0}).ok());
}

TEST(GamModelTest, PredictChecksWidth) {
  const Dataset train = MakeAdditiveData(100, 13);
  GamParams params;
  params.num_cycles = 2;
  const GamModel model = GamModel::Train(train, params).value();
  Dataset wrong = Dataset::Create({"only"});
  ASSERT_TRUE(wrong.AddRow({0.0}, 0.0).ok());
  EXPECT_FALSE(model.Predict(wrong).ok());
}

TEST(GamModelTest, SerializationRoundTripsExactly) {
  const Dataset train = MakeAdditiveData(500, 17);
  const Dataset test = MakeAdditiveData(60, 18);
  GamParams params;
  params.num_cycles = 12;
  const GamModel model = GamModel::Train(train, params).value();
  const GamModel loaded = GamModel::Deserialize(model.Serialize()).value();
  EXPECT_EQ(loaded.feature_names(), model.feature_names());
  EXPECT_EQ(loaded.objective_type(), model.objective_type());
  EXPECT_EQ(loaded.num_trees(), model.num_trees());
  EXPECT_EQ(loaded.expected_value(), model.expected_value());
  for (int64_t r = 0; r < test.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(loaded.PredictRow(test.row(r)),
                     model.PredictRow(test.row(r)));
  }
  // The Shapley baselines (mean contributions) must survive the trip.
  const auto phi = model.ShapValues(test.row(0)).value();
  const auto phi_loaded = loaded.ShapValues(test.row(0)).value();
  ASSERT_EQ(phi.size(), phi_loaded.size());
  for (size_t f = 0; f < phi.size(); ++f) {
    EXPECT_DOUBLE_EQ(phi[f], phi_loaded[f]);
  }
}

TEST(GamModelTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(GamModel::Deserialize("not a model").ok());
  EXPECT_FALSE(GamModel::Deserialize("mysawh-gam v1\njunk").ok());
}

}  // namespace
}  // namespace mysawh::gam
