#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mysawh {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, VarianceUnbiased) {
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0, 3.0}), 2.0);
  EXPECT_NEAR(Variance({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              4.571428571, 1e-8);
}

TEST(StatsTest, StdDevIsSqrtVariance) {
  EXPECT_DOUBLE_EQ(StdDev({1.0, 3.0}), std::sqrt(2.0));
}

TEST(StatsTest, QuantileEndpointsAndMedian) {
  const std::vector<double> v = {3.0, 1.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0).value(), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5).value(), 3.0);
  EXPECT_DOUBLE_EQ(Median(v).value(), 3.0);
}

TEST(StatsTest, QuantileInterpolates) {
  // Type-7 on {1,2,3,4}: q=0.5 -> 2.5.
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0, 3.0, 4.0}, 0.5).value(), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0, 3.0, 4.0}, 0.25).value(), 1.75);
}

TEST(StatsTest, QuantileErrors) {
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile({1.0}, -0.1).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.1).ok());
}

TEST(StatsTest, QuantileMonotoneInQ) {
  const std::vector<double> v = {9.0, 1.0, 5.0, 2.0, 8.0, 4.0, 7.0};
  double previous = Quantile(v, 0.0).value();
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double current = Quantile(v, q).value();
    EXPECT_GE(current, previous - 1e-12);
    previous = current;
  }
}

TEST(StatsTest, PearsonCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y).value(), 1.0, 1e-12);
  const std::vector<double> yneg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, yneg).value(), -1.0, 1e-12);
  const std::vector<double> constant = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, constant).value(), 0.0);
  EXPECT_FALSE(PearsonCorrelation(x, {1.0}).ok());
}

TEST(StatsTest, BoxStatsSimple) {
  const std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const BoxStats box = ComputeBoxStats(v).value();
  EXPECT_DOUBLE_EQ(box.median, 5.0);
  EXPECT_DOUBLE_EQ(box.q1, 3.0);
  EXPECT_DOUBLE_EQ(box.q3, 7.0);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.max, 9.0);
  EXPECT_TRUE(box.outliers.empty());
}

TEST(StatsTest, BoxStatsFindsOutliers) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 100.0, -50.0};
  const BoxStats box = ComputeBoxStats(v).value();
  ASSERT_EQ(box.outliers.size(), 2u);
  EXPECT_DOUBLE_EQ(box.outliers[0], -50.0);
  EXPECT_DOUBLE_EQ(box.outliers[1], 100.0);
  // Whiskers exclude the outliers.
  EXPECT_GE(box.min, -50.0 + 1.0);
  EXPECT_LE(box.max, 100.0 - 1.0);
}

TEST(StatsTest, BoxStatsEmptyFails) {
  EXPECT_FALSE(ComputeBoxStats({}).ok());
}

TEST(StatsTest, HistogramBinsHalfOpen) {
  const auto hist =
      ComputeHistogram({0.0, 0.5, 1.0, 1.5, 2.0, -1.0, 5.0}, {0.0, 1.0, 2.0})
          .value();
  ASSERT_EQ(hist.counts.size(), 2u);
  EXPECT_EQ(hist.counts[0], 2);  // 0.0, 0.5
  EXPECT_EQ(hist.counts[1], 2);  // 1.0, 1.5
  EXPECT_EQ(hist.below, 1);      // -1.0
  EXPECT_EQ(hist.above, 2);      // 2.0 (== last edge), 5.0
}

TEST(StatsTest, HistogramRejectsBadEdges) {
  EXPECT_FALSE(ComputeHistogram({1.0}, {0.0}).ok());
  EXPECT_FALSE(ComputeHistogram({1.0}, {0.0, 0.0}).ok());
  EXPECT_FALSE(ComputeHistogram({1.0}, {1.0, 0.0}).ok());
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  const std::vector<double> v = {3.1, -2.2, 7.9, 0.0, 4.4, 4.4};
  RunningStats rs;
  for (double x : v) rs.Add(x);
  EXPECT_EQ(rs.count(), static_cast<int64_t>(v.size()));
  EXPECT_NEAR(rs.mean(), Mean(v), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(v), 1e-12);
}

TEST(StatsTest, RunningStatsSmallCounts) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.Add(5.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace mysawh
