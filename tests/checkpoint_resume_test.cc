// Kill/resume coverage of the study checkpoint pipeline: a study killed via
// the "study/cell_save" failpoint after 1, 6, and 11 completed cells is
// resumed from its checkpoint directory and must render a REPORT.md
// bit-identical to an uninterrupted run. Corrupt and stale checkpoints must
// be re-run, not trusted.
#include "core/checkpoint.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/study.h"
#include "util/failpoint.h"
#include "util/file_io.h"

namespace mysawh::core {
namespace {

namespace fs = std::filesystem;

/// The fast study configuration shared with study_test.cc.
StudyConfig FastConfig() {
  StudyConfig config;
  config.cohort.seed = 31;
  config.cohort.clinics = {{"A", 30, 0.0, 1.0}, {"B", 15, 0.0, 1.4}};
  config.protocol.cv_folds = 3;
  // Sequential, so "killed after K cells" is a well-defined prefix of the
  // fixed grid order.
  config.num_threads = 1;
  return config;
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mysawh_ckpt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FailpointRegistry::Global().DisableAll();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

/// The uninterrupted reference run (no checkpointing), computed once.
const std::string& ReferenceReport() {
  static const std::string* report = [] {
    auto study = RunFullStudy(FastConfig());
    return new std::string(study.value().ToMarkdown());
  }();
  return *report;
}

TEST_F(CheckpointResumeTest, CheckpointedRunMatchesPlainRun) {
  StudyConfig config = FastConfig();
  config.checkpoint_dir = (dir_ / "ckpt").string();
  auto study = RunFullStudy(config);
  ASSERT_TRUE(study.ok());
  EXPECT_EQ(study->ToMarkdown(), ReferenceReport());
  // All 12 cells left a checkpoint.
  int count = 0;
  for ([[maybe_unused]] const auto& e :
       fs::directory_iterator(config.checkpoint_dir)) {
    ++count;
  }
  EXPECT_EQ(count, 12);
}

TEST_F(CheckpointResumeTest, KilledStudiesResumeToIdenticalReport) {
  // Kill after 1, 6, and 11 persisted cells. Arming `from:K+1` makes the
  // K+1-th and every later save fail — exactly what a process that died
  // after K saves looks like to the next run.
  for (const int completed_cells : {1, 6, 11}) {
    const std::string ckpt_dir =
        (dir_ / ("kill_after_" + std::to_string(completed_cells))).string();
    StudyConfig config = FastConfig();
    config.checkpoint_dir = ckpt_dir;

    FailpointRegistry::Global().Enable(
        "study/cell_save", FailpointSpec::FromNth(completed_cells + 1));
    auto killed = RunFullStudy(config);
    FailpointRegistry::Global().DisableAll();
    ASSERT_FALSE(killed.ok()) << "kill after " << completed_cells;

    // Exactly the first K cells left checkpoints behind.
    int count = 0;
    for ([[maybe_unused]] const auto& e : fs::directory_iterator(ckpt_dir)) {
      ++count;
    }
    EXPECT_EQ(count, completed_cells);

    // Resume: finished cells load, the rest re-run.
    config.resume = true;
    auto resumed = RunFullStudy(config);
    ASSERT_TRUE(resumed.ok()) << "resume after " << completed_cells;
    EXPECT_EQ(resumed->ToMarkdown(), ReferenceReport())
        << "report differs after kill at " << completed_cells;
  }
}

TEST_F(CheckpointResumeTest, CorruptCheckpointIsRerunNotTrusted) {
  StudyConfig config = FastConfig();
  config.checkpoint_dir = (dir_ / "ckpt").string();
  ASSERT_TRUE(RunFullStudy(config).ok());

  // Corrupt one checkpoint file with a bit flip.
  const std::string victim =
      config.checkpoint_dir + "/" +
      CheckpointFileName(Outcome::kQol, Approach::kDataDriven, true);
  auto bytes = ReadFileToString(victim);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted[corrupted.size() / 2] ^= 0x04;
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out << corrupted;
  }
  // Loading it directly reports DataLoss.
  EXPECT_EQ(LoadCellCheckpoint(config.checkpoint_dir,
                               StudyFingerprint(config), Outcome::kQol,
                               Approach::kDataDriven, true)
                .status()
                .code(),
            StatusCode::kDataLoss);

  // A resumed study recomputes the corrupt cell and still matches.
  config.resume = true;
  auto resumed = RunFullStudy(config);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->ToMarkdown(), ReferenceReport());
  // The corrupt file was rewritten and now verifies again.
  EXPECT_TRUE(LoadCellCheckpoint(config.checkpoint_dir,
                                 StudyFingerprint(config), Outcome::kQol,
                                 Approach::kDataDriven, true)
                  .ok());
}

TEST_F(CheckpointResumeTest, FingerprintMismatchForcesRerun) {
  StudyConfig config = FastConfig();
  config.checkpoint_dir = (dir_ / "ckpt").string();
  ASSERT_TRUE(RunFullStudy(config).ok());

  // The same checkpoints under a different configuration are rejected...
  StudyConfig other = config;
  other.protocol.cv_folds = 4;
  EXPECT_EQ(LoadCellCheckpoint(other.checkpoint_dir, StudyFingerprint(other),
                               Outcome::kQol, Approach::kDataDriven, true)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  // ...and a resume under the changed configuration re-runs everything,
  // matching a fresh run of that configuration.
  other.resume = true;
  auto resumed = RunFullStudy(other);
  ASSERT_TRUE(resumed.ok());
  StudyConfig fresh = FastConfig();
  fresh.protocol.cv_folds = 4;
  EXPECT_EQ(resumed->ToMarkdown(), RunFullStudy(fresh).value().ToMarkdown());
}

TEST_F(CheckpointResumeTest, ExperimentResultSerializationRoundTrips) {
  StudyConfig config = FastConfig();
  auto study = RunFullStudy(config);
  ASSERT_TRUE(study.ok());
  const std::string fingerprint = StudyFingerprint(config);
  for (const auto& [key, cell] : study->cells) {
    const std::string text = SerializeExperimentResult(cell, fingerprint);
    auto restored = DeserializeExperimentResult(text, fingerprint);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->outcome, cell.outcome);
    EXPECT_EQ(restored->approach, cell.approach);
    EXPECT_EQ(restored->with_fi, cell.with_fi);
    EXPECT_EQ(restored->is_classification, cell.is_classification);
    // Bit-exact metric round-trip (hex-encoded doubles).
    EXPECT_EQ(restored->test_regression.one_minus_mape,
              cell.test_regression.one_minus_mape);
    EXPECT_EQ(restored->test_regression.mae, cell.test_regression.mae);
    EXPECT_EQ(restored->cv_regression.rmse, cell.cv_regression.rmse);
    EXPECT_EQ(restored->test_classification.tp, cell.test_classification.tp);
    EXPECT_EQ(restored->test_classification.f1_true,
              cell.test_classification.f1_true);
    ASSERT_NE(restored->model, nullptr);
    EXPECT_EQ(restored->model->Serialize(), cell.model->Serialize());
    // Wrong fingerprint is a FailedPrecondition.
    EXPECT_EQ(DeserializeExperimentResult(text, fingerprint + "x")
                  .status()
                  .code(),
              StatusCode::kFailedPrecondition);
  }
}

}  // namespace
}  // namespace mysawh::core
