#include "explain/tree_shap.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

#include "gbt/gbt_model.h"
#include "util/rng.h"

namespace mysawh::explain {
namespace {

using gbt::GbtModel;
using gbt::GbtParams;
using gbt::ObjectiveType;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Dataset MakeData(int64_t n, int64_t num_features, uint64_t seed,
                 double missing_prob = 0.0) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (int64_t f = 0; f < num_features; ++f) {
    std::string name = "f";
    name += std::to_string(f);
    names.push_back(std::move(name));
  }
  Dataset ds = Dataset::Create(names);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> row(static_cast<size_t>(num_features));
    double y = 0.0;
    for (int64_t f = 0; f < num_features; ++f) {
      double v = rng.Uniform(-1, 1);
      if (missing_prob > 0 && rng.Bernoulli(missing_prob)) v = kNaN;
      row[static_cast<size_t>(f)] = v;
      if (!std::isnan(v)) {
        // Nonlinear multi-feature signal with interactions.
        y += (f % 2 == 0 ? 1.0 : -0.5) * v;
        if (f + 1 < num_features) y += 0.3 * v * (f % 3 == 0 ? 1 : 0);
      }
    }
    if (!std::isnan(row[0])) y += 0.4 * std::sin(3.0 * row[0]);
    EXPECT_TRUE(ds.AddRow(row, y).ok());
  }
  return ds;
}

/// The core SHAP property: phi sums to raw prediction minus expectation.
void ExpectAdditivity(const GbtModel& model, const Dataset& data,
                      double tolerance = 1e-6) {
  const TreeShap shap(&model);
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    const auto phi = shap.Shap(data.row(r));
    const double total =
        std::accumulate(phi.begin(), phi.end(), shap.expected_value());
    EXPECT_NEAR(total, model.PredictRowRaw(data.row(r)), tolerance)
        << "additivity violated at row " << r;
  }
}

TEST(TreeShapTest, SingleSplitTreeMatchesAnalyticValues) {
  // One tree, one split on f0 at 0 with leaf values a (left) and b (right),
  // covers cl and cr. For a row going right:
  //   phi_f0 = b - E[f] = b - (cl*a + cr*b)/(cl+cr).
  Dataset train = Dataset::Create({"f0"});
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.Uniform(-1, 1);
    ASSERT_TRUE(train.AddRow({x}, x < 0 ? -1.0 : 2.0).ok());
  }
  GbtParams params;
  params.num_trees = 1;
  params.learning_rate = 1.0;
  params.max_depth = 1;
  params.reg_lambda = 0.0;
  const GbtModel model = GbtModel::Train(train, params).value();
  ASSERT_EQ(model.trees().size(), 1u);
  const TreeShap shap(&model);
  const double right_row[] = {0.5};
  const auto phi = shap.Shap(right_row);
  ASSERT_EQ(phi.size(), 1u);
  EXPECT_NEAR(phi[0] + shap.expected_value(), model.PredictRowRaw(right_row),
              1e-9);
  // Expectation is between the two leaves, prediction at the right leaf.
  EXPECT_GT(phi[0], 0.0);
  const double left_row[] = {-0.5};
  EXPECT_LT(shap.Shap(left_row)[0], 0.0);
}

TEST(TreeShapTest, AdditivityOnDenseModel) {
  const Dataset train = MakeData(1200, 6, 21);
  GbtParams params;
  params.num_trees = 80;
  params.max_depth = 4;
  const GbtModel model = GbtModel::Train(train, params).value();
  const Dataset probe = MakeData(60, 6, 22);
  ExpectAdditivity(model, probe);
}

TEST(TreeShapTest, AdditivityWithMissingValues) {
  const Dataset train = MakeData(1200, 5, 23, /*missing_prob=*/0.2);
  GbtParams params;
  params.num_trees = 60;
  params.max_depth = 5;
  const GbtModel model = GbtModel::Train(train, params).value();
  const Dataset probe = MakeData(60, 5, 24, /*missing_prob=*/0.3);
  ExpectAdditivity(model, probe);
}

TEST(TreeShapTest, AdditivityLogisticModel) {
  Rng rng(25);
  Dataset train = Dataset::Create({"a", "b", "c"});
  for (int i = 0; i < 1500; ++i) {
    const double a = rng.Uniform(-1, 1);
    const double b = rng.Uniform(-1, 1);
    const double c = rng.Uniform(-1, 1);
    const double label = (a + b * c > 0.1) ? 1.0 : 0.0;
    ASSERT_TRUE(train.AddRow({a, b, c}, label).ok());
  }
  GbtParams params;
  params.objective = ObjectiveType::kLogistic;
  params.num_trees = 60;
  const GbtModel model = GbtModel::Train(train, params).value();
  ExpectAdditivity(model, train.Take({0, 1, 2, 3, 4, 5, 6, 7}).value());
}

TEST(TreeShapTest, DummyFeatureGetsZeroAttribution) {
  // f1 never influences the label; trees should not split on it, so its
  // SHAP value must be exactly zero.
  Rng rng(26);
  Dataset train = Dataset::Create({"signal", "dummy"});
  for (int i = 0; i < 800; ++i) {
    const double s = rng.Uniform(-1, 1);
    ASSERT_TRUE(train.AddRow({s, 0.0}, 2.0 * s).ok());
  }
  GbtParams params;
  params.num_trees = 30;
  const GbtModel model = GbtModel::Train(train, params).value();
  const TreeShap shap(&model);
  const double row[] = {0.7, 0.0};
  const auto phi = shap.Shap(row);
  EXPECT_DOUBLE_EQ(phi[1], 0.0);
  EXPECT_NE(phi[0], 0.0);
}

TEST(TreeShapTest, ExpectedValueMatchesCoverWeightedMean) {
  const Dataset train = MakeData(1000, 4, 27);
  GbtParams params;
  params.num_trees = 40;
  const GbtModel model = GbtModel::Train(train, params).value();
  const TreeShap shap(&model);
  // With full-data training (no subsampling) and squared error (hessian =
  // 1), cover weighting equals row weighting, so the expectation over the
  // training rows approximates expected_value closely.
  const auto raw = model.PredictRaw(train).value();
  const double mean_raw =
      std::accumulate(raw.begin(), raw.end(), 0.0) /
      static_cast<double>(raw.size());
  EXPECT_NEAR(shap.expected_value(), mean_raw, 1e-6);
}

TEST(TreeShapTest, ShapBatchMatchesPerRow) {
  const Dataset train = MakeData(400, 3, 28);
  GbtParams params;
  params.num_trees = 20;
  const GbtModel model = GbtModel::Train(train, params).value();
  const TreeShap shap(&model);
  const Dataset probe = MakeData(10, 3, 29);
  const auto batch = shap.ShapBatch(probe).value();
  ASSERT_EQ(batch.size(), 10u);
  for (int64_t r = 0; r < probe.num_rows(); ++r) {
    EXPECT_EQ(batch[static_cast<size_t>(r)], shap.Shap(probe.row(r)));
  }
}

TEST(TreeShapTest, ShapBatchPatternTablesMatchPerRow) {
  // Deep trees over few features force repeated features on paths (the
  // UnwindPath merge), and 256 probe rows cross ShapBatch's pattern-table
  // threshold (the 10-row batch above stays on the per-row recursion), so
  // the precomputed-addend path gets the exact-equality check including
  // missing values.
  const Dataset train = MakeData(500, 4, 32, /*missing_prob=*/0.15);
  GbtParams params;
  params.num_trees = 15;
  params.max_depth = 5;
  const GbtModel model = GbtModel::Train(train, params).value();
  ASSERT_NE(model.flat_forest(), nullptr);
  const TreeShap shap(&model);
  const Dataset probe = MakeData(256, 4, 33, /*missing_prob=*/0.2);
  const auto batch = shap.ShapBatch(probe).value();
  ASSERT_EQ(batch.size(), 256u);
  for (int64_t r = 0; r < probe.num_rows(); ++r) {
    EXPECT_EQ(batch[static_cast<size_t>(r)], shap.Shap(probe.row(r)));
  }
}

TEST(TreeShapTest, ShapBatchChecksWidth) {
  const Dataset train = MakeData(200, 3, 30);
  GbtParams params;
  params.num_trees = 5;
  const GbtModel model = GbtModel::Train(train, params).value();
  const TreeShap shap(&model);
  const Dataset wrong = MakeData(5, 2, 31);
  EXPECT_FALSE(shap.ShapBatch(wrong).ok());
}

/// Property sweep across tree depths: additivity must hold regardless of
/// how often features repeat along a path (repeated features exercise the
/// UnwindPath branch).
class TreeShapDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeShapDepthTest, AdditivityHolds) {
  const Dataset train = MakeData(800, 3, 100 + GetParam());
  GbtParams params;
  params.num_trees = 30;
  params.max_depth = GetParam();  // depth > features forces repeats
  const GbtModel model = GbtModel::Train(train, params).value();
  const Dataset probe = MakeData(40, 3, 200 + GetParam());
  ExpectAdditivity(model, probe);
}

INSTANTIATE_TEST_SUITE_P(Depths, TreeShapDepthTest,
                         ::testing::Values(1, 2, 4, 6, 8));

}  // namespace
}  // namespace mysawh::explain
