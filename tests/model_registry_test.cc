/// Tests of the model serialization registry: every built-in family must
/// round-trip through the base-layer file API, and unknown payloads must be
/// rejected with a clean Status.

#include "model/model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "gam/gam_model.h"
#include "gbt/gbt_model.h"
#include "linear/linear_model.h"
#include "util/rng.h"

namespace mysawh::model {
namespace {

Dataset MakeRegressionData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds = Dataset::Create({"x0", "x1"});
  for (int64_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-1, 1);
    const double x1 = rng.Uniform(-1, 1);
    EXPECT_TRUE(ds.AddRow({x0, x1}, x0 - 2 * x1 + rng.Normal(0, 0.05)).ok());
  }
  return ds;
}

Dataset MakeClassificationData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds = Dataset::Create({"x0", "x1"});
  for (int64_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-1, 1);
    const double x1 = rng.Uniform(-1, 1);
    EXPECT_TRUE(ds.AddRow({x0, x1}, x0 + x1 > 0 ? 1.0 : 0.0).ok());
  }
  return ds;
}

/// One trained instance of every built-in family.
std::vector<std::unique_ptr<Model>> TrainAllFamilies() {
  const Dataset reg = MakeRegressionData(200, 5);
  const Dataset cls = MakeClassificationData(200, 6);
  std::vector<std::unique_ptr<Model>> models;
  gbt::GbtParams gbt_params;
  gbt_params.num_trees = 8;
  models.push_back(std::make_unique<gbt::GbtModel>(
      gbt::GbtModel::Train(reg, gbt_params).value()));
  models.push_back(std::make_unique<linear::LinearModel>(
      linear::LinearModel::Train(reg).value()));
  models.push_back(std::make_unique<linear::LogisticModel>(
      linear::LogisticModel::Train(cls).value()));
  gam::GamParams gam_params;
  gam_params.num_cycles = 4;
  models.push_back(std::make_unique<gam::GamModel>(
      gam::GamModel::Train(reg, gam_params).value()));
  return models;
}

TEST(ModelRegistryTest, AllBuiltinFamiliesAreRegistered) {
  const auto kinds = RegisteredModelKinds();
  for (const char* kind : {"gbt", "linear", "logistic", "gam"}) {
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), kind), kinds.end())
        << kind << " missing from registry";
  }
}

TEST(ModelRegistryTest, EveryFamilyRoundTripsThroughFile) {
  const Dataset probe = MakeRegressionData(30, 7);
  for (const auto& model : TrainAllFamilies()) {
    const std::string path =
        ::testing::TempDir() + "/registry_" + model->Kind() + ".txt";
    ASSERT_TRUE(model->SaveToFile(path).ok()) << model->Kind();
    const auto loaded = Model::LoadFromFile(path).value();
    EXPECT_EQ(loaded->Kind(), model->Kind());
    EXPECT_EQ(loaded->NumFeatures(), model->NumFeatures());
    EXPECT_EQ(loaded->FeatureNames(), model->FeatureNames());
    EXPECT_EQ(loaded->IsClassifier(), model->IsClassifier());
    for (int64_t r = 0; r < probe.num_rows(); ++r) {
      EXPECT_DOUBLE_EQ(loaded->Predict(probe.row(r)),
                       model->Predict(probe.row(r)))
          << model->Kind() << " row " << r;
    }
    std::remove(path.c_str());
  }
}

TEST(ModelRegistryTest, PredictBatchMatchesRowPredictions) {
  const Dataset probe = MakeRegressionData(25, 8);
  for (const auto& model : TrainAllFamilies()) {
    const auto batch = model->PredictBatch(probe).value();
    ASSERT_EQ(batch.size(), static_cast<size_t>(probe.num_rows()));
    for (int64_t r = 0; r < probe.num_rows(); ++r) {
      EXPECT_DOUBLE_EQ(batch[static_cast<size_t>(r)],
                       model->Predict(probe.row(r)))
          << model->Kind();
    }
  }
}

TEST(ModelRegistryTest, UnknownKindIsRejectedCleanly) {
  const auto result = Model::Deserialize("kind: hal9000\nsome payload\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("hal9000"), std::string::npos);
}

TEST(ModelRegistryTest, EmptyAndGarbageInputsAreRejected) {
  EXPECT_FALSE(Model::Deserialize("").ok());
  EXPECT_FALSE(Model::Deserialize("kind: gbt\nnot a gbt payload").ok());
  EXPECT_FALSE(Model::LoadFromFile("/nonexistent/model.txt").ok());
}

TEST(ModelRegistryTest, LegacyHeaderlessGbtFilesStillLoad) {
  // Files written before the kind header start directly with the GBT
  // payload; Deserialize must fall back to the gbt factory.
  const Dataset reg = MakeRegressionData(120, 9);
  gbt::GbtParams params;
  params.num_trees = 5;
  const gbt::GbtModel gbt = gbt::GbtModel::Train(reg, params).value();
  const auto loaded = Model::Deserialize(gbt.Serialize()).value();
  EXPECT_EQ(loaded->Kind(), "gbt");
  for (int64_t r = 0; r < std::min<int64_t>(reg.num_rows(), 10); ++r) {
    EXPECT_DOUBLE_EQ(loaded->Predict(reg.row(r)), gbt.PredictRow(reg.row(r)));
  }
}

TEST(ModelRegistryTest, SerializeWithKindPrependsHeader) {
  for (const auto& model : TrainAllFamilies()) {
    const std::string text = model->SerializeWithKind();
    EXPECT_EQ(text.rfind("kind: " + model->Kind() + "\n", 0), 0u);
  }
}

}  // namespace
}  // namespace mysawh::model
