#include "explain/explanation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace mysawh::explain {
namespace {

using gbt::GbtModel;
using gbt::GbtParams;

/// Strong effect on "big", weak on "small", none on "none"; "step" has a
/// sharp threshold at 3 on a 1..10 ordinal scale (Fig 7-style).
Dataset MakeData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds = Dataset::Create({"big", "small", "none", "step"});
  for (int64_t i = 0; i < n; ++i) {
    const double big = rng.Uniform(-1, 1);
    const double small = rng.Uniform(-1, 1);
    const double none = rng.Uniform(-1, 1);
    const double step = static_cast<double>(rng.UniformInt(1, 10));
    const double y = 4.0 * big + 0.4 * small + (step < 3.0 ? 1.0 : -1.0) +
                     rng.Normal(0, 0.02);
    EXPECT_TRUE(ds.AddRow({big, small, none, step}, y).ok());
  }
  return ds;
}

GbtModel TrainModel(const Dataset& train) {
  GbtParams params;
  params.num_trees = 80;
  params.learning_rate = 0.1;
  return GbtModel::Train(train, params).value();
}

TEST(ExplanationTest, LocalExplanationRanksByMagnitude) {
  const Dataset data = MakeData(1500, 1);
  const GbtModel model = TrainModel(data);
  const TreeShap shap(&model);
  const auto explanation = ExplainRow(shap, data, 0).value();
  ASSERT_EQ(explanation.contributions.size(), 4u);
  for (size_t i = 1; i < explanation.contributions.size(); ++i) {
    EXPECT_GE(std::abs(explanation.contributions[i - 1].shap),
              std::abs(explanation.contributions[i].shap));
  }
  // Local accuracy carried through the report.
  double total = explanation.expected_value;
  for (const auto& c : explanation.contributions) total += c.shap;
  EXPECT_NEAR(total, explanation.raw_prediction, 1e-6);
}

TEST(ExplanationTest, TopKTruncates) {
  const Dataset data = MakeData(500, 2);
  const GbtModel model = TrainModel(data);
  const TreeShap shap(&model);
  const auto explanation = ExplainRow(shap, data, 3).value();
  EXPECT_EQ(explanation.Top(2).size(), 2u);
  EXPECT_EQ(explanation.Top(100).size(), 4u);
  EXPECT_TRUE(explanation.Top(0).empty());
  const std::string rendered = explanation.ToString(3);
  EXPECT_NE(rendered.find("prediction="), std::string::npos);
}

TEST(ExplanationTest, ExplainRowValidatesArguments) {
  const Dataset data = MakeData(100, 3);
  const GbtModel model = TrainModel(data);
  const TreeShap shap(&model);
  EXPECT_FALSE(ExplainRow(shap, data, -1).ok());
  EXPECT_FALSE(ExplainRow(shap, data, data.num_rows()).ok());
  Dataset narrow = Dataset::Create({"x"});
  ASSERT_TRUE(narrow.AddRow({0.0}, 0.0).ok());
  EXPECT_FALSE(ExplainRow(shap, narrow, 0).ok());
}

TEST(ExplanationTest, GlobalImportanceOrdersFeatures) {
  const Dataset data = MakeData(1200, 4);
  const GbtModel model = TrainModel(data);
  const TreeShap shap(&model);
  const Dataset probe = MakeData(200, 5);
  const auto importance = ComputeGlobalImportance(shap, probe).value();
  ASSERT_EQ(importance.features.size(), 4u);
  EXPECT_EQ(importance.features.front(), "big");
  // Mean |SHAP| sorted descending.
  for (size_t i = 1; i < importance.mean_abs_shap.size(); ++i) {
    EXPECT_GE(importance.mean_abs_shap[i - 1], importance.mean_abs_shap[i]);
  }
  // The pure-noise feature ranks last (or ties at ~0).
  EXPECT_LT(importance.mean_abs_shap.back(), 0.1);
}

TEST(ExplanationTest, DependenceCurveRecoversStepThreshold) {
  const Dataset data = MakeData(2500, 6);
  const GbtModel model = TrainModel(data);
  const TreeShap shap(&model);
  const auto curve = ComputeDependenceCurve(shap, data, "step").value();
  EXPECT_EQ(curve.feature, "step");
  EXPECT_EQ(curve.values.size(), curve.shap_values.size());
  ASSERT_EQ(curve.distinct_values.size(), 10u);  // ordinal 1..10
  ASSERT_TRUE(curve.has_threshold);
  // The generating step is at 3 (answers < 3 get the bonus); the recovered
  // boundary must fall between 2 and 3.
  EXPECT_NEAR(curve.recovered_threshold, 2.5, 0.51);
  // Mean SHAP positive below the cutoff, negative above.
  EXPECT_GT(curve.mean_shap.front(), 0.0);
  EXPECT_LT(curve.mean_shap.back(), 0.0);
}

TEST(ExplanationTest, DependenceCurveUnknownFeatureFails) {
  const Dataset data = MakeData(100, 7);
  const GbtModel model = TrainModel(data);
  const TreeShap shap(&model);
  EXPECT_FALSE(ComputeDependenceCurve(shap, data, "nope").ok());
}

TEST(ExplanationTest, ShapSummaryDirectionsAndOrdering) {
  const Dataset data = MakeData(1200, 9);
  const GbtModel model = TrainModel(data);
  const TreeShap shap(&model);
  const auto summary = ComputeShapSummary(shap, data).value();
  ASSERT_EQ(summary.features.size(), 4u);
  EXPECT_EQ(summary.features.front(), "big");
  // "big" has a positive effect: larger value -> larger prediction.
  EXPECT_GT(summary.direction.front(), 0.6);
  // Importances are sorted descending.
  for (size_t i = 1; i < summary.mean_abs_shap.size(); ++i) {
    EXPECT_GE(summary.mean_abs_shap[i - 1], summary.mean_abs_shap[i]);
  }
  const std::string rendered = RenderShapSummary(summary, 3);
  EXPECT_NE(rendered.find("big"), std::string::npos);
  EXPECT_NE(rendered.find('#'), std::string::npos);
  // Top-3 rendering omits the 4th feature.
  EXPECT_EQ(rendered.find(summary.features[3]), std::string::npos);
}

TEST(ExplanationTest, DependenceCurveWithoutSignChangeHasNoThreshold) {
  // Monotone positive contribution that never crosses zero by construction:
  // model of a feature with strictly positive association and centered data
  // will cross; instead build a constant-label model with no splits.
  Rng rng(8);
  Dataset flat = Dataset::Create({"x"});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(flat.AddRow({rng.Uniform(0, 1)}, 1.0).ok());
  }
  GbtParams params;
  params.num_trees = 5;
  const GbtModel model = GbtModel::Train(flat, params).value();
  const TreeShap shap(&model);
  const auto curve = ComputeDependenceCurve(shap, flat, "x").value();
  EXPECT_FALSE(curve.has_threshold);
  EXPECT_TRUE(std::isnan(curve.recovered_threshold));
}

}  // namespace
}  // namespace mysawh::explain
