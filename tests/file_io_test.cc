#include "util/file_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/failpoint.h"

namespace mysawh {
namespace {

namespace fs = std::filesystem;

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mysawh_file_io_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FailpointRegistry::Global().DisableAll();
    fs::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(FileIoTest, AtomicWriteRoundTrips) {
  const std::string path = Path("plain.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "hello\nworld\n").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello\nworld\n");
  // No temp file lingers.
  int entries = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir_)) ++entries;
  EXPECT_EQ(entries, 1);
}

TEST_F(FileIoTest, ReadMissingFileIsIoError) {
  auto read = ReadFileToString(Path("absent.txt"));
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST_F(FileIoTest, Crc32MatchesKnownVectors) {
  // The classic check value of CRC-32/ISO-HDLC.
  EXPECT_EQ(Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string("")), 0x00000000u);
}

TEST_F(FileIoTest, ChecksummedEnvelopeRoundTrips) {
  const std::string payload = "line one\nline two\n";
  const std::string wrapped = WrapChecksummed(payload);
  EXPECT_TRUE(LooksChecksummed(wrapped));
  EXPECT_FALSE(LooksChecksummed(payload));
  auto unwrapped = UnwrapChecksummed(wrapped);
  ASSERT_TRUE(unwrapped.ok());
  EXPECT_EQ(*unwrapped, payload);
}

TEST_F(FileIoTest, ChecksummedFileRoundTrips) {
  const std::string path = Path("artifact.txt");
  ASSERT_TRUE(WriteFileChecksummed(path, "payload data\n").ok());
  auto read = ReadFileChecksummed(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "payload data\n");
}

TEST_F(FileIoTest, CorruptEnvelopeIsDataLoss) {
  std::string wrapped = WrapChecksummed("some payload bytes");
  // Flip one payload bit.
  std::string flipped = wrapped;
  flipped[flipped.size() - 3] ^= 0x10;
  EXPECT_EQ(UnwrapChecksummed(flipped).status().code(), StatusCode::kDataLoss);
  // Truncate.
  EXPECT_EQ(UnwrapChecksummed(wrapped.substr(0, wrapped.size() - 1))
                .status()
                .code(),
            StatusCode::kDataLoss);
  // Truncate inside the header.
  EXPECT_EQ(UnwrapChecksummed(wrapped.substr(0, 10)).status().code(),
            StatusCode::kDataLoss);
  // Appended garbage.
  EXPECT_EQ(UnwrapChecksummed(wrapped + "extra").status().code(),
            StatusCode::kDataLoss);
  // Not an envelope at all.
  EXPECT_EQ(UnwrapChecksummed("plain text").status().code(),
            StatusCode::kDataLoss);
}

TEST_F(FileIoTest, FailedWriteLeavesPreviousContentAndNoTemp) {
  const std::string path = Path("kept.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "original").ok());
  for (const char* site :
       {"file_io/open", "file_io/write", "file_io/fsync", "file_io/rename"}) {
    FailpointRegistry::Global().Enable(site, FailpointSpec::Once());
    const Status status = WriteFileAtomic(path, "replacement");
    EXPECT_FALSE(status.ok()) << site;
    FailpointRegistry::Global().DisableAll();
    auto read = ReadFileToString(path);
    ASSERT_TRUE(read.ok()) << site;
    EXPECT_EQ(*read, "original") << site;
    int entries = 0;
    for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir_)) {
      ++entries;
    }
    EXPECT_EQ(entries, 1) << "temp file leaked at " << site;
  }
  // With no failpoint armed, the same write goes through.
  ASSERT_TRUE(WriteFileAtomic(path, "replacement").ok());
  EXPECT_EQ(*ReadFileToString(path), "replacement");
}

TEST_F(FileIoTest, CustomFailpointPrefixIsHonoured) {
  FailpointRegistry::Global().Enable("model_save/rename",
                                     FailpointSpec::Once());
  // A write under a different prefix is unaffected.
  ASSERT_TRUE(WriteFileAtomic(Path("other.txt"), "x", "csv_write").ok());
  // The armed prefix fails.
  EXPECT_FALSE(WriteFileAtomic(Path("model.txt"), "x", "model_save").ok());
}

TEST_F(FileIoTest, WriteIntoMissingDirectoryFailsCleanly) {
  const Status status =
      WriteFileAtomic(Path("no_such_dir/file.txt"), "content");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace mysawh
