#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <thread>
#include <vector>

namespace mysawh {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().DisableAll(); }
};

Status GuardedOperation(const char* site) {
  MYSAWH_FAILPOINT(site);
  return Status::Ok();
}

TEST_F(FailpointTest, UnarmedSiteNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(GuardedOperation("never/armed").ok());
  }
  EXPECT_EQ(FailpointRegistry::Global().HitCount("never/armed"), 0);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  auto& registry = FailpointRegistry::Global();
  registry.Enable("fp/once", FailpointSpec::Once());
  EXPECT_FALSE(GuardedOperation("fp/once").ok());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(GuardedOperation("fp/once").ok());
  EXPECT_EQ(registry.HitCount("fp/once"), 11);
}

TEST_F(FailpointTest, NthFiresOnExactHit) {
  auto& registry = FailpointRegistry::Global();
  registry.Enable("fp/nth", FailpointSpec::Nth(3));
  EXPECT_TRUE(GuardedOperation("fp/nth").ok());
  EXPECT_TRUE(GuardedOperation("fp/nth").ok());
  EXPECT_FALSE(GuardedOperation("fp/nth").ok());
  EXPECT_TRUE(GuardedOperation("fp/nth").ok());
}

TEST_F(FailpointTest, FromNthFiresForeverAfter) {
  auto& registry = FailpointRegistry::Global();
  registry.Enable("fp/from", FailpointSpec::FromNth(2));
  EXPECT_TRUE(GuardedOperation("fp/from").ok());
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(GuardedOperation("fp/from").ok());
}

TEST_F(FailpointTest, EveryNFiresPeriodically) {
  auto& registry = FailpointRegistry::Global();
  registry.Enable("fp/every", FailpointSpec::EveryN(3));
  int failures = 0;
  for (int i = 0; i < 9; ++i) {
    if (!GuardedOperation("fp/every").ok()) ++failures;
  }
  EXPECT_EQ(failures, 3);  // hits 3, 6, 9
}

TEST_F(FailpointTest, AlwaysFiresEveryTime) {
  FailpointRegistry::Global().Enable("fp/always", FailpointSpec::Always());
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(GuardedOperation("fp/always").ok());
}

TEST_F(FailpointTest, InjectedStatusIsIoErrorNamingTheSite) {
  FailpointRegistry::Global().Enable("fp/named", FailpointSpec::Once());
  const Status status = GuardedOperation("fp/named");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("fp/named"), std::string::npos);
}

TEST_F(FailpointTest, ErrnoAttachedToMessage) {
  FailpointSpec spec = FailpointSpec::Always();
  spec.err_no = ENOSPC;
  FailpointRegistry::Global().Enable("fp/errno", spec);
  const Status status = GuardedOperation("fp/errno");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("No space left"), std::string::npos);
}

TEST_F(FailpointTest, DisableAndRearmResetsHitCount) {
  auto& registry = FailpointRegistry::Global();
  registry.Enable("fp/rearm", FailpointSpec::Nth(2));
  EXPECT_TRUE(GuardedOperation("fp/rearm").ok());
  registry.Disable("fp/rearm");
  EXPECT_EQ(registry.HitCount("fp/rearm"), 0);
  // Hits while disarmed do not count.
  EXPECT_TRUE(GuardedOperation("fp/rearm").ok());
  registry.Enable("fp/rearm", FailpointSpec::Nth(2));
  EXPECT_TRUE(GuardedOperation("fp/rearm").ok());
  EXPECT_FALSE(GuardedOperation("fp/rearm").ok());
}

TEST_F(FailpointTest, ParseGrammar) {
  EXPECT_EQ(FailpointSpec::Parse("once")->mode, FailpointSpec::Mode::kOnce);
  EXPECT_EQ(FailpointSpec::Parse("always")->mode,
            FailpointSpec::Mode::kAlways);
  auto nth = FailpointSpec::Parse("nth:7");
  ASSERT_TRUE(nth.ok());
  EXPECT_EQ(nth->mode, FailpointSpec::Mode::kNth);
  EXPECT_EQ(nth->n, 7);
  auto from = FailpointSpec::Parse("from:4");
  ASSERT_TRUE(from.ok());
  EXPECT_EQ(from->mode, FailpointSpec::Mode::kFromNth);
  EXPECT_EQ(from->n, 4);
  auto every = FailpointSpec::Parse("every:2,errno:28");
  ASSERT_TRUE(every.ok());
  EXPECT_EQ(every->mode, FailpointSpec::Mode::kEveryN);
  EXPECT_EQ(every->n, 2);
  EXPECT_EQ(every->err_no, 28);

  EXPECT_FALSE(FailpointSpec::Parse("").ok());
  EXPECT_FALSE(FailpointSpec::Parse("nth:").ok());
  EXPECT_FALSE(FailpointSpec::Parse("nth:0").ok());
  EXPECT_FALSE(FailpointSpec::Parse("sometimes").ok());
}

TEST_F(FailpointTest, EnableFromStringArmsSite) {
  auto& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry.EnableFromString("fp/env=nth:2").ok());
  EXPECT_TRUE(GuardedOperation("fp/env").ok());
  EXPECT_FALSE(GuardedOperation("fp/env").ok());
  EXPECT_FALSE(registry.EnableFromString("missing-equals").ok());
  EXPECT_FALSE(registry.EnableFromString("fp/env=bogus").ok());
}

TEST_F(FailpointTest, ConcurrentHitsFireExactlyOncePerPeriod) {
  auto& registry = FailpointRegistry::Global();
  registry.Enable("fp/concurrent", FailpointSpec::EveryN(10));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        if (!GuardedOperation("fp/concurrent").ok()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // 100 hits at period 10 -> exactly 10 injected failures, regardless of
  // interleaving: the hit counter is advanced under the registry lock.
  EXPECT_EQ(failures.load(), 10);
  EXPECT_EQ(registry.HitCount("fp/concurrent"), 100);
}

}  // namespace
}  // namespace mysawh
