#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace mysawh {
namespace {

TEST(CsvTest, ParseBasic) {
  const auto doc = ParseCsv("a,b,c\n1,2,3\n4,5,6\n").value();
  EXPECT_EQ(doc.header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, ParseHandlesCrlf) {
  const auto doc = ParseCsv("a,b\r\n1,2\r\n").value();
  EXPECT_EQ(doc.header, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, QuotedFields) {
  const auto doc =
      ParseCsv("name,notes\nx,\"hello, world\"\ny,\"say \"\"hi\"\"\"\n")
          .value();
  EXPECT_EQ(doc.rows[0][1], "hello, world");
  EXPECT_EQ(doc.rows[1][1], "say \"hi\"");
}

TEST(CsvTest, WidthMismatchFails) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(CsvTest, EmptyContentFails) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, ColumnIndex) {
  const auto doc = ParseCsv("x,y,z\n1,2,3\n").value();
  EXPECT_EQ(doc.ColumnIndex("y").value(), 1);
  EXPECT_FALSE(doc.ColumnIndex("w").ok());
}

TEST(CsvTest, SerializeQuotesWhenNeeded) {
  CsvDocument doc;
  doc.header = {"a", "b"};
  doc.rows = {{"with,comma", "with\"quote"}, {"plain", "also plain"}};
  const std::string text = CsvToString(doc);
  const auto parsed = ParseCsv(text).value();
  EXPECT_EQ(parsed.rows, doc.rows);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/csv_roundtrip_test.csv";
  CsvDocument doc;
  doc.header = {"id", "value"};
  doc.rows = {{"1", "3.5"}, {"2", ""}};
  ASSERT_TRUE(WriteCsv(path, doc).ok());
  const auto loaded = ReadCsv(path).value();
  EXPECT_EQ(loaded.header, doc.header);
  EXPECT_EQ(loaded.rows, doc.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, WriteRejectsRaggedRows) {
  CsvDocument doc;
  doc.header = {"a", "b"};
  doc.rows = {{"only-one"}};
  EXPECT_FALSE(WriteCsv(::testing::TempDir() + "/ragged.csv", doc).ok());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/path/file.csv").ok());
}

}  // namespace
}  // namespace mysawh
