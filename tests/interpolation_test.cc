#include "series/interpolation.h"

#include <gtest/gtest.h>

#include <limits>

namespace mysawh {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(InterpolationTest, LinearFillInterior) {
  TimeSeries s({1.0, kNaN, kNaN, 4.0});
  const auto report = InterpolateMaxGap(&s, 5).value();
  EXPECT_EQ(report.filled, 2);
  EXPECT_EQ(report.left_missing, 0);
  EXPECT_DOUBLE_EQ(s.at(1), 2.0);
  EXPECT_DOUBLE_EQ(s.at(2), 3.0);
}

TEST(InterpolationTest, RespectsMaxGap) {
  TimeSeries s({1.0, kNaN, kNaN, kNaN, 5.0});
  const auto report = InterpolateMaxGap(&s, 2).value();
  EXPECT_EQ(report.filled, 0);
  EXPECT_EQ(report.left_missing, 3);
  EXPECT_TRUE(s.IsMissing(2));
}

TEST(InterpolationTest, GapExactlyMaxIsFilled) {
  TimeSeries s({1.0, kNaN, kNaN, kNaN, 5.0});
  const auto report = InterpolateMaxGap(&s, 3).value();
  EXPECT_EQ(report.filled, 3);
  EXPECT_DOUBLE_EQ(s.at(2), 3.0);
}

TEST(InterpolationTest, MaxGapZeroDisables) {
  TimeSeries s({1.0, kNaN, 3.0});
  const auto report = InterpolateMaxGap(&s, 0).value();
  EXPECT_EQ(report.filled, 0);
  EXPECT_TRUE(s.IsMissing(1));
}

TEST(InterpolationTest, LeadingGapCarriesBackward) {
  TimeSeries s({kNaN, kNaN, 3.0});
  ASSERT_TRUE(InterpolateMaxGap(&s, 5).ok());
  EXPECT_DOUBLE_EQ(s.at(0), 3.0);
  EXPECT_DOUBLE_EQ(s.at(1), 3.0);
}

TEST(InterpolationTest, TrailingGapCarriesForward) {
  TimeSeries s({3.0, kNaN, kNaN});
  ASSERT_TRUE(InterpolateMaxGap(&s, 5).ok());
  EXPECT_DOUBLE_EQ(s.at(1), 3.0);
  EXPECT_DOUBLE_EQ(s.at(2), 3.0);
}

TEST(InterpolationTest, AllMissingStaysMissing) {
  TimeSeries s({kNaN, kNaN});
  const auto report = InterpolateMaxGap(&s, 5).value();
  EXPECT_EQ(report.filled, 0);
  EXPECT_EQ(report.left_missing, 2);
}

TEST(InterpolationTest, InvalidArguments) {
  TimeSeries s({1.0});
  EXPECT_FALSE(InterpolateMaxGap(nullptr, 5).ok());
  EXPECT_FALSE(InterpolateMaxGap(&s, -1).ok());
}

TEST(InterpolationTest, FillMissingConstant) {
  TimeSeries s({1.0, kNaN, kNaN});
  EXPECT_EQ(FillMissing(&s, -9.0), 2);
  EXPECT_DOUBLE_EQ(s.at(1), -9.0);
  EXPECT_EQ(s.NumMissing(), 0);
  EXPECT_EQ(FillMissing(&s, 0.0), 0);
}

TEST(ImputationMethodTest, LocfCarriesForward) {
  TimeSeries s({1.0, kNaN, kNaN, 4.0});
  ASSERT_TRUE(ImputeMaxGap(&s, 5, ImputationMethod::kLocf).ok());
  EXPECT_DOUBLE_EQ(s.at(1), 1.0);
  EXPECT_DOUBLE_EQ(s.at(2), 1.0);
}

TEST(ImputationMethodTest, LocfLeadingGapCarriesBackward) {
  TimeSeries s({kNaN, 7.0});
  ASSERT_TRUE(ImputeMaxGap(&s, 5, ImputationMethod::kLocf).ok());
  EXPECT_DOUBLE_EQ(s.at(0), 7.0);
}

TEST(ImputationMethodTest, NearestPicksCloserSide) {
  TimeSeries s({1.0, kNaN, kNaN, kNaN, 9.0});
  ASSERT_TRUE(ImputeMaxGap(&s, 5, ImputationMethod::kNearest).ok());
  EXPECT_DOUBLE_EQ(s.at(1), 1.0);  // closer to the left
  EXPECT_DOUBLE_EQ(s.at(2), 1.0);  // tie resolves backward
  EXPECT_DOUBLE_EQ(s.at(3), 9.0);  // closer to the right
}

TEST(ImputationMethodTest, AllMethodsRespectMaxGap) {
  for (auto method : {ImputationMethod::kLinear, ImputationMethod::kLocf,
                      ImputationMethod::kNearest}) {
    TimeSeries s({1.0, kNaN, kNaN, kNaN, 5.0});
    const auto report = ImputeMaxGap(&s, 2, method).value();
    EXPECT_EQ(report.filled, 0);
    EXPECT_EQ(s.NumMissing(), 3);
  }
}

/// Property: after InterpolateMaxGap(max), no remaining interior gap has
/// length <= max, and observed values are never modified.
class InterpolationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(InterpolationPropertyTest, NoShortGapsRemainAndObservedUntouched) {
  const int max_gap = GetParam();
  // Deterministic patterned series with gaps of many lengths.
  std::vector<double> values;
  for (int block = 1; block <= 8; ++block) {
    values.push_back(static_cast<double>(block));
    for (int i = 0; i < block; ++i) values.push_back(kNaN);
    values.push_back(static_cast<double>(block) + 0.5);
  }
  TimeSeries original(values);
  TimeSeries s(values);
  ASSERT_TRUE(InterpolateMaxGap(&s, max_gap).ok());
  for (const Gap& gap : FindGaps(s)) {
    EXPECT_GT(gap.length, max_gap);
  }
  for (int64_t i = 0; i < s.size(); ++i) {
    if (!original.IsMissing(i)) {
      EXPECT_DOUBLE_EQ(s.at(i), original.at(i)) << "observed value changed";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MaxGaps, InterpolationPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 17));

}  // namespace
}  // namespace mysawh
