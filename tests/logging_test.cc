#include "util/logging.h"

#include <gtest/gtest.h>

namespace mysawh {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { Logger::SetThreshold(LogLevel::kInfo); }
};

TEST_F(LoggingTest, ThresholdRoundTrips) {
  Logger::SetThreshold(LogLevel::kError);
  EXPECT_EQ(Logger::threshold(), LogLevel::kError);
  Logger::SetThreshold(LogLevel::kDebug);
  EXPECT_EQ(Logger::threshold(), LogLevel::kDebug);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotEmit) {
  Logger::SetThreshold(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  MYSAWH_LOG(kInfo) << "should not appear";
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(output.empty());
}

TEST_F(LoggingTest, EnabledMessagesCarryLevelAndLocation) {
  Logger::SetThreshold(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  MYSAWH_LOG(kWarning) << "watch out " << 42;
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("WARN"), std::string::npos);
  EXPECT_NE(output.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(output.find("watch out 42"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  MYSAWH_CHECK(1 + 1 == 2) << "never shown";
  MYSAWH_CHECK_EQ(3, 3);
  MYSAWH_CHECK_LT(1, 2);
  MYSAWH_CHECK_GE(2, 2);
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LoggingTest, FailedCheckAborts) {
  EXPECT_DEATH({ MYSAWH_CHECK_EQ(1, 2) << "boom"; }, "Check failed");
}

TEST_F(LoggingTest, FatalLogAborts) {
  EXPECT_DEATH({ MYSAWH_LOG(kFatal) << "fatal"; }, "fatal");
}

}  // namespace
}  // namespace mysawh
