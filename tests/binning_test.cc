#include "gbt/binning.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mysawh::gbt {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Dataset MakeOrdinalData() {
  Dataset ds = Dataset::Create({"ordinal", "wide"});
  for (int i = 0; i < 100; ++i) {
    const double ordinal = static_cast<double>(i % 5 + 1);  // 1..5
    const double wide = static_cast<double>(i) * 0.37;
    EXPECT_TRUE(ds.AddRow({ordinal, wide}, 0.0).ok());
  }
  return ds;
}

TEST(BinningTest, OrdinalFeaturesGetOneBinPerLevel) {
  const Dataset ds = MakeOrdinalData();
  const FeatureBins bins = FeatureBins::Build(ds, 64).value();
  EXPECT_EQ(bins.num_bins(0), 5);
  // Cut between levels is the midpoint.
  EXPECT_DOUBLE_EQ(bins.cut(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(bins.cut(0, 3), 4.5);
  EXPECT_TRUE(std::isinf(bins.cut(0, 4)));
}

TEST(BinningTest, WideFeatureCappedAtMaxBins) {
  const Dataset ds = MakeOrdinalData();
  const FeatureBins bins = FeatureBins::Build(ds, 16).value();
  EXPECT_LE(bins.num_bins(1), 16);
  EXPECT_GE(bins.num_bins(1), 8);
}

TEST(BinningTest, CutsStrictlyIncrease) {
  const Dataset ds = MakeOrdinalData();
  const FeatureBins bins = FeatureBins::Build(ds, 16).value();
  for (int64_t f = 0; f < bins.num_features(); ++f) {
    for (int b = 1; b < bins.num_bins(f); ++b) {
      EXPECT_GT(bins.cut(f, b), bins.cut(f, b - 1));
    }
  }
}

TEST(BinningTest, BinForRespectsBoundaries) {
  const Dataset ds = MakeOrdinalData();
  const FeatureBins bins = FeatureBins::Build(ds, 64).value();
  EXPECT_EQ(bins.BinFor(0, 1.0), 0);
  EXPECT_EQ(bins.BinFor(0, 1.49), 0);
  EXPECT_EQ(bins.BinFor(0, 1.5), 1);  // boundary goes right
  EXPECT_EQ(bins.BinFor(0, 5.0), 4);
  EXPECT_EQ(bins.BinFor(0, 99.0), 4);   // beyond max clamps to last bin
  EXPECT_EQ(bins.BinFor(0, -99.0), 0);  // below min clamps to first bin
}

TEST(BinningTest, MissingMapsToSentinel) {
  const Dataset ds = MakeOrdinalData();
  const FeatureBins bins = FeatureBins::Build(ds, 64).value();
  EXPECT_EQ(bins.BinFor(0, kNaN), kMissingBin);
}

TEST(BinningTest, AllMissingColumn) {
  Dataset ds = Dataset::Create({"empty"});
  ASSERT_TRUE(ds.AddRow({kNaN}, 0.0).ok());
  ASSERT_TRUE(ds.AddRow({kNaN}, 1.0).ok());
  const FeatureBins bins = FeatureBins::Build(ds, 8).value();
  EXPECT_EQ(bins.num_bins(0), 1);
  EXPECT_EQ(bins.BinFor(0, kNaN), kMissingBin);
}

TEST(BinningTest, RejectsTooFewBins) {
  const Dataset ds = MakeOrdinalData();
  EXPECT_FALSE(FeatureBins::Build(ds, 1).ok());
}

TEST(BinningTest, BinnedMatrixMatchesBinFor) {
  Dataset ds = Dataset::Create({"a", "b"});
  ASSERT_TRUE(ds.AddRow({1.0, 10.0}, 0.0).ok());
  ASSERT_TRUE(ds.AddRow({kNaN, 20.0}, 0.0).ok());
  ASSERT_TRUE(ds.AddRow({3.0, kNaN}, 0.0).ok());
  const FeatureBins bins = FeatureBins::Build(ds, 8).value();
  const BinnedMatrix matrix = BinnedMatrix::Build(ds, bins);
  EXPECT_EQ(matrix.num_rows(), 3);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t f = 0; f < 2; ++f) {
      EXPECT_EQ(matrix.At(r, f), bins.BinFor(f, ds.At(r, f)))
          << "row " << r << " feature " << f;
    }
  }
}

/// Property sweep: binning a feature and mapping every training value back
/// through BinFor is order-preserving.
class BinningOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(BinningOrderTest, BinsAreMonotoneInValue) {
  const int max_bins = GetParam();
  Dataset ds = Dataset::Create({"v"});
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        ds.AddRow({std::sin(static_cast<double>(i)) * 10.0}, 0.0).ok());
  }
  const FeatureBins bins = FeatureBins::Build(ds, max_bins).value();
  for (double a = -10.0; a < 10.0; a += 0.5) {
    EXPECT_LE(bins.BinFor(0, a), bins.BinFor(0, a + 0.5));
  }
}

INSTANTIATE_TEST_SUITE_P(MaxBins, BinningOrderTest,
                         ::testing::Values(2, 4, 16, 64, 256));

}  // namespace
}  // namespace mysawh::gbt
