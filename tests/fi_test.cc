#include "core/fi.h"

#include <gtest/gtest.h>

#include "cohort/simulator.h"

namespace mysawh::core {
namespace {

TEST(FrailtyIndexTest, ProportionOfDeficits) {
  EXPECT_DOUBLE_EQ(ComputeFrailtyIndex({1, 0, 0, 1}).value(), 0.5);
  EXPECT_DOUBLE_EQ(ComputeFrailtyIndex({0, 0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(ComputeFrailtyIndex({1, 1, 1}).value(), 1.0);
}

TEST(FrailtyIndexTest, GradedDeficitsAllowed) {
  EXPECT_DOUBLE_EQ(ComputeFrailtyIndex({0.5, 0.5}).value(), 0.5);
}

TEST(FrailtyIndexTest, RejectsEmptyAndOutOfRange) {
  EXPECT_FALSE(ComputeFrailtyIndex({}).ok());
  EXPECT_FALSE(ComputeFrailtyIndex({1.5}).ok());
  EXPECT_FALSE(ComputeFrailtyIndex({-0.1}).ok());
}

TEST(FrailtyIndexTest, TrajectoryCorrelatesWithLatentFrailty) {
  cohort::CohortConfig config;
  config.seed = 3;
  config.clinics = {{"A", 60, 0.0, 1.0}};
  const auto cohort = cohort::CohortSimulator(config).Generate().value();
  double frail_sum_high = 0, frail_sum_low = 0;
  int64_t high = 0, low = 0;
  for (const auto& patient : cohort.patients) {
    const auto fi = PatientFrailtyTrajectory(patient).value();
    ASSERT_EQ(fi.size(), 3u);
    for (double v : fi) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    if (patient.frailty > 0.5) {
      frail_sum_high += fi[0];
      ++high;
    } else if (patient.frailty < 0.3) {
      frail_sum_low += fi[0];
      ++low;
    }
  }
  ASSERT_GT(high, 0);
  ASSERT_GT(low, 0);
  EXPECT_GT(frail_sum_high / high, frail_sum_low / low + 0.1);
}

}  // namespace
}  // namespace mysawh::core
