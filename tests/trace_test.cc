/// Tests of the trace-span system (util/trace.h): event capture, nesting,
/// the disabled fast path, Chrome-trace JSON shape, and session lifecycle.

#include "util/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/file_io.h"

namespace mysawh {
namespace {

/// Every test owns the global session: enable fresh, disable on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Global().Enable(); }
  void TearDown() override { Tracer::Global().Disable(); }
};

TEST_F(TraceTest, SpanRecordsOneEvent) {
  { TraceSpan span("unit.work", "test"); }
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.work");
  EXPECT_EQ(std::string(events[0].cat), "test");
  EXPECT_GE(events[0].ts_us, 0);
  EXPECT_GE(events[0].dur_us, 0);
  EXPECT_GT(events[0].tid, 0);
}

TEST_F(TraceTest, SpansNestByContainment) {
  {
    TraceSpan outer("unit.outer", "test");
    TraceSpan inner("unit.inner", "test");
  }
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by (ts, -dur): the enclosing span comes first, and the inner
  // interval is contained in the outer one.
  EXPECT_EQ(events[0].name, "unit.outer");
  EXPECT_EQ(events[1].name, "unit.inner");
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_GE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
}

TEST_F(TraceTest, DisabledModeEmitsNothing) {
  Tracer::Global().Disable();
  {
    TraceSpan span("unit.ghost", "test");
    span.Arg("ignored", 1);
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
  // The dynamic-name guard pattern: with tracing off, the name string is
  // never even built.
  bool name_built = false;
  TraceSpan dynamic;
  if (TracingEnabled()) {
    name_built = true;
    dynamic = TraceSpan(std::string("unit.dynamic"), "test");
  }
  EXPECT_FALSE(name_built);
}

TEST_F(TraceTest, EnableClearsThePreviousSession) {
  { TraceSpan span("unit.first_session", "test"); }
  EXPECT_EQ(Tracer::Global().event_count(), 1u);
  Tracer::Global().Enable();
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
  { TraceSpan span("unit.second_session", "test"); }
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.second_session");
}

TEST_F(TraceTest, ArgsRenderIntoTheEvent) {
  {
    TraceSpan span("unit.args", "test");
    span.Arg("rows", 128);
    span.Arg("round", 7);
  }
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].args, "\"rows\":128,\"round\":7");
}

TEST_F(TraceTest, ThreadsGetDistinctDenseTids) {
  { TraceSpan span("unit.main_thread", "test"); }
  std::thread other([] { TraceSpan span("unit.other_thread", "test"); });
  other.join();
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  for (const auto& event : events) {
    EXPECT_GT(event.tid, 0);
    EXPECT_LE(event.tid, 64) << "tids are small and dense, not OS ids";
  }
}

TEST_F(TraceTest, MovedFromSpanDoesNotDoubleRecord) {
  {
    TraceSpan span;
    span = TraceSpan("unit.moved", "test");
    TraceSpan stolen(std::move(span));
  }
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.moved");
}

TEST_F(TraceTest, JsonHasChromeTraceShape) {
  {
    TraceSpan span("unit.json \"quoted\"", "test");
    span.Arg("n", 3);
  }
  const std::string json = Tracer::Global().ToJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos)
      << "process_name metadata event";
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos)
      << "complete event per span";
  EXPECT_NE(json.find("unit.json \\\"quoted\\\""), std::string::npos)
      << "names are JSON-escaped";
  EXPECT_NE(json.find("\"args\":{\"n\":3}"), std::string::npos);
}

TEST_F(TraceTest, WriteJsonRoundTripsThroughTheFilesystem) {
  { TraceSpan span("unit.file", "test"); }
  const std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(Tracer::Global().WriteJson(path).ok());
  const auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("unit.file"), std::string::npos);
}

}  // namespace
}  // namespace mysawh
