/// Tests of the trace-span system (util/trace.h): event capture, nesting,
/// the disabled fast path, Chrome-trace JSON shape, and session lifecycle.

#include "util/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/file_io.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/resource_stats.h"

namespace mysawh {
namespace {

/// Every test owns the global session: enable fresh, disable on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Global().Enable(); }
  void TearDown() override { Tracer::Global().Disable(); }
};

TEST_F(TraceTest, SpanRecordsOneEvent) {
  { TraceSpan span("unit.work", "test"); }
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.work");
  EXPECT_EQ(std::string(events[0].cat), "test");
  EXPECT_GE(events[0].ts_us, 0);
  EXPECT_GE(events[0].dur_us, 0);
  EXPECT_GT(events[0].tid, 0);
}

TEST_F(TraceTest, SpansNestByContainment) {
  {
    TraceSpan outer("unit.outer", "test");
    TraceSpan inner("unit.inner", "test");
  }
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by (ts, -dur): the enclosing span comes first, and the inner
  // interval is contained in the outer one.
  EXPECT_EQ(events[0].name, "unit.outer");
  EXPECT_EQ(events[1].name, "unit.inner");
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_GE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
}

TEST_F(TraceTest, DisabledModeEmitsNothing) {
  Tracer::Global().Disable();
  {
    TraceSpan span("unit.ghost", "test");
    span.Arg("ignored", 1);
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
  // The dynamic-name guard pattern: with tracing off, the name string is
  // never even built.
  bool name_built = false;
  TraceSpan dynamic;
  if (TracingEnabled()) {
    name_built = true;
    dynamic = TraceSpan(std::string("unit.dynamic"), "test");
  }
  EXPECT_FALSE(name_built);
}

TEST_F(TraceTest, EnableClearsThePreviousSession) {
  { TraceSpan span("unit.first_session", "test"); }
  EXPECT_EQ(Tracer::Global().event_count(), 1u);
  Tracer::Global().Enable();
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
  { TraceSpan span("unit.second_session", "test"); }
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.second_session");
}

TEST_F(TraceTest, ArgsRenderIntoTheEvent) {
  {
    TraceSpan span("unit.args", "test");
    span.Arg("rows", 128);
    span.Arg("round", 7);
  }
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].args, "\"rows\":128,\"round\":7");
}

TEST_F(TraceTest, ThreadsGetDistinctDenseTids) {
  { TraceSpan span("unit.main_thread", "test"); }
  std::thread other([] { TraceSpan span("unit.other_thread", "test"); });
  other.join();
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  for (const auto& event : events) {
    EXPECT_GT(event.tid, 0);
    EXPECT_LE(event.tid, 64) << "tids are small and dense, not OS ids";
  }
}

TEST_F(TraceTest, MovedFromSpanDoesNotDoubleRecord) {
  {
    TraceSpan span;
    span = TraceSpan("unit.moved", "test");
    TraceSpan stolen(std::move(span));
  }
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.moved");
}

TEST_F(TraceTest, JsonHasChromeTraceShape) {
  {
    TraceSpan span("unit.json \"quoted\"", "test");
    span.Arg("n", 3);
  }
  const std::string json = Tracer::Global().ToJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos)
      << "process_name metadata event";
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos)
      << "complete event per span";
  EXPECT_NE(json.find("unit.json \\\"quoted\\\""), std::string::npos)
      << "names are JSON-escaped";
  EXPECT_NE(json.find("\"args\":{\"n\":3}"), std::string::npos);
}

TEST_F(TraceTest, WriteJsonRoundTripsThroughTheFilesystem) {
  { TraceSpan span("unit.file", "test"); }
  const std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(Tracer::Global().WriteJson(path).ok());
  const auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("unit.file"), std::string::npos);
}

TEST_F(TraceTest, PerThreadCapDropsAndCountsOverflow) {
  Counter* dropped =
      MetricsRegistry::Global().GetCounter("trace.dropped_events");
  Tracer::Global().SetMaxEventsPerThread(5);
  for (int i = 0; i < 12; ++i) {
    TraceSpan span("unit.capped", "test");
  }
  EXPECT_EQ(Tracer::Global().event_count(), 5u);
  EXPECT_EQ(Tracer::Global().dropped_events(), 7);
  EXPECT_EQ(dropped->Value(), 7);
  // A new session resets the dropped count along with the buffers.
  Tracer::Global().Enable();
  EXPECT_EQ(Tracer::Global().dropped_events(), 0);
  { TraceSpan span("unit.after_reset", "test"); }
  EXPECT_EQ(Tracer::Global().event_count(), 1u);
  Tracer::Global().SetMaxEventsPerThread(0);  // Restore: unbounded.
}

TEST_F(TraceTest, UncappedSessionDropsNothing) {
  Tracer::Global().SetMaxEventsPerThread(0);
  for (int i = 0; i < 100; ++i) {
    TraceSpan span("unit.uncapped", "test");
  }
  EXPECT_EQ(Tracer::Global().event_count(), 100u);
  EXPECT_EQ(Tracer::Global().dropped_events(), 0);
}

TEST_F(TraceTest, CostAttributionAnnotatesSpans) {
  Tracer::Global().SetCostAttribution(true);
  Tracer::Global().Enable();  // Fresh session under attribution.
  {
    TraceSpan span("unit.costed", "test");
    // Deterministic allocation signal: the span must see exactly the
    // bytes tracked on its own thread during its lifetime.
    TrackAlloc(AllocCategory::kCheckpoint, 2048);
    volatile double sink = 0;  // A little CPU so cpu_us is well-defined.
    for (int i = 0; i < 50000; ++i) sink += i * 0.5;
  }
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GE(events[0].cpu_us, 0);
  EXPECT_EQ(events[0].alloc_bytes, 2048);
  // The costs render into the event args and the aggregated table.
  const std::string json = Tracer::Global().ToJson();
  EXPECT_NE(json.find("\"cpu_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"alloc_bytes\":2048"), std::string::npos);
  const std::string table = Tracer::Global().CostTableJson(10);
  ASSERT_FALSE(table.empty());
  auto parsed = ParseJson(table);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* by_cpu = parsed->Find("by_cpu");
  const JsonValue* by_bytes = parsed->Find("by_bytes");
  ASSERT_NE(by_cpu, nullptr);
  ASSERT_NE(by_bytes, nullptr);
  ASSERT_EQ(by_bytes->array_items().size(), 1u);
  const JsonValue& row = by_bytes->array_items()[0];
  EXPECT_EQ(row.StringOr("name", ""), "unit.costed");
  EXPECT_EQ(row.NumberOr("count", -1), 1);
  EXPECT_EQ(row.NumberOr("alloc_bytes", -1), 2048);
  Tracer::Global().SetCostAttribution(false);
}

TEST_F(TraceTest, WithoutAttributionSpansCarryNoCosts) {
  Tracer::Global().SetCostAttribution(false);
  { TraceSpan span("unit.uncosted", "test"); }
  const auto events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cpu_us, -1);
  EXPECT_EQ(events[0].alloc_bytes, -1);
  EXPECT_EQ(Tracer::Global().ToJson().find("\"cpu_us\":"),
            std::string::npos);
  EXPECT_TRUE(Tracer::Global().CostTableJson(10).empty());
}

TEST_F(TraceTest, RecentSpanRingKeepsLastNamesOldestFirst) {
  Tracer::Global().EnableRecentSpans(3);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span("unit.ring_" + std::to_string(i), "test");
  }
  const std::vector<std::string> names = Tracer::Global().RecentSpanNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "unit.ring_2");
  EXPECT_EQ(names[1], "unit.ring_3");
  EXPECT_EQ(names[2], "unit.ring_4");
  Tracer::Global().EnableRecentSpans(0);
  EXPECT_TRUE(Tracer::Global().RecentSpanNames().empty());
}

}  // namespace
}  // namespace mysawh
