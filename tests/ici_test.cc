#include "core/ici.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

namespace mysawh::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(IciScoringTest, BinaryAtLeast) {
  IntrinsicCapacityIndex index({});
  IciVariableSpec spec;
  spec.kind = IciScoreKind::kBinaryAtLeast;
  spec.cutoff = 3.0;
  EXPECT_DOUBLE_EQ(index.ScoreVariable(spec, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(index.ScoreVariable(spec, 2.9), 0.0);
}

TEST(IciScoringTest, BinaryBelow) {
  IntrinsicCapacityIndex index({});
  IciVariableSpec spec;
  spec.kind = IciScoreKind::kBinaryBelow;
  spec.cutoff = 3.0;
  // The paper's example: stress scored 1 if lower than 3.
  EXPECT_DOUBLE_EQ(index.ScoreVariable(spec, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(index.ScoreVariable(spec, 3.0), 0.0);
}

TEST(IciScoringTest, GradedClamps) {
  IntrinsicCapacityIndex index({});
  IciVariableSpec spec;
  spec.kind = IciScoreKind::kGraded;
  spec.lo = 0.0;
  spec.hi = 10000.0;
  EXPECT_DOUBLE_EQ(index.ScoreVariable(spec, 5000.0), 0.5);
  EXPECT_DOUBLE_EQ(index.ScoreVariable(spec, -100.0), 0.0);
  EXPECT_DOUBLE_EQ(index.ScoreVariable(spec, 25000.0), 1.0);
}

TEST(IciScoringTest, DegenerateGradedRangeScoresZero) {
  IntrinsicCapacityIndex index({});
  IciVariableSpec spec;
  spec.kind = IciScoreKind::kGraded;
  spec.lo = 5.0;
  spec.hi = 5.0;
  EXPECT_DOUBLE_EQ(index.ScoreVariable(spec, 7.0), 0.0);
}

TEST(IciScoringTest, MissingYieldsNaN) {
  IntrinsicCapacityIndex index({});
  IciVariableSpec spec;
  EXPECT_TRUE(std::isnan(index.ScoreVariable(spec, kNaN)));
}

IntrinsicCapacityIndex MakeTwoVariableIndex() {
  IciVariableSpec a;
  a.variable = "a";
  a.kind = IciScoreKind::kBinaryAtLeast;
  a.cutoff = 2.0;
  IciVariableSpec b;
  b.variable = "b";
  b.kind = IciScoreKind::kGraded;
  b.lo = 0.0;
  b.hi = 10.0;
  return IntrinsicCapacityIndex({a, b});
}

TEST(IciComputeTest, NormalizedSum) {
  const auto index = MakeTwoVariableIndex();
  // a: 1 (3 >= 2); b: 0.5 -> (1 + 0.5) / 2.
  EXPECT_DOUBLE_EQ(index.Compute({3.0, 5.0}), 0.75);
}

TEST(IciComputeTest, MissingRenormalizes) {
  const auto index = MakeTwoVariableIndex();
  EXPECT_DOUBLE_EQ(index.Compute({kNaN, 5.0}), 0.5);
  EXPECT_DOUBLE_EQ(index.Compute({3.0, kNaN}), 1.0);
  EXPECT_TRUE(std::isnan(index.Compute({kNaN, kNaN})));
}

TEST(IciComputeTest, OutputAlwaysInUnitInterval) {
  const auto index = MakeTwoVariableIndex();
  for (double a : {0.0, 1.0, 2.0, 9.0}) {
    for (double b : {-5.0, 0.0, 5.0, 15.0}) {
      const double v = index.Compute({a, b});
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(StandardIciTest, CoversAllDomainsPlusSteps) {
  const auto bank = cohort::ProQuestionBank::Standard();
  const auto index = IntrinsicCapacityIndex::StandardMySawh(bank).value();
  // 2 questions x 5 domains + graded steps.
  EXPECT_EQ(index.variables().size(), 11u);
  std::set<cohort::IcDomain> domains;
  bool has_steps = false;
  for (const auto& spec : index.variables()) {
    domains.insert(spec.domain);
    if (spec.variable == "act_steps") {
      has_steps = true;
      EXPECT_EQ(spec.kind, IciScoreKind::kGraded);
    }
  }
  EXPECT_EQ(domains.size(), 5u);
  EXPECT_TRUE(has_steps);
}

TEST(StandardIciTest, StressQuestionUsesPaperCutoff) {
  const auto bank = cohort::ProQuestionBank::Standard();
  const auto index = IntrinsicCapacityIndex::StandardMySawh(bank).value();
  bool found = false;
  for (const auto& spec : index.variables()) {
    if (spec.variable == cohort::kStressQuestionName) {
      found = true;
      EXPECT_EQ(spec.kind, IciScoreKind::kBinaryBelow);
      EXPECT_DOUBLE_EQ(spec.cutoff, 3.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(StandardIciTest, VariableNamesMatchSpecs) {
  const auto bank = cohort::ProQuestionBank::Standard();
  const auto index = IntrinsicCapacityIndex::StandardMySawh(bank).value();
  const auto names = index.VariableNames();
  ASSERT_EQ(names.size(), index.variables().size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], index.variables()[i].variable);
  }
}

}  // namespace
}  // namespace mysawh::core
