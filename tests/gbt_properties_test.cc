/// Property-based tests of structural invariances the booster should obey.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gbt/gbt_model.h"
#include "util/rng.h"

namespace mysawh::gbt {
namespace {

Dataset MakeData(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds = Dataset::Create({"a", "b", "c"});
  for (int64_t i = 0; i < n; ++i) {
    const double a = rng.Uniform(-2, 2);
    const double b = rng.Uniform(0, 1);
    const double c = rng.Uniform(-1, 1);
    const double y = std::sin(a) + 2.0 * b * b - c + rng.Normal(0, 0.05);
    EXPECT_TRUE(ds.AddRow({a, b, c}, y).ok());
  }
  return ds;
}

GbtParams BaseParams(TreeMethod method) {
  GbtParams params;
  params.num_trees = 40;
  params.max_depth = 4;
  params.tree_method = method;
  return params;
}

class GbtInvarianceTest : public ::testing::TestWithParam<TreeMethod> {};

TEST_P(GbtInvarianceTest, FeatureOrderInvariance) {
  // Permuting feature columns must not change predictions (deterministic
  // tie-breaks could differ only on exact gain ties, which the continuous
  // data avoids).
  const Dataset original = MakeData(800, 1);
  Dataset permuted = Dataset::Create({"c", "a", "b"});
  for (int64_t r = 0; r < original.num_rows(); ++r) {
    ASSERT_TRUE(permuted
                    .AddRow({original.At(r, 2), original.At(r, 0),
                             original.At(r, 1)},
                            original.label(r))
                    .ok());
  }
  const GbtParams params = BaseParams(GetParam());
  const GbtModel model_a = GbtModel::Train(original, params).value();
  const GbtModel model_b = GbtModel::Train(permuted, params).value();
  for (int64_t r = 0; r < 50; ++r) {
    const double row_a[] = {original.At(r, 0), original.At(r, 1),
                            original.At(r, 2)};
    const double row_b[] = {original.At(r, 2), original.At(r, 0),
                            original.At(r, 1)};
    EXPECT_NEAR(model_a.PredictRow(row_a), model_b.PredictRow(row_b), 1e-9);
  }
}

TEST_P(GbtInvarianceTest, LabelShiftEquivariance) {
  // Squared error: shifting every label by c shifts every prediction by c.
  const Dataset original = MakeData(800, 2);
  Dataset shifted = original;
  const double c = 10.0;
  for (int64_t r = 0; r < shifted.num_rows(); ++r) {
    shifted.set_label(r, shifted.label(r) + c);
  }
  const GbtParams params = BaseParams(GetParam());
  const GbtModel model_a = GbtModel::Train(original, params).value();
  const GbtModel model_b = GbtModel::Train(shifted, params).value();
  for (int64_t r = 0; r < 50; ++r) {
    EXPECT_NEAR(model_a.PredictRow(original.row(r)) + c,
                model_b.PredictRow(original.row(r)), 1e-6);
  }
}

TEST_P(GbtInvarianceTest, MonotoneFeatureTransformInvariance) {
  // Strictly increasing transforms of a feature leave split *membership*
  // unchanged, so predictions on the (transformed) training rows match.
  const Dataset original = MakeData(800, 3);
  Dataset transformed = original;
  for (int64_t r = 0; r < transformed.num_rows(); ++r) {
    transformed.Set(r, 0, std::exp(original.At(r, 0)));
  }
  const GbtParams params = BaseParams(GetParam());
  const GbtModel model_a = GbtModel::Train(original, params).value();
  const GbtModel model_b = GbtModel::Train(transformed, params).value();
  for (int64_t r = 0; r < 100; ++r) {
    EXPECT_NEAR(model_a.PredictRow(original.row(r)),
                model_b.PredictRow(transformed.row(r)), 1e-9);
  }
}

TEST_P(GbtInvarianceTest, DuplicatedRowsScaleInvariance) {
  // Training on the dataset duplicated once leaves the fit unchanged
  // (every gradient statistic doubles, ratios are preserved; only
  // regularization constants break exactness, hence the loose tolerance).
  const Dataset original = MakeData(600, 4);
  Dataset doubled = original;
  ASSERT_TRUE(doubled.Append(original).ok());
  GbtParams params = BaseParams(GetParam());
  params.reg_lambda = 0.0;
  params.min_samples_leaf = 1;
  const GbtModel model_a = GbtModel::Train(original, params).value();
  const GbtModel model_b = GbtModel::Train(doubled, params).value();
  double max_diff = 0.0;
  for (int64_t r = 0; r < 100; ++r) {
    max_diff = std::max(max_diff,
                        std::abs(model_a.PredictRow(original.row(r)) -
                                 model_b.PredictRow(original.row(r))));
  }
  EXPECT_LT(max_diff, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Methods, GbtInvarianceTest,
                         ::testing::Values(TreeMethod::kHist,
                                           TreeMethod::kExact));

TEST(GbtPropertiesTest, FlatForestEquivalentToReferenceOverRandomForests) {
  // Property: for any trained forest (either tree method, varying shapes,
  // missing values in the probe), the compiled flat kernel and the
  // reference pointer walker return the SAME doubles — bit-identical, not
  // merely close.
  for (uint64_t seed = 100; seed < 106; ++seed) {
    Rng rng(seed);
    Dataset train = Dataset::Create({"a", "b", "c"});
    for (int64_t i = 0; i < 300; ++i) {
      const double a = rng.Uniform(-2, 2);
      const double b = rng.Uniform(0, 1);
      const double c = rng.Uniform(-1, 1);
      EXPECT_TRUE(
          train.AddRow({a, b, c}, std::sin(a) + b - c * c).ok());
    }
    GbtParams params;
    params.tree_method =
        seed % 2 == 0 ? TreeMethod::kHist : TreeMethod::kExact;
    params.num_trees = 5 + static_cast<int>(seed % 3) * 10;
    params.max_depth = 2 + static_cast<int>(seed % 4);
    params.subsample = seed % 2 == 0 ? 1.0 : 0.7;
    params.seed = seed;
    const GbtModel model = GbtModel::Train(train, params).value();
    ASSERT_NE(model.flat_forest(), nullptr) << "seed " << seed;
    Dataset probe = Dataset::Create({"a", "b", "c"});
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (int64_t i = 0; i < 100; ++i) {
      std::vector<double> x = {rng.Uniform(-3, 3), rng.Uniform(-1, 2),
                               rng.Uniform(-2, 2)};
      // Probe beyond the training range and with missing cells: the bin
      // equivalence must hold everywhere, not just on seen values.
      if (rng.Uniform(0, 1) < 0.2) x[rng.UniformInt(0, 2)] = nan;
      EXPECT_TRUE(probe.AddRow(x, 0.0).ok());
    }
    const std::vector<double> flat = model.PredictRaw(probe).value();
    const std::vector<double> reference =
        model.PredictRawReference(probe).value();
    ASSERT_EQ(flat.size(), reference.size());
    for (size_t r = 0; r < flat.size(); ++r) {
      EXPECT_EQ(flat[r], reference[r]) << "seed " << seed << " row " << r;
    }
  }
}

TEST(GbtPropertiesTest, PredictionsWithinLabelRange) {
  // Tree ensembles cannot extrapolate beyond the label range by much
  // (leaf values are shrunken averages); check a wide probe grid.
  const Dataset train = MakeData(1000, 5);
  double lo = 1e300, hi = -1e300;
  for (double y : train.labels()) {
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  GbtParams params = BaseParams(TreeMethod::kHist);
  const GbtModel model = GbtModel::Train(train, params).value();
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const double row[] = {rng.Uniform(-10, 10), rng.Uniform(-10, 10),
                          rng.Uniform(-10, 10)};
    const double pred = model.PredictRow(row);
    EXPECT_GE(pred, lo - 0.5);
    EXPECT_LE(pred, hi + 0.5);
  }
}

}  // namespace
}  // namespace mysawh::gbt
