/// Golden tests of the per-cell data-quality profile: a tiny synthetic
/// cohort with known missingness, drift, and class balance must produce
/// exactly the expected statistics, and the JSON rendering must be
/// deterministic (the profile is a pure function of the partitions).

#include "core/data_profile.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace mysawh::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Train partition with hand-designed pathologies:
///   "full"     0..9, no missing cells;
///   "half"     NaN on even rows (50% missing), odd values 1,3,5,7,9;
///   "constant" always 1.0 (zero variance, so it can never drift).
/// Binary labels: rows 5..9 positive (50% positive rate).
Dataset MakeTrain() {
  Dataset ds = Dataset::Create({"full", "half", "constant"});
  for (int r = 0; r < 10; ++r) {
    const double half = (r % 2 == 0) ? kNaN : static_cast<double>(r);
    EXPECT_TRUE(
        ds.AddRow({static_cast<double>(r), half, 1.0}, r < 5 ? 0.0 : 1.0)
            .ok());
  }
  return ds;
}

/// Test partition: "full" shifted by +2 (drift vs train), "half" entirely
/// missing, one positive label of five (20% positive rate).
Dataset MakeTest() {
  Dataset ds = Dataset::Create({"full", "half", "constant"});
  for (int r = 0; r < 5; ++r) {
    EXPECT_TRUE(ds.AddRow({static_cast<double>(r + 2), kNaN, 1.0},
                          r == 0 ? 1.0 : 0.0)
                    .ok());
  }
  return ds;
}

TEST(DataProfileTest, GoldenStatisticsOnKnownCohort) {
  const auto profile_or =
      ProfilePartition(MakeTrain(), MakeTest(), /*classification=*/true);
  ASSERT_TRUE(profile_or.ok()) << profile_or.status().ToString();
  const DataQualityProfile& profile = *profile_or;

  EXPECT_EQ(profile.train_rows, 10);
  EXPECT_EQ(profile.test_rows, 5);
  EXPECT_EQ(profile.num_features, 3);
  ASSERT_EQ(profile.features.size(), 3u);

  EXPECT_TRUE(profile.outcome.classification);
  EXPECT_DOUBLE_EQ(profile.outcome.mean_train, 0.5);
  EXPECT_DOUBLE_EQ(profile.outcome.mean_test, 0.2);
  EXPECT_EQ(profile.outcome.positives_train, 5);
  EXPECT_EQ(profile.outcome.positives_test, 1);
  EXPECT_DOUBLE_EQ(profile.outcome.min_train, 0.0);
  EXPECT_DOUBLE_EQ(profile.outcome.max_train, 1.0);

  const FeatureQuality& full = profile.features[0];
  EXPECT_EQ(full.name, "full");
  EXPECT_DOUBLE_EQ(full.missing_train, 0.0);
  EXPECT_DOUBLE_EQ(full.missing_test, 0.0);
  EXPECT_DOUBLE_EQ(full.mean_train, 4.5);
  EXPECT_DOUBLE_EQ(full.mean_test, 4.0);
  // Population stddev of 0..9 is sqrt(8.25).
  EXPECT_DOUBLE_EQ(full.stddev_train, std::sqrt(8.25));
  EXPECT_DOUBLE_EQ(full.drift, 0.5 / std::sqrt(8.25));

  const FeatureQuality& half = profile.features[1];
  EXPECT_EQ(half.name, "half");
  EXPECT_DOUBLE_EQ(half.missing_train, 0.5);
  EXPECT_DOUBLE_EQ(half.missing_test, 1.0);
  EXPECT_DOUBLE_EQ(half.mean_train, 5.0);  // mean of 1,3,5,7,9
  EXPECT_TRUE(std::isnan(half.mean_test));
  EXPECT_DOUBLE_EQ(half.drift, 0.0);  // all-missing test side: no drift

  const FeatureQuality& constant = profile.features[2];
  EXPECT_EQ(constant.name, "constant");
  EXPECT_DOUBLE_EQ(constant.stddev_train, 0.0);
  EXPECT_DOUBLE_EQ(constant.drift, 0.0);  // zero-variance guard

  EXPECT_EQ(profile.max_missing_feature, "half");
  EXPECT_DOUBLE_EQ(profile.max_missing_train, 0.5);
  EXPECT_EQ(profile.max_drift_feature, "full");
  EXPECT_DOUBLE_EQ(profile.max_drift, 0.5 / std::sqrt(8.25));
}

TEST(DataProfileTest, BinOccupancyMatchesHistogramResolution) {
  const auto profile_or =
      ProfilePartition(MakeTrain(), MakeTest(), /*classification=*/true);
  ASSERT_TRUE(profile_or.ok());
  const DataQualityProfile& profile = *profile_or;

  // 10 distinct values, fewer than max_bins: one bin per value.
  EXPECT_EQ(profile.features[0].num_bins, 10);
  EXPECT_EQ(profile.features[0].occupied_bins, 10);
  EXPECT_EQ(profile.features[0].max_bin_count, 1);
  // "half": 5 present values, each its own bin; missing cells are tracked
  // by the missingness fraction, not the occupancy.
  EXPECT_EQ(profile.features[1].occupied_bins, 5);
  EXPECT_EQ(profile.features[1].max_bin_count, 1);
  // "constant": a single bin holding every row.
  EXPECT_EQ(profile.features[2].occupied_bins, profile.features[2].num_bins);
  EXPECT_EQ(profile.features[2].max_bin_count, 10);
  // Every feature fully occupies its bins here.
  EXPECT_DOUBLE_EQ(profile.mean_bin_occupancy, 1.0);
}

TEST(DataProfileTest, JsonIsDeterministicAndWellFormed) {
  const auto profile_or =
      ProfilePartition(MakeTrain(), MakeTest(), /*classification=*/true);
  ASSERT_TRUE(profile_or.ok());
  const std::string json = DataQualityJson(*profile_or);
  EXPECT_EQ(json, DataQualityJson(*profile_or));  // pure function

  EXPECT_NE(json.find("\"train_rows\":10"), std::string::npos);
  EXPECT_NE(json.find("\"positives_train\":5"), std::string::npos);
  EXPECT_NE(json.find("\"max_missing_feature\":\"half\""), std::string::npos);
  EXPECT_NE(json.find("\"max_drift_feature\":\"full\""), std::string::npos);
  // All-missing means render as JSON null, never "nan".
  EXPECT_NE(json.find("\"mean_test\":null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(DataProfileTest, RegressionOutcomeOmitsClassCounts) {
  const auto profile_or =
      ProfilePartition(MakeTrain(), MakeTest(), /*classification=*/false);
  ASSERT_TRUE(profile_or.ok());
  EXPECT_FALSE(profile_or->outcome.classification);
  const std::string json = DataQualityJson(*profile_or);
  EXPECT_EQ(json.find("positives_train"), std::string::npos);
  EXPECT_NE(json.find("\"classification\":false"), std::string::npos);
}

TEST(DataProfileTest, RejectsMalformedPartitions) {
  const Dataset train = MakeTrain();
  Dataset empty = Dataset::Create({"full", "half", "constant"});
  EXPECT_FALSE(ProfilePartition(train, empty, true).ok());
  EXPECT_FALSE(ProfilePartition(empty, train, true).ok());
  Dataset narrow = Dataset::Create({"only"});
  EXPECT_TRUE(narrow.AddRow({1.0}, 0.0).ok());
  EXPECT_FALSE(ProfilePartition(train, narrow, true).ok());
}

}  // namespace
}  // namespace mysawh::core
