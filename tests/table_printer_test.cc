#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mysawh {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "v"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "23"});
  const std::string out = table.ToString();
  // Every rendered line has equal width.
  size_t width = 0;
  size_t start = 0;
  while (start < out.size()) {
    const size_t end = out.find('\n', start);
    const size_t len = end - start;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    start = end + 1;
  }
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRendersRule) {
  TablePrinter table({"a"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  const std::string out = table.ToString();
  // Header rule + separator + bottom rule -> at least 4 '+--' lines.
  int rules = 0;
  size_t pos = 0;
  while ((pos = out.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos = out.find('\n', pos);
  }
  EXPECT_GE(rules, 4);
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter table({"only"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TablePrinterTest, MalformedRowDroppedNotFatal) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"too", "many", "cells"});
  EXPECT_FALSE(table.status().ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  const std::string out = table.ToString();
  // The good row still renders; the mistake is visible in the output.
  EXPECT_NE(out.find("| 1"), std::string::npos);
  EXPECT_EQ(out.find("many"), std::string::npos);
  EXPECT_NE(out.find("table error"), std::string::npos);
}

TEST(BarChartTest, ScalesToMaxWidth) {
  const std::string out =
      *RenderBarChart({"a", "bb"}, {10.0, 5.0}, /*max_width=*/10);
  // The larger value gets the full width; the smaller one half.
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
}

TEST(BarChartTest, AllZeroValues) {
  const std::string out = *RenderBarChart({"x"}, {0.0});
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(BarChartTest, MismatchedInputsFailCleanly) {
  EXPECT_EQ(RenderBarChart({"a"}, {1.0, 2.0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RenderBarChart({"a"}, {1.0}, /*max_width=*/-3).status().code(),
            StatusCode::kInvalidArgument);
  const double nan = std::nan("");
  EXPECT_EQ(RenderBarChart({"a"}, {nan}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mysawh
