#include "data/split.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mysawh {
namespace {

std::set<int64_t> AsSet(const std::vector<int64_t>& v) {
  return {v.begin(), v.end()};
}

TEST(TrainTestSplitTest, PartitionsAllRows) {
  Rng rng(1);
  const auto split = TrainTestSplit(100, 0.2, &rng).value();
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.size(), 80u);
  std::set<int64_t> all = AsSet(split.train);
  for (int64_t i : split.test) EXPECT_TRUE(all.insert(i).second);
  EXPECT_EQ(all.size(), 100u);
}

TEST(TrainTestSplitTest, BothSidesNonEmptyAtExtremes) {
  Rng rng(2);
  const auto tiny = TrainTestSplit(2, 0.01, &rng).value();
  EXPECT_EQ(tiny.test.size(), 1u);
  EXPECT_EQ(tiny.train.size(), 1u);
  const auto huge = TrainTestSplit(2, 0.99, &rng).value();
  EXPECT_EQ(huge.test.size(), 1u);
}

TEST(TrainTestSplitTest, InvalidInputs) {
  Rng rng(3);
  EXPECT_FALSE(TrainTestSplit(1, 0.2, &rng).ok());
  EXPECT_FALSE(TrainTestSplit(10, 0.0, &rng).ok());
  EXPECT_FALSE(TrainTestSplit(10, 1.0, &rng).ok());
}

TEST(GroupSplitTest, GroupsNeverStraddle) {
  Rng rng(5);
  std::vector<int64_t> groups;
  for (int64_t g = 0; g < 20; ++g) {
    for (int i = 0; i < 5; ++i) groups.push_back(g);
  }
  const auto split = GroupTrainTestSplit(groups, 0.25, &rng).value();
  std::set<int64_t> test_groups, train_groups;
  for (int64_t r : split.test) test_groups.insert(groups[static_cast<size_t>(r)]);
  for (int64_t r : split.train) train_groups.insert(groups[static_cast<size_t>(r)]);
  for (int64_t g : test_groups) EXPECT_EQ(train_groups.count(g), 0u);
  EXPECT_EQ(split.test.size() + split.train.size(), groups.size());
  EXPECT_FALSE(split.test.empty());
  EXPECT_FALSE(split.train.empty());
}

TEST(GroupSplitTest, NeedsTwoGroups) {
  Rng rng(1);
  EXPECT_FALSE(GroupTrainTestSplit({7, 7, 7}, 0.5, &rng).ok());
  EXPECT_FALSE(GroupTrainTestSplit({}, 0.5, &rng).ok());
}

TEST(StratifiedSplitTest, PreservesClassesOnBothSides) {
  Rng rng(7);
  std::vector<double> labels;
  for (int i = 0; i < 90; ++i) labels.push_back(0.0);
  for (int i = 0; i < 10; ++i) labels.push_back(1.0);
  const auto split = StratifiedTrainTestSplit(labels, 0.2, &rng).value();
  int64_t test_pos = 0, train_pos = 0;
  for (int64_t r : split.test) test_pos += labels[static_cast<size_t>(r)] > 0.5;
  for (int64_t r : split.train) train_pos += labels[static_cast<size_t>(r)] > 0.5;
  EXPECT_EQ(test_pos, 2);
  EXPECT_EQ(train_pos, 8);
  EXPECT_EQ(split.test.size() + split.train.size(), labels.size());
}

TEST(StratifiedSplitTest, RejectsNonIntegralLabels) {
  Rng rng(1);
  EXPECT_FALSE(StratifiedTrainTestSplit({0.5, 1.0, 0.0}, 0.3, &rng).ok());
}

class KFoldParamTest
    : public ::testing::TestWithParam<std::pair<int64_t, int>> {};

TEST_P(KFoldParamTest, FoldsPartitionRows) {
  const auto [n, k] = GetParam();
  Rng rng(11);
  const auto folds = KFoldSplit(n, k, &rng).value();
  ASSERT_EQ(folds.size(), static_cast<size_t>(k));
  std::set<int64_t> all_validation;
  for (const Fold& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.validation.size(),
              static_cast<size_t>(n));
    std::set<int64_t> train = AsSet(fold.train);
    for (int64_t v : fold.validation) {
      EXPECT_EQ(train.count(v), 0u);
      EXPECT_TRUE(all_validation.insert(v).second)
          << "row " << v << " validated twice";
    }
  }
  EXPECT_EQ(all_validation.size(), static_cast<size_t>(n));
  // Fold sizes are balanced within one row.
  size_t min_size = folds[0].validation.size(), max_size = min_size;
  for (const Fold& fold : folds) {
    min_size = std::min(min_size, fold.validation.size());
    max_size = std::max(max_size, fold.validation.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, KFoldParamTest,
    ::testing::Values(std::make_pair<int64_t, int>(10, 2),
                      std::make_pair<int64_t, int>(10, 5),
                      std::make_pair<int64_t, int>(101, 5),
                      std::make_pair<int64_t, int>(37, 7),
                      std::make_pair<int64_t, int>(5, 5)));

TEST(KFoldTest, InvalidArgs) {
  Rng rng(1);
  EXPECT_FALSE(KFoldSplit(10, 1, &rng).ok());
  EXPECT_FALSE(KFoldSplit(3, 5, &rng).ok());
}

TEST(StratifiedKFoldTest, EachFoldHasBothClasses) {
  Rng rng(13);
  std::vector<double> labels;
  for (int i = 0; i < 80; ++i) labels.push_back(0.0);
  for (int i = 0; i < 20; ++i) labels.push_back(1.0);
  const auto folds = StratifiedKFoldSplit(labels, 5, &rng).value();
  for (const Fold& fold : folds) {
    int64_t pos = 0;
    for (int64_t r : fold.validation) pos += labels[static_cast<size_t>(r)] > 0.5;
    EXPECT_EQ(pos, 4);
    EXPECT_EQ(fold.validation.size(), 20u);
  }
}

TEST(StratifiedKFoldTest, RejectsFractionalLabels) {
  Rng rng(1);
  EXPECT_FALSE(StratifiedKFoldSplit({0.0, 0.25, 1.0}, 2, &rng).ok());
}

}  // namespace
}  // namespace mysawh
