#include "data/table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

namespace mysawh {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Table MakeSample() {
  Table t;
  EXPECT_TRUE(t.AddNumericColumn("x", {1.0, 2.0, kNaN}).ok());
  EXPECT_TRUE(t.AddNumericColumn("y", {0.5, -1.5, 2.5}).ok());
  EXPECT_TRUE(t.AddStringColumn("tag", {"a", "b", "c"}).ok());
  return t;
}

TEST(TableTest, Shape) {
  const Table t = MakeSample();
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_EQ(t.ColumnNames(), (std::vector<std::string>{"x", "y", "tag"}));
}

TEST(TableTest, DuplicateColumnRejected) {
  Table t = MakeSample();
  EXPECT_FALSE(t.AddNumericColumn("x", {1, 2, 3}).ok());
  EXPECT_FALSE(t.AddStringColumn("tag", {"", "", ""}).ok());
}

TEST(TableTest, LengthMismatchRejected) {
  Table t = MakeSample();
  EXPECT_FALSE(t.AddNumericColumn("z", {1.0}).ok());
}

TEST(TableTest, TypedAccess) {
  const Table t = MakeSample();
  EXPECT_TRUE(t.HasColumn("y"));
  EXPECT_FALSE(t.HasColumn("missing"));
  EXPECT_DOUBLE_EQ((*t.GetNumeric("y").value())[2], 2.5);
  EXPECT_EQ((*t.GetStrings("tag").value())[0], "a");
  EXPECT_FALSE(t.GetNumeric("tag").ok());
  EXPECT_FALSE(t.GetStrings("x").ok());
  EXPECT_FALSE(t.GetColumn("nope").ok());
}

TEST(TableTest, FilterRows) {
  const Table t = MakeSample();
  const Table f = t.FilterRows({true, false, true}).value();
  EXPECT_EQ(f.num_rows(), 2);
  EXPECT_DOUBLE_EQ((*f.GetNumeric("y").value())[1], 2.5);
  EXPECT_EQ((*f.GetStrings("tag").value())[1], "c");
  EXPECT_FALSE(t.FilterRows({true}).ok());
}

TEST(TableTest, SelectColumnsReorders) {
  const Table t = MakeSample();
  const Table s = t.SelectColumns({"tag", "x"}).value();
  EXPECT_EQ(s.ColumnNames(), (std::vector<std::string>{"tag", "x"}));
  EXPECT_FALSE(t.SelectColumns({"nope"}).ok());
}

TEST(TableTest, AppendRequiresSameSchema) {
  Table a = MakeSample();
  const Table b = MakeSample();
  ASSERT_TRUE(a.Append(b).ok());
  EXPECT_EQ(a.num_rows(), 6);
  Table different;
  ASSERT_TRUE(different.AddNumericColumn("x", {1.0}).ok());
  EXPECT_FALSE(a.Append(different).ok());
}

TEST(TableTest, CsvRoundTripPreservesNumericsAndMissing) {
  const std::string path = ::testing::TempDir() + "/table_roundtrip.csv";
  const Table t = MakeSample();
  ASSERT_TRUE(t.ToCsvFile(path).ok());
  const Table loaded = Table::FromCsvFile(path).value();
  EXPECT_EQ(loaded.num_rows(), 3);
  const auto& x = *loaded.GetNumeric("x").value();
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_TRUE(std::isnan(x[2]));
  EXPECT_EQ((*loaded.GetStrings("tag").value())[1], "b");
  std::remove(path.c_str());
}

TEST(TableTest, CsvInferenceMixedColumnIsString) {
  const std::string path = ::testing::TempDir() + "/table_mixed.csv";
  {
    Table t;
    ASSERT_TRUE(t.AddStringColumn("mixed", {"1.5", "not-a-number"}).ok());
    ASSERT_TRUE(t.ToCsvFile(path).ok());
  }
  const Table loaded = Table::FromCsvFile(path).value();
  EXPECT_FALSE(loaded.column(0).is_numeric());
  std::remove(path.c_str());
}

TEST(TableTest, CsvRoundTripExactDoubles) {
  const std::string path = ::testing::TempDir() + "/table_exact.csv";
  Table t;
  const double tricky = 0.1 + 0.2;  // 0.30000000000000004
  ASSERT_TRUE(t.AddNumericColumn("v", {tricky, 1e-17, 12345678.9012345}).ok());
  ASSERT_TRUE(t.ToCsvFile(path).ok());
  const Table loaded = Table::FromCsvFile(path).value();
  const auto& v = *loaded.GetNumeric("v").value();
  EXPECT_DOUBLE_EQ(v[0], tricky);
  EXPECT_DOUBLE_EQ(v[1], 1e-17);
  EXPECT_DOUBLE_EQ(v[2], 12345678.9012345);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mysawh
