#include "gbt/gbt_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/audit_log.h"
#include "core/drift_monitor.h"
#include "gbt/trainer.h"
#include "util/metrics.h"
#include "util/serialization.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace mysawh::gbt {

Result<GbtModel> GbtModel::Train(const Dataset& train, const GbtParams& params,
                                 const Dataset* validation, TrainingLog* log) {
  Trainer trainer(train, params);
  MYSAWH_ASSIGN_OR_RETURN(GbtModel model, trainer.Run(validation, log));
  model.CompileFlat();
  return model;
}

void GbtModel::CompileFlat() {
  // Fingerprint the canonical serialized form once per (re)compile — the
  // only times the forest can change — so the audit hooks below never
  // hash on the prediction path.
  const std::string serialized = Serialize();
  fingerprint_ = core::HashBytes(serialized.data(), serialized.size());
  flat_.reset();
  Result<FlatForest> compiled = FlatForest::Compile(trees_, num_features());
  if (compiled.ok()) {
    flat_ = std::make_shared<const FlatForest>(std::move(compiled).value());
    return;
  }
  // An uncompilable shape (e.g. >254 distinct thresholds on one feature)
  // is not an error — the reference walker handles every valid forest.
  static Counter* const fallback_counter = MetricsRegistry::Global().GetCounter(
      "gbt.predict.flat_compile_fallbacks");
  fallback_counter->Increment();
}

double GbtModel::PredictRowRaw(const double* row) const {
  double raw = base_score_;
  for (const auto& tree : trees_) raw += tree.Predict(row);
  return raw;
}

double GbtModel::PredictRow(const double* row) const {
  const auto objective = MakeObjective(objective_type_);
  return objective->Transform(PredictRowRaw(row));
}

Result<std::vector<double>> GbtModel::PredictRaw(const Dataset& data) const {
  if (data.num_features() != num_features()) {
    return Status::InvalidArgument(
        "Predict: dataset width " + std::to_string(data.num_features()) +
        " != model width " + std::to_string(num_features()));
  }
  if (flat_ == nullptr) {
    // Uncompilable ensemble shape: count the rows served by the slow path
    // so a serving deployment can see it is not on the flat kernel.
    static Counter* const fallback_rows = MetricsRegistry::Global().GetCounter(
        "gbt.predict.flat_fallback_rows");
    fallback_rows->Increment(data.num_rows());
    return PredictRawReference(data);
  }
  TraceSpan span("gbt.predict", "predict");
  span.Arg("rows", data.num_rows());
  span.Arg("flat", 1);
  static Counter* const rows_counter =
      MetricsRegistry::Global().GetCounter("gbt.predict.rows");
  rows_counter->Increment(data.num_rows());
  static Counter* const flat_rows_counter =
      MetricsRegistry::Global().GetCounter("gbt.predict.flat_rows");
  flat_rows_counter->Increment(data.num_rows());
  std::vector<double> out(static_cast<size_t>(data.num_rows()));
  flat_->PredictRaw(data, base_score_, out.data());
  return out;
}

Result<std::vector<double>> GbtModel::PredictRawReference(
    const Dataset& data) const {
  if (data.num_features() != num_features()) {
    return Status::InvalidArgument(
        "Predict: dataset width " + std::to_string(data.num_features()) +
        " != model width " + std::to_string(num_features()));
  }
  TraceSpan span("gbt.predict", "predict");
  span.Arg("rows", data.num_rows());
  span.Arg("flat", 0);
  static Counter* const rows_counter =
      MetricsRegistry::Global().GetCounter("gbt.predict.rows");
  rows_counter->Increment(data.num_rows());
  // Rows are independent and write disjoint slots, so the shared pool keeps
  // results bit-identical to the sequential loop.
  std::vector<double> out(static_cast<size_t>(data.num_rows()));
  DefaultPool().ParallelFor(data.num_rows(), [&](int64_t i) {
    out[static_cast<size_t>(i)] = PredictRowRaw(data.row(i));
  });
  return out;
}

Result<std::vector<double>> GbtModel::Predict(const Dataset& data) const {
  MYSAWH_ASSIGN_OR_RETURN(std::vector<double> raw, PredictRaw(data));
  const auto objective = MakeObjective(objective_type_);
  DefaultPool().ParallelFor(static_cast<int64_t>(raw.size()), [&](int64_t i) {
    raw[static_cast<size_t>(i)] = objective->Transform(raw[static_cast<size_t>(i)]);
  });
  // Model-quality observability hooks: one relaxed load each when
  // disarmed, and always on the calling thread after the parallel loops,
  // so observation can never change what was computed.
  if (core::AuditEnabled()) {
    core::AuditLog::Global().RecordPredictBatch(fingerprint_, data, raw);
  }
  if (core::DriftMonitoringEnabled()) {
    core::DriftMonitorRuntime::Global().ObserveBatch(data, raw);
  }
  return raw;
}

Result<std::vector<double>> GbtModel::PredictReference(
    const Dataset& data) const {
  MYSAWH_ASSIGN_OR_RETURN(std::vector<double> raw, PredictRawReference(data));
  const auto objective = MakeObjective(objective_type_);
  DefaultPool().ParallelFor(static_cast<int64_t>(raw.size()), [&](int64_t i) {
    raw[static_cast<size_t>(i)] = objective->Transform(raw[static_cast<size_t>(i)]);
  });
  return raw;
}

Result<std::vector<std::vector<double>>> GbtModel::PredictStaged(
    const Dataset& data, int stride) const {
  if (stride < 1) return Status::InvalidArgument("stride must be >= 1");
  if (data.num_features() != num_features()) {
    return Status::InvalidArgument("PredictStaged: dataset width mismatch");
  }
  const auto objective = MakeObjective(objective_type_);
  std::vector<double> raw(static_cast<size_t>(data.num_rows()), base_score_);
  std::vector<std::vector<double>> stages;
  auto snapshot = [&] {
    std::vector<double> stage(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      stage[i] = objective->Transform(raw[i]);
    }
    stages.push_back(std::move(stage));
  };
  if (flat_ != nullptr) {
    // Quantize once, then every stage walk is byte comparisons over the
    // flat block. Per row the leaf values still sum in ascending tree
    // order from base_score_, so stages match the reference walker bit
    // for bit.
    const std::vector<uint8_t> bins = flat_->BinMatrix(data);
    constexpr int64_t kChunk = 256;
    const int64_t chunks = (data.num_rows() + kChunk - 1) / kChunk;
    for (size_t t = 0; t < trees_.size(); ++t) {
      DefaultPool().ParallelFor(chunks, [&](int64_t c) {
        const int64_t begin = c * kChunk;
        const int64_t n = std::min(kChunk, data.num_rows() - begin);
        flat_->Accumulate(bins.data() + begin * num_features(), n,
                          static_cast<int>(t), static_cast<int>(t) + 1,
                          raw.data() + begin);
      });
      if ((t + 1) % static_cast<size_t>(stride) == 0 ||
          t + 1 == trees_.size()) {
        snapshot();
      }
    }
    if (trees_.empty()) snapshot();
    return stages;
  }
  for (size_t t = 0; t < trees_.size(); ++t) {
    DefaultPool().ParallelFor(data.num_rows(), [&](int64_t r) {
      raw[static_cast<size_t>(r)] += trees_[t].Predict(data.row(r));
    });
    if ((t + 1) % static_cast<size_t>(stride) == 0 || t + 1 == trees_.size()) {
      snapshot();
    }
  }
  if (trees_.empty()) snapshot();
  return stages;
}

std::map<std::string, double> GbtModel::GainImportance() const {
  std::map<std::string, double> importance;
  for (const auto& tree : trees_) {
    for (int i = 0; i < tree.num_nodes(); ++i) {
      const TreeNode& n = tree.node(i);
      if (n.IsLeaf()) continue;
      importance[feature_names_[static_cast<size_t>(n.feature)]] += n.gain;
    }
  }
  return importance;
}

std::map<std::string, int64_t> GbtModel::SplitCountImportance() const {
  std::map<std::string, int64_t> importance;
  for (const auto& tree : trees_) {
    for (int i = 0; i < tree.num_nodes(); ++i) {
      const TreeNode& n = tree.node(i);
      if (n.IsLeaf()) continue;
      importance[feature_names_[static_cast<size_t>(n.feature)]] += 1;
    }
  }
  return importance;
}

std::map<std::string, double> GbtModel::CoverImportance() const {
  std::map<std::string, double> importance;
  for (const auto& tree : trees_) {
    for (int i = 0; i < tree.num_nodes(); ++i) {
      const TreeNode& n = tree.node(i);
      if (n.IsLeaf()) continue;
      importance[feature_names_[static_cast<size_t>(n.feature)]] += n.cover;
    }
  }
  return importance;
}

std::string GbtModel::Serialize() const {
  std::ostringstream os;
  os << "mysawh-gbt v1\n";
  os << "objective " << ObjectiveTypeName(objective_type_) << "\n";
  os << "base_score " << EncodeDouble(base_score_) << "\n";
  os << "best_iteration " << best_iteration_ << "\n";
  os << "num_features " << feature_names_.size() << "\n";
  for (const auto& name : feature_names_) os << "feature " << name << "\n";
  os << "num_trees " << trees_.size() << "\n";
  for (const auto& tree : trees_) {
    os << "tree " << tree.num_nodes() << "\n";
    for (int i = 0; i < tree.num_nodes(); ++i) {
      os << TreeNodeToText(tree.node(i)) << "\n";
    }
  }
  return os.str();
}

Result<GbtModel> GbtModel::Deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  auto next_line = [&]() -> Result<std::string> {
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("model text truncated");
    }
    return line;
  };
  MYSAWH_ASSIGN_OR_RETURN(std::string header, next_line());
  if (header != "mysawh-gbt v1") {
    return Status::InvalidArgument("bad model header: " + header);
  }
  GbtModel model;
  MYSAWH_ASSIGN_OR_RETURN(std::string obj_line, next_line());
  {
    const auto parts = Split(obj_line, ' ');
    if (parts.size() != 2 || parts[0] != "objective") {
      return Status::InvalidArgument("bad objective line");
    }
    MYSAWH_ASSIGN_OR_RETURN(model.objective_type_,
                            ParseObjectiveType(parts[1]));
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string base_line, next_line());
  {
    const auto parts = Split(base_line, ' ');
    if (parts.size() != 2 || parts[0] != "base_score") {
      return Status::InvalidArgument("bad base_score line");
    }
    MYSAWH_ASSIGN_OR_RETURN(model.base_score_, DecodeDouble(parts[1]));
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string best_line, next_line());
  {
    const auto parts = Split(best_line, ' ');
    if (parts.size() != 2 || parts[0] != "best_iteration") {
      return Status::InvalidArgument("bad best_iteration line");
    }
    MYSAWH_ASSIGN_OR_RETURN(int64_t v, ParseInt64(parts[1]));
    model.best_iteration_ = static_cast<int>(v);
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string nf_line, next_line());
  int64_t num_features = 0;
  {
    const auto parts = Split(nf_line, ' ');
    if (parts.size() != 2 || parts[0] != "num_features") {
      return Status::InvalidArgument("bad num_features line");
    }
    MYSAWH_ASSIGN_OR_RETURN(num_features, ParseInt64(parts[1]));
    if (num_features < 0) {
      return Status::InvalidArgument("negative num_features");
    }
  }
  for (int64_t i = 0; i < num_features; ++i) {
    MYSAWH_ASSIGN_OR_RETURN(std::string fline, next_line());
    if (!StartsWith(fline, "feature ")) {
      return Status::InvalidArgument("bad feature line: " + fline);
    }
    model.feature_names_.push_back(fline.substr(8));
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string nt_line, next_line());
  int64_t num_trees = 0;
  {
    const auto parts = Split(nt_line, ' ');
    if (parts.size() != 2 || parts[0] != "num_trees") {
      return Status::InvalidArgument("bad num_trees line");
    }
    MYSAWH_ASSIGN_OR_RETURN(num_trees, ParseInt64(parts[1]));
  }
  for (int64_t t = 0; t < num_trees; ++t) {
    MYSAWH_ASSIGN_OR_RETURN(std::string tline, next_line());
    const auto tparts = Split(tline, ' ');
    if (tparts.size() != 2 || tparts[0] != "tree") {
      return Status::InvalidArgument("bad tree line: " + tline);
    }
    MYSAWH_ASSIGN_OR_RETURN(int64_t num_nodes, ParseInt64(tparts[1]));
    if (num_nodes < 1) return Status::InvalidArgument("empty tree");
    std::vector<TreeNode> nodes;
    // Reserve is bounded: a corrupted count must fail on the missing
    // lines below, not attempt a multi-exabyte allocation here.
    nodes.reserve(static_cast<size_t>(std::min<int64_t>(num_nodes, 4096)));
    for (int64_t i = 0; i < num_nodes; ++i) {
      MYSAWH_ASSIGN_OR_RETURN(std::string nline, next_line());
      MYSAWH_ASSIGN_OR_RETURN(TreeNode node, TreeNodeFromText(nline));
      nodes.push_back(node);
    }
    RegressionTree rebuilt = RegressionTree::FromNodes(std::move(nodes));
    MYSAWH_RETURN_NOT_OK(rebuilt.Validate(num_features));
    model.trees_.push_back(std::move(rebuilt));
  }
  // Deserialized models predict through the same compiled kernel as
  // freshly trained ones (Serialize() does not carry the flat block).
  model.CompileFlat();
  return model;
}

}  // namespace mysawh::gbt
