#ifndef MYSAWH_GBT_HISTOGRAM_H_
#define MYSAWH_GBT_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "gbt/binning.h"
#include "gbt/objective.h"
#include "util/thread_pool.h"

namespace mysawh::gbt {

/// Accumulated gradient statistics of one histogram slot (one bin of one
/// feature, or one feature's missing-value bucket).
struct HistEntry {
  double sum_g = 0.0;
  double sum_h = 0.0;
  int64_t count = 0;
};

/// Slot layout of a per-node histogram over a (possibly column-subsampled)
/// feature set: `num_bins(feature)` contiguous slots per selected feature,
/// plus one missing-value slot per selected feature kept in a separate
/// array. The layout is fixed per tree, so parent and child histograms are
/// slot-compatible and support element-wise subtraction.
class HistogramLayout {
 public:
  HistogramLayout() = default;
  /// `features` are dataset feature indices, ascending.
  HistogramLayout(const FeatureBins& bins, std::vector<int> features);

  /// The selected dataset feature indices (ascending).
  const std::vector<int>& features() const { return features_; }
  int num_features() const { return static_cast<int>(features_.size()); }
  /// Total bin slots across all selected features (missing excluded).
  int64_t num_slots() const { return offsets_.empty() ? 0 : offsets_.back(); }
  /// First slot of the i-th selected feature.
  int64_t offset(int i) const { return offsets_[static_cast<size_t>(i)]; }
  /// Bin count of the i-th selected feature.
  int num_bins(int i) const {
    return static_cast<int>(offsets_[static_cast<size_t>(i) + 1] -
                            offsets_[static_cast<size_t>(i)]);
  }

 private:
  std::vector<int> features_;
  std::vector<int64_t> offsets_;  // size features_.size() + 1
};

/// One node's gradient histogram in a given layout.
class NodeHistogram {
 public:
  NodeHistogram() = default;
  explicit NodeHistogram(const HistogramLayout& layout)
      : slots_(static_cast<size_t>(layout.num_slots())),
        miss_(static_cast<size_t>(layout.num_features())) {}

  bool empty() const { return slots_.empty() && miss_.empty(); }

  /// Bin slots of the i-th selected feature (layout.num_bins(i) entries).
  const HistEntry* feature_slots(const HistogramLayout& layout, int i) const {
    return slots_.data() + layout.offset(i);
  }
  /// Missing-value bucket of the i-th selected feature.
  const HistEntry& miss(int i) const {
    return miss_[static_cast<size_t>(i)];
  }

  HistEntry* mutable_slots() { return slots_.data(); }
  HistEntry* mutable_miss() { return miss_.data(); }
  const HistEntry* slots_data() const { return slots_.data(); }
  const HistEntry* miss_data() const { return miss_.data(); }
  int64_t num_slots() const { return static_cast<int64_t>(slots_.size()); }
  int64_t num_miss() const { return static_cast<int64_t>(miss_.size()); }

  /// The sibling-subtraction trick: consumes a parent histogram and returns
  /// `parent - child` slot-wise, so the larger sibling costs O(slots)
  /// instead of a pass over its rows. Both must share one layout.
  static NodeHistogram Subtract(NodeHistogram parent,
                                const NodeHistogram& child);

 private:
  std::vector<HistEntry> slots_;
  std::vector<HistEntry> miss_;
};

/// Builds per-node gradient histograms with a single row-major pass: for
/// each of the node's rows, the row's bins (contiguous in the row-major
/// BinnedMatrix) feed every selected feature's histogram at once, instead
/// of rescanning the node once per feature.
///
/// Rows are partitioned into fixed-size chunks (boundaries depend only on
/// the row count), each chunk is accumulated independently, and the chunk
/// partials are merged in ascending chunk order — so the result is
/// bit-identical for any thread count, including inline execution.
class HistogramBuilder {
 public:
  /// `bins` and `binned` must outlive the builder. `pool` may be null for
  /// strictly inline execution.
  HistogramBuilder(const FeatureBins& bins, const BinnedMatrix& binned,
                   ThreadPool* pool)
      : bins_(&bins), binned_(&binned), pool_(pool) {}

  /// Accumulates the histogram of `rows` for every feature in `layout`.
  NodeHistogram Build(const HistogramLayout& layout,
                      const std::vector<int64_t>& rows,
                      const std::vector<GradientPair>& gpairs) const;

 private:
  const FeatureBins* bins_;
  const BinnedMatrix* binned_;
  ThreadPool* pool_;
};

}  // namespace mysawh::gbt

#endif  // MYSAWH_GBT_HISTOGRAM_H_
