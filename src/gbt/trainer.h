#ifndef MYSAWH_GBT_TRAINER_H_
#define MYSAWH_GBT_TRAINER_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "gbt/binning.h"
#include "gbt/gbt_model.h"
#include "gbt/objective.h"
#include "gbt/params.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mysawh::gbt {

/// Internal training engine behind GbtModel::Train. Exposed in a header so
/// tests can exercise split finding directly, but not part of the stable
/// public API.
class Trainer {
 public:
  /// The dataset must outlive the trainer.
  Trainer(const Dataset& train, const GbtParams& params);

  /// Runs boosting and produces the final model.
  Result<GbtModel> Run(const Dataset* validation, TrainingLog* log);

  /// A scored split proposal for one node.
  struct SplitCandidate {
    bool valid = false;
    int feature = -1;
    double threshold = 0.0;
    int bin = -1;             ///< Hist method: split is "bin <= this".
    bool default_left = true; ///< Learned missing-value direction.
    double gain = 0.0;
    double weight_left = 0.0;   ///< Unshrunk child weights (for monotone
    double weight_right = 0.0;  ///< bound propagation).
  };

 private:
  struct NodeStats {
    double sum_g = 0.0;
    double sum_h = 0.0;
    int64_t count = 0;
  };

  /// Admissible leaf-weight interval enforcing monotone constraints along
  /// the path from the root.
  struct NodeBounds {
    double lower;
    double upper;
  };

  double LeafWeight(double g, double h) const;
  double ScoreFn(double g, double h) const;

  /// Evaluates both missing-direction assignments for a partition
  /// (left/right exclude missing) and updates `best` in place, skipping
  /// candidates that violate the feature's monotone constraint or the
  /// node's weight bounds.
  void ConsiderSplit(const NodeStats& parent, const NodeStats& miss,
                     double sum_g_left, double sum_h_left, int64_t count_left,
                     int feature, double threshold, int bin,
                     const NodeBounds& bounds, SplitCandidate* best) const;

  SplitCandidate FindSplitExact(int feature, const std::vector<int64_t>& rows,
                                const std::vector<GradientPair>& gpairs,
                                const NodeStats& parent,
                                const NodeBounds& bounds) const;
  SplitCandidate FindSplitHist(int feature, const std::vector<int64_t>& rows,
                               const std::vector<GradientPair>& gpairs,
                               const NodeStats& parent,
                               const NodeBounds& bounds) const;

  /// Recursively grows the subtree rooted at `node_id` over `rows`.
  void BuildNode(RegressionTree* tree, int node_id, std::vector<int64_t> rows,
                 int depth, const std::vector<GradientPair>& gpairs,
                 const std::vector<int>& features, const NodeBounds& bounds);

  /// The monotone constraint of a feature (0 when none configured).
  int ConstraintOf(int feature) const;

  /// Grows one tree on the (sub)sampled rows and features.
  RegressionTree GrowTree(const std::vector<GradientPair>& gpairs,
                          std::vector<int64_t> rows,
                          const std::vector<int>& features);

  const Dataset& train_;
  const GbtParams params_;
  std::unique_ptr<Objective> objective_;
  FeatureBins bins_;
  BinnedMatrix binned_;
  bool use_hist_ = false;
  Rng rng_;
  ThreadPool pool_;
};

}  // namespace mysawh::gbt

#endif  // MYSAWH_GBT_TRAINER_H_
