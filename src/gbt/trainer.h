#ifndef MYSAWH_GBT_TRAINER_H_
#define MYSAWH_GBT_TRAINER_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "gbt/binning.h"
#include "gbt/gbt_model.h"
#include "gbt/histogram.h"
#include "gbt/objective.h"
#include "gbt/params.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mysawh::gbt {

/// Internal training engine behind GbtModel::Train. Exposed in a header so
/// tests can exercise split finding directly, but not part of the stable
/// public API.
class Trainer {
 public:
  /// The dataset must outlive the trainer.
  Trainer(const Dataset& train, const GbtParams& params);

  /// Runs boosting and produces the final model.
  Result<GbtModel> Run(const Dataset* validation, TrainingLog* log);

  /// A scored split proposal for one node.
  struct SplitCandidate {
    bool valid = false;
    int feature = -1;
    double threshold = 0.0;
    int bin = -1;             ///< Hist method: split is "bin <= this".
    bool default_left = true; ///< Learned missing-value direction.
    double gain = 0.0;
    double weight_left = 0.0;   ///< Unshrunk child weights (for monotone
    double weight_right = 0.0;  ///< bound propagation).
  };

 private:
  struct NodeStats {
    double sum_g = 0.0;
    double sum_h = 0.0;
    int64_t count = 0;
  };

  /// Admissible leaf-weight interval enforcing monotone constraints along
  /// the path from the root.
  struct NodeBounds {
    double lower;
    double upper;
  };

  double LeafWeight(double g, double h) const;
  double ScoreFn(double g, double h) const;

  /// Evaluates both missing-direction assignments for a partition
  /// (left/right exclude missing) and updates `best` in place, skipping
  /// candidates that violate the feature's monotone constraint or the
  /// node's weight bounds. `parent_score` is ScoreFn(parent), hoisted out
  /// because this runs once per candidate boundary.
  void ConsiderSplit(const NodeStats& parent, double parent_score,
                     const NodeStats& miss, double sum_g_left,
                     double sum_h_left, int64_t count_left, int feature,
                     double threshold, int bin, const NodeBounds& bounds,
                     SplitCandidate* best) const;

  SplitCandidate FindSplitExact(int feature, const std::vector<int64_t>& rows,
                                const std::vector<GradientPair>& gpairs,
                                const NodeStats& parent,
                                const NodeBounds& bounds) const;
  /// Unconstrained hist boundary scan (no monotone constraints configured,
  /// so node bounds are always infinite and no candidate can be rejected
  /// after scoring). Same gains, tie-breaks, and results as the generic
  /// path through ConsiderSplit, but with the per-boundary work reduced to
  /// the two score divisions. This is the hist-mode hot loop.
  SplitCandidate FindSplitHistFast(int feature, int nb,
                                   const HistEntry* slots,
                                   const NodeStats& miss,
                                   const NodeStats& parent,
                                   double parent_score,
                                   int64_t present) const;
  /// Scans the prebuilt node histogram of the `feature_pos`-th selected
  /// feature for the best boundary.
  SplitCandidate FindSplitHist(int feature_pos, const HistogramLayout& layout,
                               const NodeHistogram& hist,
                               const NodeStats& parent,
                               const NodeBounds& bounds) const;

  /// Recursively grows the subtree rooted at `node_id` over `rows`. In hist
  /// mode `layout` is the tree's histogram layout and `hist` the node's
  /// histogram (built lazily when empty); children inherit histograms via
  /// the sibling-subtraction trick. In exact mode `layout` is null.
  void BuildNode(RegressionTree* tree, int node_id, std::vector<int64_t> rows,
                 int depth, const std::vector<GradientPair>& gpairs,
                 const std::vector<int>& features, const NodeBounds& bounds,
                 const HistogramLayout* layout, NodeHistogram hist);

  /// The monotone constraint of a feature (0 when none configured).
  int ConstraintOf(int feature) const;

  /// Grows one tree on the (sub)sampled rows and features.
  RegressionTree GrowTree(const std::vector<GradientPair>& gpairs,
                          std::vector<int64_t> rows,
                          const std::vector<int>& features);

  const Dataset& train_;
  const GbtParams params_;
  std::unique_ptr<Objective> objective_;
  FeatureBins bins_;
  BinnedMatrix binned_;
  std::unique_ptr<HistogramBuilder> hist_builder_;
  bool use_hist_ = false;
  int64_t hist_nodes_direct_ = 0;      ///< Histograms built from rows.
  int64_t hist_nodes_subtracted_ = 0;  ///< Histograms derived by subtraction.
  Rng rng_;
  ThreadPool pool_;
};

}  // namespace mysawh::gbt

#endif  // MYSAWH_GBT_TRAINER_H_
