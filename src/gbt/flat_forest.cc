#include "gbt/flat_forest.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/file_io.h"
#include "util/metrics.h"
#include "util/resource_stats.h"
#include "util/serialization.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace mysawh::gbt {

namespace {

/// Cover floor of the TreeSHAP recursion (explain/tree_shap.cc SafeCover).
/// The compile-time fractions must divide by exactly the same value the
/// reference recursion divides by, or the flat SHAP port would drift.
double SafeCover(double cover) { return std::max(cover, 1e-30); }

/// Widest per-feature cut array the uint8 bin encoding can address: bins
/// run 0..254 and kFlatMissingBin (255) is reserved for NaN.
constexpr int kMaxCutsPerFeature = 254;

/// log2(kFlatPredictBlock): the walk step addresses the column panel as
/// bins_cm[(feature << kBlockShift) + lane_row].
constexpr int kBlockShift = 6;
static_assert(kFlatPredictBlock == (int64_t{1} << kBlockShift),
              "panel addressing assumes a power-of-two block");

}  // namespace

Result<FlatForest> FlatForest::Compile(
    const std::vector<RegressionTree>& trees, int64_t num_features) {
  TraceSpan span("gbt.flat.compile", "gbt");
  if (num_features < 0 || num_features > INT16_MAX) {
    return Status::FailedPrecondition(
        "flat compile: feature space width " + std::to_string(num_features) +
        " exceeds the int16 node encoding");
  }
  FlatForest flat;
  flat.num_features_ = num_features;

  // Pass 1: the distinct split thresholds of every feature become its cut
  // array. For hist-trained models these are a subset of the BuildBinned
  // cuts the splits were chosen from; for exact-trained or deserialized
  // models they are whatever thresholds the trees carry — the equivalence
  // bin(v) < bin_threshold  <=>  v < threshold holds either way.
  std::vector<std::vector<double>> cuts(static_cast<size_t>(num_features));
  int64_t total_internal = 0;
  int64_t total_leaves = 0;
  for (const auto& tree : trees) {
    // Structural validity (finite thresholds, in-range features) is the
    // input contract of every kernel below; re-checking here keeps a bad
    // caller from compiling an out-of-bounds memory accessor.
    MYSAWH_RETURN_NOT_OK(tree.Validate(num_features));
    for (int i = 0; i < tree.num_nodes(); ++i) {
      const TreeNode& n = tree.node(i);
      if (n.IsLeaf()) {
        ++total_leaves;
      } else {
        ++total_internal;
        cuts[static_cast<size_t>(n.feature)].push_back(n.threshold);
      }
    }
  }
  if (total_internal > INT32_MAX || total_leaves > INT32_MAX) {
    return Status::FailedPrecondition("flat compile: forest too large");
  }
  flat.cut_offsets_.reserve(static_cast<size_t>(num_features) + 1);
  flat.cut_offsets_.push_back(0);
  for (auto& feature_cuts : cuts) {
    std::sort(feature_cuts.begin(), feature_cuts.end());
    feature_cuts.erase(
        std::unique(feature_cuts.begin(), feature_cuts.end()),
        feature_cuts.end());
    if (static_cast<int>(feature_cuts.size()) > kMaxCutsPerFeature) {
      return Status::FailedPrecondition(
          "flat compile: " + std::to_string(feature_cuts.size()) +
          " distinct thresholds on one feature exceed the uint8 bin "
          "encoding (max " + std::to_string(kMaxCutsPerFeature) + ")");
    }
    flat.cut_values_.insert(flat.cut_values_.end(), feature_cuts.begin(),
                            feature_cuts.end());
    flat.cut_offsets_.push_back(
        static_cast<int32_t>(flat.cut_values_.size()));
  }

  // Pass 2: emit each tree's internal nodes in preorder (parents strictly
  // before children, the acyclicity invariant Validate checks) and its
  // leaves in reference order, all into the global SoA block.
  flat.feature_.reserve(static_cast<size_t>(total_internal));
  flat.bin_threshold_.reserve(static_cast<size_t>(total_internal));
  flat.left_.reserve(static_cast<size_t>(total_internal));
  flat.right_.reserve(static_cast<size_t>(total_internal));
  flat.left_fraction_.reserve(static_cast<size_t>(total_internal));
  flat.right_fraction_.reserve(static_cast<size_t>(total_internal));
  flat.leaf_values_.reserve(static_cast<size_t>(total_leaves));
  flat.default_left_bits_.assign(
      static_cast<size_t>((total_internal + 63) / 64), 0);
  flat.tree_node_offsets_.push_back(0);
  flat.tree_leaf_offsets_.push_back(0);
  for (const auto& tree : trees) {
    const int32_t node_base = static_cast<int32_t>(flat.feature_.size());
    // Preorder index of every internal node (explicit stack: deserialized
    // trees may be arbitrarily deep and must not overflow the C++ stack).
    std::vector<int32_t> order(static_cast<size_t>(tree.num_nodes()), -1);
    std::vector<int32_t> preorder;
    if (!tree.node(0).IsLeaf()) {
      std::vector<int32_t> stack{0};
      while (!stack.empty()) {
        const int32_t id = stack.back();
        stack.pop_back();
        order[static_cast<size_t>(id)] =
            static_cast<int32_t>(preorder.size());
        preorder.push_back(id);
        const TreeNode& n = tree.node(id);
        if (!tree.node(n.right).IsLeaf()) stack.push_back(n.right);
        if (!tree.node(n.left).IsLeaf()) stack.push_back(n.left);
      }
    }
    auto child_ref = [&](int32_t id) -> int32_t {
      const TreeNode& child = tree.node(id);
      if (!child.IsLeaf()) return node_base + order[static_cast<size_t>(id)];
      const auto leaf_index = static_cast<int32_t>(flat.leaf_values_.size());
      flat.leaf_values_.push_back(child.value);
      return ~leaf_index;
    };
    if (tree.node(0).IsLeaf()) {
      flat.roots_.push_back(child_ref(0));
    } else {
      flat.roots_.push_back(node_base);
      for (const int32_t id : preorder) {
        const TreeNode& n = tree.node(id);
        const auto flat_id = static_cast<size_t>(flat.feature_.size());
        flat.feature_.push_back(static_cast<int16_t>(n.feature));
        // The threshold was inserted into this feature's cut array above,
        // so lower_bound lands exactly on it; going left on
        // bin < (index + 1) is then exactly the reference's v < threshold.
        const double* lo =
            flat.cut_values_.data() + flat.cut_offsets_[
                static_cast<size_t>(n.feature)];
        const double* hi =
            flat.cut_values_.data() + flat.cut_offsets_[
                static_cast<size_t>(n.feature) + 1];
        const auto cut_index = std::lower_bound(lo, hi, n.threshold) - lo;
        flat.bin_threshold_.push_back(static_cast<uint8_t>(cut_index + 1));
        if (n.default_left) {
          flat.default_left_bits_[flat_id >> 6] |= uint64_t{1}
                                                   << (flat_id & 63);
        }
        // Children in (left, right) order so leaf indices are deterministic.
        flat.left_.push_back(child_ref(n.left));
        flat.right_.push_back(child_ref(n.right));
        const double cover = SafeCover(n.cover);
        flat.left_fraction_.push_back(
            tree.node(n.left).cover / cover);
        flat.right_fraction_.push_back(
            tree.node(n.right).cover / cover);
      }
    }
    flat.tree_node_offsets_.push_back(
        static_cast<int32_t>(flat.feature_.size()));
    flat.tree_leaf_offsets_.push_back(
        static_cast<int32_t>(flat.leaf_values_.size()));
  }

  flat.BuildDerivedState();

  span.Arg("trees", static_cast<int64_t>(trees.size()));
  span.Arg("nodes", total_internal);
  span.Arg("leaves", total_leaves);
  return flat;
}

void FlatForest::BuildDerivedState() {
  // Children come after parents in the flat block, so one backward pass
  // resolves every subtree height without recursion.
  std::vector<int32_t> height(feature_.size(), 0);
  auto ref_height = [&](int32_t ref) {
    return ref < 0 ? 0 : height[static_cast<size_t>(ref)];
  };
  for (auto i = static_cast<int64_t>(feature_.size()) - 1; i >= 0; --i) {
    height[static_cast<size_t>(i)] =
        1 + std::max(ref_height(left_[static_cast<size_t>(i)]),
                     ref_height(right_[static_cast<size_t>(i)]));
  }
  tree_depths_.clear();
  tree_depths_.reserve(roots_.size());
  max_depth_ = 0;
  for (const int32_t root : roots_) {
    tree_depths_.push_back(ref_height(root));
    max_depth_ = std::max(max_depth_, tree_depths_.back());
  }
  // Packed kernel tables over the augmented node space (internal nodes,
  // then leaf pseudo-nodes): feature (<= 32766) in the high bits, then the
  // bin threshold, then the missing direction — one 32-bit load per node
  // instead of three scattered ones. Child refs are de-tagged into
  // augmented indices and interleaved right-then-left so the taken child
  // is children_[2 * node + go_left]; a leaf pseudo-node (metadata 0,
  // go_left always 0) self-loops and adds nothing to a step's cost.
  const size_t internal = feature_.size();
  const size_t total = internal + leaf_values_.size();
  const auto augmented = [&](int32_t ref) -> int32_t {
    return ref >= 0 ? ref : static_cast<int32_t>(internal) + ~ref;
  };
  node_meta_.assign(total, 0);
  children_.resize(total * 2);
  node_value_.assign(total, 0.0);
  TrackAlloc(AllocCategory::kFlatForest,
             static_cast<int64_t>(total * sizeof(uint32_t) +
                                  total * 2 * sizeof(int32_t) +
                                  total * sizeof(double)));
  for (size_t n = 0; n < internal; ++n) {
    node_meta_[n] =
        (static_cast<uint32_t>(static_cast<uint16_t>(feature_[n])) << 9) |
        (static_cast<uint32_t>(bin_threshold_[n]) << 1) |
        (default_left(static_cast<int64_t>(n)) ? 1u : 0u);
    children_[2 * n] = augmented(right_[n]);
    children_[2 * n + 1] = augmented(left_[n]);
  }
  for (size_t leaf = 0; leaf < leaf_values_.size(); ++leaf) {
    const size_t p = internal + leaf;
    children_[2 * p] = static_cast<int32_t>(p);
    children_[2 * p + 1] = static_cast<int32_t>(p);
    node_value_[p] = leaf_values_[leaf];
  }
  kernel_roots_.clear();
  kernel_roots_.reserve(roots_.size());
  for (const int32_t root : roots_) kernel_roots_.push_back(augmented(root));

  // NaN-padded cut arrays for the branchless BinRow search, every feature
  // padded to the same power of two so four searches share one halving
  // sequence. Bounded by 256 doubles per feature (the uint8 bin gate).
  int64_t widest = 1;
  for (int64_t f = 0; f < num_features_; ++f) {
    widest = std::max<int64_t>(widest, cut_offsets_[f + 1] - cut_offsets_[f]);
  }
  search_len_ = static_cast<int64_t>(
      std::bit_ceil(static_cast<uint64_t>(widest)));
  search_cuts_.assign(static_cast<size_t>(num_features_ * search_len_),
                      std::numeric_limits<double>::quiet_NaN());
  for (int64_t f = 0; f < num_features_; ++f) {
    std::copy(cut_values_.begin() + cut_offsets_[f],
              cut_values_.begin() + cut_offsets_[f + 1],
              search_cuts_.begin() + f * search_len_);
  }
}

namespace {

/// Features binned in lockstep per BinRow search pass: the searches are
/// independent chains of load -> compare -> conditional move, so running
/// four at once overlaps their latencies the same way the walk kernel's
/// row lanes do.
constexpr int64_t kBinLanes = 4;

}  // namespace

void FlatForest::BinRow(const double* row, uint8_t* out) const {
  // bin(v) = #{cuts <= v}: with bin_threshold = cut_index + 1 this makes
  // bin < bin_threshold exactly equivalent to v < threshold. The searches
  // run over the NaN-padded uniform power-of-two copies of the cut arrays
  // with conditional-move steps: the halving sequence is identical for
  // every feature and row, so unlike std::upper_bound there is no
  // data-dependent branch to mispredict. NaN never satisfies an ordered
  // comparison, so pads are never counted — and a NaN input walks to
  // count 0 harmlessly before the final select replaces it with the
  // missing sentinel.
  // The step advances an integer offset by `half & -cond` — arithmetic on
  // a materialized comparison bit, which the compiler cannot turn back
  // into the conditional jump a pointer select tempts it into.
  const double* const cuts = search_cuts_.data();
  const int64_t len = search_len_;
  int64_t f = 0;
  for (; f + kBinLanes <= num_features_; f += kBinLanes) {
    const double* base[kBinLanes];
    double v[kBinLanes];
    int64_t pos[kBinLanes];
    for (int64_t j = 0; j < kBinLanes; ++j) {
      v[j] = row[f + j];
      base[j] = cuts + (f + j) * len;
      pos[j] = 0;
    }
    for (int64_t half = len >> 1; half > 0; half >>= 1) {
      for (int64_t j = 0; j < kBinLanes; ++j) {
        pos[j] +=
            half & -static_cast<int64_t>(base[j][pos[j] + half - 1] <= v[j]);
      }
    }
    for (int64_t j = 0; j < kBinLanes; ++j) {
      const auto count = static_cast<uint8_t>(
          pos[j] + static_cast<int64_t>(base[j][pos[j]] <= v[j]));
      out[f + j] = std::isnan(v[j]) ? kFlatMissingBin : count;
    }
  }
  for (; f < num_features_; ++f) {
    const double v = row[f];
    const double* const base = cuts + f * len;
    int64_t pos = 0;
    for (int64_t half = len >> 1; half > 0; half >>= 1) {
      pos += half & -static_cast<int64_t>(base[pos + half - 1] <= v);
    }
    const auto count = static_cast<uint8_t>(
        pos + static_cast<int64_t>(base[pos] <= v));
    out[f] = std::isnan(v) ? kFlatMissingBin : count;
  }
}

std::vector<uint8_t> FlatForest::BinMatrix(const Dataset& data) const {
  std::vector<uint8_t> bins(
      static_cast<size_t>(data.num_rows() * num_features_));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    BinRow(data.row(r), bins.data() + r * num_features_);
  }
  return bins;
}

namespace {

/// One branchless level of the walk. A finished lane (leaf-tagged ref)
/// self-loops; it reads node 0's data as a harmless dummy, so the step
/// compiles to loads + conditional selects with no unpredictable branch.
/// The bin test is exact: a missing bin (255) never satisfies
/// bin < threshold (threshold <= 254), so the learned default direction
/// decides via the bitmask.
inline int32_t StepNode(int32_t ref, const uint8_t* row_bins,
                        const int16_t* feature, const uint8_t* threshold,
                        const int32_t* left, const int32_t* right,
                        const uint64_t* default_bits) {
  // All selects are arithmetic masks, never ternaries: the walk directions
  // are data-dependent coin flips, and a compiler-emitted conditional jump
  // would cost a ~15-cycle mispredict on half the steps. Mask form keeps
  // the whole step on the load/ALU ports so the lanes actually overlap.
  const int32_t leaf_mask = ref >> 31;  // all ones when parked on a leaf
  const auto node = static_cast<size_t>(ref & ~leaf_mask);
  const uint8_t bin = row_bins[feature[node]];
  const uint32_t go_default_left =
      static_cast<uint32_t>(default_bits[node >> 6] >> (node & 63)) & 1u;
  const auto lt = static_cast<uint32_t>(bin < threshold[node]);
  const auto missing = static_cast<uint32_t>(bin == kFlatMissingBin);
  const int32_t go_left_mask =
      -static_cast<int32_t>(lt | (missing & go_default_left));
  const int32_t next =
      (left[node] & go_left_mask) | (right[node] & ~go_left_mask);
  return (ref & leaf_mask) | (next & ~leaf_mask);
}

/// Rows walked through one tree simultaneously. The per-visit cost is
/// dominated by the dependent load chain (bin -> compare -> child ref ->
/// next bin), so giving the core kLanes independent chains overlaps their
/// latencies instead of stalling on one.
constexpr int kLanes = 8;

}  // namespace

void FlatForest::Accumulate(const uint8_t* bins, int64_t rows,
                            int tree_begin, int tree_end, double* raw) const {
  const int16_t* const feature = feature_.data();
  const uint8_t* const threshold = bin_threshold_.data();
  const int32_t* const left = left_.data();
  const int32_t* const right = right_.data();
  const uint64_t* const default_bits = default_left_bits_.data();
  const double* const leaves = leaf_values_.data();
  const int64_t stride = num_features_;
  // Trees outer, rows inner: one tree's few SoA cache lines are reused
  // across the whole row block before moving on. Every lane runs exactly
  // the tree's height in steps — no per-level exit test — with finished
  // lanes parked on their leaf ref by StepNode.
  for (int t = tree_begin; t < tree_end; ++t) {
    const int32_t root = roots_[static_cast<size_t>(t)];
    if (root < 0) {
      const double value = leaves[~root];
      for (int64_t r = 0; r < rows; ++r) raw[r] += value;
      continue;
    }
    const int32_t depth = tree_depths_[static_cast<size_t>(t)];
    int64_t r = 0;
    for (; r + kLanes <= rows; r += kLanes) {
      const uint8_t* row_bins[kLanes];
      int32_t ref[kLanes];
      for (int l = 0; l < kLanes; ++l) {
        row_bins[l] = bins + (r + l) * stride;
        ref[l] = root;
      }
      for (int32_t d = 0; d < depth; ++d) {
        for (int l = 0; l < kLanes; ++l) {
          ref[l] = StepNode(ref[l], row_bins[l], feature, threshold, left,
                            right, default_bits);
        }
      }
      // Identical summation order to the reference walker: row r gets its
      // trees in ascending order, one leaf value per tree.
      for (int l = 0; l < kLanes; ++l) raw[r + l] += leaves[~ref[l]];
    }
    for (; r < rows; ++r) {
      const uint8_t* const row_bins = bins + r * stride;
      int32_t ref = root;
      do {
        ref = StepNode(ref, row_bins, feature, threshold, left, right,
                       default_bits);
      } while (ref >= 0);
      raw[r] += leaves[~ref];
    }
  }
}

namespace {

/// One branchless level of the panel walk (the packed-table twin of
/// StepNode): one metadata load, one panel byte, one indexed child load —
/// no compare-and-select on the child (the interleaving puts the taken
/// child at 2 * node + go_left) and no leaf-tag masking (a leaf
/// pseudo-node has metadata 0, so go_left is always 0 and its go-right
/// slot points back at itself). `panel_bins` points at the lane's row
/// inside the feature-major panel, so every lane shares the same three
/// base pointers — with the lane index folded into the displacement the
/// whole 8-lane step fits the register file, which is what lets the
/// independent load chains actually overlap.
inline int32_t StepPacked(int32_t node, const uint8_t* panel_bins,
                          const uint32_t* meta, const int32_t* children) {
  const uint32_t m = meta[static_cast<size_t>(node)];
  const uint8_t bin = panel_bins[(m >> 9) << kBlockShift];
  const auto bin_threshold = static_cast<uint8_t>(m >> 1);
  const auto lt = static_cast<uint32_t>(bin < bin_threshold);
  const auto missing = static_cast<uint32_t>(bin == kFlatMissingBin);
  const uint32_t go_left = lt | (missing & m & 1u);
  return children[(static_cast<size_t>(node) << 1) + go_left];
}

}  // namespace

void FlatForest::AccumulateBlock(const uint8_t* bins_cm, int64_t rows,
                                 double* raw) const {
  const uint32_t* const meta = node_meta_.data();
  const int32_t* const children = children_.data();
  const double* const values = node_value_.data();
  const int trees = num_trees();
  for (int t = 0; t < trees; ++t) {
    const int32_t root = kernel_roots_[static_cast<size_t>(t)];
    const int32_t depth = tree_depths_[static_cast<size_t>(t)];
    int64_t r = 0;
    for (; r + kLanes <= rows; r += kLanes) {
      int32_t node[kLanes];
      for (int l = 0; l < kLanes; ++l) node[l] = root;
      // Fixed trip count (the tree's height) with finished lanes parked on
      // their leaf pseudo-node: no per-level exit test to mispredict.
      for (int32_t d = 0; d < depth; ++d) {
        for (int l = 0; l < kLanes; ++l) {
          node[l] = StepPacked(node[l], bins_cm + r + l, meta, children);
        }
      }
      // Identical summation order to the reference walker: row r gets its
      // trees in ascending order, one leaf value per tree.
      for (int l = 0; l < kLanes; ++l) raw[r + l] += values[node[l]];
    }
    for (; r < rows; ++r) {
      int32_t node = root;
      for (int32_t d = 0; d < depth; ++d) {
        node = StepPacked(node, bins_cm + r, meta, children);
      }
      raw[r] += values[node];
    }
  }
}

void FlatForest::PredictRaw(const Dataset& data, double base_score,
                            double* out, ThreadPool* pool) const {
  const int64_t rows = data.num_rows();
  const int64_t blocks = (rows + kFlatPredictBlock - 1) / kFlatPredictBlock;
  static Counter* const blocks_counter =
      MetricsRegistry::Global().GetCounter("gbt.predict.flat_blocks");
  blocks_counter->Increment(blocks);
  ThreadPool& workers = pool != nullptr ? *pool : DefaultPool();
  // Blocks write disjoint output slots and every row sums its trees in
  // ascending order, so the result is bit-identical to the sequential
  // reference walker for any worker count.
  workers.ParallelFor(blocks, [&](int64_t block) {
    const int64_t begin = block * kFlatPredictBlock;
    const int64_t n = std::min(kFlatPredictBlock, rows - begin);
    std::vector<uint8_t> block_bins(static_cast<size_t>(n * num_features_));
    for (int64_t r = 0; r < n; ++r) {
      BinRow(data.row(begin + r), block_bins.data() + r * num_features_);
    }
    // Transpose into the feature-major panel the walk kernel addresses by
    // (feature << kBlockShift) + row. ~F * 64 bytes, L1-resident.
    std::vector<uint8_t> panel(
        static_cast<size_t>(num_features_) * kFlatPredictBlock);
    for (int64_t r = 0; r < n; ++r) {
      const uint8_t* const row_bins =
          block_bins.data() + r * num_features_;
      for (int64_t f = 0; f < num_features_; ++f) {
        panel[static_cast<size_t>((f << kBlockShift) + r)] = row_bins[f];
      }
    }
    double acc[kFlatPredictBlock];
    for (int64_t r = 0; r < n; ++r) acc[r] = base_score;
    AccumulateBlock(panel.data(), n, acc);
    std::copy(acc, acc + n, out + begin);
  });
}

Status FlatForest::Validate() const {
  const auto num_nodes = static_cast<int64_t>(feature_.size());
  const auto num_leaves = static_cast<int64_t>(leaf_values_.size());
  const auto num_trees = static_cast<int64_t>(roots_.size());
  if (num_features_ < 0 || num_features_ > INT16_MAX) {
    return Status::DataLoss("flat forest: feature space width out of range");
  }
  if (bin_threshold_.size() != feature_.size() ||
      left_.size() != feature_.size() || right_.size() != feature_.size() ||
      left_fraction_.size() != feature_.size() ||
      right_fraction_.size() != feature_.size() ||
      default_left_bits_.size() !=
          static_cast<size_t>((num_nodes + 63) / 64)) {
    return Status::DataLoss("flat forest: node array sizes disagree");
  }
  if (cut_offsets_.size() != static_cast<size_t>(num_features_) + 1 ||
      cut_offsets_.front() != 0 ||
      cut_offsets_.back() != static_cast<int32_t>(cut_values_.size())) {
    return Status::DataLoss("flat forest: cut offsets malformed");
  }
  for (int64_t f = 0; f < num_features_; ++f) {
    const int32_t lo = cut_offsets_[static_cast<size_t>(f)];
    const int32_t hi = cut_offsets_[static_cast<size_t>(f) + 1];
    if (lo > hi || hi - lo > kMaxCutsPerFeature) {
      return Status::DataLoss("flat forest: cut count out of range");
    }
    for (int32_t c = lo; c < hi; ++c) {
      if (!std::isfinite(cut_values_[static_cast<size_t>(c)])) {
        return Status::DataLoss("flat forest: non-finite cut");
      }
      if (c > lo && !(cut_values_[static_cast<size_t>(c - 1)] <
                      cut_values_[static_cast<size_t>(c)])) {
        return Status::DataLoss("flat forest: cuts not strictly increasing");
      }
    }
  }
  if (tree_node_offsets_.size() != static_cast<size_t>(num_trees) + 1 ||
      tree_leaf_offsets_.size() != static_cast<size_t>(num_trees) + 1 ||
      tree_node_offsets_.front() != 0 || tree_leaf_offsets_.front() != 0 ||
      tree_node_offsets_.back() != num_nodes ||
      tree_leaf_offsets_.back() != num_leaves) {
    return Status::DataLoss("flat forest: tree offsets malformed");
  }
  for (int64_t t = 0; t < num_trees; ++t) {
    const int32_t node_begin = tree_node_offsets_[static_cast<size_t>(t)];
    const int32_t node_end = tree_node_offsets_[static_cast<size_t>(t) + 1];
    const int32_t leaf_begin = tree_leaf_offsets_[static_cast<size_t>(t)];
    const int32_t leaf_end = tree_leaf_offsets_[static_cast<size_t>(t) + 1];
    if (node_begin > node_end || leaf_begin > leaf_end) {
      return Status::DataLoss("flat forest: tree offsets not monotone");
    }
    auto check_ref = [&](int32_t ref, int32_t after) -> Status {
      if (ref >= 0) {
        if (ref <= after || ref >= node_end) {
          return Status::DataLoss(
              "flat forest: child link out of range at node " +
              std::to_string(after));
        }
        return Status::Ok();
      }
      const int32_t leaf = ~ref;
      if (leaf < leaf_begin || leaf >= leaf_end) {
        return Status::DataLoss(
            "flat forest: leaf link out of range at node " +
            std::to_string(after));
      }
      return Status::Ok();
    };
    const int32_t root = roots_[static_cast<size_t>(t)];
    // The root "parent" sits just before the tree's node range, so the
    // strictly-after check admits exactly node_begin (preorder root).
    MYSAWH_RETURN_NOT_OK(check_ref(root, node_begin - 1));
    if (root >= 0 && root != node_begin) {
      return Status::DataLoss("flat forest: root is not the first node");
    }
    if (root < 0 && node_begin != node_end) {
      return Status::DataLoss("flat forest: leaf root with internal nodes");
    }
    for (int32_t i = node_begin; i < node_end; ++i) {
      const auto node = static_cast<size_t>(i);
      const int16_t f = feature_[node];
      if (f < 0 || f >= num_features_) {
        return Status::DataLoss(
            "flat forest: split feature out of range at node " +
            std::to_string(i));
      }
      const int32_t num_cuts = cut_offsets_[static_cast<size_t>(f) + 1] -
                               cut_offsets_[static_cast<size_t>(f)];
      const uint8_t bt = bin_threshold_[node];
      if (bt < 1 || static_cast<int32_t>(bt) > num_cuts) {
        return Status::DataLoss(
            "flat forest: bin threshold out of range at node " +
            std::to_string(i));
      }
      MYSAWH_RETURN_NOT_OK(check_ref(left_[node], i));
      MYSAWH_RETURN_NOT_OK(check_ref(right_[node], i));
      const double lf = left_fraction_[node];
      const double rf = right_fraction_[node];
      if (!std::isfinite(lf) || !std::isfinite(rf) || lf < 0 || rf < 0 ||
          lf + rf > 1.0 + 1e-6) {
        // The flat form of "children cover must not exceed the parent's".
        return Status::DataLoss(
            "flat forest: cover fractions out of range at node " +
            std::to_string(i));
      }
    }
  }
  // The serialized depth sizes the TreeSHAP path workspace; recompute it
  // from the links so a corrupted value cannot undersize the recursion.
  std::vector<int32_t> height(feature_.size(), 0);
  auto ref_height = [&](int32_t ref) {
    return ref < 0 ? 0 : height[static_cast<size_t>(ref)];
  };
  int computed_depth = 0;
  for (int64_t i = num_nodes - 1; i >= 0; --i) {
    height[static_cast<size_t>(i)] =
        1 + std::max(ref_height(left_[static_cast<size_t>(i)]),
                     ref_height(right_[static_cast<size_t>(i)]));
  }
  for (const int32_t root : roots_) {
    computed_depth = std::max(computed_depth, ref_height(root));
  }
  if (max_depth_ != computed_depth) {
    return Status::DataLoss("flat forest: stored depth " +
                            std::to_string(max_depth_) + " != computed " +
                            std::to_string(computed_depth));
  }
  return Status::Ok();
}

std::string FlatForest::Serialize() const {
  std::ostringstream os;
  os << "mysawh-flat-forest v1\n";
  os << "num_features " << num_features_ << "\n";
  os << "max_depth " << max_depth_ << "\n";
  os << "num_trees " << num_trees() << "\n";
  os << "num_nodes " << num_nodes() << "\n";
  os << "num_leaves " << num_leaves() << "\n";
  for (int64_t f = 0; f < num_features_; ++f) {
    const int32_t lo = cut_offsets_[static_cast<size_t>(f)];
    const int32_t hi = cut_offsets_[static_cast<size_t>(f) + 1];
    os << "cuts " << (hi - lo);
    for (int32_t c = lo; c < hi; ++c) {
      os << " " << EncodeDouble(cut_values_[static_cast<size_t>(c)]);
    }
    os << "\n";
  }
  for (int t = 0; t < num_trees(); ++t) {
    os << "tree " << roots_[static_cast<size_t>(t)] << " "
       << tree_node_offsets_[static_cast<size_t>(t) + 1] << " "
       << tree_leaf_offsets_[static_cast<size_t>(t) + 1] << "\n";
  }
  for (int64_t i = 0; i < num_nodes(); ++i) {
    const auto node = static_cast<size_t>(i);
    os << "node " << feature_[node] << " "
       << static_cast<int>(bin_threshold_[node]) << " " << left_[node] << " "
       << right_[node] << " " << (default_left(i) ? 1 : 0) << " "
       << EncodeDouble(left_fraction_[node]) << " "
       << EncodeDouble(right_fraction_[node]) << "\n";
  }
  for (int64_t l = 0; l < num_leaves(); ++l) {
    os << "leaf " << EncodeDouble(leaf_values_[static_cast<size_t>(l)])
       << "\n";
  }
  return os.str();
}

Result<FlatForest> FlatForest::Deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  auto next_line = [&]() -> Result<std::string> {
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("flat forest text truncated");
    }
    return line;
  };
  auto header_int = [&](const std::string& key) -> Result<int64_t> {
    MYSAWH_ASSIGN_OR_RETURN(std::string l, next_line());
    const auto parts = Split(l, ' ');
    if (parts.size() != 2 || parts[0] != key) {
      return Status::InvalidArgument("flat forest: bad " + key + " line");
    }
    return ParseInt64(parts[1]);
  };
  MYSAWH_ASSIGN_OR_RETURN(std::string header, next_line());
  if (header != "mysawh-flat-forest v1") {
    return Status::InvalidArgument("bad flat forest header: " + header);
  }
  FlatForest flat;
  MYSAWH_ASSIGN_OR_RETURN(flat.num_features_, header_int("num_features"));
  MYSAWH_ASSIGN_OR_RETURN(int64_t max_depth, header_int("max_depth"));
  MYSAWH_ASSIGN_OR_RETURN(int64_t num_trees, header_int("num_trees"));
  MYSAWH_ASSIGN_OR_RETURN(int64_t num_nodes, header_int("num_nodes"));
  MYSAWH_ASSIGN_OR_RETURN(int64_t num_leaves, header_int("num_leaves"));
  if (flat.num_features_ < 0 || flat.num_features_ > INT16_MAX ||
      max_depth < 0 || max_depth > INT32_MAX || num_trees < 0 ||
      num_nodes < 0 || num_nodes > INT32_MAX || num_leaves < 0 ||
      num_leaves > INT32_MAX) {
    return Status::DataLoss("flat forest: header counts out of range");
  }
  flat.max_depth_ = static_cast<int>(max_depth);
  // Reserves are bounded: a corrupted count must fail on the missing lines
  // below, not attempt a huge allocation here.
  const auto bounded = [](int64_t n) {
    return static_cast<size_t>(std::min<int64_t>(n, 65536));
  };
  flat.cut_offsets_.reserve(bounded(flat.num_features_ + 1));
  flat.cut_offsets_.push_back(0);
  for (int64_t f = 0; f < flat.num_features_; ++f) {
    MYSAWH_ASSIGN_OR_RETURN(std::string l, next_line());
    const auto parts = Split(l, ' ');
    if (parts.size() < 2 || parts[0] != "cuts") {
      return Status::InvalidArgument("flat forest: bad cuts line: " + l);
    }
    MYSAWH_ASSIGN_OR_RETURN(int64_t count, ParseInt64(parts[1]));
    if (count < 0 || count > kMaxCutsPerFeature ||
        static_cast<size_t>(count) + 2 != parts.size()) {
      return Status::DataLoss("flat forest: cut count mismatch: " + l);
    }
    for (int64_t c = 0; c < count; ++c) {
      MYSAWH_ASSIGN_OR_RETURN(double cut,
                              DecodeDouble(parts[static_cast<size_t>(c) + 2]));
      flat.cut_values_.push_back(cut);
    }
    flat.cut_offsets_.push_back(static_cast<int32_t>(flat.cut_values_.size()));
  }
  flat.tree_node_offsets_.reserve(bounded(num_trees + 1));
  flat.tree_leaf_offsets_.reserve(bounded(num_trees + 1));
  flat.tree_node_offsets_.push_back(0);
  flat.tree_leaf_offsets_.push_back(0);
  for (int64_t t = 0; t < num_trees; ++t) {
    MYSAWH_ASSIGN_OR_RETURN(std::string l, next_line());
    const auto parts = Split(l, ' ');
    if (parts.size() != 4 || parts[0] != "tree") {
      return Status::InvalidArgument("flat forest: bad tree line: " + l);
    }
    MYSAWH_ASSIGN_OR_RETURN(int64_t root, ParseInt64(parts[1]));
    MYSAWH_ASSIGN_OR_RETURN(int64_t node_end, ParseInt64(parts[2]));
    MYSAWH_ASSIGN_OR_RETURN(int64_t leaf_end, ParseInt64(parts[3]));
    if (root < INT32_MIN || root > INT32_MAX || node_end < 0 ||
        node_end > num_nodes || leaf_end < 0 || leaf_end > num_leaves) {
      return Status::DataLoss("flat forest: tree offsets out of range: " + l);
    }
    flat.roots_.push_back(static_cast<int32_t>(root));
    flat.tree_node_offsets_.push_back(static_cast<int32_t>(node_end));
    flat.tree_leaf_offsets_.push_back(static_cast<int32_t>(leaf_end));
  }
  flat.feature_.reserve(bounded(num_nodes));
  flat.bin_threshold_.reserve(bounded(num_nodes));
  flat.left_.reserve(bounded(num_nodes));
  flat.right_.reserve(bounded(num_nodes));
  flat.left_fraction_.reserve(bounded(num_nodes));
  flat.right_fraction_.reserve(bounded(num_nodes));
  flat.default_left_bits_.assign(
      static_cast<size_t>((num_nodes + 63) / 64), 0);
  for (int64_t i = 0; i < num_nodes; ++i) {
    MYSAWH_ASSIGN_OR_RETURN(std::string l, next_line());
    const auto parts = Split(l, ' ');
    if (parts.size() != 8 || parts[0] != "node") {
      return Status::InvalidArgument("flat forest: bad node line: " + l);
    }
    MYSAWH_ASSIGN_OR_RETURN(int64_t feature, ParseInt64(parts[1]));
    MYSAWH_ASSIGN_OR_RETURN(int64_t threshold, ParseInt64(parts[2]));
    MYSAWH_ASSIGN_OR_RETURN(int64_t left, ParseInt64(parts[3]));
    MYSAWH_ASSIGN_OR_RETURN(int64_t right, ParseInt64(parts[4]));
    MYSAWH_ASSIGN_OR_RETURN(int64_t default_left, ParseInt64(parts[5]));
    if (feature < INT16_MIN || feature > INT16_MAX || threshold < 0 ||
        threshold > 255 || left < INT32_MIN || left > INT32_MAX ||
        right < INT32_MIN || right > INT32_MAX ||
        (default_left != 0 && default_left != 1)) {
      return Status::DataLoss("flat forest: node fields out of range: " + l);
    }
    flat.feature_.push_back(static_cast<int16_t>(feature));
    flat.bin_threshold_.push_back(static_cast<uint8_t>(threshold));
    flat.left_.push_back(static_cast<int32_t>(left));
    flat.right_.push_back(static_cast<int32_t>(right));
    if (default_left == 1) {
      flat.default_left_bits_[static_cast<size_t>(i >> 6)] |=
          uint64_t{1} << (i & 63);
    }
    MYSAWH_ASSIGN_OR_RETURN(double lf, DecodeDouble(parts[6]));
    MYSAWH_ASSIGN_OR_RETURN(double rf, DecodeDouble(parts[7]));
    flat.left_fraction_.push_back(lf);
    flat.right_fraction_.push_back(rf);
  }
  flat.leaf_values_.reserve(bounded(num_leaves));
  for (int64_t l_index = 0; l_index < num_leaves; ++l_index) {
    MYSAWH_ASSIGN_OR_RETURN(std::string l, next_line());
    const auto parts = Split(l, ' ');
    if (parts.size() != 2 || parts[0] != "leaf") {
      return Status::InvalidArgument("flat forest: bad leaf line: " + l);
    }
    MYSAWH_ASSIGN_OR_RETURN(double value, DecodeDouble(parts[1]));
    flat.leaf_values_.push_back(value);
  }
  // Every load path validates before the bounds-check-free kernels may run.
  MYSAWH_RETURN_NOT_OK(flat.Validate());
  // Per-tree walk depths are derived, not trusted from the wire.
  flat.BuildDerivedState();
  return flat;
}

Status FlatForest::SaveToFile(const std::string& path) const {
  return WriteFileChecksummed(path, Serialize(), "flat_forest_save");
}

Result<FlatForest> FlatForest::LoadFromFile(const std::string& path) {
  MYSAWH_ASSIGN_OR_RETURN(std::string payload, ReadFileChecksummed(path));
  return Deserialize(payload);
}

}  // namespace mysawh::gbt
