#ifndef MYSAWH_GBT_GBT_MODEL_H_
#define MYSAWH_GBT_GBT_MODEL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "gbt/flat_forest.h"
#include "gbt/objective.h"
#include "gbt/params.h"
#include "gbt/tree.h"
#include "model/model.h"
#include "util/status.h"

namespace mysawh::gbt {

/// Per-round metrics captured during training.
struct TrainingLog {
  struct Round {
    int round = 0;
    double train_metric = 0.0;
    double valid_metric = 0.0;  ///< NaN when no validation set was given.
  };
  std::vector<Round> rounds;
  std::string metric_name;
};
// The hist-mode node counters that used to live here are now registry
// counters `gbt.train.hist_nodes_direct` / `gbt.train.hist_nodes_subtracted`
// (see util/metrics.h and docs/observability.md).

/// A trained gradient-boosted tree ensemble (XGBoost-style second-order
/// boosting, built from scratch). Supports regression (squared error,
/// pseudo-Huber) and binary classification (logistic), missing values via
/// learned default directions, L1/L2/gamma regularization, row and column
/// subsampling, histogram or exact split finding, and early stopping.
///
/// Implements the polymorphic `model::Model` interface, registered in the
/// serialization registry under kind "gbt".
class GbtModel : public model::Model {
 public:
  GbtModel() = default;

  /// Trains an ensemble on `train`. If `validation` is non-null its metric
  /// is tracked per round and early stopping (if enabled in `params`)
  /// truncates the ensemble at the best round. `log`, when non-null,
  /// receives per-round metrics.
  static Result<GbtModel> Train(const Dataset& train, const GbtParams& params,
                                const Dataset* validation = nullptr,
                                TrainingLog* log = nullptr);

  /// Prediction (transformed scale: value for regression, P(y=1) for
  /// logistic) for one row of num_features() doubles; NaN = missing.
  double PredictRow(const double* row) const;
  /// Raw margin score for one row.
  double PredictRowRaw(const double* row) const;

  /// Batch prediction; fails when the dataset's width differs. Runs the
  /// compiled flat-forest kernel when available (bit-identical to the
  /// reference walker), the reference walker otherwise.
  Result<std::vector<double>> Predict(const Dataset& data) const;
  /// Batch raw margins (same dispatch as Predict).
  Result<std::vector<double>> PredictRaw(const Dataset& data) const;

  /// Reference batch paths: the uncompiled per-row pointer walker. Always
  /// available; the benchmark twins and equivalence tests measure the flat
  /// kernels against these.
  Result<std::vector<double>> PredictReference(const Dataset& data) const;
  Result<std::vector<double>> PredictRawReference(const Dataset& data) const;

  // model::Model interface.
  std::string Kind() const override { return "gbt"; }
  bool IsClassifier() const override {
    return objective_type_ == ObjectiveType::kLogistic;
  }
  int64_t NumFeatures() const override { return num_features(); }
  const std::vector<std::string>& FeatureNames() const override {
    return feature_names_;
  }
  double Predict(const double* row) const override { return PredictRow(row); }
  Result<std::vector<double>> PredictBatch(const Dataset& data) const override {
    return Predict(data);
  }

  /// Staged batch prediction: transformed predictions after every `stride`
  /// trees (1, stride, 2*stride, ..., and always the full ensemble).
  /// Useful for learning curves and choosing the ensemble size post hoc.
  Result<std::vector<std::vector<double>>> PredictStaged(const Dataset& data,
                                                         int stride) const;

  /// The compiled flat forest, or nullptr when the ensemble's shape cannot
  /// be compiled (see FlatForest::Compile) and every batch path falls back
  /// to the reference walker. Train and Deserialize compile automatically.
  const FlatForest* flat_forest() const { return flat_.get(); }

  /// (Re)compiles the flat forest from the current trees. On a
  /// FailedPrecondition shape the model keeps flat_forest() == nullptr and
  /// counts `gbt.predict.flat_compile_fallbacks`.
  void CompileFlat();

  /// FNV-1a fingerprint of Serialize(), computed by CompileFlat (i.e. by
  /// Train and Deserialize). Names the exact model in every audit-log
  /// record (core/audit_log.h); 0 only for a default-constructed model.
  uint64_t fingerprint() const { return fingerprint_; }

  const std::vector<RegressionTree>& trees() const { return trees_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  int64_t num_features() const {
    return static_cast<int64_t>(feature_names_.size());
  }
  ObjectiveType objective_type() const { return objective_type_; }
  double base_score() const { return base_score_; }
  /// Round with the best validation metric (last round when early stopping
  /// was off).
  int best_iteration() const { return best_iteration_; }

  /// Total split gain attributed to each feature (the "gain" importance
  /// XGBoost reports). Features that never split are omitted.
  std::map<std::string, double> GainImportance() const;
  /// Number of times each feature is used in a split.
  std::map<std::string, int64_t> SplitCountImportance() const;
  /// Total hessian mass (cover) routed through each feature's splits.
  std::map<std::string, double> CoverImportance() const;

  /// Serializes the full model (objective, base score, feature names,
  /// trees) to a line-oriented text format that round-trips exactly.
  /// File round-trips go through the base layer's `model::Model::SaveToFile`
  /// / `LoadFromFile`, which add and dispatch on the `kind:` header.
  std::string Serialize() const override;
  /// Parses a payload produced by Serialize().
  static Result<GbtModel> Deserialize(const std::string& text);

 private:
  friend class Trainer;

  std::vector<RegressionTree> trees_;
  std::vector<std::string> feature_names_;
  ObjectiveType objective_type_ = ObjectiveType::kSquaredError;
  double base_score_ = 0.0;
  int best_iteration_ = -1;
  uint64_t fingerprint_ = 0;
  // Compiled inference form; shared so copies of a model reuse one block.
  // Not serialized: Serialize() stays byte-stable across this optimization
  // and Deserialize recompiles.
  std::shared_ptr<const FlatForest> flat_;
};

}  // namespace mysawh::gbt

#endif  // MYSAWH_GBT_GBT_MODEL_H_
