#ifndef MYSAWH_GBT_OBJECTIVE_H_
#define MYSAWH_GBT_OBJECTIVE_H_

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh::gbt {

/// First and second derivative of the loss at one sample.
struct GradientPair {
  double grad = 0.0;
  double hess = 0.0;
};

/// Loss functions supported by the booster.
enum class ObjectiveType {
  kSquaredError,   ///< reg:squarederror — regression on raw scores.
  kLogistic,       ///< binary:logistic — classification; outputs P(y = 1).
  kPseudoHuber,    ///< robust regression (delta = 1).
  kPoisson,        ///< count:poisson — count regression with a log link;
                   ///< outputs the expected count (e.g. SPPB as a count).
};

/// Parses "reg:squarederror" / "binary:logistic" / "reg:pseudohuber" /
/// "count:poisson".
Result<ObjectiveType> ParseObjectiveType(const std::string& name);
/// Inverse of ParseObjectiveType.
const char* ObjectiveTypeName(ObjectiveType type);

/// A twice-differentiable training loss. Gradients are with respect to the
/// raw (margin) score; `Transform` maps a raw score to the model output
/// (identity for regression, sigmoid for logistic).
class Objective {
 public:
  virtual ~Objective() = default;

  /// Loss derivatives at one sample.
  virtual GradientPair ComputeGradient(double label, double raw) const = 0;

  /// Maps a raw margin score to the prediction scale.
  virtual double Transform(double raw) const { return raw; }

  /// Maps a prediction-scale value back to a raw score (used to derive the
  /// base score from the label mean).
  virtual double InverseTransform(double value) const { return value; }

  /// Raw base score minimizing the loss over `labels`.
  virtual double InitialRawPrediction(const std::vector<double>& labels) const;

  /// Validates labels (e.g. logistic requires labels in {0, 1}).
  virtual Status ValidateLabels(const std::vector<double>& labels) const;

  /// Default evaluation metric on the prediction scale ("rmse", "logloss").
  virtual const char* DefaultMetricName() const { return "rmse"; }
  /// Evaluates the default metric; `predictions` are transformed outputs.
  virtual double EvalDefaultMetric(const std::vector<double>& labels,
                                   const std::vector<double>& predictions) const;

  virtual ObjectiveType type() const = 0;
};

/// Factory for the built-in objectives.
std::unique_ptr<Objective> MakeObjective(ObjectiveType type);

}  // namespace mysawh::gbt

#endif  // MYSAWH_GBT_OBJECTIVE_H_
