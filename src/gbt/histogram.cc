#include "gbt/histogram.h"

#include <utility>

namespace mysawh::gbt {

namespace {

/// Fixed chunk size of the deterministic reduction. Independent of the
/// thread count by design: the same chunk boundaries (and therefore the
/// same floating-point association) are used whether chunks run inline or
/// across workers.
constexpr int64_t kHistChunkRows = 2048;

/// Accumulates rows [begin, end) of `rows` into `out` — the single
/// cache-friendly pass: each row's `cells` are read contiguously and feed
/// all selected features. BinT is the cell width of the binned matrix and
/// MissingV its missing sentinel; per-feature slot base pointers are
/// hoisted so the inner loop is load/add/store per feature.
template <typename BinT, BinT MissingV>
void AccumulateCells(const HistogramLayout& layout, const BinT* cells,
                     int64_t stride, const std::vector<int64_t>& rows,
                     const std::vector<GradientPair>& gpairs, int64_t begin,
                     int64_t end, NodeHistogram* out) {
  const int* feats = layout.features().data();
  const int nf = layout.num_features();
  HistEntry* slots = out->mutable_slots();
  HistEntry* miss = out->mutable_miss();
  std::vector<HistEntry*> bases(static_cast<size_t>(nf));
  for (int fi = 0; fi < nf; ++fi) {
    bases[static_cast<size_t>(fi)] = slots + layout.offset(fi);
  }
  HistEntry** base = bases.data();
  for (int64_t i = begin; i < end; ++i) {
    const int64_t r = rows[static_cast<size_t>(i)];
    const BinT* row_bins = cells + r * stride;
    const double g = gpairs[static_cast<size_t>(r)].grad;
    const double h = gpairs[static_cast<size_t>(r)].hess;
    for (int fi = 0; fi < nf; ++fi) {
      const BinT b = row_bins[feats[fi]];
      HistEntry& e =
          b == MissingV ? miss[fi] : base[fi][static_cast<int64_t>(b)];
      e.sum_g += g;
      e.sum_h += h;
      ++e.count;
    }
  }
}

/// Width dispatch for AccumulateCells.
void AccumulateRange(const HistogramLayout& layout, const BinnedMatrix& binned,
                     const std::vector<int64_t>& rows,
                     const std::vector<GradientPair>& gpairs, int64_t begin,
                     int64_t end, NodeHistogram* out) {
  if (binned.narrow()) {
    AccumulateCells<uint8_t, kMissingBin8>(layout, binned.data8(),
                                           binned.num_features(), rows,
                                           gpairs, begin, end, out);
  } else {
    AccumulateCells<uint16_t, kMissingBin>(layout, binned.data16(),
                                           binned.num_features(), rows,
                                           gpairs, begin, end, out);
  }
}

}  // namespace

HistogramLayout::HistogramLayout(const FeatureBins& bins,
                                 std::vector<int> features)
    : features_(std::move(features)) {
  offsets_.reserve(features_.size() + 1);
  offsets_.push_back(0);
  for (int f : features_) {
    offsets_.push_back(offsets_.back() + bins.num_bins(f));
  }
}

NodeHistogram NodeHistogram::Subtract(NodeHistogram parent,
                                      const NodeHistogram& child) {
  HistEntry* ps = parent.mutable_slots();
  const HistEntry* cs = child.slots_.data();
  for (int64_t i = 0; i < parent.num_slots(); ++i) {
    ps[i].sum_g -= cs[i].sum_g;
    ps[i].sum_h -= cs[i].sum_h;
    ps[i].count -= cs[i].count;
  }
  HistEntry* pm = parent.mutable_miss();
  const HistEntry* cm = child.miss_.data();
  for (int64_t i = 0; i < parent.num_miss(); ++i) {
    pm[i].sum_g -= cm[i].sum_g;
    pm[i].sum_h -= cm[i].sum_h;
    pm[i].count -= cm[i].count;
  }
  return parent;
}

NodeHistogram HistogramBuilder::Build(
    const HistogramLayout& layout, const std::vector<int64_t>& rows,
    const std::vector<GradientPair>& gpairs) const {
  NodeHistogram out(layout);
  const auto n = static_cast<int64_t>(rows.size());
  if (n == 0) return out;
  if (n <= kHistChunkRows) {
    AccumulateRange(layout, *binned_, rows, gpairs, 0, n, &out);
    return out;
  }
  // Fixed-boundary chunk partials, merged in ascending chunk order. The
  // association of floating-point adds depends only on n, never on the
  // worker count, so models are bit-identical for any num_threads.
  const int64_t num_chunks = (n + kHistChunkRows - 1) / kHistChunkRows;
  std::vector<NodeHistogram> partials(static_cast<size_t>(num_chunks));
  auto accumulate_chunk = [&](int64_t chunk, int64_t begin, int64_t end) {
    NodeHistogram& partial = partials[static_cast<size_t>(chunk)];
    partial = NodeHistogram(layout);
    AccumulateRange(layout, *binned_, rows, gpairs, begin, end, &partial);
  };
  auto merge_slot = [&](HistEntry* dst, int64_t slot, bool missing) {
    for (const NodeHistogram& partial : partials) {
      const HistEntry& src = missing ? partial.miss_data()[slot]
                                     : partial.slots_data()[slot];
      dst->sum_g += src.sum_g;
      dst->sum_h += src.sum_h;
      dst->count += src.count;
    }
  };
  const int64_t num_slots = out.num_slots();
  const int64_t num_miss = out.num_miss();
  auto merge_all = [&](int64_t i) {
    if (i < num_slots) {
      merge_slot(out.mutable_slots() + i, i, /*missing=*/false);
    } else {
      merge_slot(out.mutable_miss() + (i - num_slots), i - num_slots,
                 /*missing=*/true);
    }
  };
  if (pool_ == nullptr) {
    int64_t chunk = 0;
    for (int64_t begin = 0; begin < n; begin += kHistChunkRows, ++chunk) {
      accumulate_chunk(chunk, begin, std::min(begin + kHistChunkRows, n));
    }
    for (int64_t i = 0; i < num_slots + num_miss; ++i) merge_all(i);
  } else {
    pool_->ParallelForChunks(n, kHistChunkRows, accumulate_chunk);
    pool_->ParallelFor(num_slots + num_miss, merge_all);
  }
  return out;
}

}  // namespace mysawh::gbt
