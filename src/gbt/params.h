#ifndef MYSAWH_GBT_PARAMS_H_
#define MYSAWH_GBT_PARAMS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "gbt/objective.h"
#include "util/status.h"

namespace mysawh::gbt {

/// Split-finding algorithm.
enum class TreeMethod {
  kExact,  ///< Sort-and-scan over raw feature values at every node.
  kHist,   ///< Quantile-binned histograms (XGBoost "hist"); faster, same
           ///< accuracy at the bin resolution.
};

/// Booster hyperparameters; defaults follow XGBoost's conventions and are
/// tuned mildly for small tabular clinical datasets.
struct GbtParams {
  ObjectiveType objective = ObjectiveType::kSquaredError;
  TreeMethod tree_method = TreeMethod::kHist;

  int num_trees = 200;          ///< Boosting rounds.
  int max_depth = 4;            ///< Maximum tree depth (>= 1).
  double learning_rate = 0.1;   ///< Shrinkage eta in (0, 1].
  double min_child_weight = 1.0;///< Min sum of hessians in a child.
  int min_samples_leaf = 1;     ///< Min rows in a leaf.
  double reg_lambda = 1.0;      ///< L2 regularization on leaf weights.
  double reg_alpha = 0.0;       ///< L1 regularization on leaf weights.
  double gamma = 0.0;           ///< Min loss reduction to make a split.
  double subsample = 1.0;       ///< Row subsampling per tree, (0, 1].
  double colsample_bytree = 1.0;///< Feature subsampling per tree, (0, 1].
  int max_bins = 64;            ///< Histogram bins per feature (hist only).
  /// Gradient weight multiplier for positive (label == 1) samples; > 1
  /// counteracts class imbalance in binary objectives (XGBoost's
  /// scale_pos_weight). Ignored for regression labels not equal to 1.
  double scale_pos_weight = 1.0;
  uint64_t seed = 7;            ///< RNG seed for subsampling.
  int num_threads = 1;          ///< Worker threads for split finding.

  /// Stop when the validation metric has not improved for this many rounds
  /// (0 disables early stopping; requires a validation set).
  int early_stopping_rounds = 0;

  /// Raw base score; NaN means "derive from the label mean".
  double base_score = std::numeric_limits<double>::quiet_NaN();

  /// Per-feature monotonicity constraints: +1 forces the prediction to be
  /// non-decreasing in the feature, -1 non-increasing, 0 unconstrained.
  /// Empty means no constraints; otherwise the length must equal the
  /// training set's feature count. Useful in clinical models where domain
  /// knowledge dictates the direction (e.g. "more daily steps can never
  /// predict a worse SPPB").
  std::vector<int> monotone_constraints;

  /// Checks ranges; returns InvalidArgument describing the first violation.
  Status Validate() const;
};

}  // namespace mysawh::gbt

#endif  // MYSAWH_GBT_PARAMS_H_
