#ifndef MYSAWH_GBT_FLAT_FOREST_H_
#define MYSAWH_GBT_FLAT_FOREST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "gbt/tree.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mysawh::gbt {

/// Sentinel bin of a missing (NaN) feature value in a quantized row. Shared
/// with the training-side byte matrix (gbt/binning.h kMissingBin8).
inline constexpr uint8_t kFlatMissingBin = 0xFF;

/// Rows per predict block: the batch kernel quantizes this many rows into a
/// feature-major (column) byte panel and walks them through the forest with
/// the trees in the inner loop. Must stay a power of two — the walk step
/// folds the in-block row index into a shift-based panel address.
inline constexpr int64_t kFlatPredictBlock = 64;

/// A trained forest compiled into a single structure-of-arrays node block
/// for branch-light batch inference — the post-training counterpart of the
/// training-side binned matrix (gbt/binning.h).
///
/// Compilation collects the distinct split thresholds of every feature into
/// sorted per-feature cut arrays (for a hist-trained model these are by
/// construction a subset of the `BuildBinned` cuts the splits were chosen
/// from) and rewrites each internal node's double threshold as a `uint8`
/// bin index against those cuts. An input row is quantized once —
/// `bin(v) = #{cuts <= v}`, NaN -> kFlatMissingBin — after which every
/// node test `v < threshold` becomes the byte comparison
/// `bin < bin_threshold`, an exact equivalence (see docs/gbt.md), so the
/// flat kernels are bit-identical to the reference pointer walker.
///
/// Layout (globally indexed, per-tree contiguous ranges):
///   * internal nodes: `int16 feature`, `uint8 bin_threshold`,
///     `int32 left/right` child refs, a missing-direction bitmask, and the
///     precomputed TreeSHAP cover fractions of both children;
///   * child refs are leaf-tagged: `ref >= 0` is an internal node index,
///     `ref < 0` refers to leaf `~ref` in the `double leaf_value` array.
///
/// A forest whose shape cannot be compiled (more than 254 distinct
/// thresholds on one feature, more than 32767 features) is reported by
/// Compile with FailedPrecondition; callers fall back to the reference
/// walker.
class FlatForest {
 public:
  FlatForest() = default;

  /// Compiles `trees` (each already structurally valid) against a feature
  /// space of width `num_features`.
  static Result<FlatForest> Compile(const std::vector<RegressionTree>& trees,
                                    int64_t num_features);

  int64_t num_features() const { return num_features_; }
  int num_trees() const { return static_cast<int>(roots_.size()); }
  int64_t num_nodes() const {
    return static_cast<int64_t>(feature_.size());
  }
  int64_t num_leaves() const {
    return static_cast<int64_t>(leaf_values_.size());
  }
  /// Longest root-to-leaf path over the whole forest (sizes the TreeSHAP
  /// path workspace).
  int max_depth() const { return max_depth_; }

  // --- Node accessors (SHAP port + tests). Internal nodes only. ---
  int32_t root(int tree) const { return roots_[static_cast<size_t>(tree)]; }
  int16_t feature(int64_t node) const {
    return feature_[static_cast<size_t>(node)];
  }
  uint8_t bin_threshold(int64_t node) const {
    return bin_threshold_[static_cast<size_t>(node)];
  }
  int32_t left(int64_t node) const { return left_[static_cast<size_t>(node)]; }
  int32_t right(int64_t node) const {
    return right_[static_cast<size_t>(node)];
  }
  bool default_left(int64_t node) const {
    return (default_left_bits_[static_cast<size_t>(node >> 6)] >>
            (node & 63)) & 1;
  }
  /// Cover fraction of the left/right child (child cover / parent cover,
  /// the TreeSHAP zero-fraction), precomputed at compile time with exactly
  /// the arithmetic of the reference recursion.
  double left_fraction(int64_t node) const {
    return left_fraction_[static_cast<size_t>(node)];
  }
  double right_fraction(int64_t node) const {
    return right_fraction_[static_cast<size_t>(node)];
  }
  double leaf_value(int64_t leaf) const {
    return leaf_values_[static_cast<size_t>(leaf)];
  }
  /// Tree `tree`'s leaves are ids [tree_leaf_begin(t), tree_leaf_end(t)) —
  /// the half-open slice of the leaf-value array a `ref < 0` child of that
  /// tree can point into. Lets per-tree caches (the TreeSHAP pattern
  /// tables) index leaves densely without a discovery pass.
  int32_t tree_leaf_begin(int tree) const {
    return tree_leaf_offsets_[static_cast<size_t>(tree)];
  }
  int32_t tree_leaf_end(int tree) const {
    return tree_leaf_offsets_[static_cast<size_t>(tree) + 1];
  }

  /// Quantizes one row of num_features() doubles into `out` (num_features()
  /// bytes): bin(v) = number of cuts <= v, NaN -> kFlatMissingBin.
  void BinRow(const double* row, uint8_t* out) const;

  /// Quantizes every row of `data` (width must match) into a row-major
  /// byte matrix.
  std::vector<uint8_t> BinMatrix(const Dataset& data) const;

  /// raw[r] += leaf values of trees [tree_begin, tree_end), accumulated in
  /// ascending tree order per row — the same summation order as the
  /// reference walker. `bins` is `rows` quantized rows (BinRow layout).
  void Accumulate(const uint8_t* bins, int64_t rows, int tree_begin,
                  int tree_end, double* raw) const;

  /// Full batch kernel: out[r] = base_score + every tree's leaf for row r.
  /// Rows are processed in cache-sized blocks with the trees in the inner
  /// loop (one pass over the node block per ~64 rows); blocks run in
  /// parallel on `pool` (nullptr = the shared DefaultPool()). Each block
  /// writes disjoint slots and sums trees in ascending order, so the
  /// output is bit-identical to the reference walker for any thread count.
  void PredictRaw(const Dataset& data, double base_score, double* out,
                  ThreadPool* pool = nullptr) const;

  /// Structural validation, as strict as RegressionTree::Validate: child
  /// refs in range and acyclic (internal children strictly after the
  /// parent, inside the parent's tree), features inside the compiled
  /// feature space, bin thresholds indexing a real cut of their feature,
  /// cut arrays finite and strictly increasing, cover fractions finite,
  /// non-negative, and summing to at most 1 (the flat form of "children
  /// cover must not exceed the parent's"). Violations return DataLoss:
  /// a structurally broken block came from a corrupt artifact, not a
  /// caller mistake. Mandatory on every load path — the predict kernels
  /// index rows and node arrays without bounds checks.
  Status Validate() const;

  /// Line-oriented text serialization ("mysawh-flat-forest v1", hex-exact
  /// doubles) that round-trips bit-identically through Deserialize.
  std::string Serialize() const;
  /// Parses Serialize() output and Validate()s the result.
  static Result<FlatForest> Deserialize(const std::string& text);

  /// Writes Serialize() inside the checksummed `mysawh-artifact v1`
  /// envelope via the atomic-write protocol (crash-safe, corruption
  /// detected at read time).
  Status SaveToFile(const std::string& path) const;
  /// Reads a SaveToFile artifact: envelope verified (corruption ->
  /// DataLoss), payload parsed and Validate()d.
  static Result<FlatForest> LoadFromFile(const std::string& path);

 private:
  /// Recomputes the derived kernel state from the canonical arrays:
  /// per-tree depths (and max_depth_), the packed per-node metadata words,
  /// and the interleaved child-ref pairs. Called at the end of Compile and
  /// Deserialize — derived state is never serialized or trusted from disk.
  void BuildDerivedState();

  /// Column-major predict kernel for one block: `bins_cm` is a
  /// feature-major panel (feature f's column at bins_cm + f *
  /// kFlatPredictBlock, rows 0..rows-1 contiguous within it). Adds every
  /// tree's leaf value to raw[0..rows), ascending tree order per row.
  void AccumulateBlock(const uint8_t* bins_cm, int64_t rows,
                       double* raw) const;

  int64_t num_features_ = 0;
  int max_depth_ = 0;

  // Per-feature sorted distinct thresholds, flattened: feature f's cuts are
  // cut_values_[cut_offsets_[f] .. cut_offsets_[f+1]).
  std::vector<double> cut_values_;
  std::vector<int32_t> cut_offsets_;  // num_features_ + 1 entries

  // Leaf-tagged root ref of each tree (single-leaf trees have ref < 0).
  std::vector<int32_t> roots_;
  // Height of each tree (0 for a leaf root). The predict kernel runs every
  // row exactly this many branchless steps (finished rows self-loop on
  // their leaf ref), so the walk has no per-level exit branch. Derived
  // from the links — recomputed on load, never serialized.
  std::vector<int32_t> tree_depths_;
  // Tree t's internal nodes are [tree_node_offsets_[t],
  // tree_node_offsets_[t+1]), its leaves likewise in tree_leaf_offsets_.
  std::vector<int32_t> tree_node_offsets_;
  std::vector<int32_t> tree_leaf_offsets_;

  // Internal-node SoA block, preorder within each tree.
  std::vector<int16_t> feature_;
  std::vector<uint8_t> bin_threshold_;
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  std::vector<uint64_t> default_left_bits_;  // bit i = node i goes left on NaN
  std::vector<double> left_fraction_;
  std::vector<double> right_fraction_;

  std::vector<double> leaf_values_;

  // Derived kernel tables (rebuilt by BuildDerivedState, never serialized).
  // The walk kernel sees an augmented node space: internal nodes first,
  // then one self-looping pseudo-node per leaf (children point at itself,
  // metadata 0), so a walk step is always meta load -> panel byte ->
  // indexed child load with no leaf-tag masking; a finished lane parks on
  // its leaf pseudo-node for the tree's remaining levels. node_meta_ packs
  // feature << 9 | bin_threshold << 1 | default_left; children_ stores the
  // go-right target at 2n and the go-left target at 2n + 1 so the taken
  // child is children_[2n + go_left]; node_value_ is 0 for internal nodes
  // and the leaf value on pseudo-nodes; kernel_roots_ maps each tree's
  // leaf-tagged root ref into the augmented index space.
  std::vector<uint32_t> node_meta_;
  std::vector<int32_t> children_;
  std::vector<double> node_value_;
  std::vector<int32_t> kernel_roots_;
  // Per-feature cut arrays padded with NaN to one shared power-of-two
  // length (feature f's pad starts at f * search_len_): BinRow runs
  // branchless fixed-shape binary searches over these instead of
  // std::upper_bound's mispredicting one, four features in lockstep —
  // the shared length is what lets their chains interleave. NaN pads
  // never count: every ordered comparison against them is false.
  std::vector<double> search_cuts_;
  int64_t search_len_ = 0;
};

}  // namespace mysawh::gbt

#endif  // MYSAWH_GBT_FLAT_FOREST_H_
