#ifndef MYSAWH_GBT_TREE_H_
#define MYSAWH_GBT_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh::gbt {

/// One node of a regression tree stored in an index-linked array.
struct TreeNode {
  int32_t left = -1;        ///< Left child index, -1 for a leaf.
  int32_t right = -1;       ///< Right child index, -1 for a leaf.
  int32_t feature = -1;     ///< Split feature index (internal nodes only).
  double threshold = 0.0;   ///< Rows with value < threshold go left.
  bool default_left = true; ///< Direction taken when the feature is missing.
  double value = 0.0;       ///< Leaf weight (leaves only).
  double gain = 0.0;        ///< Split gain (internal nodes; for importance).
  double cover = 0.0;       ///< Sum of hessians routed through this node.

  bool IsLeaf() const { return left < 0; }
};

/// A single regression tree of the boosted ensemble. Navigation rule:
/// `x[feature] < threshold` goes left, otherwise right; a missing (NaN)
/// value follows `default_left` — the learned default direction, which is
/// how the booster consumes sparse/missing clinical data without imputation.
class RegressionTree {
 public:
  /// Creates a tree consisting of a single leaf (the root).
  RegressionTree();

  /// Rebuilds a tree from a node array (deserialization); callers should
  /// Validate() the result. Requires at least one node.
  static RegressionTree FromNodes(std::vector<TreeNode> nodes);

  /// Number of nodes (internal + leaves).
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  /// Number of leaves.
  int num_leaves() const;
  /// Length of the longest root-to-leaf path (a single leaf has depth 0).
  int MaxDepth() const;

  const TreeNode& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
  TreeNode* mutable_node(int i) { return &nodes_[static_cast<size_t>(i)]; }

  /// Converts leaf `node_id` into an internal node with two fresh leaf
  /// children; returns {left_id, right_id}. Precondition: node is a leaf.
  std::pair<int, int> Split(int node_id, int feature, double threshold,
                            bool default_left, double gain);

  /// Routes a feature row (array of at least the tree's max feature index
  /// + 1 doubles; NaN = missing) to its leaf and returns the leaf index.
  int GetLeaf(const double* row) const;

  /// Leaf weight reached by `row`.
  double Predict(const double* row) const;

  /// Structural validation: child links in range, thresholds finite,
  /// covers non-negative and children's covers not exceeding the parent's.
  /// With `num_features >= 0`, additionally requires every internal
  /// node's split feature to be < num_features — mandatory when the node
  /// array came from disk, since Predict indexes the input row by the
  /// node's feature without a bounds check.
  Status Validate(int64_t num_features = -1) const;

  /// Multi-line indented dump for debugging and golden tests.
  std::string ToString(const std::vector<std::string>& feature_names = {}) const;

 private:
  std::vector<TreeNode> nodes_;
};

/// Serializes one node as the 8-field space-separated line shared by the
/// model text formats (children, feature, hex-encoded threshold/value/
/// gain/cover, default direction).
std::string TreeNodeToText(const TreeNode& node);

/// Parses a line produced by TreeNodeToText.
Result<TreeNode> TreeNodeFromText(const std::string& line);

}  // namespace mysawh::gbt

#endif  // MYSAWH_GBT_TREE_H_
