#include "gbt/params.h"

namespace mysawh::gbt {

Status GbtParams::Validate() const {
  if (num_trees < 1) return Status::InvalidArgument("num_trees must be >= 1");
  if (max_depth < 1) return Status::InvalidArgument("max_depth must be >= 1");
  if (!(learning_rate > 0.0) || learning_rate > 1.0) {
    return Status::InvalidArgument("learning_rate must be in (0, 1]");
  }
  if (min_child_weight < 0.0) {
    return Status::InvalidArgument("min_child_weight must be >= 0");
  }
  if (min_samples_leaf < 1) {
    return Status::InvalidArgument("min_samples_leaf must be >= 1");
  }
  if (reg_lambda < 0.0) {
    return Status::InvalidArgument("reg_lambda must be >= 0");
  }
  if (reg_alpha < 0.0) {
    return Status::InvalidArgument("reg_alpha must be >= 0");
  }
  if (gamma < 0.0) return Status::InvalidArgument("gamma must be >= 0");
  if (!(subsample > 0.0) || subsample > 1.0) {
    return Status::InvalidArgument("subsample must be in (0, 1]");
  }
  if (!(colsample_bytree > 0.0) || colsample_bytree > 1.0) {
    return Status::InvalidArgument("colsample_bytree must be in (0, 1]");
  }
  if (max_bins < 2 || max_bins > 65535) {
    return Status::InvalidArgument("max_bins must be in [2, 65535]");
  }
  if (!(scale_pos_weight > 0.0)) {
    return Status::InvalidArgument("scale_pos_weight must be > 0");
  }
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (early_stopping_rounds < 0) {
    return Status::InvalidArgument("early_stopping_rounds must be >= 0");
  }
  for (int c : monotone_constraints) {
    if (c < -1 || c > 1) {
      return Status::InvalidArgument(
          "monotone_constraints entries must be -1, 0 or +1");
    }
  }
  return Status::Ok();
}

}  // namespace mysawh::gbt
