#ifndef MYSAWH_GBT_BINNING_H_
#define MYSAWH_GBT_BINNING_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mysawh::gbt {

class BinnedData;

/// Sentinel bin index for a missing (NaN) feature value.
inline constexpr uint16_t kMissingBin = 0xFFFF;

/// Missing sentinel of the narrow (byte) bin storage, used when every
/// feature has at most 254 bins so the whole quantized matrix fits one
/// byte per cell.
inline constexpr uint8_t kMissingBin8 = 0xFF;

/// Per-feature quantile cut points for the histogram tree method.
///
/// For feature f, `cuts[f]` holds strictly increasing upper boundaries; a
/// value v maps to the smallest bin b with v < cuts[f][b]. The last cut is
/// +inf so every finite value maps somewhere. Features with few distinct
/// values get one bin per value (so categorical/ordinal PRO answers are
/// represented exactly).
class FeatureBins {
 public:
  /// Builds cut points from the training data with at most `max_bins` bins
  /// per feature.
  static Result<FeatureBins> Build(const Dataset& data, int max_bins);

  int64_t num_features() const {
    return static_cast<int64_t>(cuts_.size());
  }
  /// Number of bins of a feature.
  int num_bins(int64_t feature) const {
    return static_cast<int>(cuts_[static_cast<size_t>(feature)].size());
  }
  /// The upper boundary of a bin; splitting "bin <= b" uses threshold
  /// cuts[f][b] (split condition value < cuts[f][b]).
  double cut(int64_t feature, int bin) const {
    return cuts_[static_cast<size_t>(feature)][static_cast<size_t>(bin)];
  }

  /// Maps a raw value to its bin (kMissingBin for NaN).
  uint16_t BinFor(int64_t feature, double value) const;

 private:
  friend Result<BinnedData> BuildBinned(const Dataset& data, int max_bins,
                                        ThreadPool* pool);
  std::vector<std::vector<double>> cuts_;
};

/// The whole training matrix quantized to bins, row-major so one pass over
/// a node's rows touches each row's bins contiguously and can feed the
/// histograms of every feature at once. When every feature has at most 254
/// bins (max_bins <= 254, the common case) cells are stored as single
/// bytes, halving the memory streamed by the histogram pass; otherwise a
/// uint16 cell is used.
class BinnedMatrix {
 public:
  /// Quantizes `data` with the given `bins` (wide storage).
  static BinnedMatrix Build(const Dataset& data, const FeatureBins& bins);

  int64_t num_rows() const { return num_rows_; }
  int64_t num_features() const { return num_features_; }
  /// Whether cells are stored as bytes (see data8/data16).
  bool narrow() const { return narrow_; }
  /// Bin of (row, feature); missing is reported as kMissingBin for both
  /// storage widths.
  uint16_t At(int64_t row, int64_t feature) const {
    const auto i = static_cast<size_t>(row * num_features_ + feature);
    if (narrow_) {
      const uint8_t b = bytes_[i];
      return b == kMissingBin8 ? kMissingBin : b;
    }
    return bins_[i];
  }
  /// Raw row-major cells; valid only for the matching narrow() state. The
  /// histogram builder reads these directly in its hot loop.
  const uint8_t* data8() const { return bytes_.data(); }
  const uint16_t* data16() const { return bins_.data(); }

 private:
  friend Result<BinnedData> BuildBinned(const Dataset& data, int max_bins,
                                        ThreadPool* pool);
  std::vector<uint16_t> bins_;   // wide cells (row * num_features + feature)
  std::vector<uint8_t> bytes_;   // narrow cells, same layout
  bool narrow_ = false;
  int64_t num_rows_ = 0;
  int64_t num_features_ = 0;
};

/// Cut points and quantized matrix produced together by BuildBinned.
class BinnedData {
 public:
  FeatureBins bins;
  BinnedMatrix matrix;
};

/// Per-feature occupancy of a quantized matrix — how well the histogram
/// resolution is actually used. Consumed by the data-quality profile
/// (core/data_profile.h) attached to every study cell's run manifest.
struct BinOccupancy {
  int num_bins = 0;           ///< Bins defined by the feature's cuts.
  int occupied_bins = 0;      ///< Bins holding at least one row.
  int64_t missing = 0;        ///< Rows with the missing sentinel.
  int64_t max_bin_count = 0;  ///< Rows in the fullest bin.
};

/// Counts per-bin occupancy of every feature. Deterministic (a pure
/// function of the quantized matrix); intended for profiling, not hot
/// paths.
std::vector<BinOccupancy> ComputeBinOccupancy(const FeatureBins& bins,
                                              const BinnedMatrix& matrix);

/// Builds the cut points and the quantized matrix in one fused pass: each
/// feature is sorted once as (value, row) pairs, the cuts are derived from
/// the distinct values of that ordering, and bins are assigned by walking
/// the sorted pairs — no per-cell binary search. Produces exactly the same
/// cuts and bins as FeatureBins::Build followed by BinnedMatrix::Build,
/// several times faster. Features are processed in parallel on `pool` when
/// given (each feature writes disjoint cells, so the result is identical
/// for any thread count).
Result<BinnedData> BuildBinned(const Dataset& data, int max_bins,
                               ThreadPool* pool);

}  // namespace mysawh::gbt

#endif  // MYSAWH_GBT_BINNING_H_
