#ifndef MYSAWH_GBT_BINNING_H_
#define MYSAWH_GBT_BINNING_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace mysawh::gbt {

/// Sentinel bin index for a missing (NaN) feature value.
inline constexpr uint16_t kMissingBin = 0xFFFF;

/// Per-feature quantile cut points for the histogram tree method.
///
/// For feature f, `cuts[f]` holds strictly increasing upper boundaries; a
/// value v maps to the smallest bin b with v < cuts[f][b]. The last cut is
/// +inf so every finite value maps somewhere. Features with few distinct
/// values get one bin per value (so categorical/ordinal PRO answers are
/// represented exactly).
class FeatureBins {
 public:
  /// Builds cut points from the training data with at most `max_bins` bins
  /// per feature.
  static Result<FeatureBins> Build(const Dataset& data, int max_bins);

  int64_t num_features() const {
    return static_cast<int64_t>(cuts_.size());
  }
  /// Number of bins of a feature.
  int num_bins(int64_t feature) const {
    return static_cast<int>(cuts_[static_cast<size_t>(feature)].size());
  }
  /// The upper boundary of a bin; splitting "bin <= b" uses threshold
  /// cuts[f][b] (split condition value < cuts[f][b]).
  double cut(int64_t feature, int bin) const {
    return cuts_[static_cast<size_t>(feature)][static_cast<size_t>(bin)];
  }

  /// Maps a raw value to its bin (kMissingBin for NaN).
  uint16_t BinFor(int64_t feature, double value) const;

 private:
  std::vector<std::vector<double>> cuts_;
};

/// The whole training matrix quantized to bins, column-major for fast
/// histogram accumulation.
class BinnedMatrix {
 public:
  /// Quantizes `data` with the given `bins`.
  static BinnedMatrix Build(const Dataset& data, const FeatureBins& bins);

  int64_t num_rows() const { return num_rows_; }
  /// Bin of (row, feature).
  uint16_t At(int64_t row, int64_t feature) const {
    return bins_[static_cast<size_t>(feature * num_rows_ + row)];
  }

 private:
  std::vector<uint16_t> bins_;  // column-major: feature * num_rows + row
  int64_t num_rows_ = 0;
};

}  // namespace mysawh::gbt

#endif  // MYSAWH_GBT_BINNING_H_
