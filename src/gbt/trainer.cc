#include "gbt/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace mysawh::gbt {

namespace {

constexpr double kMinSplitGain = 1e-10;

/// Soft-thresholding for L1 regularization on the gradient sum.
double ThresholdL1(double g, double alpha) {
  if (g > alpha) return g - alpha;
  if (g < -alpha) return g + alpha;
  return 0.0;
}

}  // namespace

Trainer::Trainer(const Dataset& train, const GbtParams& params)
    : train_(train),
      params_(params),
      objective_(MakeObjective(params.objective)),
      rng_(params.seed),
      pool_(params.num_threads) {}

double Trainer::LeafWeight(double g, double h) const {
  return -ThresholdL1(g, params_.reg_alpha) / (h + params_.reg_lambda);
}

double Trainer::ScoreFn(double g, double h) const {
  const double t = ThresholdL1(g, params_.reg_alpha);
  return t * t / (h + params_.reg_lambda);
}

int Trainer::ConstraintOf(int feature) const {
  if (params_.monotone_constraints.empty()) return 0;
  return params_.monotone_constraints[static_cast<size_t>(feature)];
}

void Trainer::ConsiderSplit(const NodeStats& parent, const NodeStats& miss,
                            double sum_g_left, double sum_h_left,
                            int64_t count_left, int feature, double threshold,
                            int bin, const NodeBounds& bounds,
                            SplitCandidate* best) const {
  const double parent_score = ScoreFn(parent.sum_g, parent.sum_h);
  // Present-value right side = parent - missing - left.
  const double sum_g_right = parent.sum_g - miss.sum_g - sum_g_left;
  const double sum_h_right = parent.sum_h - miss.sum_h - sum_h_left;
  const int64_t count_right = parent.count - miss.count - count_left;
  for (const bool miss_left : {true, false}) {
    const double gl = sum_g_left + (miss_left ? miss.sum_g : 0.0);
    const double hl = sum_h_left + (miss_left ? miss.sum_h : 0.0);
    const int64_t cl = count_left + (miss_left ? miss.count : 0);
    const double gr = sum_g_right + (miss_left ? 0.0 : miss.sum_g);
    const double hr = sum_h_right + (miss_left ? 0.0 : miss.sum_h);
    const int64_t cr = count_right + (miss_left ? 0 : miss.count);
    if (cl < params_.min_samples_leaf || cr < params_.min_samples_leaf) {
      continue;
    }
    if (hl < params_.min_child_weight || hr < params_.min_child_weight) {
      continue;
    }
    const double gain =
        0.5 * (ScoreFn(gl, hl) + ScoreFn(gr, hr) - parent_score) -
        params_.gamma;
    if (gain <= kMinSplitGain) continue;
    // Monotone constraint: reject directions that violate the ordering or
    // leave the admissible weight interval.
    const double wl = LeafWeight(gl, hl);
    const double wr = LeafWeight(gr, hr);
    const int constraint = ConstraintOf(feature);
    if (constraint > 0 && wl > wr) continue;
    if (constraint < 0 && wl < wr) continue;
    if (wl < bounds.lower || wl > bounds.upper || wr < bounds.lower ||
        wr > bounds.upper) {
      continue;
    }
    // Deterministic tie-break: larger gain wins; equal gains prefer the
    // lower feature index, then the smaller threshold.
    const bool better =
        !best->valid || gain > best->gain ||
        (gain == best->gain &&
         (feature < best->feature ||
          (feature == best->feature && threshold < best->threshold)));
    if (better) {
      best->valid = true;
      best->feature = feature;
      best->threshold = threshold;
      best->bin = bin;
      best->default_left = miss_left;
      best->gain = gain;
      best->weight_left = wl;
      best->weight_right = wr;
    }
  }
}

Trainer::SplitCandidate Trainer::FindSplitExact(
    int feature, const std::vector<int64_t>& rows,
    const std::vector<GradientPair>& gpairs, const NodeStats& parent,
    const NodeBounds& bounds) const {
  struct Entry {
    double value;
    double g;
    double h;
  };
  std::vector<Entry> entries;
  entries.reserve(rows.size());
  NodeStats miss;
  for (int64_t r : rows) {
    const double v = train_.At(r, feature);
    const GradientPair& gp = gpairs[static_cast<size_t>(r)];
    if (std::isnan(v)) {
      miss.sum_g += gp.grad;
      miss.sum_h += gp.hess;
      ++miss.count;
    } else {
      entries.push_back({v, gp.grad, gp.hess});
    }
  }
  SplitCandidate best;
  if (entries.size() < 2) return best;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.value < b.value; });
  double sum_g_left = 0.0, sum_h_left = 0.0;
  int64_t count_left = 0;
  for (size_t i = 0; i + 1 < entries.size(); ++i) {
    sum_g_left += entries[i].g;
    sum_h_left += entries[i].h;
    ++count_left;
    if (entries[i].value == entries[i + 1].value) continue;
    const double threshold = 0.5 * (entries[i].value + entries[i + 1].value);
    ConsiderSplit(parent, miss, sum_g_left, sum_h_left, count_left, feature,
                  threshold, /*bin=*/-1, bounds, &best);
  }
  return best;
}

Trainer::SplitCandidate Trainer::FindSplitHist(
    int feature, const std::vector<int64_t>& rows,
    const std::vector<GradientPair>& gpairs, const NodeStats& parent,
    const NodeBounds& bounds) const {
  const int nb = bins_.num_bins(feature);
  SplitCandidate best;
  if (nb < 2) return best;
  std::vector<double> sum_g(static_cast<size_t>(nb), 0.0);
  std::vector<double> sum_h(static_cast<size_t>(nb), 0.0);
  std::vector<int64_t> count(static_cast<size_t>(nb), 0);
  NodeStats miss;
  for (int64_t r : rows) {
    const uint16_t b = binned_.At(r, feature);
    const GradientPair& gp = gpairs[static_cast<size_t>(r)];
    if (b == kMissingBin) {
      miss.sum_g += gp.grad;
      miss.sum_h += gp.hess;
      ++miss.count;
    } else {
      sum_g[b] += gp.grad;
      sum_h[b] += gp.hess;
      ++count[b];
    }
  }
  double acc_g = 0.0, acc_h = 0.0;
  int64_t acc_c = 0;
  for (int b = 0; b + 1 < nb; ++b) {
    acc_g += sum_g[static_cast<size_t>(b)];
    acc_h += sum_h[static_cast<size_t>(b)];
    acc_c += count[static_cast<size_t>(b)];
    if (count[static_cast<size_t>(b)] == 0) continue;  // no boundary change
    ConsiderSplit(parent, miss, acc_g, acc_h, acc_c, feature,
                  bins_.cut(feature, b), b, bounds, &best);
  }
  return best;
}

void Trainer::BuildNode(RegressionTree* tree, int node_id,
                        std::vector<int64_t> rows, int depth,
                        const std::vector<GradientPair>& gpairs,
                        const std::vector<int>& features,
                        const NodeBounds& bounds) {
  NodeStats stats;
  for (int64_t r : rows) {
    stats.sum_g += gpairs[static_cast<size_t>(r)].grad;
    stats.sum_h += gpairs[static_cast<size_t>(r)].hess;
  }
  stats.count = static_cast<int64_t>(rows.size());
  tree->mutable_node(node_id)->cover = stats.sum_h;

  const bool can_split = depth < params_.max_depth &&
                         stats.count >= 2 * params_.min_samples_leaf &&
                         stats.sum_h >= 2 * params_.min_child_weight;
  SplitCandidate best;
  if (can_split) {
    // Per-feature proposals evaluated in parallel, reduced deterministically.
    std::vector<SplitCandidate> proposals(features.size());
    pool_.ParallelFor(static_cast<int64_t>(features.size()), [&](int64_t i) {
      const int f = features[static_cast<size_t>(i)];
      proposals[static_cast<size_t>(i)] =
          use_hist_ ? FindSplitHist(f, rows, gpairs, stats, bounds)
                    : FindSplitExact(f, rows, gpairs, stats, bounds);
    });
    for (const auto& p : proposals) {
      if (!p.valid) continue;
      const bool better =
          !best.valid || p.gain > best.gain ||
          (p.gain == best.gain &&
           (p.feature < best.feature ||
            (p.feature == best.feature && p.threshold < best.threshold)));
      if (better) best = p;
    }
  }

  if (!best.valid) {
    TreeNode* leaf = tree->mutable_node(node_id);
    const double weight = std::min(
        bounds.upper,
        std::max(bounds.lower, LeafWeight(stats.sum_g, stats.sum_h)));
    leaf->value = params_.learning_rate * weight;
    return;
  }

  const auto [left_id, right_id] = tree->Split(
      node_id, best.feature, best.threshold, best.default_left, best.gain);
  std::vector<int64_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (int64_t r : rows) {
    bool go_left;
    if (use_hist_) {
      const uint16_t b = binned_.At(r, best.feature);
      go_left = (b == kMissingBin) ? best.default_left
                                   : static_cast<int>(b) <= best.bin;
    } else {
      const double v = train_.At(r, best.feature);
      go_left = std::isnan(v) ? best.default_left : v < best.threshold;
    }
    (go_left ? left_rows : right_rows).push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();
  // Propagate monotone weight bounds: when this split is constrained, the
  // children's admissible weights are separated at the midpoint of the
  // candidate child weights (XGBoost's rule).
  NodeBounds left_bounds = bounds;
  NodeBounds right_bounds = bounds;
  const int constraint = ConstraintOf(best.feature);
  if (constraint != 0) {
    const double mid = 0.5 * (best.weight_left + best.weight_right);
    if (constraint > 0) {
      left_bounds.upper = std::min(left_bounds.upper, mid);
      right_bounds.lower = std::max(right_bounds.lower, mid);
    } else {
      left_bounds.lower = std::max(left_bounds.lower, mid);
      right_bounds.upper = std::min(right_bounds.upper, mid);
    }
  }
  BuildNode(tree, left_id, std::move(left_rows), depth + 1, gpairs, features,
            left_bounds);
  BuildNode(tree, right_id, std::move(right_rows), depth + 1, gpairs,
            features, right_bounds);
}

RegressionTree Trainer::GrowTree(const std::vector<GradientPair>& gpairs,
                                 std::vector<int64_t> rows,
                                 const std::vector<int>& features) {
  RegressionTree tree;
  const NodeBounds root_bounds{-std::numeric_limits<double>::infinity(),
                               std::numeric_limits<double>::infinity()};
  BuildNode(&tree, 0, std::move(rows), 0, gpairs, features, root_bounds);
  return tree;
}

Result<GbtModel> Trainer::Run(const Dataset* validation, TrainingLog* log) {
  MYSAWH_RETURN_NOT_OK(params_.Validate());
  if (train_.num_rows() == 0) {
    return Status::InvalidArgument("training set is empty");
  }
  if (train_.num_features() == 0) {
    return Status::InvalidArgument("training set has no features");
  }
  if (objective_ == nullptr) {
    return Status::InvalidArgument("unknown objective");
  }
  MYSAWH_RETURN_NOT_OK(objective_->ValidateLabels(train_.labels()));
  if (validation != nullptr &&
      validation->num_features() != train_.num_features()) {
    return Status::InvalidArgument("validation feature width mismatch");
  }
  if (params_.early_stopping_rounds > 0 && validation == nullptr) {
    return Status::InvalidArgument(
        "early stopping requires a validation set");
  }
  if (!params_.monotone_constraints.empty() &&
      static_cast<int64_t>(params_.monotone_constraints.size()) !=
          train_.num_features()) {
    return Status::InvalidArgument(
        "monotone_constraints length must equal the feature count");
  }

  use_hist_ = params_.tree_method == TreeMethod::kHist;
  if (use_hist_) {
    MYSAWH_ASSIGN_OR_RETURN(bins_, FeatureBins::Build(train_, params_.max_bins));
    binned_ = BinnedMatrix::Build(train_, bins_);
  }

  GbtModel model;
  model.feature_names_ = train_.feature_names();
  model.objective_type_ = params_.objective;
  model.base_score_ = std::isnan(params_.base_score)
                          ? objective_->InitialRawPrediction(train_.labels())
                          : params_.base_score;

  const int64_t n = train_.num_rows();
  const int64_t nf = train_.num_features();
  std::vector<double> raw_train(static_cast<size_t>(n), model.base_score_);
  std::vector<double> raw_valid;
  if (validation != nullptr) {
    raw_valid.assign(static_cast<size_t>(validation->num_rows()),
                     model.base_score_);
  }
  if (log != nullptr) log->metric_name = objective_->DefaultMetricName();

  std::vector<GradientPair> gpairs(static_cast<size_t>(n));
  double best_metric = std::numeric_limits<double>::infinity();
  int best_round = -1;

  for (int round = 0; round < params_.num_trees; ++round) {
    for (int64_t i = 0; i < n; ++i) {
      GradientPair gp = objective_->ComputeGradient(
          train_.label(i), raw_train[static_cast<size_t>(i)]);
      if (params_.scale_pos_weight != 1.0 && train_.label(i) == 1.0) {
        gp.grad *= params_.scale_pos_weight;
        gp.hess *= params_.scale_pos_weight;
      }
      gpairs[static_cast<size_t>(i)] = gp;
    }
    // Row subsample.
    std::vector<int64_t> rows;
    if (params_.subsample < 1.0) {
      const auto k = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(
                 static_cast<double>(n) * params_.subsample)));
      rows = rng_.SampleWithoutReplacement(n, k);
      std::sort(rows.begin(), rows.end());
    } else {
      rows.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) rows[static_cast<size_t>(i)] = i;
    }
    // Column subsample.
    std::vector<int> features;
    if (params_.colsample_bytree < 1.0) {
      const auto k = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(
                 static_cast<double>(nf) * params_.colsample_bytree)));
      for (int64_t f : rng_.SampleWithoutReplacement(nf, k)) {
        features.push_back(static_cast<int>(f));
      }
      std::sort(features.begin(), features.end());
    } else {
      features.resize(static_cast<size_t>(nf));
      for (int64_t f = 0; f < nf; ++f) {
        features[static_cast<size_t>(f)] = static_cast<int>(f);
      }
    }

    RegressionTree tree = GrowTree(gpairs, std::move(rows), features);

    // Update cached raw scores (all rows, not just the subsample).
    for (int64_t i = 0; i < n; ++i) {
      raw_train[static_cast<size_t>(i)] += tree.Predict(train_.row(i));
    }
    if (validation != nullptr) {
      for (int64_t i = 0; i < validation->num_rows(); ++i) {
        raw_valid[static_cast<size_t>(i)] += tree.Predict(validation->row(i));
      }
    }
    model.trees_.push_back(std::move(tree));

    // Metrics.
    double train_metric = std::numeric_limits<double>::quiet_NaN();
    double valid_metric = std::numeric_limits<double>::quiet_NaN();
    if (log != nullptr || validation != nullptr) {
      std::vector<double> preds(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        preds[static_cast<size_t>(i)] =
            objective_->Transform(raw_train[static_cast<size_t>(i)]);
      }
      train_metric = objective_->EvalDefaultMetric(train_.labels(), preds);
      if (validation != nullptr) {
        std::vector<double> vpreds(raw_valid.size());
        for (size_t i = 0; i < raw_valid.size(); ++i) {
          vpreds[i] = objective_->Transform(raw_valid[i]);
        }
        valid_metric =
            objective_->EvalDefaultMetric(validation->labels(), vpreds);
      }
    }
    if (log != nullptr) {
      log->rounds.push_back({round, train_metric, valid_metric});
    }
    if (validation != nullptr) {
      if (valid_metric < best_metric) {
        best_metric = valid_metric;
        best_round = round;
      }
      if (params_.early_stopping_rounds > 0 &&
          round - best_round >= params_.early_stopping_rounds) {
        break;
      }
    }
  }

  if (params_.early_stopping_rounds > 0 && best_round >= 0) {
    model.trees_.resize(static_cast<size_t>(best_round + 1));
    model.best_iteration_ = best_round;
  } else {
    model.best_iteration_ = static_cast<int>(model.trees_.size()) - 1;
  }
  return model;
}

}  // namespace mysawh::gbt
