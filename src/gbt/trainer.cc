#include "gbt/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace mysawh::gbt {

namespace {

constexpr double kMinSplitGain = 1e-10;

/// Training instruments. The histogram-pipeline node counters moved here
/// from the old ad-hoc `TrainingLog` fields, so every counter in the
/// process reads through one registry (docs/observability.md).
struct TrainerMetrics {
  Counter* hist_nodes_direct;
  Counter* hist_nodes_subtracted;
  Counter* trees_grown;
  Counter* rounds_completed;
  LatencyHistogram* tree_us;
};

TrainerMetrics& Metrics() {
  static TrainerMetrics metrics = [] {
    auto& registry = MetricsRegistry::Global();
    return TrainerMetrics{
        registry.GetCounter("gbt.train.hist_nodes_direct"),
        registry.GetCounter("gbt.train.hist_nodes_subtracted"),
        registry.GetCounter("gbt.train.trees_grown"),
        registry.GetCounter("gbt.train.rounds_completed"),
        registry.GetHistogram("gbt.train.tree_us")};
  }();
  return metrics;
}

/// Soft-thresholding for L1 regularization on the gradient sum.
double ThresholdL1(double g, double alpha) {
  if (g > alpha) return g - alpha;
  if (g < -alpha) return g + alpha;
  return 0.0;
}

}  // namespace

Trainer::Trainer(const Dataset& train, const GbtParams& params)
    : train_(train),
      params_(params),
      objective_(MakeObjective(params.objective)),
      rng_(params.seed),
      pool_(params.num_threads) {}

double Trainer::LeafWeight(double g, double h) const {
  return -ThresholdL1(g, params_.reg_alpha) / (h + params_.reg_lambda);
}

double Trainer::ScoreFn(double g, double h) const {
  const double t = ThresholdL1(g, params_.reg_alpha);
  return t * t / (h + params_.reg_lambda);
}

int Trainer::ConstraintOf(int feature) const {
  if (params_.monotone_constraints.empty()) return 0;
  return params_.monotone_constraints[static_cast<size_t>(feature)];
}

void Trainer::ConsiderSplit(const NodeStats& parent, double parent_score,
                            const NodeStats& miss, double sum_g_left,
                            double sum_h_left, int64_t count_left, int feature,
                            double threshold, int bin,
                            const NodeBounds& bounds,
                            SplitCandidate* best) const {
  // Present-value right side = parent - missing - left.
  const double sum_g_right = parent.sum_g - miss.sum_g - sum_g_left;
  const double sum_h_right = parent.sum_h - miss.sum_h - sum_h_left;
  const int64_t count_right = parent.count - miss.count - count_left;
  // With no missing mass the two default directions score identically and
  // the first (missing-left) wins the tie-break, so skip the second.
  const bool no_miss =
      miss.count == 0 && miss.sum_g == 0.0 && miss.sum_h == 0.0;
  for (const bool miss_left : {true, false}) {
    if (!miss_left && no_miss) break;
    const double gl = sum_g_left + (miss_left ? miss.sum_g : 0.0);
    const double hl = sum_h_left + (miss_left ? miss.sum_h : 0.0);
    const int64_t cl = count_left + (miss_left ? miss.count : 0);
    const double gr = sum_g_right + (miss_left ? 0.0 : miss.sum_g);
    const double hr = sum_h_right + (miss_left ? 0.0 : miss.sum_h);
    const int64_t cr = count_right + (miss_left ? 0 : miss.count);
    if (cl < params_.min_samples_leaf || cr < params_.min_samples_leaf) {
      continue;
    }
    if (hl < params_.min_child_weight || hr < params_.min_child_weight) {
      continue;
    }
    const double gain =
        0.5 * (ScoreFn(gl, hl) + ScoreFn(gr, hr) - parent_score) -
        params_.gamma;
    if (gain <= kMinSplitGain) continue;
    // Fast reject: a strictly lower gain can never become `best` (ties can,
    // through the tie-break below), so skip the leaf-weight divisions and
    // constraint checks — this boundary scan is the hist hot loop.
    if (best->valid && gain < best->gain) continue;
    // Monotone constraint: reject directions that violate the ordering or
    // leave the admissible weight interval.
    const double wl = LeafWeight(gl, hl);
    const double wr = LeafWeight(gr, hr);
    const int constraint = ConstraintOf(feature);
    if (constraint > 0 && wl > wr) continue;
    if (constraint < 0 && wl < wr) continue;
    if (wl < bounds.lower || wl > bounds.upper || wr < bounds.lower ||
        wr > bounds.upper) {
      continue;
    }
    // Deterministic tie-break: larger gain wins; equal gains prefer the
    // lower feature index, then the smaller threshold.
    const bool better =
        !best->valid || gain > best->gain ||
        (gain == best->gain &&
         (feature < best->feature ||
          (feature == best->feature && threshold < best->threshold)));
    if (better) {
      best->valid = true;
      best->feature = feature;
      best->threshold = threshold;
      best->bin = bin;
      best->default_left = miss_left;
      best->gain = gain;
      best->weight_left = wl;
      best->weight_right = wr;
    }
  }
}

Trainer::SplitCandidate Trainer::FindSplitExact(
    int feature, const std::vector<int64_t>& rows,
    const std::vector<GradientPair>& gpairs, const NodeStats& parent,
    const NodeBounds& bounds) const {
  struct Entry {
    double value;
    double g;
    double h;
  };
  std::vector<Entry> entries;
  entries.reserve(rows.size());
  NodeStats miss;
  for (int64_t r : rows) {
    const double v = train_.At(r, feature);
    const GradientPair& gp = gpairs[static_cast<size_t>(r)];
    if (std::isnan(v)) {
      miss.sum_g += gp.grad;
      miss.sum_h += gp.hess;
      ++miss.count;
    } else {
      entries.push_back({v, gp.grad, gp.hess});
    }
  }
  SplitCandidate best;
  if (entries.size() < 2) return best;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.value < b.value; });
  const double parent_score = ScoreFn(parent.sum_g, parent.sum_h);
  double sum_g_left = 0.0, sum_h_left = 0.0;
  int64_t count_left = 0;
  for (size_t i = 0; i + 1 < entries.size(); ++i) {
    sum_g_left += entries[i].g;
    sum_h_left += entries[i].h;
    ++count_left;
    if (entries[i].value == entries[i + 1].value) continue;
    const double threshold = 0.5 * (entries[i].value + entries[i + 1].value);
    ConsiderSplit(parent, parent_score, miss, sum_g_left, sum_h_left,
                  count_left, feature, threshold, /*bin=*/-1, bounds, &best);
  }
  return best;
}

Trainer::SplitCandidate Trainer::FindSplitHist(
    int feature_pos, const HistogramLayout& layout, const NodeHistogram& hist,
    const NodeStats& parent, const NodeBounds& bounds) const {
  const int feature = layout.features()[static_cast<size_t>(feature_pos)];
  const int nb = layout.num_bins(feature_pos);
  SplitCandidate best;
  if (nb < 2) return best;
  const HistEntry* slots = hist.feature_slots(layout, feature_pos);
  const HistEntry& miss_entry = hist.miss(feature_pos);
  const NodeStats miss{miss_entry.sum_g, miss_entry.sum_h, miss_entry.count};
  const double parent_score = ScoreFn(parent.sum_g, parent.sum_h);
  const int64_t present = parent.count - miss.count;
  if (params_.monotone_constraints.empty()) {
    return FindSplitHistFast(feature, nb, slots, miss, parent, parent_score,
                             present);
  }
  double acc_g = 0.0, acc_h = 0.0;
  int64_t acc_c = 0;
  for (int b = 0; b + 1 < nb; ++b) {
    acc_g += slots[b].sum_g;
    acc_h += slots[b].sum_h;
    acc_c += slots[b].count;
    if (slots[b].count == 0) continue;  // no boundary change
    ConsiderSplit(parent, parent_score, miss, acc_g, acc_h, acc_c, feature,
                  bins_.cut(feature, b), b, bounds, &best);
    // Every present row is on the left: later boundaries leave the right
    // side empty and can never form a valid split.
    if (acc_c == present) break;
  }
  return best;
}

namespace {

/// Stack capacity of the array-form boundary scan; features with more bins
/// take the scalar fallback.
constexpr int kMaxVecBins = 256;

}  // namespace

Trainer::SplitCandidate Trainer::FindSplitHistFast(
    int feature, int nb, const HistEntry* slots, const NodeStats& miss,
    const NodeStats& parent, double parent_score, int64_t present) const {
  const double alpha = params_.reg_alpha;
  const double lambda = params_.reg_lambda;
  const double gamma = params_.gamma;
  const int64_t msl = params_.min_samples_leaf;
  const double mcw = params_.min_child_weight;
  // Same soft-thresholded score as ScoreFn/ThresholdL1, inlined so the loop
  // body is just adds, compares, and the two divisions.
  const auto score = [alpha, lambda](double g, double h) {
    const double t = g > alpha ? g - alpha : (g < -alpha ? g + alpha : 0.0);
    return t * t / (h + lambda);
  };
  // Present-value right side = (parent - missing) - left, with the same
  // association as ConsiderSplit so gains are bit-identical.
  const double gsub = parent.sum_g - miss.sum_g;
  const double hsub = parent.sum_h - miss.sum_h;
  // With no missing mass the two default directions score identically and
  // missing-left wins the tie-break, so the second direction is skipped.
  const bool no_miss =
      miss.count == 0 && miss.sum_g == 0.0 && miss.sum_h == 0.0;
  double best_gain = kMinSplitGain;
  int best_bin = -1;
  bool best_dir = true;
  if (nb <= kMaxVecBins) {
    // Array form: prefix sums first, then a gain loop whose iterations are
    // independent, so the divisions (the per-boundary cost) pipeline
    // instead of serializing behind branches. Counts are carried as
    // doubles (exact for any realistic row count) to keep the loop in one
    // vectorizable domain. Empty bins duplicate their predecessor's prefix
    // and thus its gain; the strict-> argmax keeps the earlier bin, which
    // reproduces the scalar path's skip of empty boundaries.
    const int nbound = nb - 1;
    double pg[kMaxVecBins], ph[kMaxVecBins], pc[kMaxVecBins];
    double own[kMaxVecBins];
    double gain_l[kMaxVecBins], gain_r[kMaxVecBins];
    {
      double ag = 0.0, ah = 0.0;
      int64_t ac = 0;
      for (int b = 0; b < nbound; ++b) {
        ag += slots[b].sum_g;
        ah += slots[b].sum_h;
        ac += slots[b].count;
        pg[b] = ag;
        ph[b] = ah;
        pc[b] = static_cast<double>(ac);
        own[b] = static_cast<double>(slots[b].count);
      }
    }
    const double msl_d = static_cast<double>(msl);
    const double present_d = static_cast<double>(present);
    const double miss_g = miss.sum_g;
    const double miss_h = miss.sum_h;
    const double miss_c = static_cast<double>(miss.count);
    const double neg_inf = -std::numeric_limits<double>::infinity();
    for (int b = 0; b < nbound; ++b) {  // Missing goes left.
      const double gl = pg[b] + miss_g;
      const double hl = ph[b] + miss_h;
      const double cl = pc[b] + miss_c;
      const double shr = hsub - ph[b];
      const double scr = present_d - pc[b];
      const double gain =
          0.5 * (score(gl, hl) + score(gsub - pg[b], shr) - parent_score) -
          gamma;
      // own[b] == 0 boundaries are skipped in the scalar scan ("no boundary
      // change"), so mask them here for identical decisions.
      const bool ok = own[b] > 0.0 && cl >= msl_d && scr >= msl_d &&
                      hl >= mcw && shr >= mcw;
      gain_l[b] = ok ? gain : neg_inf;
    }
    if (!no_miss) {
      for (int b = 0; b < nbound; ++b) {  // Missing goes right.
        const double sgr = gsub - pg[b];
        const double shr = hsub - ph[b];
        const double gr = sgr + miss_g;
        const double hr = shr + miss_h;
        const double cr = (present_d - pc[b]) + miss_c;
        const double gain =
            0.5 * (score(pg[b], ph[b]) + score(gr, hr) - parent_score) -
            gamma;
        const bool ok = own[b] > 0.0 && pc[b] >= msl_d && cr >= msl_d &&
                        ph[b] >= mcw && hr >= mcw;
        gain_r[b] = ok ? gain : neg_inf;
      }
    }
    // Strict >: bins ascend and missing-left is checked first, so keeping
    // the incumbent on ties reproduces ConsiderSplit's smaller-threshold /
    // missing-left preference.
    for (int b = 0; b < nbound; ++b) {
      if (gain_l[b] > best_gain) {
        best_gain = gain_l[b];
        best_bin = b;
        best_dir = true;
      }
      if (!no_miss && gain_r[b] > best_gain) {
        best_gain = gain_r[b];
        best_bin = b;
        best_dir = false;
      }
    }
    SplitCandidate best;
    if (best_bin >= 0) {
      const double gl =
          best_dir ? pg[best_bin] + miss_g : pg[best_bin];
      const double hl =
          best_dir ? ph[best_bin] + miss_h : ph[best_bin];
      const double gr =
          best_dir ? gsub - pg[best_bin] : (gsub - pg[best_bin]) + miss_g;
      const double hr =
          best_dir ? hsub - ph[best_bin] : (hsub - ph[best_bin]) + miss_h;
      best.valid = true;
      best.feature = feature;
      best.threshold = bins_.cut(feature, best_bin);
      best.bin = best_bin;
      best.default_left = best_dir;
      best.gain = best_gain;
      best.weight_left = LeafWeight(gl, hl);
      best.weight_right = LeafWeight(gr, hr);
    }
    return best;
  }
  // Scalar fallback for very wide features (nb > kMaxVecBins).
  double best_gl = 0.0, best_hl = 0.0, best_gr = 0.0, best_hr = 0.0;
  double acc_g = 0.0, acc_h = 0.0;
  int64_t acc_c = 0;
  for (int b = 0; b + 1 < nb; ++b) {
    acc_g += slots[b].sum_g;
    acc_h += slots[b].sum_h;
    acc_c += slots[b].count;
    if (slots[b].count == 0) continue;  // no boundary change
    const double sgr = gsub - acc_g;
    const double shr = hsub - acc_h;
    const int64_t scr = present - acc_c;
    {  // Missing goes left.
      const double gl = acc_g + miss.sum_g;
      const double hl = acc_h + miss.sum_h;
      const int64_t cl = acc_c + miss.count;
      if (cl >= msl && scr >= msl && hl >= mcw && shr >= mcw) {
        const double gain =
            0.5 * (score(gl, hl) + score(sgr, shr) - parent_score) - gamma;
        if (gain > best_gain) {
          best_gain = gain;
          best_bin = b;
          best_dir = true;
          best_gl = gl;
          best_hl = hl;
          best_gr = sgr;
          best_hr = shr;
        }
      }
    }
    if (!no_miss) {  // Missing goes right.
      const double gr = sgr + miss.sum_g;
      const double hr = shr + miss.sum_h;
      const int64_t cr = scr + miss.count;
      if (acc_c >= msl && cr >= msl && acc_h >= mcw && hr >= mcw) {
        const double gain =
            0.5 * (score(acc_g, acc_h) + score(gr, hr) - parent_score) -
            gamma;
        if (gain > best_gain) {
          best_gain = gain;
          best_bin = b;
          best_dir = false;
          best_gl = acc_g;
          best_hl = acc_h;
          best_gr = gr;
          best_hr = hr;
        }
      }
    }
    // Every present row is on the left: later boundaries leave the right
    // side empty and can never form a valid split.
    if (acc_c == present) break;
  }
  SplitCandidate best;
  if (best_bin >= 0) {
    best.valid = true;
    best.feature = feature;
    best.threshold = bins_.cut(feature, best_bin);
    best.bin = best_bin;
    best.default_left = best_dir;
    best.gain = best_gain;
    best.weight_left = LeafWeight(best_gl, best_hl);
    best.weight_right = LeafWeight(best_gr, best_hr);
  }
  return best;
}

void Trainer::BuildNode(RegressionTree* tree, int node_id,
                        std::vector<int64_t> rows, int depth,
                        const std::vector<GradientPair>& gpairs,
                        const std::vector<int>& features,
                        const NodeBounds& bounds,
                        const HistogramLayout* layout, NodeHistogram hist) {
  NodeStats stats;
  for (int64_t r : rows) {
    stats.sum_g += gpairs[static_cast<size_t>(r)].grad;
    stats.sum_h += gpairs[static_cast<size_t>(r)].hess;
  }
  stats.count = static_cast<int64_t>(rows.size());
  tree->mutable_node(node_id)->cover = stats.sum_h;

  const bool can_split = depth < params_.max_depth &&
                         stats.count >= 2 * params_.min_samples_leaf &&
                         stats.sum_h >= 2 * params_.min_child_weight;
  SplitCandidate best;
  if (can_split) {
    if (use_hist_ && hist.empty()) {
      // Root (or a node whose parent skipped the subtraction trick): one
      // row-major pass accumulates every feature's histogram at once.
      TraceSpan span("gbt.hist_build", "train");
      span.Arg("rows", static_cast<int64_t>(rows.size()));
      hist = hist_builder_->Build(*layout, rows, gpairs);
      ++hist_nodes_direct_;
    }
    TraceSpan split_span("gbt.split_find", "train");
    // Per-feature proposals evaluated in parallel, reduced deterministically.
    std::vector<SplitCandidate> proposals(features.size());
    pool_.ParallelFor(static_cast<int64_t>(features.size()), [&](int64_t i) {
      proposals[static_cast<size_t>(i)] =
          use_hist_
              ? FindSplitHist(static_cast<int>(i), *layout, hist, stats,
                              bounds)
              : FindSplitExact(features[static_cast<size_t>(i)], rows, gpairs,
                               stats, bounds);
    });
    for (const auto& p : proposals) {
      if (!p.valid) continue;
      const bool better =
          !best.valid || p.gain > best.gain ||
          (p.gain == best.gain &&
           (p.feature < best.feature ||
            (p.feature == best.feature && p.threshold < best.threshold)));
      if (better) best = p;
    }
  }

  if (!best.valid) {
    TreeNode* leaf = tree->mutable_node(node_id);
    const double weight = std::min(
        bounds.upper,
        std::max(bounds.lower, LeafWeight(stats.sum_g, stats.sum_h)));
    leaf->value = params_.learning_rate * weight;
    return;
  }

  const auto [left_id, right_id] = tree->Split(
      node_id, best.feature, best.threshold, best.default_left, best.gain);
  std::vector<int64_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (int64_t r : rows) {
    bool go_left;
    if (use_hist_) {
      const uint16_t b = binned_.At(r, best.feature);
      go_left = (b == kMissingBin) ? best.default_left
                                   : static_cast<int>(b) <= best.bin;
    } else {
      const double v = train_.At(r, best.feature);
      go_left = std::isnan(v) ? best.default_left : v < best.threshold;
    }
    (go_left ? left_rows : right_rows).push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();
  // Sibling subtraction: build only the smaller child's histogram from its
  // rows and derive the larger one as parent − smaller. Skipped when the
  // children cannot split anyway (depth or min_samples_leaf), in which case
  // they are passed empty histograms they will never consult.
  NodeHistogram left_hist, right_hist;
  if (use_hist_ && depth + 1 < params_.max_depth &&
      static_cast<int64_t>(std::max(left_rows.size(), right_rows.size())) >=
          2 * params_.min_samples_leaf) {
    const bool left_smaller = left_rows.size() <= right_rows.size();
    NodeHistogram smaller;
    {
      TraceSpan span("gbt.hist_build", "train");
      span.Arg("rows", static_cast<int64_t>(
                           left_smaller ? left_rows.size() : right_rows.size()));
      smaller = hist_builder_->Build(
          *layout, left_smaller ? left_rows : right_rows, gpairs);
      ++hist_nodes_direct_;
    }
    NodeHistogram larger;
    {
      TraceSpan subtract_span("gbt.hist_subtract", "train");
      larger = NodeHistogram::Subtract(std::move(hist), smaller);
      ++hist_nodes_subtracted_;
    }
    left_hist = left_smaller ? std::move(smaller) : std::move(larger);
    right_hist = left_smaller ? std::move(larger) : std::move(smaller);
  }
  hist = NodeHistogram();  // release the parent histogram before recursing
  // Propagate monotone weight bounds: when this split is constrained, the
  // children's admissible weights are separated at the midpoint of the
  // candidate child weights (XGBoost's rule).
  NodeBounds left_bounds = bounds;
  NodeBounds right_bounds = bounds;
  const int constraint = ConstraintOf(best.feature);
  if (constraint != 0) {
    const double mid = 0.5 * (best.weight_left + best.weight_right);
    if (constraint > 0) {
      left_bounds.upper = std::min(left_bounds.upper, mid);
      right_bounds.lower = std::max(right_bounds.lower, mid);
    } else {
      left_bounds.lower = std::max(left_bounds.lower, mid);
      right_bounds.upper = std::min(right_bounds.upper, mid);
    }
  }
  BuildNode(tree, left_id, std::move(left_rows), depth + 1, gpairs, features,
            left_bounds, layout, std::move(left_hist));
  BuildNode(tree, right_id, std::move(right_rows), depth + 1, gpairs,
            features, right_bounds, layout, std::move(right_hist));
}

RegressionTree Trainer::GrowTree(const std::vector<GradientPair>& gpairs,
                                 std::vector<int64_t> rows,
                                 const std::vector<int>& features) {
  RegressionTree tree;
  const NodeBounds root_bounds{-std::numeric_limits<double>::infinity(),
                               std::numeric_limits<double>::infinity()};
  HistogramLayout layout;
  if (use_hist_) layout = HistogramLayout(bins_, features);
  BuildNode(&tree, 0, std::move(rows), 0, gpairs, features, root_bounds,
            use_hist_ ? &layout : nullptr, NodeHistogram());
  return tree;
}

Result<GbtModel> Trainer::Run(const Dataset* validation, TrainingLog* log) {
  MYSAWH_RETURN_NOT_OK(params_.Validate());
  if (train_.num_rows() == 0) {
    return Status::InvalidArgument("training set is empty");
  }
  if (train_.num_features() == 0) {
    return Status::InvalidArgument("training set has no features");
  }
  if (objective_ == nullptr) {
    return Status::InvalidArgument("unknown objective");
  }
  MYSAWH_RETURN_NOT_OK(objective_->ValidateLabels(train_.labels()));
  if (validation != nullptr &&
      validation->num_features() != train_.num_features()) {
    return Status::InvalidArgument("validation feature width mismatch");
  }
  if (params_.early_stopping_rounds > 0 && validation == nullptr) {
    return Status::InvalidArgument(
        "early stopping requires a validation set");
  }
  if (!params_.monotone_constraints.empty() &&
      static_cast<int64_t>(params_.monotone_constraints.size()) !=
          train_.num_features()) {
    return Status::InvalidArgument(
        "monotone_constraints length must equal the feature count");
  }

  TraceSpan train_span("gbt.train", "train");
  train_span.Arg("rows", train_.num_rows());
  train_span.Arg("features", train_.num_features());

  use_hist_ = params_.tree_method == TreeMethod::kHist;
  if (use_hist_) {
    MYSAWH_ASSIGN_OR_RETURN(BinnedData binned_data,
                            BuildBinned(train_, params_.max_bins, &pool_));
    bins_ = std::move(binned_data.bins);
    binned_ = std::move(binned_data.matrix);
    hist_builder_ = std::make_unique<HistogramBuilder>(bins_, binned_, &pool_);
  }

  GbtModel model;
  model.feature_names_ = train_.feature_names();
  model.objective_type_ = params_.objective;
  model.base_score_ = std::isnan(params_.base_score)
                          ? objective_->InitialRawPrediction(train_.labels())
                          : params_.base_score;

  const int64_t n = train_.num_rows();
  const int64_t nf = train_.num_features();
  std::vector<double> raw_train(static_cast<size_t>(n), model.base_score_);
  std::vector<double> raw_valid;
  if (validation != nullptr) {
    raw_valid.assign(static_cast<size_t>(validation->num_rows()),
                     model.base_score_);
  }
  if (log != nullptr) log->metric_name = objective_->DefaultMetricName();

  std::vector<GradientPair> gpairs(static_cast<size_t>(n));
  double best_metric = std::numeric_limits<double>::infinity();
  int best_round = -1;

  // Training telemetry (util/telemetry.h): a per-round JSONL stream of the
  // train/valid metric plus cumulative per-feature split statistics. The
  // disabled path is one relaxed load; when enabled, per-round metrics are
  // computed even without a validation set or TrainingLog. Recording never
  // feeds back into training, so the model is bit-identical either way.
  TelemetryStream telemetry;
  std::vector<int64_t> feature_split_counts;
  std::vector<double> feature_split_gains;
  if (TelemetryEnabled()) {
    telemetry = Telemetry::Global().StartStream("train");
    std::ostringstream header;
    header << "\"objective\":\"" << ObjectiveTypeName(params_.objective)
           << "\",\"metric\":\"" << objective_->DefaultMetricName()
           << "\",\"rows\":" << n << ",\"features\":" << nf
           << ",\"num_trees\":" << params_.num_trees
           << ",\"max_depth\":" << params_.max_depth << ",\"learning_rate\":"
           << TelemetryDouble(params_.learning_rate);
    telemetry.Line("header", header.str());
    feature_split_counts.assign(static_cast<size_t>(nf), 0);
    feature_split_gains.assign(static_cast<size_t>(nf), 0.0);
  }

  for (int round = 0; round < params_.num_trees; ++round) {
    TraceSpan tree_span("gbt.tree", "train");
    tree_span.Arg("round", round);
    ScopedLatencyTimer tree_timer(Metrics().tree_us);
    // Per-row gradients are independent writes to disjoint slots, so the
    // parallel loop is deterministic for any thread count.
    pool_.ParallelFor(n, [&](int64_t i) {
      GradientPair gp = objective_->ComputeGradient(
          train_.label(i), raw_train[static_cast<size_t>(i)]);
      if (params_.scale_pos_weight != 1.0 && train_.label(i) == 1.0) {
        gp.grad *= params_.scale_pos_weight;
        gp.hess *= params_.scale_pos_weight;
      }
      gpairs[static_cast<size_t>(i)] = gp;
    });
    // Row subsample.
    std::vector<int64_t> rows;
    if (params_.subsample < 1.0) {
      const auto k = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(
                 static_cast<double>(n) * params_.subsample)));
      rows = rng_.SampleWithoutReplacement(n, k);
      std::sort(rows.begin(), rows.end());
    } else {
      rows.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) rows[static_cast<size_t>(i)] = i;
    }
    // Column subsample.
    std::vector<int> features;
    if (params_.colsample_bytree < 1.0) {
      const auto k = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(
                 static_cast<double>(nf) * params_.colsample_bytree)));
      for (int64_t f : rng_.SampleWithoutReplacement(nf, k)) {
        features.push_back(static_cast<int>(f));
      }
      std::sort(features.begin(), features.end());
    } else {
      features.resize(static_cast<size_t>(nf));
      for (int64_t f = 0; f < nf; ++f) {
        features[static_cast<size_t>(f)] = static_cast<int>(f);
      }
    }

    RegressionTree tree = GrowTree(gpairs, std::move(rows), features);

    int tree_splits = 0;
    double tree_gain = 0.0;
    if (telemetry.active()) {
      for (int i = 0; i < tree.num_nodes(); ++i) {
        const TreeNode& node = tree.node(i);
        if (node.IsLeaf()) continue;
        ++tree_splits;
        tree_gain += node.gain;
        feature_split_counts[static_cast<size_t>(node.feature)] += 1;
        feature_split_gains[static_cast<size_t>(node.feature)] += node.gain;
      }
    }

    {
      // Update cached raw scores (all rows, not just the subsample).
      TraceSpan span("gbt.update_scores", "train");
      pool_.ParallelFor(n, [&](int64_t i) {
        raw_train[static_cast<size_t>(i)] += tree.Predict(train_.row(i));
      });
      if (validation != nullptr) {
        pool_.ParallelFor(validation->num_rows(), [&](int64_t i) {
          raw_valid[static_cast<size_t>(i)] +=
              tree.Predict(validation->row(i));
        });
      }
    }
    model.trees_.push_back(std::move(tree));

    // Metrics.
    double train_metric = std::numeric_limits<double>::quiet_NaN();
    double valid_metric = std::numeric_limits<double>::quiet_NaN();
    if (log != nullptr || validation != nullptr || telemetry.active()) {
      std::vector<double> preds(static_cast<size_t>(n));
      pool_.ParallelFor(n, [&](int64_t i) {
        preds[static_cast<size_t>(i)] =
            objective_->Transform(raw_train[static_cast<size_t>(i)]);
      });
      train_metric = objective_->EvalDefaultMetric(train_.labels(), preds);
      if (validation != nullptr) {
        std::vector<double> vpreds(raw_valid.size());
        for (size_t i = 0; i < raw_valid.size(); ++i) {
          vpreds[i] = objective_->Transform(raw_valid[i]);
        }
        valid_metric =
            objective_->EvalDefaultMetric(validation->labels(), vpreds);
      }
    }
    if (log != nullptr) {
      log->rounds.push_back({round, train_metric, valid_metric});
    }
    if (telemetry.active()) {
      std::ostringstream line;
      line << "\"round\":" << round << ",\"train\":"
           << TelemetryDouble(train_metric) << ",\"valid\":"
           << TelemetryDouble(valid_metric) << ",\"splits\":" << tree_splits
           << ",\"gain\":" << TelemetryDouble(tree_gain);
      telemetry.Line("round", line.str());
    }
    // Live progress for the stall watchdog: unlike the bulk flush below,
    // this counter must advance *during* training, one round at a time.
    Metrics().rounds_completed->Increment();
    if (validation != nullptr) {
      if (valid_metric < best_metric) {
        best_metric = valid_metric;
        best_round = round;
      }
      if (params_.early_stopping_rounds > 0 &&
          round - best_round >= params_.early_stopping_rounds) {
        break;
      }
    }
  }

  if (params_.early_stopping_rounds > 0 && best_round >= 0) {
    model.trees_.resize(static_cast<size_t>(best_round + 1));
    model.best_iteration_ = best_round;
  } else {
    model.best_iteration_ = static_cast<int>(model.trees_.size()) - 1;
  }
  if (telemetry.active()) {
    // Cumulative per-feature split statistics over the whole run (early
    // stopping trims the model, not this tally — the stream records what
    // training did, not what survived).
    std::ostringstream line;
    line << "\"names\":[";
    const auto& names = train_.feature_names();
    for (size_t f = 0; f < names.size(); ++f) {
      line << (f == 0 ? "" : ",") << "\"" << TelemetryJsonEscape(names[f])
           << "\"";
    }
    line << "],\"split_counts\":[";
    for (size_t f = 0; f < feature_split_counts.size(); ++f) {
      line << (f == 0 ? "" : ",") << feature_split_counts[f];
    }
    line << "],\"split_gains\":[";
    for (size_t f = 0; f < feature_split_gains.size(); ++f) {
      line << (f == 0 ? "" : ",") << TelemetryDouble(feature_split_gains[f]);
    }
    line << "],\"trees\":" << model.trees_.size()
         << ",\"best_iteration\":" << model.best_iteration_;
    telemetry.Line("features", line.str());
    telemetry.Finish();
  }
  // Flush the per-run node counters into the registry in one shot: the
  // recursion stays free of atomics, and the registry still sees exact
  // per-training deltas (tests and benchmarks read these).
  Metrics().hist_nodes_direct->Increment(hist_nodes_direct_);
  Metrics().hist_nodes_subtracted->Increment(hist_nodes_subtracted_);
  Metrics().trees_grown->Increment(static_cast<int64_t>(model.trees_.size()));
  return model;
}

}  // namespace mysawh::gbt
