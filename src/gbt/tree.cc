#include "gbt/tree.h"

#include <cmath>
#include <functional>
#include <sstream>

#include "util/serialization.h"
#include "util/string_util.h"

namespace mysawh::gbt {

RegressionTree::RegressionTree() { nodes_.emplace_back(); }

RegressionTree RegressionTree::FromNodes(std::vector<TreeNode> nodes) {
  RegressionTree tree;
  if (!nodes.empty()) tree.nodes_ = std::move(nodes);
  return tree;
}

int RegressionTree::num_leaves() const {
  int count = 0;
  for (const auto& n : nodes_) count += n.IsLeaf() ? 1 : 0;
  return count;
}

int RegressionTree::MaxDepth() const {
  std::function<int(int)> depth = [&](int id) -> int {
    const TreeNode& n = nodes_[static_cast<size_t>(id)];
    if (n.IsLeaf()) return 0;
    return 1 + std::max(depth(n.left), depth(n.right));
  };
  return depth(0);
}

std::pair<int, int> RegressionTree::Split(int node_id, int feature,
                                          double threshold, bool default_left,
                                          double gain) {
  const int left_id = static_cast<int>(nodes_.size());
  const int right_id = left_id + 1;
  nodes_.emplace_back();
  nodes_.emplace_back();
  TreeNode& node = nodes_[static_cast<size_t>(node_id)];
  node.left = left_id;
  node.right = right_id;
  node.feature = feature;
  node.threshold = threshold;
  node.default_left = default_left;
  node.gain = gain;
  node.value = 0.0;
  return {left_id, right_id};
}

int RegressionTree::GetLeaf(const double* row) const {
  int id = 0;
  while (!nodes_[static_cast<size_t>(id)].IsLeaf()) {
    const TreeNode& n = nodes_[static_cast<size_t>(id)];
    const double v = row[n.feature];
    if (std::isnan(v)) {
      id = n.default_left ? n.left : n.right;
    } else {
      id = v < n.threshold ? n.left : n.right;
    }
  }
  return id;
}

double RegressionTree::Predict(const double* row) const {
  return nodes_[static_cast<size_t>(GetLeaf(row))].value;
}

Status RegressionTree::Validate(int64_t num_features) const {
  if (nodes_.empty()) return Status::Internal("tree has no nodes");
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& n = nodes_[i];
    if (n.IsLeaf()) {
      if (n.right >= 0) {
        return Status::Internal("leaf with right child at node " +
                                std::to_string(i));
      }
      continue;
    }
    if (n.left <= static_cast<int32_t>(i) || n.right <= static_cast<int32_t>(i) ||
        n.left >= static_cast<int32_t>(nodes_.size()) ||
        n.right >= static_cast<int32_t>(nodes_.size())) {
      return Status::Internal("child link out of range at node " +
                              std::to_string(i));
    }
    if (n.feature < 0 ||
        (num_features >= 0 && n.feature >= num_features)) {
      return Status::Internal("split feature out of range at node " +
                              std::to_string(i));
    }
    if (!std::isfinite(n.threshold)) {
      return Status::Internal("non-finite threshold at node " +
                              std::to_string(i));
    }
    if (n.cover < 0) {
      return Status::Internal("negative cover at node " + std::to_string(i));
    }
    const double child_cover = nodes_[static_cast<size_t>(n.left)].cover +
                               nodes_[static_cast<size_t>(n.right)].cover;
    if (child_cover > n.cover + 1e-6 * (1.0 + n.cover)) {
      return Status::Internal("children cover exceeds parent at node " +
                              std::to_string(i));
    }
  }
  return Status::Ok();
}

std::string RegressionTree::ToString(
    const std::vector<std::string>& feature_names) const {
  std::ostringstream os;
  std::function<void(int, int)> dump = [&](int id, int indent) {
    const TreeNode& n = nodes_[static_cast<size_t>(id)];
    os << std::string(static_cast<size_t>(indent) * 2, ' ');
    if (n.IsLeaf()) {
      os << "leaf=" << FormatDouble(n.value, 6) << " cover="
         << FormatDouble(n.cover, 3) << "\n";
      return;
    }
    std::string fname;
    if (n.feature < static_cast<int32_t>(feature_names.size())) {
      fname = feature_names[static_cast<size_t>(n.feature)];
    } else {
      fname = "f";
      fname += std::to_string(n.feature);
    }
    os << "[" << fname << " < " << FormatDouble(n.threshold, 6) << "] yes="
       << n.left << " no=" << n.right
       << " missing=" << (n.default_left ? n.left : n.right)
       << " gain=" << FormatDouble(n.gain, 4) << "\n";
    dump(n.left, indent + 1);
    dump(n.right, indent + 1);
  };
  dump(0, 0);
  return os.str();
}

std::string TreeNodeToText(const TreeNode& node) {
  std::ostringstream os;
  os << node.left << " " << node.right << " " << node.feature << " "
     << EncodeDouble(node.threshold) << " " << (node.default_left ? 1 : 0)
     << " " << EncodeDouble(node.value) << " " << EncodeDouble(node.gain)
     << " " << EncodeDouble(node.cover);
  return os.str();
}

Result<TreeNode> TreeNodeFromText(const std::string& line) {
  const auto p = Split(line, ' ');
  if (p.size() != 8) {
    return Status::InvalidArgument("bad node line: " + line);
  }
  TreeNode n;
  MYSAWH_ASSIGN_OR_RETURN(int64_t left, ParseInt64(p[0]));
  MYSAWH_ASSIGN_OR_RETURN(int64_t right, ParseInt64(p[1]));
  MYSAWH_ASSIGN_OR_RETURN(int64_t feature, ParseInt64(p[2]));
  n.left = static_cast<int32_t>(left);
  n.right = static_cast<int32_t>(right);
  n.feature = static_cast<int32_t>(feature);
  MYSAWH_ASSIGN_OR_RETURN(n.threshold, DecodeDouble(p[3]));
  MYSAWH_ASSIGN_OR_RETURN(int64_t dl, ParseInt64(p[4]));
  n.default_left = dl != 0;
  MYSAWH_ASSIGN_OR_RETURN(n.value, DecodeDouble(p[5]));
  MYSAWH_ASSIGN_OR_RETURN(n.gain, DecodeDouble(p[6]));
  MYSAWH_ASSIGN_OR_RETURN(n.cover, DecodeDouble(p[7]));
  return n;
}

}  // namespace mysawh::gbt
