#include "gbt/binning.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "util/resource_stats.h"
#include "util/trace.h"

namespace mysawh::gbt {

namespace {

/// Cut points for one feature from its sorted distinct present values
/// (non-empty): one bin per value when few, even-rank quantiles otherwise.
/// The last cut is always +inf.
std::vector<double> CutsFromDistinct(const std::vector<double>& values,
                                     int max_bins) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> cuts;
  if (static_cast<int>(values.size()) <= max_bins) {
    // One bin per distinct value: boundary is the midpoint to the next
    // distinct value, so ordinal features split exactly between levels.
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      cuts.push_back(0.5 * (values[i] + values[i + 1]));
    }
    cuts.push_back(inf);
  } else {
    // Even-rank quantile cuts over distinct values.
    for (int b = 1; b < max_bins; ++b) {
      const double pos = static_cast<double>(b) *
                         static_cast<double>(values.size()) /
                         static_cast<double>(max_bins);
      auto idx = static_cast<size_t>(pos);
      idx = std::min(idx, values.size() - 2);
      const double cut = 0.5 * (values[idx] + values[idx + 1]);
      if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
    }
    cuts.push_back(inf);
  }
  return cuts;
}

}  // namespace

Result<FeatureBins> FeatureBins::Build(const Dataset& data, int max_bins) {
  if (max_bins < 2) {
    return Status::InvalidArgument("max_bins must be >= 2");
  }
  FeatureBins out;
  out.cuts_.resize(static_cast<size_t>(data.num_features()));
  for (int64_t f = 0; f < data.num_features(); ++f) {
    std::vector<double> values;
    values.reserve(static_cast<size_t>(data.num_rows()));
    for (int64_t r = 0; r < data.num_rows(); ++r) {
      const double v = data.At(r, f);
      if (!std::isnan(v)) values.push_back(v);
    }
    auto& cuts = out.cuts_[static_cast<size_t>(f)];
    if (values.empty()) {
      cuts = {std::numeric_limits<double>::infinity()};
      continue;
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    cuts = CutsFromDistinct(values, max_bins);
  }
  return out;
}

uint16_t FeatureBins::BinFor(int64_t feature, double value) const {
  if (std::isnan(value)) return kMissingBin;
  const auto& cuts = cuts_[static_cast<size_t>(feature)];
  // First bin whose upper boundary exceeds the value.
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), value);
  const auto idx = static_cast<size_t>(it - cuts.begin());
  return static_cast<uint16_t>(std::min(idx, cuts.size() - 1));
}

BinnedMatrix BinnedMatrix::Build(const Dataset& data,
                                 const FeatureBins& bins) {
  BinnedMatrix out;
  out.num_rows_ = data.num_rows();
  out.num_features_ = data.num_features();
  out.bins_.resize(static_cast<size_t>(data.num_rows() * data.num_features()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    for (int64_t f = 0; f < data.num_features(); ++f) {
      out.bins_[static_cast<size_t>(r * out.num_features_ + f)] =
          bins.BinFor(f, data.At(r, f));
    }
  }
  return out;
}

namespace {

/// One present (non-NaN) cell of a feature column.
struct PresentCell {
  double value;
  int64_t row;
};

/// Sorts non-NaN doubles ascending with an LSD radix sort over the
/// order-preserving IEEE-754 key transform (negatives inverted, positives
/// offset), skipping passes whose digit is constant. Equivalent to
/// std::sort for any mix of finite values and infinities, several times
/// faster at the few-thousand-element sizes binning works with.
void RadixSortValues(std::vector<double>* values) {
  const size_t n = values->size();
  if (n < 128) {
    std::sort(values->begin(), values->end());
    return;
  }
  constexpr uint64_t kMsb = uint64_t{1} << 63;
  std::vector<uint64_t> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t u = std::bit_cast<uint64_t>((*values)[i]);
    a[i] = (u >> 63) ? ~u : (u | kMsb);
  }
  // All eight digit histograms in one pass over the keys.
  uint32_t cnt[8][256] = {};
  for (size_t i = 0; i < n; ++i) {
    const uint64_t k = a[i];
    for (int p = 0; p < 8; ++p) ++cnt[p][(k >> (8 * p)) & 0xFF];
  }
  uint64_t* src = a.data();
  uint64_t* dst = b.data();
  for (int p = 0; p < 8; ++p) {
    // A constant digit leaves the order unchanged: skip the pass.
    bool constant = false;
    for (int d = 0; d < 256; ++d) {
      if (cnt[p][d] == n) {
        constant = true;
        break;
      }
    }
    if (constant) continue;
    uint32_t pos[256];
    uint32_t run = 0;
    for (int d = 0; d < 256; ++d) {
      pos[d] = run;
      run += cnt[p][d];
    }
    const int shift = 8 * p;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t k = src[i];
      dst[pos[(k >> shift) & 0xFF]++] = k;
    }
    std::swap(src, dst);
  }
  for (size_t i = 0; i < n; ++i) {
    const uint64_t k = src[i];
    (*values)[i] = std::bit_cast<double>((k >> 63) ? (k ^ kMsb) : ~k);
  }
}

/// Branchless upper_bound over the cuts: first index whose cut exceeds the
/// value, matching FeatureBins::BinFor exactly (including the cap for +inf
/// values).
inline size_t BinSearch(const double* c, size_t m, double v) {
  size_t base = 0;
  size_t len = m;
  while (len > 1) {
    const size_t half = len >> 1;
    base += (c[base + half - 1] <= v) ? half : 0;
    len -= half;
  }
  size_t idx = base + (c[base] <= v ? 1 : 0);
  return idx >= m ? m - 1 : idx;
}

/// Derives one feature's cuts from its present cells and writes its column
/// of row-major bin cells (BinT is the cell width).
template <typename BinT>
void BuildFeature(const std::vector<PresentCell>& present, int64_t nf,
                  int64_t f, int max_bins, BinT* cells,
                  std::vector<double>* cuts_out) {
  auto& cuts = *cuts_out;
  if (present.empty()) {
    cuts = {std::numeric_limits<double>::infinity()};
    return;
  }
  // Sort values only (half the element size of the cells), dedupe in
  // place, and derive the cuts.
  std::vector<double> values;
  values.reserve(present.size());
  for (const PresentCell& p : present) values.push_back(p.value);
  RadixSortValues(&values);
  values.erase(std::unique(values.begin(), values.end()), values.end());
  cuts = CutsFromDistinct(values, max_bins);
  const double* c = cuts.data();
  const size_t m = cuts.size();
  // Four independent searches at a time: each search is a serial chain of
  // dependent conditional moves, so interleaving hides most of its latency.
  // The halving sequence depends only on m and is shared across lanes.
  size_t i = 0;
  const size_t sz = present.size();
  for (; i + 4 <= sz; i += 4) {
    const double v0 = present[i].value, v1 = present[i + 1].value;
    const double v2 = present[i + 2].value, v3 = present[i + 3].value;
    size_t b0 = 0, b1 = 0, b2 = 0, b3 = 0;
    size_t len = m;
    while (len > 1) {
      const size_t half = len >> 1;
      b0 += (c[b0 + half - 1] <= v0) ? half : 0;
      b1 += (c[b1 + half - 1] <= v1) ? half : 0;
      b2 += (c[b2 + half - 1] <= v2) ? half : 0;
      b3 += (c[b3 + half - 1] <= v3) ? half : 0;
      len -= half;
    }
    b0 += c[b0] <= v0 ? 1 : 0;
    b1 += c[b1] <= v1 ? 1 : 0;
    b2 += c[b2] <= v2 ? 1 : 0;
    b3 += c[b3] <= v3 ? 1 : 0;
    cells[present[i].row * nf + f] =
        static_cast<BinT>(b0 >= m ? m - 1 : b0);
    cells[present[i + 1].row * nf + f] =
        static_cast<BinT>(b1 >= m ? m - 1 : b1);
    cells[present[i + 2].row * nf + f] =
        static_cast<BinT>(b2 >= m ? m - 1 : b2);
    cells[present[i + 3].row * nf + f] =
        static_cast<BinT>(b3 >= m ? m - 1 : b3);
  }
  for (; i < sz; ++i) {
    cells[present[i].row * nf + f] =
        static_cast<BinT>(BinSearch(c, m, present[i].value));
  }
}

/// Collects one feature's present (non-NaN) cells in row order, writing
/// missing sentinels as it goes.
template <typename BinT, BinT MissingV>
std::vector<PresentCell> CollectPresent(const Dataset& data, int64_t f,
                                        BinT* cells) {
  const int64_t n = data.num_rows();
  const int64_t nf = data.num_features();
  std::vector<PresentCell> present;
  present.reserve(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    const double v = data.At(r, f);
    if (std::isnan(v)) {
      cells[r * nf + f] = MissingV;
    } else {
      present.push_back({v, r});
    }
  }
  return present;
}

}  // namespace

Result<BinnedData> BuildBinned(const Dataset& data, int max_bins,
                               ThreadPool* pool) {
  if (max_bins < 2) {
    return Status::InvalidArgument("max_bins must be >= 2");
  }
  TraceSpan span("gbt.binning", "train");
  span.Arg("rows", data.num_rows());
  span.Arg("features", data.num_features());
  BinnedData out;
  const int64_t n = data.num_rows();
  const int64_t nf = data.num_features();
  out.bins.cuts_.resize(static_cast<size_t>(nf));
  out.matrix.num_rows_ = n;
  out.matrix.num_features_ = nf;
  // With at most 254 bins per feature the cells fit one byte; CutsFromDistinct
  // never produces more than max_bins cuts, so the cap is known up front.
  const bool narrow = max_bins <= 254;
  out.matrix.narrow_ = narrow;
  if (narrow) {
    out.matrix.bytes_.resize(static_cast<size_t>(n * nf));
    TrackAlloc(AllocCategory::kBinnedMatrix,
               static_cast<int64_t>(out.matrix.bytes_.size()));
  } else {
    out.matrix.bins_.resize(static_cast<size_t>(n * nf));
    TrackAlloc(AllocCategory::kBinnedMatrix,
               static_cast<int64_t>(out.matrix.bins_.size() *
                                    sizeof(uint16_t)));
  }
  auto build_feature = [&](int64_t f) {
    std::vector<double>* cuts = &out.bins.cuts_[static_cast<size_t>(f)];
    if (narrow) {
      uint8_t* cells = out.matrix.bytes_.data();
      const std::vector<PresentCell> col =
          CollectPresent<uint8_t, kMissingBin8>(data, f, cells);
      BuildFeature<uint8_t>(col, nf, f, max_bins, cells, cuts);
    } else {
      uint16_t* cells = out.matrix.bins_.data();
      const std::vector<PresentCell> col =
          CollectPresent<uint16_t, kMissingBin>(data, f, cells);
      BuildFeature<uint16_t>(col, nf, f, max_bins, cells, cuts);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(nf, build_feature);
  } else {
    for (int64_t f = 0; f < nf; ++f) build_feature(f);
  }
  return out;
}

std::vector<BinOccupancy> ComputeBinOccupancy(const FeatureBins& bins,
                                              const BinnedMatrix& matrix) {
  const int64_t nf = matrix.num_features();
  const int64_t n = matrix.num_rows();
  std::vector<BinOccupancy> occupancy(static_cast<size_t>(nf));
  std::vector<int64_t> counts;
  for (int64_t f = 0; f < nf; ++f) {
    BinOccupancy& entry = occupancy[static_cast<size_t>(f)];
    entry.num_bins = bins.num_bins(f);
    counts.assign(static_cast<size_t>(entry.num_bins), 0);
    for (int64_t r = 0; r < n; ++r) {
      const uint16_t b = matrix.At(r, f);
      if (b == kMissingBin) {
        ++entry.missing;
      } else {
        ++counts[b];
      }
    }
    for (int64_t c : counts) {
      if (c > 0) ++entry.occupied_bins;
      entry.max_bin_count = std::max(entry.max_bin_count, c);
    }
  }
  return occupancy;
}

}  // namespace mysawh::gbt
