#include "gbt/binning.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mysawh::gbt {

Result<FeatureBins> FeatureBins::Build(const Dataset& data, int max_bins) {
  if (max_bins < 2) {
    return Status::InvalidArgument("max_bins must be >= 2");
  }
  FeatureBins out;
  out.cuts_.resize(static_cast<size_t>(data.num_features()));
  const double inf = std::numeric_limits<double>::infinity();
  for (int64_t f = 0; f < data.num_features(); ++f) {
    std::vector<double> values;
    values.reserve(static_cast<size_t>(data.num_rows()));
    for (int64_t r = 0; r < data.num_rows(); ++r) {
      const double v = data.At(r, f);
      if (!std::isnan(v)) values.push_back(v);
    }
    auto& cuts = out.cuts_[static_cast<size_t>(f)];
    if (values.empty()) {
      cuts = {inf};
      continue;
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (static_cast<int>(values.size()) <= max_bins) {
      // One bin per distinct value: boundary is the midpoint to the next
      // distinct value, so ordinal features split exactly between levels.
      for (size_t i = 0; i + 1 < values.size(); ++i) {
        cuts.push_back(0.5 * (values[i] + values[i + 1]));
      }
      cuts.push_back(inf);
    } else {
      // Even-rank quantile cuts over distinct values.
      for (int b = 1; b < max_bins; ++b) {
        const double pos = static_cast<double>(b) *
                           static_cast<double>(values.size()) /
                           static_cast<double>(max_bins);
        auto idx = static_cast<size_t>(pos);
        idx = std::min(idx, values.size() - 2);
        const double cut = 0.5 * (values[idx] + values[idx + 1]);
        if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
      }
      cuts.push_back(inf);
    }
  }
  return out;
}

uint16_t FeatureBins::BinFor(int64_t feature, double value) const {
  if (std::isnan(value)) return kMissingBin;
  const auto& cuts = cuts_[static_cast<size_t>(feature)];
  // First bin whose upper boundary exceeds the value.
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), value);
  const auto idx = static_cast<size_t>(it - cuts.begin());
  return static_cast<uint16_t>(std::min(idx, cuts.size() - 1));
}

BinnedMatrix BinnedMatrix::Build(const Dataset& data,
                                 const FeatureBins& bins) {
  BinnedMatrix out;
  out.num_rows_ = data.num_rows();
  out.bins_.resize(static_cast<size_t>(data.num_rows() * data.num_features()));
  for (int64_t f = 0; f < data.num_features(); ++f) {
    for (int64_t r = 0; r < data.num_rows(); ++r) {
      out.bins_[static_cast<size_t>(f * out.num_rows_ + r)] =
          bins.BinFor(f, data.At(r, f));
    }
  }
  return out;
}

}  // namespace mysawh::gbt
