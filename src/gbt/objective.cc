#include "gbt/objective.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace mysawh::gbt {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double ClampProbability(double p) {
  return std::min(1.0 - 1e-15, std::max(1e-15, p));
}

/// Mean squared error objective: L = 0.5 (y - f)^2.
class SquaredErrorObjective final : public Objective {
 public:
  GradientPair ComputeGradient(double label, double raw) const override {
    return {raw - label, 1.0};
  }
  Status ValidateLabels(const std::vector<double>& labels) const override {
    for (double y : labels) {
      if (std::isnan(y)) {
        return Status::InvalidArgument("squared error: NaN label");
      }
    }
    return Status::Ok();
  }
  double EvalDefaultMetric(
      const std::vector<double>& labels,
      const std::vector<double>& predictions) const override {
    double ss = 0.0;
    for (size_t i = 0; i < labels.size(); ++i) {
      const double d = labels[i] - predictions[i];
      ss += d * d;
    }
    return labels.empty() ? 0.0
                          : std::sqrt(ss / static_cast<double>(labels.size()));
  }
  ObjectiveType type() const override { return ObjectiveType::kSquaredError; }
};

/// Binary logistic loss on raw margins; outputs probabilities.
class LogisticObjective final : public Objective {
 public:
  GradientPair ComputeGradient(double label, double raw) const override {
    const double p = Sigmoid(raw);
    return {p - label, std::max(p * (1.0 - p), 1e-16)};
  }
  double Transform(double raw) const override { return Sigmoid(raw); }
  double InverseTransform(double p) const override {
    const double q = ClampProbability(p);
    return std::log(q / (1.0 - q));
  }
  Status ValidateLabels(const std::vector<double>& labels) const override {
    for (double y : labels) {
      if (y != 0.0 && y != 1.0) {
        return Status::InvalidArgument(
            "binary:logistic labels must be 0 or 1");
      }
    }
    return Status::Ok();
  }
  const char* DefaultMetricName() const override { return "logloss"; }
  double EvalDefaultMetric(
      const std::vector<double>& labels,
      const std::vector<double>& predictions) const override {
    double loss = 0.0;
    for (size_t i = 0; i < labels.size(); ++i) {
      const double p = ClampProbability(predictions[i]);
      loss += labels[i] > 0.5 ? -std::log(p) : -std::log(1.0 - p);
    }
    return labels.empty() ? 0.0 : loss / static_cast<double>(labels.size());
  }
  ObjectiveType type() const override { return ObjectiveType::kLogistic; }
};

/// Pseudo-Huber loss with delta = 1: smooth near 0, linear in the tails.
class PseudoHuberObjective final : public Objective {
 public:
  GradientPair ComputeGradient(double label, double raw) const override {
    const double r = raw - label;
    const double scale = std::sqrt(1.0 + r * r);
    const double grad = r / scale;
    const double hess = 1.0 / (scale * scale * scale);
    return {grad, std::max(hess, 1e-16)};
  }
  Status ValidateLabels(const std::vector<double>& labels) const override {
    for (double y : labels) {
      if (std::isnan(y)) {
        return Status::InvalidArgument("pseudo-huber: NaN label");
      }
    }
    return Status::Ok();
  }
  double EvalDefaultMetric(
      const std::vector<double>& labels,
      const std::vector<double>& predictions) const override {
    double total = 0.0;
    for (size_t i = 0; i < labels.size(); ++i) {
      total += std::abs(labels[i] - predictions[i]);
    }
    return labels.empty() ? 0.0 : total / static_cast<double>(labels.size());
  }
  const char* DefaultMetricName() const override { return "mae"; }
  ObjectiveType type() const override { return ObjectiveType::kPseudoHuber; }
};

/// Poisson deviance with log link: raw score is log-mean.
class PoissonObjective final : public Objective {
 public:
  GradientPair ComputeGradient(double label, double raw) const override {
    const double mu = std::exp(std::min(raw, 30.0));  // overflow guard
    return {mu - label, std::max(mu, 1e-10)};
  }
  double Transform(double raw) const override { return std::exp(raw); }
  double InverseTransform(double mu) const override {
    return std::log(std::max(mu, 1e-10));
  }
  Status ValidateLabels(const std::vector<double>& labels) const override {
    for (double y : labels) {
      if (std::isnan(y) || y < 0.0) {
        return Status::InvalidArgument(
            "count:poisson labels must be non-negative");
      }
    }
    return Status::Ok();
  }
  const char* DefaultMetricName() const override { return "poisson-dev"; }
  double EvalDefaultMetric(
      const std::vector<double>& labels,
      const std::vector<double>& predictions) const override {
    // Mean Poisson deviance (constant terms in y omitted for y = 0).
    double total = 0.0;
    for (size_t i = 0; i < labels.size(); ++i) {
      const double mu = std::max(predictions[i], 1e-10);
      const double y = labels[i];
      total += y > 0.0 ? 2.0 * (y * std::log(y / mu) - (y - mu))
                       : 2.0 * mu;
    }
    return labels.empty() ? 0.0 : total / static_cast<double>(labels.size());
  }
  ObjectiveType type() const override { return ObjectiveType::kPoisson; }
};

}  // namespace

Result<ObjectiveType> ParseObjectiveType(const std::string& name) {
  if (name == "reg:squarederror") return ObjectiveType::kSquaredError;
  if (name == "binary:logistic") return ObjectiveType::kLogistic;
  if (name == "reg:pseudohuber") return ObjectiveType::kPseudoHuber;
  if (name == "count:poisson") return ObjectiveType::kPoisson;
  return Status::InvalidArgument("unknown objective: " + name);
}

const char* ObjectiveTypeName(ObjectiveType type) {
  switch (type) {
    case ObjectiveType::kSquaredError:
      return "reg:squarederror";
    case ObjectiveType::kLogistic:
      return "binary:logistic";
    case ObjectiveType::kPseudoHuber:
      return "reg:pseudohuber";
    case ObjectiveType::kPoisson:
      return "count:poisson";
  }
  return "unknown";
}

double Objective::InitialRawPrediction(
    const std::vector<double>& labels) const {
  if (labels.empty()) return 0.0;
  return InverseTransform(Mean(labels));
}

Status Objective::ValidateLabels(const std::vector<double>&) const {
  return Status::Ok();
}

double Objective::EvalDefaultMetric(
    const std::vector<double>& labels,
    const std::vector<double>& predictions) const {
  double ss = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double d = labels[i] - predictions[i];
    ss += d * d;
  }
  return labels.empty() ? 0.0
                        : std::sqrt(ss / static_cast<double>(labels.size()));
}

std::unique_ptr<Objective> MakeObjective(ObjectiveType type) {
  switch (type) {
    case ObjectiveType::kSquaredError:
      return std::make_unique<SquaredErrorObjective>();
    case ObjectiveType::kLogistic:
      return std::make_unique<LogisticObjective>();
    case ObjectiveType::kPseudoHuber:
      return std::make_unique<PseudoHuberObjective>();
    case ObjectiveType::kPoisson:
      return std::make_unique<PoissonObjective>();
  }
  return nullptr;
}

}  // namespace mysawh::gbt
