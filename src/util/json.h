#ifndef MYSAWH_UTIL_JSON_H_
#define MYSAWH_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// Minimal strict JSON reader for the pipeline's own artifacts (run
/// manifests, telemetry JSONL lines, BENCH_perf.json). Recursive-descent
/// over the full JSON grammar with a nesting-depth cap; rejects trailing
/// garbage, comments, and unquoted keys. Object member order is preserved
/// (the writers emit deterministically ordered objects, and the dashboard
/// renderer keeps that order).
///
/// This is a reader for trusted, machine-written input — errors come back
/// as `InvalidArgument` with a byte offset, never as crashes, but the
/// parser does not try to outdo a full JSON library on pathological input
/// beyond the depth cap.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Value accessors; defaults returned on kind mismatch (callers verify
  /// kinds with the predicates above when the distinction matters).
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_members()
      const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Find + kind/number conveniences for the common manifest shapes.
  /// `fallback` is returned when the key is absent or the kind mismatches.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one complete JSON document. InvalidArgument (with byte offset)
/// on syntax errors, trailing non-whitespace, or nesting deeper than 64.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace mysawh

#endif  // MYSAWH_UTIL_JSON_H_
