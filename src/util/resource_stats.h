#ifndef MYSAWH_UTIL_RESOURCE_STATS_H_
#define MYSAWH_UTIL_RESOURCE_STATS_H_

#include <cstdint>
#include <string>

namespace mysawh {

/// Cheap process resource sampling plus allocation accounting for the
/// pipeline's big memory owners.
///
/// Two independent facilities live here:
///
///   * SampleResources() reads /proc/self/{stat,status} into a
///     ResourceSample (RSS, peak RSS, user/system CPU time, page faults,
///     thread count). One sample costs two small file reads — cheap enough
///     for a monitor ticking every few hundred milliseconds, far too
///     expensive for a per-row hot path. On non-Linux builds every field
///     is zero and `valid` is false.
///
///   * TrackAlloc() is the relaxed-atomic accounting hook the big owners
///     (binned training matrices, compiled flat-forest node blocks,
///     checkpoint serialization buffers) call when they size a buffer.
///     Each category feeds a registry gauge (`alloc.<category>_bytes`,
///     cumulative bytes allocated — see docs/observability.md) and a
///     per-thread cumulative total that trace spans delta for per-span
///     allocation attribution (util/trace.h). A hook costs two relaxed
///     atomic adds; there is no free-side hook — live memory is what
///     SampleResources() reports, the gauges answer "who allocated".

/// One point-in-time sample of /proc/self.
struct ResourceSample {
  int64_t rss_bytes = 0;       ///< VmRSS.
  int64_t peak_rss_bytes = 0;  ///< VmHWM (high-water mark).
  double utime_ms = 0.0;       ///< User CPU time of the whole process.
  double stime_ms = 0.0;       ///< System CPU time of the whole process.
  int64_t minor_faults = 0;
  int64_t major_faults = 0;
  int64_t num_threads = 0;
  bool valid = false;  ///< False when /proc was unreadable (non-Linux).
};

/// Reads the current process sample. Never fails: unreadable fields stay
/// zero and `valid` reports whether /proc/self/stat parsed.
ResourceSample SampleResources();

/// Publishes `sample` into the registry gauges `resource.rss_bytes`,
/// `resource.peak_rss_bytes`, `resource.utime_ms`, `resource.stime_ms`,
/// `resource.minor_faults`, `resource.major_faults`, `resource.threads`.
/// Called by the monitor on every heartbeat so a metrics snapshot taken at
/// any time carries the latest resource state.
void UpdateResourceGauges(const ResourceSample& sample);

/// Renders `sample` as one deterministic-layout JSON object
/// (`{"rss_bytes":...,"peak_rss_bytes":...,...}`).
std::string ResourceSampleJson(const ResourceSample& sample);

/// The tracked big-owner allocation categories.
enum class AllocCategory {
  kBinnedMatrix = 0,  ///< Quantized training matrices (gbt/binning).
  kFlatForest = 1,    ///< Compiled flat-forest node blocks (gbt/flat_forest).
  kCheckpoint = 2,    ///< Checkpoint serialization buffers (core/checkpoint).
};
inline constexpr int kNumAllocCategories = 3;

/// Gauge name of a category ("alloc.binned_matrix_bytes", ...).
const char* AllocCategoryGaugeName(AllocCategory category);

/// Accounts `bytes` allocated by `category`: adds to the category's
/// registry gauge and to the calling thread's cumulative tracked total.
/// Hot-path safe (two relaxed atomic adds); negative or zero byte counts
/// are ignored.
void TrackAlloc(AllocCategory category, int64_t bytes);

/// Cumulative tracked-allocation bytes of the calling thread, across all
/// categories. Trace spans delta this across their lifetime to attribute
/// big-owner allocations to the span that caused them.
int64_t ThreadAllocBytes();

}  // namespace mysawh

#endif  // MYSAWH_UTIL_RESOURCE_STATS_H_
