#ifndef MYSAWH_UTIL_RNG_H_
#define MYSAWH_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace mysawh {

/// Deterministic pseudo-random number generator plus the distributions used
/// throughout the library (cohort simulation, subsampling, CV shuffling).
///
/// The core generator is xoshiro256++ seeded through splitmix64, which gives
/// high-quality 64-bit streams with a tiny state and lets a parent stream
/// `Fork()` statistically independent child streams — important so that e.g.
/// per-patient simulation is insensitive to the order patients are generated
/// in. All distribution code is self-contained so results are identical
/// across platforms and standard libraries.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64 random bits.
  uint64_t NextUint64();

  /// Creates an independent child stream derived from this stream's state.
  Rng Fork();

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive bounds). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);
  /// Standard normal via the Marsaglia polar method.
  double Normal();
  /// Normal with the given mean and standard deviation (sd >= 0).
  double Normal(double mean, double sd);
  /// Exponential with rate `lambda` > 0.
  double Exponential(double lambda);
  /// Poisson with mean `lambda` >= 0 (inversion for small lambda, normal
  /// approximation with rounding for lambda > 50).
  int64_t Poisson(double lambda);
  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia–Tsang.
  double Gamma(double shape, double scale);
  /// Beta(a, b) with a, b > 0, via two gamma draws.
  double Beta(double a, double b);
  /// Binomial(n, p) by summing Bernoulli draws (n is small in this library).
  int64_t Binomial(int64_t n, double p);

  /// Fisher–Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (int64_t i = static_cast<int64_t>(values->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(0, i);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Returns `k` distinct indices drawn uniformly from [0, n), in random
  /// order. Requires 0 <= k <= n.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

 private:
  uint64_t state_[4];
  // Cached second output of the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mysawh

#endif  // MYSAWH_UTIL_RNG_H_
