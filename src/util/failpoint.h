#ifndef MYSAWH_UTIL_FAILPOINT_H_
#define MYSAWH_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// Deterministic fault injection for robustness tests.
///
/// A *failpoint* is a named site in library code where a test (or the
/// `MYSAWH_FAILPOINTS` environment variable) can inject a failure. Sites
/// are compiled into every build; an unarmed site costs one relaxed atomic
/// load, so production code pays essentially nothing.
///
/// Usage at a site inside a Status/Result-returning function:
///
///   Status Model::SaveToFile(...) {
///     MYSAWH_FAILPOINT("model_save/serialize");
///     ...
///   }
///
/// Arming from a test:
///
///   FailpointRegistry::Global().Enable("model_save/serialize",
///                                      FailpointSpec::Once());
///
/// Arming from the environment (parsed once, at first registry use):
///
///   MYSAWH_FAILPOINTS="model_save/rename=once;csv_read/open=every:3"
///
/// Spec grammar (the value after `site=`):
///   once         fail on the next hit only
///   nth:K        fail on exactly the K-th hit (1-based), once
///   from:K       fail on the K-th hit and every later one (simulates a
///                process that dies at hit K and never comes back)
///   every:N      fail on every N-th hit (hit N, 2N, 3N, ...)
///   always       fail on every hit
/// any of which may carry `,errno:E` to attach an errno to the message.
struct FailpointSpec {
  enum class Mode { kOnce, kNth, kFromNth, kEveryN, kAlways };

  Mode mode = Mode::kOnce;
  /// K for kNth/kFromNth, period N for kEveryN. 1-based.
  int64_t n = 1;
  /// When nonzero, appended to the injected error message as errno text.
  int err_no = 0;

  static FailpointSpec Once() { return {}; }
  static FailpointSpec Nth(int64_t k) { return {Mode::kNth, k, 0}; }
  static FailpointSpec FromNth(int64_t k) { return {Mode::kFromNth, k, 0}; }
  static FailpointSpec EveryN(int64_t period) {
    return {Mode::kEveryN, period, 0};
  }
  static FailpointSpec Always() { return {Mode::kAlways, 1, 0}; }

  /// Parses the spec grammar above ("once", "nth:3,errno:5", ...).
  static Result<FailpointSpec> Parse(const std::string& text);
};

/// Process-wide registry of armed failpoints. Thread-safe: sites are hit
/// from worker threads while tests arm/disarm from the main thread.
class FailpointRegistry {
 public:
  /// The process-wide registry. On first use, parses the
  /// `MYSAWH_FAILPOINTS` environment variable (invalid entries are
  /// reported to stderr and skipped; a misspelled injection must never
  /// silently arm nothing in a release binary either).
  static FailpointRegistry& Global();

  /// Arms `site` with `spec`, resetting its hit counter. Re-arming an
  /// armed site replaces its spec.
  void Enable(const std::string& site, FailpointSpec spec);

  /// Parses and arms one `site=spec` entry.
  Status EnableFromString(const std::string& entry);

  /// Disarms `site`. Hit counts for the site are forgotten.
  void Disable(const std::string& site);

  /// Disarms every site (used by test fixtures between cases).
  void DisableAll();

  /// How many times an *armed* `site` has been evaluated since arming
  /// (both triggering and non-triggering hits). 0 for unarmed sites.
  int64_t HitCount(const std::string& site) const;

  /// Evaluates one hit of `site`. Returns the injected error when the
  /// site's spec says this hit fails, std::nullopt to proceed normally.
  /// Unarmed sites return std::nullopt without taking the lock.
  std::optional<Status> Check(const char* site);

  /// True when `Check(site)` would return an error (convenience for void
  /// contexts such as the thread pool dispatch path). Counts as a hit.
  bool ShouldFail(const char* site) { return Check(site).has_value(); }

  /// True when at least one site is armed (lock-free fast path).
  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_acquire) > 0;
  }

 private:
  FailpointRegistry();

  struct Entry {
    FailpointSpec spec;
    int64_t hits = 0;
  };

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, Entry>> entries_;
  std::atomic<int64_t> armed_count_{0};
};

/// Evaluates the named failpoint and, when it triggers, returns the
/// injected error out of the enclosing function. Works in any function
/// returning `Status` or `Result<T>`.
#define MYSAWH_FAILPOINT(site)                                          \
  do {                                                                  \
    if (::mysawh::FailpointRegistry::Global().AnyArmed()) {             \
      if (auto _mysawh_fp =                                             \
              ::mysawh::FailpointRegistry::Global().Check(site)) {      \
        return *std::move(_mysawh_fp);                                  \
      }                                                                 \
    }                                                                   \
  } while (false)

/// Non-returning form for void contexts: evaluates to true when the site
/// triggers. The caller decides how to simulate the failure.
#define MYSAWH_FAILPOINT_TRIGGERED(site)                 \
  (::mysawh::FailpointRegistry::Global().AnyArmed() &&   \
   ::mysawh::FailpointRegistry::Global().ShouldFail(site))

}  // namespace mysawh

#endif  // MYSAWH_UTIL_FAILPOINT_H_
