#ifndef MYSAWH_UTIL_MONITOR_H_
#define MYSAWH_UTIL_MONITOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// The live-run monitor: a background thread that periodically writes a
/// `status.json` heartbeat (schema `mysawh-status v1`) so an operator can
/// watch a long study or training run *while it executes*, instead of
/// waiting for the post-run artifacts. `tools/watch_status.py` tails the
/// file in a terminal.
///
/// Every heartbeat is one atomic temp->rename write (util/file_io), so a
/// reader never sees a torn JSON document; the file always holds the most
/// recent heartbeat, and a monotonic `seq` field tells readers whether
/// they missed any. The document carries: uptime, a /proc resource sample
/// (util/resource_stats), current progress-counter values, study cell
/// progress, the ThreadPool queue backlog, the nonzero counter deltas
/// since the previous heartbeat, and a bounded ring of recent events
/// (currently: stall reports).
///
/// Stall watchdog: when `stall_timeout_ms > 0` the monitor also tracks a
/// set of *progress counters* — counters that only advance when real work
/// completes (training rounds, study cells, predicted rows; never
/// `file_io.*`, which the heartbeat writes themselves increment). If none
/// of them advances for a full timeout window, the monitor emits exactly
/// one `stall` event — into the status stream, the trace buffer (when
/// tracing), and the `monitor.stalls` counter — with the queue state and
/// the most recently completed span names. The latch re-arms when
/// progress resumes, so a run that stalls twice reports twice, but a
/// wedged minute reports once, not sixty times.
///
/// The monitor only *observes*: it never blocks worker threads, and a
/// monitored run's REPORT.md / model artifacts are bit-identical to an
/// unmonitored run (tests/gbt_determinism_test.cc holds this).
struct MonitorOptions {
  /// Destination of the heartbeat file. Required.
  std::string status_path;
  /// Milliseconds between heartbeats.
  int64_t interval_ms = 1000;
  /// Watchdog timeout; 0 disables the watchdog.
  int64_t stall_timeout_ms = 0;
};

class Monitor {
 public:
  explicit Monitor(MonitorOptions options);
  /// Stops the background thread if Start() was called without Stop().
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Starts the background heartbeat thread and publishes this monitor as
  /// Current(). Writes heartbeat seq 0 synchronously before returning, so
  /// a status file exists the moment the monitored work begins.
  Status Start();

  /// Stops the thread and writes one last heartbeat with `"final": true`
  /// (the signal watch_status.py exits on). Idempotent.
  void Stop();

  /// Builds one heartbeat document without writing it. Thread-safe;
  /// advances `seq` and the delta baseline exactly like a periodic tick.
  /// The manifest builder embeds `BuildHeartbeatJson(true)` as the run's
  /// `final_status` block.
  std::string BuildHeartbeatJson(bool final_heartbeat);

  /// Builds and atomically writes one heartbeat now (a synchronous tick).
  Status ForceHeartbeat(bool final_heartbeat = false);

  /// Adds a counter to the watchdog's progress set (before Start()).
  /// The constructor installs the standard set; tests add their own.
  void RegisterProgressCounter(const std::string& name);

  /// Appends one pre-rendered event object (e.g. a model-quality `drift`
  /// alert, see core/drift_monitor.h) to the heartbeat's bounded event
  /// ring. Thread-safe; the event rides out on the next heartbeat.
  void AppendEvent(std::string event_json);

  int64_t heartbeats_written() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }
  int64_t stall_events() const {
    return stalls_.load(std::memory_order_relaxed);
  }

  /// The process's active monitor, or nullptr. Published by Start() and
  /// retracted by Stop()/destruction; at most one monitor runs at a time.
  static Monitor* Current();

 private:
  void Loop();
  /// One watchdog evaluation; appends a stall event when the latch fires.
  void CheckStall(int64_t uptime_ms);
  int64_t UptimeMs() const;

  const MonitorOptions options_;
  std::vector<std::string> progress_counter_names_;

  std::thread thread_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool started_ = false;

  /// Guards heartbeat construction state (seq, deltas, events, watchdog).
  std::mutex tick_mutex_;
  int64_t next_seq_ = 0;
  std::vector<std::pair<std::string, int64_t>> last_counter_values_;
  std::vector<std::string> event_jsons_;  ///< Bounded, oldest dropped.
  int64_t last_progress_uptime_ms_ = 0;
  std::vector<int64_t> last_progress_values_;
  bool stall_latched_ = false;

  std::atomic<int64_t> heartbeats_{0};
  std::atomic<int64_t> stalls_{0};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace mysawh

#endif  // MYSAWH_UTIL_MONITOR_H_
