#include "util/csv.h"

#include <sstream>

#include "util/failpoint.h"
#include "util/file_io.h"

namespace mysawh {

namespace {

/// Splits one logical CSV record (already free of embedded record breaks in
/// this library's usage) into fields, honouring quotes.
Result<std::vector<std::string>> SplitRecord(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote in CSV record");
  }
  fields.push_back(std::move(field));
  return fields;
}

std::string EscapeField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Result<int> CsvDocument::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return Status::NotFound("CSV column not found: " + name);
}

Result<CsvDocument> ParseCsv(const std::string& content) {
  CsvDocument doc;
  std::istringstream in(content);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && in.eof()) break;
    MYSAWH_ASSIGN_OR_RETURN(auto fields, SplitRecord(line));
    if (first) {
      doc.header = std::move(fields);
      first = false;
    } else {
      if (fields.size() != doc.header.size()) {
        return Status::InvalidArgument(
            "CSV row width " + std::to_string(fields.size()) +
            " differs from header width " + std::to_string(doc.header.size()));
      }
      doc.rows.push_back(std::move(fields));
    }
  }
  if (first) return Status::InvalidArgument("CSV content has no header row");
  return doc;
}

Result<CsvDocument> ReadCsv(const std::string& path, bool require_checksum) {
  MYSAWH_FAILPOINT("csv_read/open");
  MYSAWH_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  if (LooksChecksummed(content)) {
    MYSAWH_ASSIGN_OR_RETURN(content, UnwrapChecksummed(content));
  } else if (require_checksum) {
    return Status::DataLoss("expected a checksummed CSV artifact: " + path);
  }
  return ParseCsv(content);
}

std::string CsvToString(const CsvDocument& doc) {
  std::ostringstream os;
  for (size_t i = 0; i < doc.header.size(); ++i) {
    if (i > 0) os << ',';
    os << EscapeField(doc.header[i]);
  }
  os << '\n';
  for (const auto& row : doc.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << EscapeField(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

Status WriteCsv(const std::string& path, const CsvDocument& doc,
                bool checksummed) {
  for (const auto& row : doc.rows) {
    if (row.size() != doc.header.size()) {
      return Status::InvalidArgument("CSV row width differs from header");
    }
  }
  const std::string text = CsvToString(doc);
  return checksummed ? WriteFileChecksummed(path, text, "csv_write")
                     : WriteFileAtomic(path, text, "csv_write");
}

}  // namespace mysawh
