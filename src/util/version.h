#ifndef MYSAWH_UTIL_VERSION_H_
#define MYSAWH_UTIL_VERSION_H_

namespace mysawh {

/// The `git describe --always --dirty` of the tree this binary was built
/// from, injected at configure time (see src/CMakeLists.txt); "unknown"
/// when the build did not run inside a git checkout. Recorded in run
/// manifests so study artifacts are traceable to a source revision.
const char* GitDescribe();

}  // namespace mysawh

#endif  // MYSAWH_UTIL_VERSION_H_
