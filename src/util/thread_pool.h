#ifndef MYSAWH_UTIL_THREAD_POOL_H_
#define MYSAWH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mysawh {

/// A fixed-size worker pool used to parallelize per-feature split finding
/// and batch prediction. With `num_threads <= 1` all work runs inline on the
/// calling thread, which keeps single-core environments overhead-free and
/// makes results trivially deterministic.
///
/// Fault injection: the dispatch path hits the `thread_pool/task`
/// failpoint once per dispatched task (once per inline ParallelFor* call).
/// A triggering hit drops the task body but still accounts its completion,
/// so robustness tests can prove that a dying task neither deadlocks
/// Wait()/ParallelFor nor poisons later rounds on the same pool.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 or 1 means inline execution).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 when running inline).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task`; it may run on any worker (or inline).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Tasks submitted but not yet picked up by a worker (the queue
  /// backlog; running tasks are not counted). Always 0 in inline mode.
  /// Feeds the `thread_pool.queue_depth` gauge, which sums the backlog
  /// across every live pool in the process.
  int64_t PendingTasks() const;

  /// Runs `fn(i)` for i in [0, count), partitioned into contiguous chunks
  /// across the pool, and blocks until all iterations complete. `fn` must be
  /// safe to call concurrently for distinct i.
  ///
  /// Must not be called from inside a task running on this pool: Wait()
  /// counts the caller's own task as in flight and would deadlock.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn);

  /// Runs `fn(chunk, begin, end)` over the fixed-size partition of
  /// [0, count) into chunks of `chunk_size` (the last chunk may be short),
  /// and blocks until all chunks complete. Chunk boundaries depend only on
  /// `count` and `chunk_size` — never on the worker count — so reductions
  /// that accumulate per chunk and then merge in chunk order are bit-exact
  /// for any `num_threads`, including inline execution. The chunk index is
  /// dense in [0, ceil(count / chunk_size)).
  void ParallelForChunks(
      int64_t count, int64_t chunk_size,
      const std::function<void(int64_t chunk, int64_t begin, int64_t end)>&
          fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// A process-wide shared pool sized to the hardware concurrency, for batch
/// workloads (prediction, SHAP) that have no per-call thread configuration.
/// Lazily constructed on first use; on single-core machines it runs inline.
/// Safe to use from several caller threads at once, but the no-reentrancy
/// rule of ParallelFor applies here too.
ThreadPool& DefaultPool();

}  // namespace mysawh

#endif  // MYSAWH_UTIL_THREAD_POOL_H_
