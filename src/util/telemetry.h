#ifndef MYSAWH_UTIL_TELEMETRY_H_
#define MYSAWH_UTIL_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// Training-telemetry sink: named JSONL streams of per-iteration learning
/// diagnostics (train loss, held-out metric, split statistics), written as
/// a deterministic `mysawh-telemetry v1` artifact.
///
/// Discipline mirrors util/trace.h: telemetry is compiled into every build
/// and a *disabled* stream costs one relaxed atomic load and allocates
/// nothing, so `gbt::Trainer` stays instrumented permanently. Enabling
/// (CLI `--telemetry-out=<file>`, or Telemetry::Global().Enable() in
/// tests) starts a session; producers then open streams, append typed
/// JSONL lines, and deposit the finished stream into the global collector.
///
///   TelemetryStream stream;
///   if (TelemetryEnabled()) {
///     stream = Telemetry::Global().StartStream("final");
///     stream.Line("header", "\"rows\":1800");   // one JSONL line
///   }
///   ...
///   if (stream.active()) stream.Line("round", "\"round\":0,\"train\":...");
///
/// Streams buffer locally (no lock per line) and are deposited under the
/// collector mutex on Finish()/destruction. Serialization sorts streams
/// by label, so the artifact is byte-identical for any thread count as
/// long as labels are unique and the recorded values deterministic —
/// which training guarantees (see tests/gbt_determinism_test.cc).
///
/// Labels are hierarchical: TelemetryScope pushes thread-local context
/// segments ("QoL-DD-fi0", then "cv0"), and StartStream(kind) names the
/// stream "<context>/<kind>" ("QoL-DD-fi0/cv0/train"). Scopes nest with
/// '/' joins and cost nothing when telemetry is disabled.

namespace telemetry_internal {
/// Session on/off flag; namespace-scope atomic so the disabled fast path
/// is exactly one relaxed load with no init guard.
extern std::atomic<bool> g_enabled;
}  // namespace telemetry_internal

/// True when a telemetry session is active — the one-load fast path. Call
/// sites building dynamic labels or computing extra per-round metrics must
/// guard on this so the disabled mode costs nothing.
inline bool TelemetryEnabled() {
  return telemetry_internal::g_enabled.load(std::memory_order_relaxed);
}

/// JSON string escaping for telemetry line bodies.
std::string TelemetryJsonEscape(const std::string& s);

/// Deterministic JSON rendering of a double: shortest round-trip-exact
/// decimal form ("%.17g" tightened), "null" for NaN, and explicit
/// "1e9999"-free infinities rendered as +/-1e308 sentinels are never
/// produced — training metrics are finite or NaN.
std::string TelemetryDouble(double value);

/// Pushes one '/'-joined segment onto this thread's telemetry context for
/// the scope's lifetime. Free when telemetry is disabled at construction.
class TelemetryScope {
 public:
  explicit TelemetryScope(const std::string& segment);
  ~TelemetryScope();
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  bool pushed_ = false;
};

/// The current thread's '/'-joined context ("" outside any scope).
std::string TelemetryContextLabel();

/// A buffered JSONL stream under construction. Move-only; inactive when
/// default-constructed or after Finish().
class TelemetryStream {
 public:
  TelemetryStream() = default;
  TelemetryStream(TelemetryStream&& other) noexcept { *this = std::move(other); }
  TelemetryStream& operator=(TelemetryStream&& other) noexcept;
  TelemetryStream(const TelemetryStream&) = delete;
  TelemetryStream& operator=(const TelemetryStream&) = delete;
  ~TelemetryStream() { Finish(); }

  bool active() const { return active_; }
  const std::string& label() const { return label_; }

  /// Appends one JSONL line `{"stream":"<label>","type":"<type>",<fields>}`.
  /// `fields` is a pre-rendered JSON fragment without braces ("" allowed).
  void Line(const char* type, const std::string& fields);

  /// Deposits the buffered lines into the global collector; the stream
  /// becomes inactive. Called by the destructor when still active.
  void Finish();

 private:
  friend class Telemetry;
  bool active_ = false;
  std::string label_;
  std::vector<std::string> lines_;
};

/// The process-wide stream collector.
class Telemetry {
 public:
  static Telemetry& Global();

  /// Starts a fresh session: clears previously collected streams. Call
  /// quiescent (no streams concurrently open).
  void Enable();
  /// Stops recording. Streams still open deposit on Finish (they belong
  /// to the session being closed).
  void Disable();
  bool enabled() const { return TelemetryEnabled(); }

  /// Opens a stream labelled "<thread context>/<kind>" (just `kind` when
  /// no scope is active). Returns an inactive stream when disabled.
  TelemetryStream StartStream(const std::string& kind);

  /// Number of deposited streams.
  size_t stream_count();

  /// The collected session as JSONL: one `{"schema":"mysawh-telemetry
  /// v1",...}` header line, then every stream's lines with streams in
  /// sorted label order. Call quiescent.
  std::string ToJsonl();

  /// ToJsonl() written atomically to `path`.
  Status WriteJsonl(const std::string& path);

 private:
  friend class TelemetryStream;
  Telemetry() = default;
  void Deposit(std::string label, std::vector<std::string> lines);

  std::mutex mutex_;
  struct Deposited {
    std::string label;
    std::vector<std::string> lines;
  };
  std::vector<Deposited> streams_;
};

}  // namespace mysawh

#endif  // MYSAWH_UTIL_TELEMETRY_H_
