#ifndef MYSAWH_UTIL_STATUS_H_
#define MYSAWH_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace mysawh {

/// Machine-readable category of a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kIoError = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kDataLoss = 9,
};

/// Returns the canonical lowercase name of `code` (e.g. "invalid argument").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without exceptions.
///
/// This follows the Arrow/RocksDB idiom: functions that can fail return a
/// `Status` (or a `Result<T>`, below) instead of throwing. The zero-argument
/// constructor and `Status::Ok()` build the success value; factory functions
/// build each error category with a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Success.
  static Status Ok() { return Status(); }
  /// The caller supplied an invalid argument.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// A requested entity was not found.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// An index or value was outside its permitted range.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// The operation was rejected because the system is not in the required
  /// state (e.g. predicting with an untrained model).
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// The entity the caller attempted to create already exists.
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// A filesystem or serialization error.
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  /// The requested feature is not implemented.
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  /// An invariant was violated; indicates a bug in this library.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Stored data is unrecoverably corrupt (checksum mismatch, truncated
  /// artifact). Distinct from kIoError so callers can tell "retry/IO
  /// problem" apart from "this artifact must be regenerated".
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Never both.
///
/// Usage:
///   Result<Dataset> r = LoadDataset(path);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor): mirrors absl.
      : value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the held value. Aborts with the error message when !ok() —
  /// accessing the value of a failed Result is always a caller bug, and an
  /// immediate loud failure beats undefined behaviour in a data pipeline.
  const T& value() const& {
    DieIfError();
    return *value_;
  }
  T& value() & {
    DieIfError();
    return *value_;
  }
  T&& value() && {
    DieIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  void DieIfError() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define MYSAWH_RETURN_NOT_OK(expr)                \
  do {                                            \
    ::mysawh::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Evaluates `rexpr` (a Result<T>), propagating its error; otherwise binds
/// the moved value to `lhs`.
#define MYSAWH_ASSIGN_OR_RETURN(lhs, rexpr)               \
  MYSAWH_ASSIGN_OR_RETURN_IMPL_(                          \
      MYSAWH_STATUS_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define MYSAWH_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define MYSAWH_STATUS_CONCAT_(a, b) MYSAWH_STATUS_CONCAT_IMPL_(a, b)
#define MYSAWH_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace mysawh

#endif  // MYSAWH_UTIL_STATUS_H_
