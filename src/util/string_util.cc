#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace mysawh {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return std::string(input.substr(begin, end - begin));
}

Result<double> ParseDouble(std::string_view input) {
  const std::string s = Trim(input);
  if (s.empty()) return Status::InvalidArgument("empty numeric field");
  errno = 0;
  char* endp = nullptr;
  const double value = std::strtod(s.c_str(), &endp);
  if (endp != s.c_str() + s.size()) {
    return Status::InvalidArgument("not a number: '" + s + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("numeric overflow: '" + s + "'");
  }
  return value;
}

Result<double> ParseDoubleAllowMissing(std::string_view input) {
  const std::string s = Trim(input);
  if (s.empty() || s == "nan" || s == "NaN" || s == "NA") {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return ParseDouble(s);
}

Result<int64_t> ParseInt64(std::string_view input) {
  const std::string s = Trim(input);
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  errno = 0;
  char* endp = nullptr;
  const long long value = std::strtoll(s.c_str(), &endp, 10);
  if (endp != s.c_str() + s.size()) {
    return Status::InvalidArgument("not an integer: '" + s + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("integer overflow: '" + s + "'");
  }
  return static_cast<int64_t>(value);
}

std::string FormatDouble(double value, int digits) {
  if (std::isnan(value)) return "nan";
  std::ostringstream os;
  os.precision(digits);
  os << std::fixed << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  if (s == "-0") s = "0";
  return s;
}

std::string FormatPercent(double value, int decimals) {
  std::ostringstream os;
  os.precision(decimals);
  os << std::fixed << value * 100.0 << "%";
  return os.str();
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace mysawh
