#ifndef MYSAWH_UTIL_TABLE_PRINTER_H_
#define MYSAWH_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// Renders aligned monospace tables for the benchmark harness, so each bench
/// binary prints the same rows the paper's tables/figures report.
///
/// Malformed input (a row whose width differs from the header's) is recorded
/// instead of aborting: the row is dropped, `status()` reports the first
/// mistake, and ToString() appends a visible error note — a bench with a
/// bad row still prints its good rows.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row. A row whose width differs from the header's is
  /// dropped and recorded in status().
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator line at this position.
  void AddSeparator();

  /// First error recorded by AddRow; Ok when every row matched the header.
  const Status& status() const { return status_; }

  /// Renders with column padding and a header rule. When rows were dropped,
  /// the rendering ends with an error note naming the first mistake.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
  Status status_;
  int64_t dropped_rows_ = 0;
};

/// Renders a labelled horizontal ASCII bar chart (used by benches that
/// reproduce histogram figures). `max_width` is the bar length of the
/// largest value. Fails with InvalidArgument when the label and value
/// counts differ, `max_width` is negative, or a value is not finite.
Result<std::string> RenderBarChart(const std::vector<std::string>& labels,
                                   const std::vector<double>& values,
                                   int max_width = 50);

}  // namespace mysawh

#endif  // MYSAWH_UTIL_TABLE_PRINTER_H_
