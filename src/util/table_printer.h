#ifndef MYSAWH_UTIL_TABLE_PRINTER_H_
#define MYSAWH_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace mysawh {

/// Renders aligned monospace tables for the benchmark harness, so each bench
/// binary prints the same rows the paper's tables/figures report.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; width must equal the header width.
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator line at this position.
  void AddSeparator();

  /// Renders with column padding and a header rule.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a labelled horizontal ASCII bar chart (used by benches that
/// reproduce histogram figures). `max_width` is the bar length of the
/// largest value.
std::string RenderBarChart(const std::vector<std::string>& labels,
                           const std::vector<double>& values,
                           int max_width = 50);

}  // namespace mysawh

#endif  // MYSAWH_UTIL_TABLE_PRINTER_H_
