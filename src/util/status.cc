#include "util/status.h"

namespace mysawh {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "Data loss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mysawh
