#ifndef MYSAWH_UTIL_METRICS_H_
#define MYSAWH_UTIL_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mysawh {

/// Process-wide metrics: named counters, gauges, and fixed-bucket latency
/// histograms, snapshot-able to deterministic JSON.
///
/// Design goals, in order:
///   * *Lock-cheap hot path.* Every instrument is a handful of relaxed
///     atomics; the registry mutex is taken only on first lookup of a name.
///     Call sites cache the returned pointer (instruments are never freed,
///     so a cached pointer stays valid for the process lifetime):
///
///       static Counter* rows =
///           MetricsRegistry::Global().GetCounter("gbt.predict.rows");
///       rows->Increment(n);
///
///   * *Deterministic snapshots.* SnapshotJson() emits every instrument in
///     sorted name order with a fixed field layout, so two quiescent
///     processes that did the same work produce byte-identical JSON.
///   * *One counter system.* The ad-hoc `TrainingLog` histogram counters
///     of earlier revisions live here now (`gbt.train.*`); new subsystems
///     register their instruments instead of growing private structs.
///
/// The metric name catalog is documented in docs/observability.md.

/// A monotonically increasing 64-bit counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A 64-bit value that can move both ways (queue depths, cache sizes).
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A latency histogram over fixed power-of-two microsecond buckets:
/// bucket i counts durations in [2^(i-1), 2^i) µs (bucket 0 holds 0 µs;
/// the last bucket is unbounded above). Also tracks count / sum / max, so
/// mean latency and tail shape are both recoverable from a snapshot.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 20;

  void Record(int64_t micros);

  /// Convenience for call sites holding a steady_clock start point.
  void RecordSince(std::chrono::steady_clock::time_point start) {
    Record(std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start)
               .count());
  }

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t SumMicros() const { return sum_.load(std::memory_order_relaxed); }
  int64_t MaxMicros() const { return max_.load(std::memory_order_relaxed); }
  int64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  void Reset();

  /// Approximate `q`-quantile (q in (0, 1]) in microseconds, resolved to
  /// the upper edge of the bucket holding the rank-ceil(q*count) sample
  /// (the unbounded last bucket reports the recorded max). Returns 0 on an
  /// empty histogram. See HistogramQuantileFromBuckets for the exact
  /// semantics; p50/p90/p99 in the `report` dashboard come from here.
  int64_t ApproxQuantileMicros(double q) const;

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// Quantile extraction from a power-of-two bucket layout, shared by
/// LatencyHistogram::ApproxQuantileMicros and artifact readers (the
/// `report` dashboard re-derives percentiles from snapshot bucket arrays).
///
/// Semantics, chosen to be exactly unit-testable: the target rank is
/// ceil(q * count) (1-based); the answer is the representative value of the
/// first bucket whose cumulative count reaches that rank — 0 for bucket 0,
/// 2^i - 1 (the bucket's inclusive upper edge) for bucket i >= 1, and
/// `max_micros` for the unbounded last bucket. `q` is clamped to (0, 1];
/// an empty histogram returns 0.
int64_t HistogramQuantileFromBuckets(const int64_t* buckets, int num_buckets,
                                     int64_t max_micros, double q);

/// RAII wall-clock timer recording into a LatencyHistogram on destruction.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(LatencyHistogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatencyTimer() {
    if (histogram_ != nullptr) histogram_->RecordSince(start_);
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// The process-wide instrument registry. Thread-safe; instruments are
/// created on first lookup and live for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. The pointer is stable forever; cache it at hot call sites.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Serializes every registered instrument as deterministic JSON: one
  /// top-level object with "counters" / "gauges" / "histograms" objects
  /// whose keys appear in sorted order. See docs/observability.md.
  std::string SnapshotJson() const;

  /// Every registered counter as (name, value) in sorted name order. The
  /// monitor diffs two of these to report per-heartbeat activity deltas.
  std::vector<std::pair<std::string, int64_t>> CounterValues() const;

  /// Zeroes every instrument (names and pointers survive). For tests and
  /// benchmarks that measure deltas from a clean slate; production code
  /// never resets.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace mysawh

#endif  // MYSAWH_UTIL_METRICS_H_
