#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "util/failpoint.h"
#include "util/metrics.h"

namespace mysawh {

namespace {

/// Fault site of the dispatch path. When armed (tests only), a triggering
/// hit drops the task *body* while still accounting its completion, which
/// models "a task died without producing its result": Wait()/ParallelFor
/// return normally, consumers observe the missing result through their own
/// Status slots, and the pool stays healthy for subsequent rounds.
bool TaskDropped() { return MYSAWH_FAILPOINT_TRIGGERED("thread_pool/task"); }

/// Pool instruments, shared by every pool in the process (the registry is
/// global; pools are fungible workers of one process). Cached pointers:
/// the registry lock is paid once per process, not per task.
struct PoolMetrics {
  Gauge* queue_depth;
  Counter* dispatched;
  Counter* inline_runs;
  Counter* dropped;
  LatencyHistogram* task_us;
};

PoolMetrics& Metrics() {
  static PoolMetrics metrics = [] {
    auto& registry = MetricsRegistry::Global();
    return PoolMetrics{registry.GetGauge("thread_pool.queue_depth"),
                       registry.GetCounter("thread_pool.tasks_dispatched"),
                       registry.GetCounter("thread_pool.tasks_inline"),
                       registry.GetCounter("thread_pool.tasks_dropped"),
                       registry.GetHistogram("thread_pool.task_us")};
  }();
  return metrics;
}

/// Runs one task body under the drop failpoint, timing it into the task
/// latency histogram.
void RunAccounted(const std::function<void()>& task) {
  if (TaskDropped()) {
    Metrics().dropped->Increment();
    return;
  }
  // Fault site for the stall watchdog: a triggering hit wedges the task
  // (sleeps long enough for a short-timeout watchdog to fire) before
  // running it normally, so the run survives while the monitor observes
  // a genuine progress gap.
  if (MYSAWH_FAILPOINT_TRIGGERED("thread_pool/wedge")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  ScopedLatencyTimer timer(Metrics().task_us);
  task();
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(0, num_threads <= 1 ? 0 : num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    Metrics().inline_runs->Increment();
    RunAccounted(task);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  Metrics().dispatched->Increment();
  Metrics().queue_depth->Add(1);
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

int64_t ThreadPool::PendingTasks() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return static_cast<int64_t>(tasks_.size());
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  if (workers_.empty()) {
    // One dispatch per chunk-equivalent would be ambiguous inline; treat
    // the whole inline range as one dispatched task, mirroring Submit.
    Metrics().inline_runs->Increment();
    if (TaskDropped()) {
      Metrics().dropped->Increment();
      return;
    }
    ScopedLatencyTimer timer(Metrics().task_us);
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const int64_t num_chunks =
      std::min<int64_t>(count, static_cast<int64_t>(workers_.size()) * 4);
  const int64_t chunk = (count + num_chunks - 1) / num_chunks;
  for (int64_t start = 0; start < count; start += chunk) {
    const int64_t end = std::min(start + chunk, count);
    Submit([start, end, &fn] {
      for (int64_t i = start; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::ParallelForChunks(
    int64_t count, int64_t chunk_size,
    const std::function<void(int64_t chunk, int64_t begin, int64_t end)>&
        fn) {
  if (count <= 0 || chunk_size <= 0) return;
  if (workers_.empty()) {
    Metrics().inline_runs->Increment();
    if (TaskDropped()) {
      Metrics().dropped->Increment();
      return;
    }
    ScopedLatencyTimer timer(Metrics().task_us);
    int64_t chunk = 0;
    for (int64_t begin = 0; begin < count; begin += chunk_size, ++chunk) {
      fn(chunk, begin, std::min(begin + chunk_size, count));
    }
    return;
  }
  int64_t chunk = 0;
  for (int64_t begin = 0; begin < count; begin += chunk_size, ++chunk) {
    const int64_t end = std::min(begin + chunk_size, count);
    Submit([chunk, begin, end, &fn] { fn(chunk, begin, end); });
  }
  Wait();
}

ThreadPool& DefaultPool() {
  static ThreadPool pool(
      static_cast<int>(std::thread::hardware_concurrency()));
  return pool;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    Metrics().queue_depth->Add(-1);
    RunAccounted(task);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace mysawh
