#include "util/serialization.h"

#include <cstring>
#include <sstream>

#include "util/string_util.h"

namespace mysawh {

std::string EncodeDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  std::ostringstream os;
  os << std::hex << bits;
  return os.str();
}

Result<double> DecodeDouble(const std::string& s) {
  uint64_t bits = 0;
  std::istringstream is(s);
  is >> std::hex >> bits;
  if (is.fail() || !is.eof()) {
    return Status::InvalidArgument("bad double encoding: " + s);
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string EncodeDoubleVector(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(EncodeDouble(v));
  return Join(fields, " ");
}

Result<std::vector<double>> DecodeDoubleVector(const std::string& s,
                                               int64_t expected_count) {
  std::vector<double> out;
  if (!s.empty()) {
    for (const std::string& field : Split(s, ' ')) {
      MYSAWH_ASSIGN_OR_RETURN(double v, DecodeDouble(field));
      out.push_back(v);
    }
  }
  if (expected_count >= 0 &&
      static_cast<int64_t>(out.size()) != expected_count) {
    return Status::InvalidArgument(
        "expected " + std::to_string(expected_count) + " encoded doubles, got " +
        std::to_string(out.size()));
  }
  return out;
}

}  // namespace mysawh
