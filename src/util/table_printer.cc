#include "util/table_printer.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace mysawh {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    ++dropped_rows_;
    if (status_.ok()) {
      status_ = Status::InvalidArgument(
          "row width " + std::to_string(row.size()) + " != header width " +
          std::to_string(header_.size()));
    }
    return;
  }
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_rule = [&] {
    std::string line = "+";
    for (size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < row.size(); ++i) {
      line += " " + row[i] + std::string(widths[i] - row[i].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_rule() + render_row(header_) + render_rule();
  for (const auto& row : rows_) {
    out += row.empty() ? render_rule() : render_row(row);
  }
  out += render_rule();
  if (!status_.ok()) {
    out += "[table error: dropped " + std::to_string(dropped_rows_) +
           " malformed row(s); first: " + status_.message() + "]\n";
  }
  return out;
}

Result<std::string> RenderBarChart(const std::vector<std::string>& labels,
                                   const std::vector<double>& values,
                                   int max_width) {
  if (labels.size() != values.size()) {
    return Status::InvalidArgument(
        "bar chart needs one label per value: " +
        std::to_string(labels.size()) + " labels, " +
        std::to_string(values.size()) + " values");
  }
  if (max_width < 0) {
    return Status::InvalidArgument("negative bar chart max_width");
  }
  double max_value = 0.0;
  size_t label_width = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      return Status::InvalidArgument("non-finite bar chart value at index " +
                                     std::to_string(i));
    }
    max_value = std::max(max_value, values[i]);
    label_width = std::max(label_width, labels[i].size());
  }
  std::ostringstream os;
  for (size_t i = 0; i < values.size(); ++i) {
    int width = max_value > 0
                    ? static_cast<int>(values[i] / max_value * max_width + 0.5)
                    : 0;
    width = std::clamp(width, 0, max_width);
    os << labels[i] << std::string(label_width - labels[i].size(), ' ')
       << " | " << std::string(static_cast<size_t>(width), '#') << " "
       << FormatDouble(values[i], 4) << "\n";
  }
  return os.str();
}

}  // namespace mysawh
