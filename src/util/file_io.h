#ifndef MYSAWH_UTIL_FILE_IO_H_
#define MYSAWH_UTIL_FILE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace mysawh {

/// Crash-safe, corruption-detecting file I/O. Every artifact the pipeline
/// persists (models, CSV exports, study checkpoints, REPORT.md) goes
/// through these helpers so that
///   * a crash mid-write never leaves a torn file at the destination
///     (write temp -> fsync -> atomic rename -> fsync directory), and
///   * a bit-flipped / truncated artifact is detected at read time via a
///     CRC32-checksummed envelope, yielding a clean `DataLoss` status
///     instead of undefined behaviour downstream.

/// Reads the whole file. IoError when the file cannot be opened or read.
Result<std::string> ReadFileToString(const std::string& path);

/// Probes that `path` can be created by the atomic-write protocol: opens
/// and unlinks `path`.probe.<pid> in the destination directory. Returns
/// `InvalidArgument` naming the path when the directory is missing or not
/// writable, so CLI flag handlers can reject bad artifact paths up front
/// (exit code 2) instead of losing a long run's output at the final write.
/// An existing file at `path` itself is fine — atomic replace handles it.
Status CheckWritable(const std::string& path);

/// Atomically replaces `path` with `content`: writes `path`.tmp.<pid>,
/// fsyncs it, renames it over `path`, and fsyncs the parent directory. On
/// any failure the destination keeps its previous content (or stays
/// absent) and the temp file is removed.
///
/// `failpoint_prefix` names the injectable fault sites of this write:
/// "<prefix>/open", "<prefix>/write", "<prefix>/fsync", "<prefix>/rename".
Status WriteFileAtomic(const std::string& path, const std::string& content,
                       const std::string& failpoint_prefix = "file_io");

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one) of `size` bytes.
uint32_t Crc32(const void* data, size_t size);
uint32_t Crc32(const std::string& data);

/// Wraps `payload` in the versioned checksummed artifact envelope:
///
///   mysawh-artifact v1 crc32=XXXXXXXX bytes=N\n<payload>
///
/// where XXXXXXXX is the zero-padded lowercase hex CRC32 of the payload
/// and N its exact byte length.
std::string WrapChecksummed(const std::string& payload);

/// True when `text` begins with the envelope magic. A true result does not
/// imply the envelope is valid — UnwrapChecksummed still verifies it.
bool LooksChecksummed(const std::string& text);

/// Verifies and strips the envelope. Returns the payload, or `DataLoss`
/// when the header is malformed, the length differs (truncation, appended
/// garbage) or the CRC32 does not match (bit corruption).
Result<std::string> UnwrapChecksummed(const std::string& text);

/// Convenience: WrapChecksummed + WriteFileAtomic.
Status WriteFileChecksummed(const std::string& path,
                            const std::string& payload,
                            const std::string& failpoint_prefix = "file_io");

/// Convenience: ReadFileToString + UnwrapChecksummed (envelope required).
Result<std::string> ReadFileChecksummed(const std::string& path);

}  // namespace mysawh

#endif  // MYSAWH_UTIL_FILE_IO_H_
