#ifndef MYSAWH_UTIL_STRING_UTIL_H_
#define MYSAWH_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// Splits `input` on every occurrence of `delim`; preserves empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Strips ASCII whitespace from both ends.
std::string Trim(std::string_view input);

/// Parses a double; fails on empty input or trailing garbage. The strings
/// "nan" / "NaN" / "" parse via ParseDoubleAllowMissing only.
Result<double> ParseDouble(std::string_view input);

/// Parses a double, mapping empty strings and "nan"/"NaN"/"NA" to quiet NaN.
Result<double> ParseDoubleAllowMissing(std::string_view input);

/// Parses a base-10 64-bit integer; fails on empty input or trailing garbage.
Result<int64_t> ParseInt64(std::string_view input);

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("1.25", "3", "0.001").
std::string FormatDouble(double value, int digits = 6);

/// Formats `value` (in [0, 1]) as a percentage string like "94.3%".
std::string FormatPercent(double value, int decimals = 1);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace mysawh

#endif  // MYSAWH_UTIL_STRING_UTIL_H_
