#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mysawh {

void LatencyHistogram::Record(int64_t micros) {
  if (micros < 0) micros = 0;
  // Bucket index = position of the highest set bit + 1, so bucket i spans
  // [2^(i-1), 2^i) µs and bucket 0 is exactly 0 µs.
  int bucket = std::bit_width(static_cast<uint64_t>(micros));
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_.compare_exchange_weak(seen, micros,
                                     std::memory_order_relaxed)) {
  }
}

int64_t HistogramQuantileFromBuckets(const int64_t* buckets, int num_buckets,
                                     int64_t max_micros, double q) {
  int64_t count = 0;
  for (int b = 0; b < num_buckets; ++b) count += buckets[b];
  if (count <= 0) return 0;
  if (q <= 0.0) q = 1.0 / static_cast<double>(count);
  if (q > 1.0) q = 1.0;
  // 1-based target rank; ceil without floating-point edge surprises.
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(
                               std::ceil(q * static_cast<double>(count))));
  int64_t cumulative = 0;
  for (int b = 0; b < num_buckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      if (b == 0) return 0;
      if (b == num_buckets - 1) return max_micros;
      // Bucket b spans [2^(b-1), 2^b); its inclusive upper edge.
      return (int64_t{1} << b) - 1;
    }
  }
  return max_micros;
}

int64_t LatencyHistogram::ApproxQuantileMicros(double q) const {
  int64_t buckets[kNumBuckets];
  for (int b = 0; b < kNumBuckets; ++b) buckets[b] = BucketCount(b);
  return HistogramQuantileFromBuckets(buckets, kNumBuckets, MaxMicros(), q);
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: worker threads may touch cached instrument
  // pointers during static destruction.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

namespace {

/// Metric names are restricted to [a-z0-9._/-] by convention, but escape
/// defensively so the snapshot is valid JSON for any registered name.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << counter->Value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << gauge->Value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": {\"count\": " << histogram->Count()
       << ", \"sum_us\": " << histogram->SumMicros()
       << ", \"max_us\": " << histogram->MaxMicros() << ", \"buckets\": [";
    for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      os << (b == 0 ? "" : ", ") << histogram->BucketCount(b);
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> values;
  values.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    values.emplace_back(name, counter->Value());
  }
  return values;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace mysawh
