#ifndef MYSAWH_UTIL_STATS_H_
#define MYSAWH_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// Arithmetic mean. Returns 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n - 1 denominator). Returns 0 for n < 2.
double Variance(const std::vector<double>& values);

/// Sample standard deviation.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated quantile (type-7, the numpy/R default). `q` in [0, 1].
/// The input need not be sorted. Fails on empty input or q outside [0, 1].
Result<double> Quantile(const std::vector<double>& values, double q);

/// Median (0.5 quantile).
Result<double> Median(const std::vector<double>& values);

/// Pearson correlation of two equal-length vectors; 0 if either is constant.
Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y);

/// Five-number summary plus Tukey outliers, the statistics a box-and-whisker
/// plot is drawn from (used to reproduce the paper's Fig 5).
struct BoxStats {
  double min = 0;           ///< Smallest non-outlier value (lower whisker).
  double q1 = 0;            ///< First quartile.
  double median = 0;        ///< Median.
  double q3 = 0;            ///< Third quartile.
  double max = 0;           ///< Largest non-outlier value (upper whisker).
  double iqr = 0;           ///< Interquartile range q3 - q1.
  std::vector<double> outliers;  ///< Values beyond 1.5 * IQR from the box.

  /// Compact single-line rendering.
  std::string ToString() const;
};

/// Computes box-plot statistics with the Tukey 1.5*IQR fence.
Result<BoxStats> ComputeBoxStats(const std::vector<double>& values);

/// A fixed-edge histogram.
struct Histogram {
  std::vector<double> edges;    ///< n_bins + 1 monotonically increasing edges.
  std::vector<int64_t> counts;  ///< n_bins counts.
  int64_t below = 0;            ///< Values below edges.front().
  int64_t above = 0;            ///< Values at or above edges.back().
};

/// Bins `values` into the half-open intervals [edges[i], edges[i+1]).
/// Requires at least two strictly increasing edges.
Result<Histogram> ComputeHistogram(const std::vector<double>& values,
                                   const std::vector<double>& edges);

/// Incremental mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);
  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for count < 2.
  double variance() const;
  double stddev() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace mysawh

#endif  // MYSAWH_UTIL_STATS_H_
