#include "util/version.h"

#ifndef MYSAWH_GIT_DESCRIBE
#define MYSAWH_GIT_DESCRIBE "unknown"
#endif

namespace mysawh {

const char* GitDescribe() { return MYSAWH_GIT_DESCRIBE; }

}  // namespace mysawh
