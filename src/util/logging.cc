#include "util/logging.h"

#include <atomic>

namespace mysawh {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel Logger::threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void Logger::SetThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(level >= Logger::threshold() || level == LogLevel::kFatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
    std::cerr.flush();
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace mysawh
