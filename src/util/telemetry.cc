#include "util/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "util/file_io.h"

namespace mysawh {

namespace telemetry_internal {
std::atomic<bool> g_enabled{false};
}  // namespace telemetry_internal

namespace {

/// The calling thread's context segments; joined with '/' for labels.
thread_local std::vector<std::string> t_context;

}  // namespace

std::string TelemetryJsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string TelemetryDouble(double value) {
  if (std::isnan(value)) return "null";
  // Shortest decimal form that round-trips: try increasing precision until
  // the parse-back is bit-exact. Deterministic for a given bit pattern.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buf;
}

TelemetryScope::TelemetryScope(const std::string& segment) {
  if (!TelemetryEnabled()) return;
  t_context.push_back(segment);
  pushed_ = true;
}

TelemetryScope::~TelemetryScope() {
  if (pushed_) t_context.pop_back();
}

std::string TelemetryContextLabel() {
  std::string label;
  for (const auto& segment : t_context) {
    if (!label.empty()) label += '/';
    label += segment;
  }
  return label;
}

TelemetryStream& TelemetryStream::operator=(TelemetryStream&& other) noexcept {
  if (this != &other) {
    Finish();
    active_ = other.active_;
    label_ = std::move(other.label_);
    lines_ = std::move(other.lines_);
    other.active_ = false;
  }
  return *this;
}

void TelemetryStream::Line(const char* type, const std::string& fields) {
  if (!active_) return;
  std::string line;
  line.reserve(fields.size() + label_.size() + 32);
  line += "{\"stream\":\"";
  line += TelemetryJsonEscape(label_);
  line += "\",\"type\":\"";
  line += type;
  line += '"';
  if (!fields.empty()) {
    line += ',';
    line += fields;
  }
  line += '}';
  lines_.push_back(std::move(line));
}

void TelemetryStream::Finish() {
  if (!active_) return;
  active_ = false;
  Telemetry::Global().Deposit(std::move(label_), std::move(lines_));
}

Telemetry& Telemetry::Global() {
  static Telemetry* telemetry = new Telemetry();
  return *telemetry;
}

void Telemetry::Enable() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    streams_.clear();
  }
  telemetry_internal::g_enabled.store(true, std::memory_order_relaxed);
}

void Telemetry::Disable() {
  telemetry_internal::g_enabled.store(false, std::memory_order_relaxed);
}

TelemetryStream Telemetry::StartStream(const std::string& kind) {
  TelemetryStream stream;
  if (!TelemetryEnabled()) return stream;
  stream.active_ = true;
  const std::string context = TelemetryContextLabel();
  stream.label_ = context.empty() ? kind : context + '/' + kind;
  return stream;
}

void Telemetry::Deposit(std::string label, std::vector<std::string> lines) {
  std::lock_guard<std::mutex> lock(mutex_);
  streams_.push_back({std::move(label), std::move(lines)});
}

size_t Telemetry::stream_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  return streams_.size();
}

std::string Telemetry::ToJsonl() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Sorted by label: deposit order depends on thread scheduling, the
  // artifact must not. Stable so identical labels (discouraged) at least
  // keep their lines contiguous.
  std::vector<const Deposited*> ordered;
  ordered.reserve(streams_.size());
  for (const auto& s : streams_) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Deposited* a, const Deposited* b) {
                     return a->label < b->label;
                   });
  std::ostringstream os;
  os << "{\"schema\":\"mysawh-telemetry v1\",\"streams\":" << ordered.size()
     << "}\n";
  for (const Deposited* stream : ordered) {
    for (const auto& line : stream->lines) os << line << "\n";
  }
  return os.str();
}

Status Telemetry::WriteJsonl(const std::string& path) {
  return WriteFileAtomic(path, ToJsonl(), "telemetry_write");
}

}  // namespace mysawh
