#include "util/flags.h"

#include "util/string_util.h"

namespace mysawh {

Result<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser parser;
  int i = 0;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--")) {
      std::string key, value;
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        key = arg.substr(2, eq - 2);
        value = arg.substr(eq + 1);
      } else {
        key = arg.substr(2);
        // A value follows unless the next token is another flag or absent
        // (then it is a boolean switch).
        if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
          value = argv[++i];
        } else {
          value = "true";
        }
      }
      if (key.empty()) {
        return Status::InvalidArgument("empty flag name");
      }
      if (parser.flags_.count(key)) {
        return Status::InvalidArgument("repeated flag: --" + key);
      }
      parser.flags_[key] = value;
    } else if (parser.command_.empty() && parser.positional_.empty() &&
               parser.flags_.empty()) {
      parser.command_ = arg;
    } else {
      parser.positional_.push_back(arg);
    }
  }
  return parser;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& default_value) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? default_value : it->second;
}

Result<int64_t> FlagParser::GetInt(const std::string& key,
                                   int64_t default_value) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return default_value;
  MYSAWH_ASSIGN_OR_RETURN(int64_t value, ParseInt64(it->second));
  return value;
}

Result<double> FlagParser::GetDouble(const std::string& key,
                                     double default_value) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return default_value;
  MYSAWH_ASSIGN_OR_RETURN(double value, ParseDouble(it->second));
  return value;
}

bool FlagParser::GetBool(const std::string& key, bool default_value) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return default_value;
  return it->second == "true" || it->second == "1";
}

std::vector<std::string> FlagParser::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(flags_.size());
  for (const auto& [key, value] : flags_) {
    (void)value;
    keys.push_back(key);
  }
  return keys;
}

}  // namespace mysawh
