#include "util/monitor.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/file_io.h"
#include "util/metrics.h"
#include "util/resource_stats.h"
#include "util/trace.h"

namespace mysawh {

namespace {

/// At most one monitor is live at a time; manifest building reaches it
/// through this slot without plumbing a pointer through core/.
std::atomic<Monitor*> g_current{nullptr};

/// The status stream keeps the last few events; older ones age out (the
/// artifacts still carry them via the `monitor.stalls` counter).
constexpr size_t kMaxEvents = 8;
/// Recent-span ring depth for stall reports.
constexpr size_t kRecentSpans = 8;

struct MonitorMetrics {
  Counter* heartbeats;
  Counter* stalls;
};

MonitorMetrics& Metrics() {
  static MonitorMetrics metrics = [] {
    auto& registry = MetricsRegistry::Global();
    return MonitorMetrics{registry.GetCounter("monitor.heartbeats"),
                          registry.GetCounter("monitor.stalls")};
  }();
  return metrics;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

Monitor::Monitor(MonitorOptions options)
    : options_(std::move(options)),
      epoch_(std::chrono::steady_clock::now()) {
  // The standard progress set: counters that advance only when real work
  // completes. Deliberately excludes `file_io.*` (the heartbeat's own
  // writes) and `monitor.*` — a watchdog must not feed itself.
  progress_counter_names_ = {
      "gbt.predict.flat_rows", "gbt.predict.rows",
      "gbt.train.rounds_completed", "gbt.train.trees_grown",
      "shap.batch_flat_rows", "shap.batch_rows",
      "study.cells_computed", "study.resume_hits",
  };
}

Monitor::~Monitor() { Stop(); }

Monitor* Monitor::Current() {
  return g_current.load(std::memory_order_acquire);
}

void Monitor::RegisterProgressCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  if (std::find(progress_counter_names_.begin(),
                progress_counter_names_.end(),
                name) == progress_counter_names_.end()) {
    progress_counter_names_.push_back(name);
    std::sort(progress_counter_names_.begin(),
              progress_counter_names_.end());
    last_progress_values_.clear();  // Baseline is stale; re-prime.
  }
}

int64_t Monitor::UptimeMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Status Monitor::Start() {
  if (started_) return Status::Ok();
  started_ = true;
  g_current.store(this, std::memory_order_release);
  // Arm the recently-completed-span ring only when the watchdog could
  // actually report it: stall reports are the ring's sole consumer.
  if (options_.stall_timeout_ms > 0) {
    Tracer::Global().EnableRecentSpans(kRecentSpans);
  }
  // Heartbeat 0 lands before the monitored work starts, so a tailer can
  // attach immediately — and a broken status path fails the run up front.
  Status status = ForceHeartbeat(false);
  if (!status.ok()) {
    g_current.store(nullptr, std::memory_order_release);
    started_ = false;
    return status;
  }
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void Monitor::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  // The terminal heartbeat: watch_status.py exits when it sees it.
  (void)ForceHeartbeat(true);
  if (options_.stall_timeout_ms > 0) {
    Tracer::Global().EnableRecentSpans(0);
  }
  g_current.store(nullptr, std::memory_order_release);
  started_ = false;
}

void Monitor::Loop() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  while (!stop_requested_) {
    const auto interval =
        std::chrono::milliseconds(std::max<int64_t>(1, options_.interval_ms));
    if (wake_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    // A failed write (disk full, injected fault) is not fatal to the run:
    // the monitor observes, it never kills the work it watches.
    (void)ForceHeartbeat(false);
    lock.lock();
  }
}

void Monitor::CheckStall(int64_t uptime_ms) {
  auto& registry = MetricsRegistry::Global();
  std::vector<int64_t> values;
  values.reserve(progress_counter_names_.size());
  for (const std::string& name : progress_counter_names_) {
    values.push_back(registry.GetCounter(name)->Value());
  }
  if (last_progress_values_.empty() || values != last_progress_values_) {
    // Progress (or first observation): move the baseline, re-arm the latch.
    last_progress_values_ = std::move(values);
    last_progress_uptime_ms_ = uptime_ms;
    stall_latched_ = false;
    return;
  }
  const int64_t silent_ms = uptime_ms - last_progress_uptime_ms_;
  if (silent_ms < options_.stall_timeout_ms || stall_latched_) return;

  // Exactly one event per stall: latch until progress resumes.
  stall_latched_ = true;
  stalls_.fetch_add(1, std::memory_order_relaxed);
  Metrics().stalls->Increment();
  const int64_t queue_depth =
      registry.GetGauge("thread_pool.queue_depth")->Value();

  std::ostringstream event;
  event << "{\"type\":\"stall\",\"at_uptime_ms\":" << uptime_ms
        << ",\"silent_ms\":" << silent_ms
        << ",\"queue_depth\":" << queue_depth << ",\"recent_spans\":[";
  const std::vector<std::string> spans = Tracer::Global().RecentSpanNames();
  for (size_t i = 0; i < spans.size(); ++i) {
    event << (i == 0 ? "" : ",") << "\"" << JsonEscape(spans[i]) << "\"";
  }
  event << "]}";
  event_jsons_.push_back(event.str());
  if (event_jsons_.size() > kMaxEvents) {
    event_jsons_.erase(event_jsons_.begin());
  }

  if (TracingEnabled()) {
    TraceEvent trace_event;
    trace_event.name = "monitor.stall";
    trace_event.cat = "monitor";
    trace_event.ts_us = Tracer::Global().NowMicros();
    trace_event.dur_us = 0;
    trace_event.args = "\"silent_ms\":" + std::to_string(silent_ms) +
                       ",\"queue_depth\":" + std::to_string(queue_depth);
    Tracer::Global().Record(std::move(trace_event));
  }
}

void Monitor::AppendEvent(std::string event_json) {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  event_jsons_.push_back(std::move(event_json));
  if (event_jsons_.size() > kMaxEvents) {
    event_jsons_.erase(event_jsons_.begin());
  }
}

std::string Monitor::BuildHeartbeatJson(bool final_heartbeat) {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  auto& registry = MetricsRegistry::Global();
  const int64_t uptime_ms = UptimeMs();

  const ResourceSample sample = SampleResources();
  UpdateResourceGauges(sample);
  if (options_.stall_timeout_ms > 0) CheckStall(uptime_ms);

  // Nonzero counter movement since the previous heartbeat. Both lists are
  // name-sorted, so a linear merge finds every new and changed counter.
  const auto current = registry.CounterValues();
  std::ostringstream delta;
  {
    bool first = true;
    size_t j = 0;
    for (const auto& [name, value] : current) {
      while (j < last_counter_values_.size() &&
             last_counter_values_[j].first < name) {
        ++j;
      }
      int64_t previous = 0;
      if (j < last_counter_values_.size() &&
          last_counter_values_[j].first == name) {
        previous = last_counter_values_[j].second;
      }
      if (value != previous) {
        delta << (first ? "" : ",") << "\"" << JsonEscape(name)
              << "\":" << (value - previous);
        first = false;
      }
    }
  }
  last_counter_values_ = current;

  std::ostringstream progress;
  {
    bool first = true;
    for (const std::string& name : progress_counter_names_) {
      progress << (first ? "" : ",") << "\"" << JsonEscape(name)
               << "\":" << registry.GetCounter(name)->Value();
      first = false;
    }
  }

  const int64_t cells_done =
      registry.GetCounter("study.cells_computed")->Value() +
      registry.GetCounter("study.resume_hits")->Value();
  const int64_t cells_total =
      registry.GetGauge("study.cells_total")->Value();
  const int64_t queue_depth =
      registry.GetGauge("thread_pool.queue_depth")->Value();

  std::ostringstream os;
  os << "{\"schema\":\"mysawh-status v1\",\"seq\":" << next_seq_++
     << ",\"final\":" << (final_heartbeat ? "true" : "false")
     << ",\"uptime_ms\":" << uptime_ms
     << ",\"interval_ms\":" << options_.interval_ms
     << ",\"stall_timeout_ms\":" << options_.stall_timeout_ms
     << ",\"resource\":" << ResourceSampleJson(sample)
     << ",\"progress\":{" << progress.str() << "}"
     << ",\"study\":{\"cells_done\":" << cells_done
     << ",\"cells_total\":" << cells_total << "}"
     << ",\"queue_depth\":" << queue_depth
     << ",\"counters_delta\":{" << delta.str() << "}"
     << ",\"events\":[";
  for (size_t i = 0; i < event_jsons_.size(); ++i) {
    os << (i == 0 ? "" : ",") << event_jsons_[i];
  }
  os << "]}\n";
  return os.str();
}

Status Monitor::ForceHeartbeat(bool final_heartbeat) {
  const std::string json = BuildHeartbeatJson(final_heartbeat);
  Status status =
      WriteFileAtomic(options_.status_path, json, "status_write");
  if (status.ok()) {
    heartbeats_.fetch_add(1, std::memory_order_relaxed);
    Metrics().heartbeats->Increment();
  }
  return status;
}

}  // namespace mysawh
