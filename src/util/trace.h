#ifndef MYSAWH_UTIL_TRACE_H_
#define MYSAWH_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// Scoped trace spans emitting Chrome/Perfetto-compatible `trace_event`
/// JSON (open a written file directly in https://ui.perfetto.dev or
/// chrome://tracing).
///
/// Discipline mirrors util/failpoint.h: spans are compiled into every
/// build, and a *disabled* span costs one relaxed atomic load and
/// allocates nothing — so the hot training/explanation paths stay
/// instrumented permanently. Enabling (CLI `--trace-out=<file>`, or
/// Tracer::Global().Enable() in tests) starts a session; spans then record
/// their wall-clock interval into a per-thread buffer (no lock per event).
///
///   {
///     TraceSpan span("gbt.tree", "train");
///     span.Arg("round", round);
///     ...  // the traced work
///   }      // duration recorded here
///
/// Spans nest naturally: Perfetto stacks events of the same thread by
/// containment, so the RAII scopes ARE the timeline hierarchy.
///
/// Buffers are collected by ToJson()/WriteJson(), which must run quiescent
/// (no spans concurrently open — in practice: after pools Wait()ed and the
/// traced call returned). Enable() clears the previous session.

/// One completed span (a Chrome "X" complete event).
struct TraceEvent {
  std::string name;
  const char* cat = "mysawh";
  int64_t ts_us = 0;   ///< Start, microseconds since session start.
  int64_t dur_us = 0;  ///< Wall-clock duration in microseconds.
  int tid = 0;         ///< Small dense thread id, assigned per session use.
  std::string args;    ///< Pre-rendered JSON object body ("" = no args).
  int64_t cpu_us = -1;       ///< Thread-CPU-time delta; -1 = not captured.
  int64_t alloc_bytes = -1;  ///< Tracked-allocation delta; -1 = not captured.
};

namespace trace_internal {
/// Session on/off flag. Namespace-scope atomic (not a function-local
/// static) so the disabled fast path is exactly one relaxed load with no
/// init guard.
extern std::atomic<bool> g_enabled;
/// Per-span cost attribution flag. Off by default even when tracing is on,
/// because capturing CLOCK_THREAD_CPUTIME_ID twice per span is measurably
/// more expensive than the plain wall-clock pair; opt in via
/// Tracer::SetCostAttribution (CLI `--span-costs`).
extern std::atomic<bool> g_cost_attribution;
}  // namespace trace_internal

/// True when a trace session is active. The one-load fast path; call
/// sites building dynamic span names should guard on this so the disabled
/// mode allocates nothing.
inline bool TracingEnabled() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

/// True when spans additionally capture thread-CPU-time and allocation
/// deltas. Only meaningful while TracingEnabled().
inline bool CostAttributionEnabled() {
  return trace_internal::g_cost_attribution.load(std::memory_order_relaxed);
}

/// The process-wide span collector.
class Tracer {
 public:
  static Tracer& Global();

  /// Starts a fresh session: clears previously collected events and
  /// resets the session clock. Call quiescent.
  void Enable();
  /// Stops recording. Already-open spans still deposit their event on
  /// destruction (they are part of the session being closed).
  void Disable();
  bool enabled() const { return TracingEnabled(); }

  /// Turns per-span cost attribution on or off (see CostAttributionEnabled).
  void SetCostAttribution(bool enabled);

  /// Caps each per-thread buffer at `max_events` events (0 = unbounded,
  /// the default). Events recorded past the cap are dropped and counted in
  /// the `trace.dropped_events` counter — a bounded trace beats an
  /// unbounded heap on a long run. Call quiescent; applies to the current
  /// session (Enable() keeps the configured cap).
  void SetMaxEventsPerThread(size_t max_events);
  /// Events dropped by the per-thread cap since the session started.
  int64_t dropped_events() const;

  /// Microseconds since the session started.
  int64_t NowMicros() const;

  /// Deposits one completed event into this thread's buffer.
  void Record(TraceEvent event);

  /// All collected events, sorted by (ts, -dur, tid). Call quiescent.
  std::vector<TraceEvent> Snapshot();
  size_t event_count();

  /// The collected session as Chrome trace JSON
  /// (`{"traceEvents": [...], ...}`).
  std::string ToJson();
  /// ToJson() written atomically to `path`.
  Status WriteJson(const std::string& path);

  /// Deterministic per-span-name cost aggregation over the collected
  /// session: `{"by_cpu":[{"name","count","cpu_us","alloc_bytes"},...],
  /// "by_bytes":[...]}`, each list the top `top_n` names sorted descending
  /// (name ascending on ties). Only events that captured costs contribute;
  /// returns "" when none did. Call quiescent.
  std::string CostTableJson(int top_n);

  /// Arms a small ring of recently completed span names, consulted by the
  /// stall watchdog to report what last finished before a wedge. Costs one
  /// short mutex-protected push per recorded event, so it is only worth
  /// paying while a watchdog is actually running; `capacity` 0 disarms.
  void EnableRecentSpans(size_t capacity);
  /// The armed ring's contents, oldest first. Empty when disarmed.
  std::vector<std::string> RecentSpanNames();

  /// Per-thread event sink (public so the thread_local cache in trace.cc
  /// can name the type; not part of the API).
  struct ThreadBuffer {
    int tid = 0;
    std::vector<TraceEvent> events;
  };

 private:
  Tracer() = default;
  ThreadBuffer* BufferForThisThread();

  std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  int next_tid_ = 1;
  std::atomic<size_t> max_events_per_thread_{0};

  // The watchdog's recent-span ring. Guarded by its own mutex so Record()
  // never contends with Snapshot()'s buffer walk.
  std::mutex recent_mutex_;
  std::vector<std::string> recent_names_;
  size_t recent_capacity_ = 0;
  size_t recent_next_ = 0;
  std::atomic<bool> recent_enabled_{false};
};

/// RAII span. Construct with the static span name (a string literal); the
/// interval from construction to destruction becomes one trace event.
/// Disabled sessions make both ends a no-op.
class TraceSpan {
 public:
  /// An inactive span (for the two-phase dynamic-name pattern:
  /// `TraceSpan s; if (TracingEnabled()) s = TraceSpan(BuildName(), cat);`).
  TraceSpan() = default;

  explicit TraceSpan(const char* name, const char* cat = "mysawh")
      : active_(TracingEnabled()) {
    if (active_) Begin(name, cat);
  }
  /// Dynamic-name form; the string is only reachable from call sites that
  /// already guarded on TracingEnabled(), but checks again for safety.
  TraceSpan(std::string name, const char* cat) : active_(TracingEnabled()) {
    if (active_) Begin(std::move(name), cat);
  }

  TraceSpan(TraceSpan&& other) noexcept { *this = std::move(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { Finish(); }

  /// Attaches an integer argument shown in the trace viewer's detail pane.
  void Arg(const char* key, int64_t value);

  bool active() const { return active_; }

 private:
  void Begin(std::string name, const char* cat);
  void Finish();

  bool active_ = false;
  bool costed_ = false;  ///< This span captured cost-attribution baselines.
  std::string name_;
  const char* cat_ = "mysawh";
  int64_t start_us_ = 0;
  int64_t start_cpu_us_ = 0;    ///< CLOCK_THREAD_CPUTIME_ID at Begin.
  int64_t start_alloc_bytes_ = 0;  ///< ThreadAllocBytes() at Begin.
  std::string args_;
};

}  // namespace mysawh

#endif  // MYSAWH_UTIL_TRACE_H_
