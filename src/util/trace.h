#ifndef MYSAWH_UTIL_TRACE_H_
#define MYSAWH_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// Scoped trace spans emitting Chrome/Perfetto-compatible `trace_event`
/// JSON (open a written file directly in https://ui.perfetto.dev or
/// chrome://tracing).
///
/// Discipline mirrors util/failpoint.h: spans are compiled into every
/// build, and a *disabled* span costs one relaxed atomic load and
/// allocates nothing — so the hot training/explanation paths stay
/// instrumented permanently. Enabling (CLI `--trace-out=<file>`, or
/// Tracer::Global().Enable() in tests) starts a session; spans then record
/// their wall-clock interval into a per-thread buffer (no lock per event).
///
///   {
///     TraceSpan span("gbt.tree", "train");
///     span.Arg("round", round);
///     ...  // the traced work
///   }      // duration recorded here
///
/// Spans nest naturally: Perfetto stacks events of the same thread by
/// containment, so the RAII scopes ARE the timeline hierarchy.
///
/// Buffers are collected by ToJson()/WriteJson(), which must run quiescent
/// (no spans concurrently open — in practice: after pools Wait()ed and the
/// traced call returned). Enable() clears the previous session.

/// One completed span (a Chrome "X" complete event).
struct TraceEvent {
  std::string name;
  const char* cat = "mysawh";
  int64_t ts_us = 0;   ///< Start, microseconds since session start.
  int64_t dur_us = 0;  ///< Wall-clock duration in microseconds.
  int tid = 0;         ///< Small dense thread id, assigned per session use.
  std::string args;    ///< Pre-rendered JSON object body ("" = no args).
};

namespace trace_internal {
/// Session on/off flag. Namespace-scope atomic (not a function-local
/// static) so the disabled fast path is exactly one relaxed load with no
/// init guard.
extern std::atomic<bool> g_enabled;
}  // namespace trace_internal

/// True when a trace session is active. The one-load fast path; call
/// sites building dynamic span names should guard on this so the disabled
/// mode allocates nothing.
inline bool TracingEnabled() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

/// The process-wide span collector.
class Tracer {
 public:
  static Tracer& Global();

  /// Starts a fresh session: clears previously collected events and
  /// resets the session clock. Call quiescent.
  void Enable();
  /// Stops recording. Already-open spans still deposit their event on
  /// destruction (they are part of the session being closed).
  void Disable();
  bool enabled() const { return TracingEnabled(); }

  /// Microseconds since the session started.
  int64_t NowMicros() const;

  /// Deposits one completed event into this thread's buffer.
  void Record(TraceEvent event);

  /// All collected events, sorted by (ts, -dur, tid). Call quiescent.
  std::vector<TraceEvent> Snapshot();
  size_t event_count();

  /// The collected session as Chrome trace JSON
  /// (`{"traceEvents": [...], ...}`).
  std::string ToJson();
  /// ToJson() written atomically to `path`.
  Status WriteJson(const std::string& path);

  /// Per-thread event sink (public so the thread_local cache in trace.cc
  /// can name the type; not part of the API).
  struct ThreadBuffer {
    int tid = 0;
    std::vector<TraceEvent> events;
  };

 private:
  Tracer() = default;
  ThreadBuffer* BufferForThisThread();

  std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  int next_tid_ = 1;
};

/// RAII span. Construct with the static span name (a string literal); the
/// interval from construction to destruction becomes one trace event.
/// Disabled sessions make both ends a no-op.
class TraceSpan {
 public:
  /// An inactive span (for the two-phase dynamic-name pattern:
  /// `TraceSpan s; if (TracingEnabled()) s = TraceSpan(BuildName(), cat);`).
  TraceSpan() = default;

  explicit TraceSpan(const char* name, const char* cat = "mysawh")
      : active_(TracingEnabled()) {
    if (active_) Begin(name, cat);
  }
  /// Dynamic-name form; the string is only reachable from call sites that
  /// already guarded on TracingEnabled(), but checks again for safety.
  TraceSpan(std::string name, const char* cat) : active_(TracingEnabled()) {
    if (active_) Begin(std::move(name), cat);
  }

  TraceSpan(TraceSpan&& other) noexcept { *this = std::move(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { Finish(); }

  /// Attaches an integer argument shown in the trace viewer's detail pane.
  void Arg(const char* key, int64_t value);

  bool active() const { return active_; }

 private:
  void Begin(std::string name, const char* cat);
  void Finish();

  bool active_ = false;
  std::string name_;
  const char* cat_ = "mysawh";
  int64_t start_us_ = 0;
  std::string args_;
};

}  // namespace mysawh

#endif  // MYSAWH_UTIL_TRACE_H_
