#ifndef MYSAWH_UTIL_SERIALIZATION_H_
#define MYSAWH_UTIL_SERIALIZATION_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// Hex encoding of a double's bits: exact round-trip, locale-independent.
/// Shared by every model family's text serialization format.
std::string EncodeDouble(double v);

/// Inverse of EncodeDouble; fails on malformed input.
Result<double> DecodeDouble(const std::string& s);

/// Encodes a vector as space-separated EncodeDouble fields.
std::string EncodeDoubleVector(const std::vector<double>& values);

/// Decodes a space-separated EncodeDouble list; fails when the field count
/// differs from `expected_count` (pass -1 to accept any length).
Result<std::vector<double>> DecodeDoubleVector(const std::string& s,
                                               int64_t expected_count = -1);

}  // namespace mysawh

#endif  // MYSAWH_UTIL_SERIALIZATION_H_
