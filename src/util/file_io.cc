#include "util/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace mysawh {

namespace {

constexpr const char kEnvelopeMagic[] = "mysawh-artifact v1 ";

/// File-I/O instruments (see docs/observability.md for the catalog).
struct IoMetrics {
  Counter* writes;
  Counter* bytes_written;
  Counter* reads;
  Counter* bytes_read;
  Counter* data_loss;
  LatencyHistogram* fsync_us;
};

IoMetrics& Metrics() {
  static IoMetrics metrics = [] {
    auto& registry = MetricsRegistry::Global();
    return IoMetrics{registry.GetCounter("file_io.writes"),
                     registry.GetCounter("file_io.bytes_written"),
                     registry.GetCounter("file_io.reads"),
                     registry.GetCounter("file_io.bytes_read"),
                     registry.GetCounter("file_io.data_loss_rejections"),
                     registry.GetHistogram("file_io.fsync_us")};
  }();
  return metrics;
}

/// Every DataLoss rejection is counted before it is returned, so corrupt
/// artifacts show up in a metrics snapshot even when the caller retries
/// or falls back (e.g. the study runner re-running a bad checkpoint).
Status CountDataLoss(Status status) {
  Metrics().data_loss->Increment();
  return status;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// Directory part of `path` ("." when the path has no separator).
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Flushes a directory entry update to disk; best-effort on filesystems
/// that reject O_DIRECTORY fsync (reported as IoError only when the open
/// itself succeeds and fsync then fails).
Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::Ok();  // e.g. unusual FS; rename already done
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return Status::IoError(ErrnoMessage("fsync directory", dir));
  }
  return Status::Ok();
}

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::string Crc32Hex(uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  MYSAWH_FAILPOINT("file_read/open");
  TraceSpan span("file_io.read", "io");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("failed reading: " + path);
  std::string content = buffer.str();
  Metrics().reads->Increment();
  Metrics().bytes_read->Increment(static_cast<int64_t>(content.size()));
  return content;
}

Status CheckWritable(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("artifact path is empty");
  }
  const std::string probe =
      path + ".probe." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(probe.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    return Status::InvalidArgument(
        ErrnoMessage("cannot write artifact path", path));
  }
  ::close(fd);
  ::unlink(probe.c_str());
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, const std::string& content,
                       const std::string& failpoint_prefix) {
  TraceSpan span("file_io.write_atomic", "io");
  span.Arg("bytes", static_cast<int64_t>(content.size()));
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  auto site = [&](const char* step) { return failpoint_prefix + "/" + step; };

  auto fail = [&](Status status) {
    ::unlink(tmp.c_str());
    return status;
  };

  if (auto fp = FailpointRegistry::Global().Check(site("open").c_str())) {
    return *fp;
  }
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("cannot open", tmp));

  if (auto fp = FailpointRegistry::Global().Check(site("write").c_str())) {
    ::close(fd);
    return fail(*fp);
  }
  size_t written = 0;
  while (written < content.size()) {
    const ssize_t n = ::write(fd, content.data() + written,
                              content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::IoError(ErrnoMessage("failed writing", tmp));
      ::close(fd);
      return fail(st);
    }
    written += static_cast<size_t>(n);
  }

  if (auto fp = FailpointRegistry::Global().Check(site("fsync").c_str())) {
    ::close(fd);
    return fail(*fp);
  }
  {
    ScopedLatencyTimer fsync_timer(Metrics().fsync_us);
    if (::fsync(fd) != 0) {
      const Status st = Status::IoError(ErrnoMessage("fsync", tmp));
      ::close(fd);
      return fail(st);
    }
  }
  if (::close(fd) != 0) {
    return fail(Status::IoError(ErrnoMessage("close", tmp)));
  }

  if (auto fp = FailpointRegistry::Global().Check(site("rename").c_str())) {
    return fail(*fp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail(Status::IoError(ErrnoMessage("rename to", path)));
  }
  Metrics().writes->Increment();
  Metrics().bytes_written->Increment(static_cast<int64_t>(content.size()));
  return FsyncDir(DirName(path));
}

uint32_t Crc32(const void* data, size_t size) {
  const auto& table = Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::string& data) {
  return Crc32(data.data(), data.size());
}

std::string WrapChecksummed(const std::string& payload) {
  return std::string(kEnvelopeMagic) + "crc32=" + Crc32Hex(Crc32(payload)) +
         " bytes=" + std::to_string(payload.size()) + "\n" + payload;
}

bool LooksChecksummed(const std::string& text) {
  // Match on the magic word alone: a truncated-inside-the-header artifact
  // must still be recognized as (a corrupt) envelope, not fall through to
  // a permissive plain-text parser.
  return StartsWith(text, "mysawh-artifact");
}

Result<std::string> UnwrapChecksummed(const std::string& text) {
  if (!LooksChecksummed(text)) {
    return CountDataLoss(Status::DataLoss("not a checksummed artifact (missing '" +
                            std::string(kEnvelopeMagic) + "' header)"));
  }
  const size_t newline = text.find('\n');
  if (newline == std::string::npos) {
    return CountDataLoss(Status::DataLoss("checksummed artifact truncated inside header"));
  }
  const std::string header = text.substr(0, newline);
  if (!StartsWith(header, kEnvelopeMagic)) {
    return CountDataLoss(Status::DataLoss("corrupt artifact header: " + header));
  }
  const auto fields = Split(header.substr(sizeof(kEnvelopeMagic) - 1), ' ');
  if (fields.size() != 2 || !StartsWith(fields[0], "crc32=") ||
      !StartsWith(fields[1], "bytes=")) {
    return CountDataLoss(Status::DataLoss("corrupt artifact header: " + header));
  }
  const std::string crc_hex = fields[0].substr(6);
  if (crc_hex.size() != 8 ||
      crc_hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return CountDataLoss(Status::DataLoss("corrupt artifact crc field: " + header));
  }
  uint32_t expected_crc = 0;
  for (char c : crc_hex) {
    expected_crc = expected_crc * 16 +
                   static_cast<uint32_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  const auto parsed_bytes = ParseInt64(fields[1].substr(6));
  if (!parsed_bytes.ok() || *parsed_bytes < 0) {
    return CountDataLoss(Status::DataLoss("corrupt artifact bytes field: " + header));
  }
  const int64_t expected_bytes = *parsed_bytes;
  const std::string payload = text.substr(newline + 1);
  if (static_cast<int64_t>(payload.size()) != expected_bytes) {
    return CountDataLoss(Status::DataLoss(
        "artifact length mismatch: header says " +
        std::to_string(expected_bytes) + " bytes, file has " +
        std::to_string(payload.size()) +
        " (truncated or garbage-appended)"));
  }
  const uint32_t actual_crc = Crc32(payload);
  if (actual_crc != expected_crc) {
    return CountDataLoss(Status::DataLoss("artifact checksum mismatch: header crc32=" +
                            Crc32Hex(expected_crc) + ", payload crc32=" +
                            Crc32Hex(actual_crc)));
  }
  return payload;
}

Status WriteFileChecksummed(const std::string& path,
                            const std::string& payload,
                            const std::string& failpoint_prefix) {
  return WriteFileAtomic(path, WrapChecksummed(payload), failpoint_prefix);
}

Result<std::string> ReadFileChecksummed(const std::string& path) {
  MYSAWH_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return UnwrapChecksummed(text);
}

}  // namespace mysawh

