#ifndef MYSAWH_UTIL_LOGGING_H_
#define MYSAWH_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace mysawh {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global log configuration. Messages below `threshold` are discarded.
class Logger {
 public:
  /// Returns the process-wide logger threshold.
  static LogLevel threshold();
  /// Sets the process-wide logger threshold.
  static void SetThreshold(LogLevel level);
};

namespace internal_logging {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// Fatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a log statement whose level is statically disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

/// Streams a message at the given severity:
///   MYSAWH_LOG(kInfo) << "trained " << n << " trees";
#define MYSAWH_LOG(level)                                     \
  ::mysawh::internal_logging::LogMessage(::mysawh::LogLevel::level, \
                                         __FILE__, __LINE__)

/// Aborts with a message when `condition` is false. Active in all builds:
/// invariant violations in a data pipeline must never be silently ignored.
///
/// Abort-vs-Status policy. A CHECK is for *programmer* invariants only —
/// conditions no input reaching this code can make false, because a public
/// boundary already validated it (CohortConfig::Validate guards the rng.cc
/// distribution-parameter CHECKs; TreeShap's constructor null-model CHECK is
/// an API contract). Anything an input file, CLI flag, or on-disk artifact
/// can influence must return a Status instead: deserializers validate
/// structure (tree.cc Validate), readers surface DataLoss on corruption
/// (util/file_io.h), and renderers record malformed rows rather than abort
/// (util/table_printer.h). When in doubt, return Status — an abort in a
/// long-running study run destroys work a Status would have checkpointed.
#define MYSAWH_CHECK(condition)                                         \
  if (!(condition))                                                     \
  ::mysawh::internal_logging::LogMessage(::mysawh::LogLevel::kFatal,    \
                                         __FILE__, __LINE__)            \
      << "Check failed: " #condition " "

#define MYSAWH_CHECK_OP_(a, b, op) MYSAWH_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define MYSAWH_CHECK_EQ(a, b) MYSAWH_CHECK_OP_(a, b, ==)
#define MYSAWH_CHECK_NE(a, b) MYSAWH_CHECK_OP_(a, b, !=)
#define MYSAWH_CHECK_LT(a, b) MYSAWH_CHECK_OP_(a, b, <)
#define MYSAWH_CHECK_LE(a, b) MYSAWH_CHECK_OP_(a, b, <=)
#define MYSAWH_CHECK_GT(a, b) MYSAWH_CHECK_OP_(a, b, >)
#define MYSAWH_CHECK_GE(a, b) MYSAWH_CHECK_OP_(a, b, >=)

/// Debug-only check; compiles out in NDEBUG builds.
#ifdef NDEBUG
#define MYSAWH_DCHECK(condition) \
  if (false) ::mysawh::internal_logging::NullStream()
#else
#define MYSAWH_DCHECK(condition) MYSAWH_CHECK(condition)
#endif

}  // namespace mysawh

#endif  // MYSAWH_UTIL_LOGGING_H_
