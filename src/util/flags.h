#ifndef MYSAWH_UTIL_FLAGS_H_
#define MYSAWH_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// Minimal command-line parser for the CLI tools: a leading positional
/// command word followed by `--key value` / `--key=value` flags and bare
/// positional arguments.
class FlagParser {
 public:
  /// Parses argv (excluding argv[0]). Fails on a dangling `--key` with no
  /// value or on a repeated key.
  static Result<FlagParser> Parse(int argc, const char* const* argv);

  /// The first positional argument ("" when absent) — the subcommand.
  const std::string& command() const { return command_; }
  /// Positional arguments after the command.
  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& key) const { return flags_.count(key) > 0; }

  /// String flag with default.
  std::string GetString(const std::string& key,
                        const std::string& default_value = "") const;
  /// Integer flag; fails when present but unparsable.
  Result<int64_t> GetInt(const std::string& key, int64_t default_value) const;
  /// Double flag; fails when present but unparsable.
  Result<double> GetDouble(const std::string& key,
                           double default_value) const;
  /// Bool flag: present without value or with "true"/"1" = true.
  bool GetBool(const std::string& key, bool default_value = false) const;

  /// Keys that were provided.
  std::vector<std::string> Keys() const;

 private:
  std::string command_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

}  // namespace mysawh

#endif  // MYSAWH_UTIL_FLAGS_H_
