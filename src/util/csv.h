#ifndef MYSAWH_UTIL_CSV_H_
#define MYSAWH_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// An in-memory CSV document: a header row plus data rows of equal width.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or error if absent.
  Result<int> ColumnIndex(const std::string& name) const;
};

/// Reads a CSV file (comma-separated, first row is the header, RFC-4180
/// quoting with `"` and doubled quotes). Fails when a data row's width
/// differs from the header's.
Result<CsvDocument> ReadCsv(const std::string& path);

/// Parses CSV from a string; same rules as ReadCsv.
Result<CsvDocument> ParseCsv(const std::string& content);

/// Writes a CSV file, quoting fields that contain commas, quotes or
/// newlines.
Status WriteCsv(const std::string& path, const CsvDocument& doc);

/// Serializes to a CSV string.
std::string CsvToString(const CsvDocument& doc);

}  // namespace mysawh

#endif  // MYSAWH_UTIL_CSV_H_
