#ifndef MYSAWH_UTIL_CSV_H_
#define MYSAWH_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// An in-memory CSV document: a header row plus data rows of equal width.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or error if absent.
  Result<int> ColumnIndex(const std::string& name) const;
};

/// Reads a CSV file (comma-separated, first row is the header, RFC-4180
/// quoting with `"` and doubled quotes). Fails when a data row's width
/// differs from the header's.
///
/// Files wrapped in the checksummed `mysawh-artifact v1` envelope (see
/// util/file_io.h) are verified and unwrapped automatically; corruption
/// returns `DataLoss`. With `require_checksum` a plain, un-enveloped file
/// is also rejected — use this when the producer is known to checksum, so
/// that truncating the envelope away cannot smuggle bytes past the CRC.
Result<CsvDocument> ReadCsv(const std::string& path,
                            bool require_checksum = false);

/// Parses CSV from a string; same rules as ReadCsv.
Result<CsvDocument> ParseCsv(const std::string& content);

/// Writes a CSV file atomically (write temp, fsync, rename). With
/// `checksummed`, wraps the bytes in the CRC32 artifact envelope — the
/// file is then no longer plain CSV for external tools, but every bit
/// flip or truncation is detectable on read.
Status WriteCsv(const std::string& path, const CsvDocument& doc,
                bool checksummed = false);

/// Serializes to a CSV string.
std::string CsvToString(const CsvDocument& doc);

}  // namespace mysawh

#endif  // MYSAWH_UTIL_CSV_H_
