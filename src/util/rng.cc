#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

// The distribution-parameter CHECKs below are programmer invariants, not
// input validation: user-supplied parameters enter through
// CohortConfig::Validate (and the other config Validate methods), which
// rejects bad ranges with a Status before any sampler runs. See the
// abort-vs-Status policy in util/logging.h.

namespace mysawh {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

double Rng::Uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MYSAWH_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t x = NextUint64();
  while (x >= limit) x = NextUint64();
  return lo + static_cast<int64_t>(x % range);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double sd) {
  MYSAWH_CHECK_GE(sd, 0.0);
  return mean + sd * Normal();
}

double Rng::Exponential(double lambda) {
  MYSAWH_CHECK_GT(lambda, 0.0);
  double u = Uniform();
  while (u <= 0.0) u = Uniform();
  return -std::log(u) / lambda;
}

int64_t Rng::Poisson(double lambda) {
  MYSAWH_CHECK_GE(lambda, 0.0);
  if (lambda == 0.0) return 0;
  if (lambda > 50.0) {
    // Normal approximation, adequate for the simulator's workloads.
    double x = Normal(lambda, std::sqrt(lambda));
    return x < 0.0 ? 0 : static_cast<int64_t>(std::llround(x));
  }
  const double limit = std::exp(-lambda);
  int64_t k = 0;
  double prod = Uniform();
  while (prod > limit) {
    ++k;
    prod *= Uniform();
  }
  return k;
}

double Rng::Gamma(double shape, double scale) {
  MYSAWH_CHECK_GT(shape, 0.0);
  MYSAWH_CHECK_GT(scale, 0.0);
  if (shape < 1.0) {
    // Boosting trick: Gamma(a) = Gamma(a + 1) * U^(1/a).
    const double u = std::max(Uniform(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double Rng::Beta(double a, double b) {
  const double x = Gamma(a, 1.0);
  const double y = Gamma(b, 1.0);
  return x / (x + y);
}

int64_t Rng::Binomial(int64_t n, double p) {
  MYSAWH_CHECK_GE(n, 0);
  int64_t count = 0;
  for (int64_t i = 0; i < n; ++i) count += Bernoulli(p) ? 1 : 0;
  return count;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  MYSAWH_CHECK_GE(k, 0);
  MYSAWH_CHECK_LE(k, n);
  // Partial Fisher–Yates over an index vector.
  std::vector<int64_t> indices(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) indices[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = UniformInt(i, n - 1);
    std::swap(indices[static_cast<size_t>(i)], indices[static_cast<size_t>(j)]);
  }
  indices.resize(static_cast<size_t>(k));
  return indices;
}

}  // namespace mysawh
