#include "util/json.h"

#include <cctype>
#include <cstdlib>

namespace mysawh {

namespace {

constexpr int kMaxDepth = 64;

/// Cursor over the input with positioned error reporting.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    MYSAWH_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        MYSAWH_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        return ParseKeyword("true", JsonValue::MakeBool(true));
      case 'f':
        return ParseKeyword("false", JsonValue::MakeBool(false));
      case 'n':
        return ParseKeyword("null", JsonValue::MakeNull());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseKeyword(const char* word, JsonValue value) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!Consume(*p)) return Error("invalid literal");
    }
    return value;
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
      // Sign consumed; digits must follow.
    }
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      return Error("invalid number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("invalid number exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    return JsonValue::MakeNumber(value);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected string");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          MYSAWH_ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
          // UTF-8 encode; surrogate pairs combine when both halves present.
          if (code >= 0xD800 && code <= 0xDBFF && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;
            MYSAWH_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Error("invalid low surrogate");
            }
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return Error("truncated \\u escape");
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    if (!Consume('[')) return Error("expected array");
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(items));
    while (true) {
      MYSAWH_ASSIGN_OR_RETURN(JsonValue item, ParseValue(depth + 1));
      items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return JsonValue::MakeArray(std::move(items));
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    if (!Consume('{')) return Error("expected object");
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    while (true) {
      SkipWhitespace();
      MYSAWH_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      MYSAWH_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return JsonValue::MakeObject(std::move(members));
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value() : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value() : fallback;
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue value;
  value.kind_ = Kind::kBool;
  value.bool_ = v;
  return value;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue value;
  value.kind_ = Kind::kNumber;
  value.number_ = v;
  return value;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue value;
  value.kind_ = Kind::kString;
  value.string_ = std::move(v);
  return value;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue value;
  value.kind_ = Kind::kArray;
  value.array_ = std::move(items);
  return value;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue value;
  value.kind_ = Kind::kObject;
  value.object_ = std::move(members);
  return value;
}

Result<JsonValue> ParseJson(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace mysawh
