#include "util/trace.h"

#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "util/file_io.h"
#include "util/metrics.h"
#include "util/resource_stats.h"

namespace mysawh {

namespace trace_internal {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_cost_attribution{false};
}  // namespace trace_internal

namespace {

/// The calling thread's buffer within the global tracer. The pointed-to
/// buffer is owned by the tracer and outlives every thread (the tracer is
/// leaked), so this cache is valid for the thread's whole lifetime.
thread_local Tracer::ThreadBuffer* tls_buffer = nullptr;

/// The calling thread's consumed CPU time in microseconds (0 when the
/// platform lacks CLOCK_THREAD_CPUTIME_ID).
int64_t ThreadCpuMicros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
#else
  return 0;
#endif
}

Counter* DroppedEventsCounter() {
  static Counter* const counter =
      MetricsRegistry::Global().GetCounter("trace.dropped_events");
  return counter;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Tracer& Tracer::Global() {
  // Leaked intentionally: span destructors on worker threads may run
  // during static destruction.
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) buffer->events.clear();
  epoch_ = std::chrono::steady_clock::now();
  DroppedEventsCounter()->Reset();
  trace_internal::g_enabled.store(true, std::memory_order_release);
}

void Tracer::Disable() {
  trace_internal::g_enabled.store(false, std::memory_order_release);
}

void Tracer::SetCostAttribution(bool enabled) {
  trace_internal::g_cost_attribution.store(enabled,
                                           std::memory_order_release);
}

void Tracer::SetMaxEventsPerThread(size_t max_events) {
  max_events_per_thread_.store(max_events, std::memory_order_relaxed);
}

int64_t Tracer::dropped_events() const {
  return DroppedEventsCounter()->Value();
}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  if (tls_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffers_.back()->tid = next_tid_++;
    tls_buffer = buffers_.back().get();
  }
  return tls_buffer;
}

void Tracer::Record(TraceEvent event) {
  if (recent_enabled_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(recent_mutex_);
    if (recent_capacity_ > 0) {
      if (recent_names_.size() < recent_capacity_) {
        recent_names_.push_back(event.name);
      } else {
        recent_names_[recent_next_] = event.name;
      }
      recent_next_ = (recent_next_ + 1) % recent_capacity_;
    }
  }
  ThreadBuffer* buffer = BufferForThisThread();
  const size_t cap = max_events_per_thread_.load(std::memory_order_relaxed);
  if (cap != 0 && buffer->events.size() >= cap) {
    DroppedEventsCounter()->Increment();
    return;
  }
  event.tid = buffer->tid;
  buffer->events.push_back(std::move(event));
}

void Tracer::EnableRecentSpans(size_t capacity) {
  std::lock_guard<std::mutex> lock(recent_mutex_);
  recent_names_.clear();
  recent_capacity_ = capacity;
  recent_next_ = 0;
  recent_enabled_.store(capacity > 0, std::memory_order_relaxed);
}

std::vector<std::string> Tracer::RecentSpanNames() {
  std::lock_guard<std::mutex> lock(recent_mutex_);
  std::vector<std::string> names;
  names.reserve(recent_names_.size());
  // recent_next_ points at the oldest entry once the ring has wrapped.
  const size_t n = recent_names_.size();
  const size_t start = (n == recent_capacity_) ? recent_next_ : 0;
  for (size_t i = 0; i < n; ++i) {
    names.push_back(recent_names_[(start + i) % n]);
  }
  return names;
}

std::vector<TraceEvent> Tracer::Snapshot() {
  // Second element: position in the thread's buffer. RAII scoping records
  // inner spans before the outer spans that contain them, so when a
  // sub-microsecond outer/inner pair ties on both ts and dur, the later
  // buffer position is the enclosing span.
  std::vector<std::pair<TraceEvent, size_t>> indexed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      for (size_t i = 0; i < buffer->events.size(); ++i) {
        indexed.emplace_back(buffer->events[i], i);
      }
    }
  }
  // Start-time order, longest-first on ties, so enclosing spans precede
  // their children and equal-timing runs serialize identically.
  std::sort(indexed.begin(), indexed.end(),
            [](const std::pair<TraceEvent, size_t>& lhs,
               const std::pair<TraceEvent, size_t>& rhs) {
              const TraceEvent& a = lhs.first;
              const TraceEvent& b = rhs.first;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return lhs.second > rhs.second;
            });
  std::vector<TraceEvent> events;
  events.reserve(indexed.size());
  for (auto& entry : indexed) events.push_back(std::move(entry.first));
  return events;
}

size_t Tracer::event_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = 0;
  for (const auto& buffer : buffers_) count += buffer->events.size();
  return count;
}

std::string Tracer::ToJson() {
  const std::vector<TraceEvent> events = Snapshot();
  const long pid = static_cast<long>(::getpid());
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":0,\"args\":{\"name\":\"mysawh\"}}";
  for (const TraceEvent& event : events) {
    os << ",\n{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\""
       << JsonEscape(event.cat) << "\",\"ph\":\"X\",\"ts\":" << event.ts_us
       << ",\"dur\":" << event.dur_us << ",\"pid\":" << pid
       << ",\"tid\":" << event.tid;
    // Captured costs join the user args inside the same "args" object so
    // the trace viewer shows them in the detail pane.
    std::string args = event.args;
    if (event.cpu_us >= 0) {
      if (!args.empty()) args += ",";
      args += "\"cpu_us\":" + std::to_string(event.cpu_us) +
              ",\"alloc_bytes\":" + std::to_string(event.alloc_bytes);
    }
    if (!args.empty()) os << ",\"args\":{" << args << "}";
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

Status Tracer::WriteJson(const std::string& path) {
  return WriteFileAtomic(path, ToJson(), "trace_write");
}

std::string Tracer::CostTableJson(int top_n) {
  struct NameCost {
    int64_t count = 0;
    int64_t cpu_us = 0;
    int64_t alloc_bytes = 0;
  };
  std::map<std::string, NameCost> by_name;
  for (const TraceEvent& event : Snapshot()) {
    if (event.cpu_us < 0) continue;
    NameCost& cost = by_name[event.name];
    ++cost.count;
    cost.cpu_us += event.cpu_us;
    cost.alloc_bytes += event.alloc_bytes > 0 ? event.alloc_bytes : 0;
  }
  if (by_name.empty()) return "";

  using Entry = std::pair<std::string, NameCost>;
  std::vector<Entry> entries(by_name.begin(), by_name.end());
  const auto render = [&entries, top_n](
                          std::ostringstream& os,
                          int64_t NameCost::*key) {
    // Descending on the key; the map iteration order already breaks ties
    // by ascending name, and stable_sort preserves it.
    std::stable_sort(entries.begin(), entries.end(),
                     [key](const Entry& a, const Entry& b) {
                       return a.second.*key > b.second.*key;
                     });
    const int n = std::min<int>(top_n, static_cast<int>(entries.size()));
    for (int i = 0; i < n; ++i) {
      const Entry& e = entries[i];
      os << (i == 0 ? "" : ",") << "{\"name\":\"" << JsonEscape(e.first)
         << "\",\"count\":" << e.second.count
         << ",\"cpu_us\":" << e.second.cpu_us
         << ",\"alloc_bytes\":" << e.second.alloc_bytes << "}";
    }
  };
  std::ostringstream os;
  os << "{\"by_cpu\":[";
  render(os, &NameCost::cpu_us);
  os << "],\"by_bytes\":[";
  render(os, &NameCost::alloc_bytes);
  os << "]}";
  return os.str();
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  Finish();
  active_ = other.active_;
  costed_ = other.costed_;
  name_ = std::move(other.name_);
  cat_ = other.cat_;
  start_us_ = other.start_us_;
  start_cpu_us_ = other.start_cpu_us_;
  start_alloc_bytes_ = other.start_alloc_bytes_;
  args_ = std::move(other.args_);
  other.active_ = false;
  return *this;
}

void TraceSpan::Begin(std::string name, const char* cat) {
  name_ = std::move(name);
  cat_ = cat;
  costed_ = CostAttributionEnabled();
  if (costed_) {
    start_cpu_us_ = ThreadCpuMicros();
    start_alloc_bytes_ = ThreadAllocBytes();
  }
  start_us_ = Tracer::Global().NowMicros();
}

void TraceSpan::Finish() {
  if (!active_) return;
  active_ = false;
  TraceEvent event;
  event.name = std::move(name_);
  event.cat = cat_;
  event.ts_us = start_us_;
  event.dur_us = Tracer::Global().NowMicros() - start_us_;
  if (costed_) {
    event.cpu_us = ThreadCpuMicros() - start_cpu_us_;
    event.alloc_bytes = ThreadAllocBytes() - start_alloc_bytes_;
    if (event.cpu_us < 0) event.cpu_us = 0;
  }
  event.args = std::move(args_);
  Tracer::Global().Record(std::move(event));
}

void TraceSpan::Arg(const char* key, int64_t value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ",";
  args_ += "\"";
  args_ += JsonEscape(key);
  args_ += "\":";
  args_ += std::to_string(value);
}

}  // namespace mysawh
