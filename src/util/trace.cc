#include "util/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/file_io.h"

namespace mysawh {

namespace trace_internal {
std::atomic<bool> g_enabled{false};
}  // namespace trace_internal

namespace {

/// The calling thread's buffer within the global tracer. The pointed-to
/// buffer is owned by the tracer and outlives every thread (the tracer is
/// leaked), so this cache is valid for the thread's whole lifetime.
thread_local Tracer::ThreadBuffer* tls_buffer = nullptr;

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Tracer& Tracer::Global() {
  // Leaked intentionally: span destructors on worker threads may run
  // during static destruction.
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) buffer->events.clear();
  epoch_ = std::chrono::steady_clock::now();
  trace_internal::g_enabled.store(true, std::memory_order_release);
}

void Tracer::Disable() {
  trace_internal::g_enabled.store(false, std::memory_order_release);
}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  if (tls_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffers_.back()->tid = next_tid_++;
    tls_buffer = buffers_.back().get();
  }
  return tls_buffer;
}

void Tracer::Record(TraceEvent event) {
  ThreadBuffer* buffer = BufferForThisThread();
  event.tid = buffer->tid;
  buffer->events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() {
  // Second element: position in the thread's buffer. RAII scoping records
  // inner spans before the outer spans that contain them, so when a
  // sub-microsecond outer/inner pair ties on both ts and dur, the later
  // buffer position is the enclosing span.
  std::vector<std::pair<TraceEvent, size_t>> indexed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      for (size_t i = 0; i < buffer->events.size(); ++i) {
        indexed.emplace_back(buffer->events[i], i);
      }
    }
  }
  // Start-time order, longest-first on ties, so enclosing spans precede
  // their children and equal-timing runs serialize identically.
  std::sort(indexed.begin(), indexed.end(),
            [](const std::pair<TraceEvent, size_t>& lhs,
               const std::pair<TraceEvent, size_t>& rhs) {
              const TraceEvent& a = lhs.first;
              const TraceEvent& b = rhs.first;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return lhs.second > rhs.second;
            });
  std::vector<TraceEvent> events;
  events.reserve(indexed.size());
  for (auto& entry : indexed) events.push_back(std::move(entry.first));
  return events;
}

size_t Tracer::event_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = 0;
  for (const auto& buffer : buffers_) count += buffer->events.size();
  return count;
}

std::string Tracer::ToJson() {
  const std::vector<TraceEvent> events = Snapshot();
  const long pid = static_cast<long>(::getpid());
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":0,\"args\":{\"name\":\"mysawh\"}}";
  for (const TraceEvent& event : events) {
    os << ",\n{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\""
       << JsonEscape(event.cat) << "\",\"ph\":\"X\",\"ts\":" << event.ts_us
       << ",\"dur\":" << event.dur_us << ",\"pid\":" << pid
       << ",\"tid\":" << event.tid;
    if (!event.args.empty()) os << ",\"args\":{" << event.args << "}";
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

Status Tracer::WriteJson(const std::string& path) {
  return WriteFileAtomic(path, ToJson(), "trace_write");
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  Finish();
  active_ = other.active_;
  name_ = std::move(other.name_);
  cat_ = other.cat_;
  start_us_ = other.start_us_;
  args_ = std::move(other.args_);
  other.active_ = false;
  return *this;
}

void TraceSpan::Begin(std::string name, const char* cat) {
  name_ = std::move(name);
  cat_ = cat;
  start_us_ = Tracer::Global().NowMicros();
}

void TraceSpan::Finish() {
  if (!active_) return;
  active_ = false;
  TraceEvent event;
  event.name = std::move(name_);
  event.cat = cat_;
  event.ts_us = start_us_;
  event.dur_us = Tracer::Global().NowMicros() - start_us_;
  event.args = std::move(args_);
  Tracer::Global().Record(std::move(event));
}

void TraceSpan::Arg(const char* key, int64_t value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ",";
  args_ += "\"";
  args_ += JsonEscape(key);
  args_ += "\":";
  args_ += std::to_string(value);
}

}  // namespace mysawh
