#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mysawh {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return ss / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

Result<double> Quantile(const std::vector<double>& values, double q) {
  if (values.empty()) {
    return Status::InvalidArgument("Quantile of empty vector");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("quantile q must be in [0, 1]");
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(std::floor(pos));
  const auto hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Result<double> Median(const std::vector<double>& values) {
  return Quantile(values, 0.5);
}

Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("correlation inputs differ in length");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("correlation needs at least 2 points");
  }
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::string BoxStats::ToString() const {
  std::ostringstream os;
  os << "min=" << min << " q1=" << q1 << " med=" << median << " q3=" << q3
     << " max=" << max << " outliers=" << outliers.size();
  return os.str();
}

Result<BoxStats> ComputeBoxStats(const std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("ComputeBoxStats on empty vector");
  }
  BoxStats box;
  MYSAWH_ASSIGN_OR_RETURN(box.q1, Quantile(values, 0.25));
  MYSAWH_ASSIGN_OR_RETURN(box.median, Quantile(values, 0.5));
  MYSAWH_ASSIGN_OR_RETURN(box.q3, Quantile(values, 0.75));
  box.iqr = box.q3 - box.q1;
  const double lo_fence = box.q1 - 1.5 * box.iqr;
  const double hi_fence = box.q3 + 1.5 * box.iqr;
  box.min = box.q1;
  box.max = box.q3;
  bool have_inlier = false;
  for (double v : values) {
    if (v < lo_fence || v > hi_fence) {
      box.outliers.push_back(v);
    } else {
      if (!have_inlier) {
        box.min = box.max = v;
        have_inlier = true;
      } else {
        box.min = std::min(box.min, v);
        box.max = std::max(box.max, v);
      }
    }
  }
  std::sort(box.outliers.begin(), box.outliers.end());
  return box;
}

Result<Histogram> ComputeHistogram(const std::vector<double>& values,
                                   const std::vector<double>& edges) {
  if (edges.size() < 2) {
    return Status::InvalidArgument("histogram needs at least 2 edges");
  }
  for (size_t i = 1; i < edges.size(); ++i) {
    if (edges[i] <= edges[i - 1]) {
      return Status::InvalidArgument("histogram edges must strictly increase");
    }
  }
  Histogram hist;
  hist.edges = edges;
  hist.counts.assign(edges.size() - 1, 0);
  for (double v : values) {
    if (v < edges.front()) {
      ++hist.below;
    } else if (v >= edges.back()) {
      ++hist.above;
    } else {
      const auto it = std::upper_bound(edges.begin(), edges.end(), v);
      const auto bin = static_cast<size_t>(it - edges.begin()) - 1;
      ++hist.counts[bin];
    }
  }
  return hist;
}

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace mysawh
