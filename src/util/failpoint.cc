#include "util/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/string_util.h"

namespace mysawh {

namespace {

/// Error injected when a failpoint fires. IoError is the category real
/// fault sites (file writes, renames, reads) would produce.
Status InjectedError(const std::string& site, int err_no) {
  std::string msg = "injected failure at failpoint '" + site + "'";
  if (err_no != 0) {
    msg += " (errno " + std::to_string(err_no) + ": " +
           std::strerror(err_no) + ")";
  }
  return Status::IoError(std::move(msg));
}

}  // namespace

Result<FailpointSpec> FailpointSpec::Parse(const std::string& text) {
  FailpointSpec spec;
  bool have_mode = false;
  for (const std::string& raw : Split(text, ',')) {
    const std::string part = Trim(raw);
    if (part == "once") {
      spec.mode = Mode::kOnce;
      spec.n = 1;
      have_mode = true;
    } else if (part == "always") {
      spec.mode = Mode::kAlways;
      spec.n = 1;
      have_mode = true;
    } else if (StartsWith(part, "nth:") || StartsWith(part, "from:") ||
               StartsWith(part, "every:")) {
      const size_t colon = part.find(':');
      MYSAWH_ASSIGN_OR_RETURN(int64_t k, ParseInt64(part.substr(colon + 1)));
      if (k < 1) {
        return Status::InvalidArgument("failpoint count must be >= 1: " +
                                       part);
      }
      spec.n = k;
      spec.mode = StartsWith(part, "nth:")    ? Mode::kNth
                  : StartsWith(part, "from:") ? Mode::kFromNth
                                              : Mode::kEveryN;
      have_mode = true;
    } else if (StartsWith(part, "errno:")) {
      MYSAWH_ASSIGN_OR_RETURN(int64_t e, ParseInt64(part.substr(6)));
      if (e < 1) {
        return Status::InvalidArgument("failpoint errno must be >= 1: " +
                                       part);
      }
      spec.err_no = static_cast<int>(e);
      // errno alone means "always fail, with this errno".
      if (!have_mode) spec.mode = Mode::kAlways;
    } else {
      return Status::InvalidArgument("unknown failpoint spec part: '" + part +
                                     "' in '" + text + "'");
    }
  }
  if (!have_mode && spec.err_no == 0) {
    return Status::InvalidArgument("empty failpoint spec: '" + text + "'");
  }
  return spec;
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry;
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  const char* env = std::getenv("MYSAWH_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  for (const std::string& entry : Split(env, ';')) {
    if (Trim(entry).empty()) continue;
    const Status st = EnableFromString(entry);
    if (!st.ok()) {
      std::fprintf(stderr, "MYSAWH_FAILPOINTS: ignoring entry: %s\n",
                   st.ToString().c_str());
    }
  }
}

void FailpointRegistry::Enable(const std::string& site, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (name == site) {
      entry = Entry{spec, 0};
      return;
    }
  }
  entries_.emplace_back(site, Entry{spec, 0});
  armed_count_.store(static_cast<int64_t>(entries_.size()),
                     std::memory_order_release);
}

Status FailpointRegistry::EnableFromString(const std::string& entry) {
  const size_t eq = entry.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("failpoint entry needs 'site=spec': '" +
                                   entry + "'");
  }
  const std::string site = Trim(entry.substr(0, eq));
  if (site.empty()) {
    return Status::InvalidArgument("empty failpoint site in '" + entry + "'");
  }
  MYSAWH_ASSIGN_OR_RETURN(FailpointSpec spec,
                          FailpointSpec::Parse(entry.substr(eq + 1)));
  Enable(site, spec);
  return Status::Ok();
}

void FailpointRegistry::Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first == site) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  armed_count_.store(static_cast<int64_t>(entries_.size()),
                     std::memory_order_release);
}

void FailpointRegistry::DisableAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  armed_count_.store(0, std::memory_order_release);
}

int64_t FailpointRegistry::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : entries_) {
    if (name == site) return entry.hits;
  }
  return 0;
}

std::optional<Status> FailpointRegistry::Check(const char* site) {
  if (!AnyArmed()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (name != site) continue;
    const int64_t hit = ++entry.hits;
    bool fire = false;
    switch (entry.spec.mode) {
      case FailpointSpec::Mode::kOnce:
        fire = hit == 1;
        break;
      case FailpointSpec::Mode::kNth:
        fire = hit == entry.spec.n;
        break;
      case FailpointSpec::Mode::kFromNth:
        fire = hit >= entry.spec.n;
        break;
      case FailpointSpec::Mode::kEveryN:
        fire = hit % entry.spec.n == 0;
        break;
      case FailpointSpec::Mode::kAlways:
        fire = true;
        break;
    }
    if (!fire) return std::nullopt;
    return InjectedError(name, entry.spec.err_no);
  }
  return std::nullopt;
}

}  // namespace mysawh
