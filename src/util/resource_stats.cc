#include "util/resource_stats.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "util/metrics.h"

namespace mysawh {

namespace {

#if defined(__linux__)
/// Clock ticks per second, for converting /proc/self/stat utime/stime.
double TicksPerSecond() {
  static const double ticks = [] {
    const long hz = ::sysconf(_SC_CLK_TCK);
    return hz > 0 ? static_cast<double>(hz) : 100.0;
  }();
  return ticks;
}

/// Parses /proc/self/stat fields 10 (minflt), 12 (majflt), 14 (utime),
/// 15 (stime), 20 (num_threads). The comm field (2) may contain spaces, so
/// scanning restarts after its closing ')'.
bool ParseProcStat(ResourceSample* sample) {
  std::ifstream in("/proc/self/stat");
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  const size_t close = line.rfind(')');
  if (close == std::string::npos) return false;
  std::istringstream fields(line.substr(close + 1));
  // Fields after comm, starting at field 3 (state).
  std::string state;
  long long ppid, pgrp, session, tty, tpgid;
  unsigned long long flags, minflt, cminflt, majflt, cmajflt, utime, stime;
  long long cutime, cstime, priority, nice, num_threads;
  if (!(fields >> state >> ppid >> pgrp >> session >> tty >> tpgid >> flags >>
        minflt >> cminflt >> majflt >> cmajflt >> utime >> stime >> cutime >>
        cstime >> priority >> nice >> num_threads)) {
    return false;
  }
  sample->minor_faults = static_cast<int64_t>(minflt);
  sample->major_faults = static_cast<int64_t>(majflt);
  sample->utime_ms = static_cast<double>(utime) * 1e3 / TicksPerSecond();
  sample->stime_ms = static_cast<double>(stime) * 1e3 / TicksPerSecond();
  sample->num_threads = static_cast<int64_t>(num_threads);
  return true;
}

/// Reads VmRSS / VmHWM (kB lines) from /proc/self/status.
void ParseProcStatus(ResourceSample* sample) {
  std::ifstream in("/proc/self/status");
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    long long kb = 0;
    if (std::sscanf(line.c_str(), "VmRSS: %lld kB", &kb) == 1) {
      sample->rss_bytes = static_cast<int64_t>(kb) * 1024;
    } else if (std::sscanf(line.c_str(), "VmHWM: %lld kB", &kb) == 1) {
      sample->peak_rss_bytes = static_cast<int64_t>(kb) * 1024;
    }
  }
}
#endif  // __linux__

/// Cumulative tracked bytes per category, process-wide. Plain atomics next
/// to the registry gauges so ThreadAllocBytes() and the gauges can never
/// drift apart on the accounting side.
struct AllocAccounting {
  Gauge* gauges[kNumAllocCategories];
};

AllocAccounting& Accounting() {
  static AllocAccounting accounting = [] {
    auto& registry = MetricsRegistry::Global();
    AllocAccounting a;
    for (int c = 0; c < kNumAllocCategories; ++c) {
      a.gauges[c] =
          registry.GetGauge(AllocCategoryGaugeName(static_cast<AllocCategory>(c)));
    }
    return a;
  }();
  return accounting;
}

/// The calling thread's cumulative tracked bytes (all categories). Spans
/// delta this; it only ever grows, so a span's delta is exactly the bytes
/// tracked during its lifetime on its thread.
thread_local int64_t tls_alloc_bytes = 0;

}  // namespace

ResourceSample SampleResources() {
  ResourceSample sample;
#if defined(__linux__)
  sample.valid = ParseProcStat(&sample);
  ParseProcStatus(&sample);
#endif
  return sample;
}

void UpdateResourceGauges(const ResourceSample& sample) {
  struct ResourceGauges {
    Gauge* rss;
    Gauge* peak_rss;
    Gauge* utime_ms;
    Gauge* stime_ms;
    Gauge* minor_faults;
    Gauge* major_faults;
    Gauge* threads;
  };
  static ResourceGauges gauges = [] {
    auto& registry = MetricsRegistry::Global();
    return ResourceGauges{registry.GetGauge("resource.rss_bytes"),
                          registry.GetGauge("resource.peak_rss_bytes"),
                          registry.GetGauge("resource.utime_ms"),
                          registry.GetGauge("resource.stime_ms"),
                          registry.GetGauge("resource.minor_faults"),
                          registry.GetGauge("resource.major_faults"),
                          registry.GetGauge("resource.threads")};
  }();
  gauges.rss->Set(sample.rss_bytes);
  gauges.peak_rss->Set(sample.peak_rss_bytes);
  gauges.utime_ms->Set(static_cast<int64_t>(sample.utime_ms));
  gauges.stime_ms->Set(static_cast<int64_t>(sample.stime_ms));
  gauges.minor_faults->Set(sample.minor_faults);
  gauges.major_faults->Set(sample.major_faults);
  gauges.threads->Set(sample.num_threads);
}

std::string ResourceSampleJson(const ResourceSample& sample) {
  std::ostringstream os;
  os << "{\"rss_bytes\":" << sample.rss_bytes
     << ",\"peak_rss_bytes\":" << sample.peak_rss_bytes << ",\"utime_ms\":"
     << static_cast<int64_t>(sample.utime_ms) << ",\"stime_ms\":"
     << static_cast<int64_t>(sample.stime_ms)
     << ",\"minor_faults\":" << sample.minor_faults
     << ",\"major_faults\":" << sample.major_faults
     << ",\"threads\":" << sample.num_threads
     << ",\"valid\":" << (sample.valid ? "true" : "false") << "}";
  return os.str();
}

const char* AllocCategoryGaugeName(AllocCategory category) {
  switch (category) {
    case AllocCategory::kBinnedMatrix:
      return "alloc.binned_matrix_bytes";
    case AllocCategory::kFlatForest:
      return "alloc.flat_forest_bytes";
    case AllocCategory::kCheckpoint:
      return "alloc.checkpoint_bytes";
  }
  return "alloc.unknown_bytes";
}

void TrackAlloc(AllocCategory category, int64_t bytes) {
  if (bytes <= 0) return;
  Accounting().gauges[static_cast<int>(category)]->Add(bytes);
  tls_alloc_bytes += bytes;
}

int64_t ThreadAllocBytes() { return tls_alloc_bytes; }

}  // namespace mysawh
