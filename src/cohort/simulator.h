#ifndef MYSAWH_COHORT_SIMULATOR_H_
#define MYSAWH_COHORT_SIMULATOR_H_

#include "cohort/cohort.h"
#include "util/rng.h"
#include "util/status.h"

namespace mysawh::cohort {

/// Generates a synthetic MySAwH-like cohort.
///
/// Generative model (per patient):
///  1. A hidden frailty latent F ~ Beta(2.2, 3.5).
///  2. Five IC-domain capacities D_d(m) in [0, 1], initialized from F plus
///     idiosyncratic variation, evolving month to month as a slowly
///     declining random walk.
///  3. 56 weekly PRO answers: each question reads its domain's capacity
///     through a per-question link (linear / saturating / threshold),
///     reverse-coding, clinic protocol shift, observation noise, and
///     ordinal quantization to 1..levels.
///  4. Daily activity: steps driven by locomotion and frailty, calories by
///     steps and vitality, sleep by the psychological domain.
///  5. 37 clinical deficits at each visit, Bernoulli in the frailty and
///     mean capacity — the Frailty Index inputs.
///  6. Outcomes (QoL, SPPB, Falls) at the end of each 9-month window from
///     the latent state (OutcomeModelParams), NOT from the observed
///     answers, so observations are noisy views of the signal.
///  7. Missingness: gap runs injected into every PRO series (length
///     distribution matched to the paper's QA: mean ~5, capped at 17), a
///     low-adherence patient subgroup, and missing wearable days.
///
/// Everything is deterministic given CohortConfig::seed; per-patient RNG
/// streams are forked so patients are independent of generation order.
class CohortSimulator {
 public:
  explicit CohortSimulator(CohortConfig config);

  /// Generates the full cohort, or fails on invalid configuration.
  Result<Cohort> Generate() const;

 private:
  PatientData GeneratePatient(int64_t patient_id, int clinic_index,
                              const ProQuestionBank& bank, Rng* rng) const;

  CohortConfig config_;
};

}  // namespace mysawh::cohort

#endif  // MYSAWH_COHORT_SIMULATOR_H_
