#include "cohort/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mysawh::cohort {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Applies a question's link function to a latent capacity in [0, 1].
double ApplyShape(const ProQuestion& q, double latent) {
  switch (q.shape) {
    case QuestionShape::kLinear:
      return latent;
    case QuestionShape::kSaturating:
      return std::sqrt(Clamp01(latent));
    case QuestionShape::kThreshold:
      return Sigmoid((latent - q.shape_midpoint) * 9.0);
  }
  return latent;
}

}  // namespace

Status CohortConfig::Validate() const {
  if (clinics.empty()) {
    return Status::InvalidArgument("cohort needs at least one clinic");
  }
  for (const auto& clinic : clinics) {
    if (clinic.num_patients < 1) {
      return Status::InvalidArgument("clinic " + clinic.name +
                                     " has no patients");
    }
    if (clinic.noise_scale <= 0.0) {
      return Status::InvalidArgument("clinic noise_scale must be > 0");
    }
  }
  if (num_months < 9 || num_months % 9 != 0) {
    return Status::InvalidArgument(
        "num_months must be a positive multiple of 9");
  }
  if (weeks_per_month < 1 || days_per_month < 1) {
    return Status::InvalidArgument("cadence values must be >= 1");
  }
  if (num_clinical_deficits < 1) {
    return Status::InvalidArgument("need at least one clinical deficit");
  }
  if (gaps_per_series < 0.0 || mean_gap_length < 1.0 || max_gap_length < 1) {
    return Status::InvalidArgument("invalid gap parameters");
  }
  if (episodes_per_patient < 0.0 || episode_max_months < 1 ||
      episode_depth_lo < 0.0 || episode_depth_hi < episode_depth_lo) {
    return Status::InvalidArgument("invalid illness-episode parameters");
  }
  if (mnar_gap_bias < 0.0 || mnar_gap_bias > 1.0) {
    return Status::InvalidArgument("mnar_gap_bias must be in [0, 1]");
  }
  if (low_adherence_fraction < 0.0 || low_adherence_fraction > 1.0) {
    return Status::InvalidArgument("low_adherence_fraction must be in [0,1]");
  }
  if (activity_missing_day_prob < 0.0 || activity_missing_day_prob >= 1.0) {
    return Status::InvalidArgument(
        "activity_missing_day_prob must be in [0,1)");
  }
  return Status::Ok();
}

int CohortConfig::TotalPatients() const {
  int total = 0;
  for (const auto& clinic : clinics) total += clinic.num_patients;
  return total;
}

CohortSimulator::CohortSimulator(CohortConfig config)
    : config_(std::move(config)) {}

Result<Cohort> CohortSimulator::Generate() const {
  MYSAWH_RETURN_NOT_OK(config_.Validate());
  Cohort cohort;
  cohort.config = config_;
  cohort.questions = ProQuestionBank::Standard();
  Rng master(config_.seed);
  int64_t patient_id = 0;
  for (size_t c = 0; c < config_.clinics.size(); ++c) {
    for (int p = 0; p < config_.clinics[c].num_patients; ++p, ++patient_id) {
      Rng patient_rng = master.Fork();
      cohort.patients.push_back(GeneratePatient(
          patient_id, static_cast<int>(c), cohort.questions, &patient_rng));
    }
  }
  return cohort;
}

PatientData CohortSimulator::GeneratePatient(int64_t patient_id,
                                             int clinic_index,
                                             const ProQuestionBank& bank,
                                             Rng* rng) const {
  const ClinicSpec& clinic = config_.clinics[static_cast<size_t>(clinic_index)];
  const OutcomeModelParams& om = config_.outcome;
  PatientData patient;
  patient.patient_id = patient_id;
  patient.clinic = clinic_index;

  // 1. Hidden frailty.
  patient.frailty = rng->Beta(2.2, 3.5);

  // 2. Domain capacity trajectories.
  const int months = config_.num_months;
  patient.domain_by_month.resize(static_cast<size_t>(months));
  std::array<double, kNumDomains> offsets{};
  for (auto& o : offsets) o = rng->Normal(0.0, 0.18);
  for (int d = 0; d < kNumDomains; ++d) {
    double level = Clamp01(0.92 - 0.58 * patient.frailty +
                           offsets[static_cast<size_t>(d)]);
    const double drift = rng->Normal(-0.004, 0.003);
    for (int m = 0; m < months; ++m) {
      patient.domain_by_month[static_cast<size_t>(m)][static_cast<size_t>(d)] =
          level;
      level = Clamp01(level + drift + rng->Normal(0.0, 0.02));
    }
  }
  // 2b. Transient illness episodes: dips of every domain, baked directly
  // into the monthly latents so PRO answers, activity, deficits and
  // outcomes all see them consistently.
  const int64_t num_episodes = rng->Poisson(config_.episodes_per_patient);
  for (int64_t e = 0; e < num_episodes; ++e) {
    IllnessEpisode episode;
    episode.start_month = static_cast<int>(rng->UniformInt(0, months - 1));
    episode.length =
        static_cast<int>(rng->UniformInt(1, config_.episode_max_months));
    episode.depth =
        rng->Uniform(config_.episode_depth_lo, config_.episode_depth_hi);
    for (int m = episode.start_month;
         m < std::min(months, episode.start_month + episode.length); ++m) {
      for (int d = 0; d < kNumDomains; ++d) {
        auto& level =
            patient.domain_by_month[static_cast<size_t>(m)][static_cast<size_t>(d)];
        level = Clamp01(level - episode.depth);
      }
    }
    patient.episodes.push_back(episode);
  }

  auto domain_at_month = [&](int m, IcDomain d) {
    return patient
        .domain_by_month[static_cast<size_t>(m)][static_cast<size_t>(d)];
  };
  // Linear interpolation of a domain latent at a fractional month position.
  auto domain_at = [&](double month_pos, IcDomain d) {
    const double clamped =
        std::min(static_cast<double>(months - 1), std::max(0.0, month_pos));
    const int lo = static_cast<int>(clamped);
    const int hi = std::min(lo + 1, months - 1);
    const double t = clamped - lo;
    return (1.0 - t) * domain_at_month(lo, d) + t * domain_at_month(hi, d);
  };

  // 3. Weekly PRO answers.
  const int num_weeks = months * config_.weeks_per_month;
  const bool low_adherence = rng->Bernoulli(config_.low_adherence_fraction);
  // Idiosyncratic protocol deviation (see ClinicSpec).
  const double patient_shift =
      rng->Bernoulli(clinic.protocol_outlier_fraction)
          ? rng->Normal(0.0, clinic.protocol_outlier_sd)
          : 0.0;
  patient.pro_weekly.reserve(static_cast<size_t>(bank.size()));
  for (int64_t q = 0; q < bank.size(); ++q) {
    const ProQuestion& question = bank.question(q);
    std::vector<double> answers(static_cast<size_t>(num_weeks), kNaN);
    for (int w = 0; w < num_weeks; ++w) {
      const double month_pos =
          static_cast<double>(w) / config_.weeks_per_month;
      const double latent =
          Clamp01(domain_at(month_pos, question.domain) +
                  rng->Normal(0.0, 0.04));
      double score = ApplyShape(question, latent);
      if (question.reversed) score = 1.0 - score;
      score += clinic.answer_shift + patient_shift +
               rng->Normal(0.0, question.noise_sd * clinic.noise_scale);
      const double raw = 1.0 + Clamp01(score) * (question.levels - 1);
      answers[static_cast<size_t>(w)] = std::min(
          static_cast<double>(question.levels),
          std::max(1.0, std::round(raw)));
    }
    patient.pro_weekly.emplace_back(std::move(answers));
  }
  // 7a. Missingness: gap runs per series.
  const double gap_rate =
      config_.gaps_per_series *
      (low_adherence ? config_.low_adherence_gap_multiplier : 1.0);
  for (auto& series : patient.pro_weekly) {
    const int64_t num_gaps = rng->Poisson(gap_rate);
    for (int64_t g = 0; g < num_gaps; ++g) {
      int64_t length = 1 + rng->Poisson(config_.mean_gap_length - 1.0);
      length = std::min<int64_t>(length, config_.max_gap_length);
      int64_t start;
      if (!patient.episodes.empty() &&
          rng->Bernoulli(config_.mnar_gap_bias)) {
        // Missing-not-at-random: anchor the gap inside an illness episode.
        const auto& episode = patient.episodes[static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(patient.episodes.size()) -
                                   1))];
        const int64_t first_week =
            static_cast<int64_t>(episode.start_month) *
            config_.weeks_per_month;
        const int64_t last_week =
            std::min(series.size() - 1,
                     first_week + static_cast<int64_t>(episode.length) *
                                      config_.weeks_per_month -
                         1);
        start = rng->UniformInt(first_week, last_week);
      } else {
        start = rng->UniformInt(0, series.size() - 1);
      }
      const int64_t end = std::min(series.size(), start + length);
      // Keep injected runs from merging into runs longer than the cap
      // (the paper's QA reports a max observed gap of 17): skip placements
      // that would touch an existing missing entry.
      bool touches = false;
      for (int64_t i = std::max<int64_t>(0, start - 1);
           i < std::min(series.size(), end + 1); ++i) {
        if (series.IsMissing(i)) {
          touches = true;
          break;
        }
      }
      if (touches) continue;
      for (int64_t i = start; i < end; ++i) series.set(i, kNaN);
    }
  }

  // 4. Daily activity traces.
  const int num_days = months * config_.days_per_month;
  std::vector<double> steps(static_cast<size_t>(num_days), kNaN);
  std::vector<double> calories(static_cast<size_t>(num_days), kNaN);
  std::vector<double> sleep(static_cast<size_t>(num_days), kNaN);
  for (int day = 0; day < num_days; ++day) {
    const double month_pos =
        static_cast<double>(day) / config_.days_per_month;
    const double loco = domain_at(month_pos, IcDomain::kLocomotion);
    const double vitality = domain_at(month_pos, IcDomain::kVitality);
    const double psych = domain_at(month_pos, IcDomain::kPsychological);
    if (rng->Bernoulli(config_.activity_missing_day_prob)) continue;
    const double steps_mean = 1500.0 + 9000.0 * std::pow(loco, 1.3) *
                                           (1.0 - 0.25 * patient.frailty);
    const double day_steps =
        std::max(0.0, steps_mean * std::exp(rng->Normal(0.0, 0.30)));
    steps[static_cast<size_t>(day)] = std::round(day_steps);
    calories[static_cast<size_t>(day)] =
        std::round(1250.0 + 0.42 * day_steps + 420.0 * vitality +
                   rng->Normal(0.0, 120.0));
    sleep[static_cast<size_t>(day)] = std::min(
        11.0, std::max(3.0, 4.3 + 1.8 * psych + 1.2 * vitality +
                                rng->Normal(0.0, 0.7)));
  }
  patient.steps_daily = TimeSeries(std::move(steps));
  patient.calories_daily = TimeSeries(std::move(calories));
  patient.sleep_daily = TimeSeries(std::move(sleep));

  // 5. Clinical deficits at visits (window starts plus the final visit).
  const int num_windows = config_.NumWindows();
  const int num_visits = num_windows + 1;  // months 0, 9, ..., num_months
  patient.deficits_at_visit.resize(static_cast<size_t>(num_visits));
  for (int v = 0; v < num_visits; ++v) {
    const int month = std::min(v * 9, months - 1);
    double mean_capacity = 0.0;
    for (int d = 0; d < kNumDomains; ++d) {
      mean_capacity += domain_at_month(month, static_cast<IcDomain>(d));
    }
    mean_capacity /= kNumDomains;
    auto& deficits = patient.deficits_at_visit[static_cast<size_t>(v)];
    deficits.resize(static_cast<size_t>(config_.num_clinical_deficits));
    for (int i = 0; i < config_.num_clinical_deficits; ++i) {
      // Per-deficit base rates spread deterministically.
      const double bias =
          -0.6 + 1.2 * static_cast<double>(i) /
                     static_cast<double>(config_.num_clinical_deficits - 1);
      const double p = Sigmoid(-1.9 + 3.6 * patient.frailty +
                               1.1 * (1.0 - mean_capacity) + bias);
      deficits[static_cast<size_t>(i)] = rng->Bernoulli(p) ? 1.0 : 0.0;
    }
  }

  // 6. Outcomes at the end of each window.
  patient.outcomes.resize(static_cast<size_t>(num_windows));
  for (int w = 0; w < num_windows; ++w) {
    const int end_month = (w + 1) * 9 - 1;
    const int begin_month = w * 9;
    std::array<double, kNumDomains> window_mean{};
    for (int d = 0; d < kNumDomains; ++d) {
      double acc = 0.0;
      for (int m = begin_month; m <= end_month; ++m) {
        acc += domain_at_month(m, static_cast<IcDomain>(d));
      }
      window_mean[static_cast<size_t>(d)] = acc / 9.0;
    }
    const double capacity =
        (window_mean[0] + window_mean[1] + window_mean[2] + window_mean[3] +
         window_mean[4]) /
        kNumDomains;
    const double loco_end = domain_at_month(end_month, IcDomain::kLocomotion);
    const double vit_end = domain_at_month(end_month, IcDomain::kVitality);
    const double psych_end =
        domain_at_month(end_month, IcDomain::kPsychological);

    VisitOutcomes outcome;
    double qol = om.qol_intercept + om.qol_capacity * capacity +
                 om.qol_vitality * vit_end + om.qol_frailty * patient.frailty +
                 rng->Normal(0.0, om.qol_noise_sd);
    if (psych_end < om.qol_stress_cutoff) qol -= om.qol_stress_penalty;
    outcome.qol = Clamp01(qol);

    const double sppb_raw =
        om.sppb_scale *
        Clamp01(om.sppb_intercept + om.sppb_locomotion * loco_end +
                om.sppb_vitality * vit_end + om.sppb_frailty * patient.frailty +
                rng->Normal(0.0, om.sppb_noise_sd));
    outcome.sppb = static_cast<int>(
        std::min(12.0, std::max(0.0, std::round(sppb_raw))));

    // Fall risk keys on the window's persistent capacity level (window
    // means), so the risk is in principle visible from any month's sample.
    const double loco_window = window_mean[static_cast<size_t>(
        static_cast<int>(IcDomain::kLocomotion))];
    const double sens_window = window_mean[static_cast<size_t>(
        static_cast<int>(IcDomain::kSensory))];
    const double loco_deficit =
        std::max(0.0, om.falls_loco_cutoff - loco_window) /
        om.falls_loco_cutoff;
    const double sensory_deficit =
        std::max(0.0, om.falls_sensory_cutoff - sens_window) /
        om.falls_sensory_cutoff;
    const double falls_logit =
        om.falls_intercept +
        om.falls_interaction * loco_deficit *
            (1.0 - om.falls_sensory_share +
             om.falls_sensory_share * sensory_deficit) +
        om.falls_frailty * patient.frailty +
        rng->Normal(0.0, om.falls_noise_sd);
    outcome.falls = rng->Bernoulli(Sigmoid(falls_logit));
    patient.outcomes[static_cast<size_t>(w)] = outcome;
  }
  return patient;
}

}  // namespace mysawh::cohort
