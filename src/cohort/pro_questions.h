#ifndef MYSAWH_COHORT_PRO_QUESTIONS_H_
#define MYSAWH_COHORT_PRO_QUESTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh::cohort {

/// The five WHO Intrinsic Capacity domains.
enum class IcDomain {
  kLocomotion = 0,
  kCognition = 1,
  kPsychological = 2,
  kVitality = 3,
  kSensory = 4,
};
inline constexpr int kNumDomains = 5;

/// Canonical lowercase domain name ("locomotion", ...).
const char* IcDomainName(IcDomain domain);

/// How a question's underlying construct maps the latent capacity to the
/// pre-quantization score. Shapes other than linear inject the
/// nonlinearities that make threshold-sum indices (ICI) lossy relative to a
/// learner that sees the raw answers.
enum class QuestionShape {
  kLinear,      ///< score = latent
  kSaturating,  ///< score = sqrt(latent): sensitive at the low end
  kThreshold,   ///< logistic step around a per-question midpoint
};

/// Metadata of one PRO questionnaire item.
struct ProQuestion {
  std::string name;       ///< e.g. "pro_locomotion_03".
  IcDomain domain = IcDomain::kLocomotion;
  int levels = 5;         ///< Ordinal answers 1..levels.
  bool reversed = false;  ///< true: higher answer = worse capacity.
  QuestionShape shape = QuestionShape::kLinear;
  double shape_midpoint = 0.5;  ///< Threshold shape midpoint.
  double noise_sd = 0.08;      ///< Observation noise on the latent score.
};

/// The fixed bank of 56 PRO questions used by the simulator, mirroring the
/// MySAwH app's 56 monthly questions: 12 locomotion + 11 each for the other
/// four domains. The bank is deterministic (no RNG) so feature names are
/// stable across runs.
///
/// One designated item, `kStressQuestionName` (a 1..10 psychological-domain
/// "stress level" question, reversed), reproduces the paper's Fig 7: the
/// KD experts cut it at 3, and the DD pipeline's SHAP dependence curve
/// recovers a threshold near 3 automatically.
class ProQuestionBank {
 public:
  /// Builds the standard 56-question bank.
  static ProQuestionBank Standard();

  int64_t size() const { return static_cast<int64_t>(questions_.size()); }
  const ProQuestion& question(int64_t i) const {
    return questions_[static_cast<size_t>(i)];
  }
  const std::vector<ProQuestion>& questions() const { return questions_; }

  /// Index lookup by name.
  Result<int> IndexOf(const std::string& name) const;

  /// Indices of all questions of one domain.
  std::vector<int> DomainQuestions(IcDomain domain) const;

  /// All 56 question names, in bank order.
  std::vector<std::string> Names() const;

 private:
  std::vector<ProQuestion> questions_;
};

/// Name of the designated Fig 7 stress question.
inline constexpr const char* kStressQuestionName = "pro_psychological_stress";

}  // namespace mysawh::cohort

#endif  // MYSAWH_COHORT_PRO_QUESTIONS_H_
