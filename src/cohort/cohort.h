#ifndef MYSAWH_COHORT_COHORT_H_
#define MYSAWH_COHORT_COHORT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cohort/pro_questions.h"
#include "series/time_series.h"
#include "util/status.h"

namespace mysawh::cohort {

/// One recruiting clinic and its protocol idiosyncrasies. The paper's three
/// clinics differ in cohort size, protocol and population homogeneity; the
/// simulator reproduces this through a systematic answer shift and a noise
/// multiplier (Hong Kong: small n, noisier measurements — the source of the
/// Fig 5 outliers).
struct ClinicSpec {
  std::string name;
  int num_patients = 0;
  double answer_shift = 0.0;  ///< Additive shift on PRO scores (pre-quantization).
  double noise_scale = 1.0;   ///< Multiplier on observation noise.
  /// Fraction of the clinic's patients whose answers carry an additional
  /// idiosyncratic shift (protocol deviations, language/translation issues,
  /// atypical device use). A pooled model mispredicts these patients,
  /// producing the per-clinic MAE outliers the paper observes for Hong
  /// Kong in Fig 5.
  double protocol_outlier_fraction = 0.0;
  /// Standard deviation of that idiosyncratic shift.
  double protocol_outlier_sd = 0.0;
};

/// Coefficients of the latent outcome model. Outcomes are functions of the
/// hidden IC-domain capacities and the patient frailty latent — NOT of the
/// observed answers — so features are noisy views of the signal, as in a
/// real cohort. Defaults are calibrated so the generated dataset matches
/// the paper's Fig 1 outcome distributions and Fig 4 performance regime.
struct OutcomeModelParams {
  // Quality of Life (EQ-VAS-like, [0, 1]).
  double qol_intercept = 0.30;
  double qol_capacity = 0.62;       ///< Weight of overall mean capacity.
  double qol_vitality = 0.16;       ///< Extra weight of vitality at window end.
  double qol_frailty = -0.24;       ///< Direct frailty penalty.
  double qol_stress_penalty = 0.07; ///< Threshold penalty (Fig 7 effect).
  double qol_stress_cutoff = 0.7778;///< Penalty when psych capacity < this.
  double qol_noise_sd = 0.030;

  // SPPB (integer 0..12, skewed toward 10-12 like Fig 1b).
  double sppb_intercept = 0.34;
  double sppb_locomotion = 0.78;
  double sppb_vitality = 0.10;
  double sppb_frailty = -0.22;
  double sppb_noise_sd = 0.035;
  double sppb_scale = 12.6;

  // Falls (binary, ~12% positive like Fig 1c). The hazard is an
  // *interaction*: risk spikes only when locomotion is low AND (sensory
  // capacity is low or frailty is high). A GBT over the raw per-domain
  // answers isolates that subgroup; the scalar ICI averages the domains
  // together, so the mixed low-ICI bin stays below the decision threshold
  // — reproducing the paper's near-zero KD minority recall that recovers
  // sharply once FI is added.
  double falls_intercept = -5.0;
  double falls_loco_cutoff = 0.50;     ///< Hinge point of locomotion risk.
  double falls_sensory_cutoff = 0.55;  ///< Hinge point of sensory risk.
  double falls_interaction = 9.0;      ///< Weight of hinge(loco)*mix term.
  double falls_sensory_share = 0.65;   ///< Sensory share inside the mix.
  double falls_frailty = 4.2;
  double falls_noise_sd = 0.15;
};

/// Full simulator configuration.
struct CohortConfig {
  uint64_t seed = 42;
  std::vector<ClinicSpec> clinics = {
      {"Modena", 128, 0.0, 1.0, 0.02, 0.10},
      {"Sydney", 100, 0.03, 1.1, 0.02, 0.10},
      {"HongKong", 33, -0.02, 1.8, 0.25, 0.20},
  };
  int num_months = 18;       ///< Study horizon; two 9-month windows.
  int weeks_per_month = 4;   ///< PRO prompting cadence.
  int days_per_month = 30;   ///< Activity-tracker cadence.
  int num_clinical_deficits = 37;  ///< FI variables per the paper.

  // Transient illness episodes: short dips of all capacity domains.
  // Episodes matter twice: they move the outcomes (through the latents),
  // and they attract missingness (patients answer less when unwell), which
  // makes aggressive gap interpolation fabricate too-healthy training data
  // — the effect behind the paper's max-gap QA experiment.
  double episodes_per_patient = 1.5;   ///< Expected episode count (Poisson).
  int episode_max_months = 2;          ///< Episode length: 1..this.
  double episode_depth_lo = 0.10;      ///< Capacity drop, uniform in
  double episode_depth_hi = 0.24;      ///< [lo, hi].

  // Missingness of the PRO series (calibrated against the paper's QA
  // numbers: mean gap length ~5, max 17, ~108 gaps/patient across items).
  double gaps_per_series = 2.0;   ///< Expected gap count per question series.
  double mean_gap_length = 5.0;   ///< Expected gap length (truncated).
  int max_gap_length = 17;        ///< Hard cap on injected gap length.
  double low_adherence_fraction = 0.15;  ///< Patients who rarely answer.
  double low_adherence_gap_multiplier = 5.0;
  double activity_missing_day_prob = 0.10;
  /// Probability that an injected gap is anchored inside an illness
  /// episode rather than placed uniformly (missing-not-at-random).
  double mnar_gap_bias = 0.6;

  OutcomeModelParams outcome;

  /// Range checks.
  Status Validate() const;

  /// Total patients across clinics.
  int TotalPatients() const;
  /// Number of 9-month windows (num_months / 9).
  int NumWindows() const { return num_months / 9; }
};

/// Outcomes assessed at one clinical visit (end of a window).
struct VisitOutcomes {
  double qol = 0.0;  ///< EQ-VAS-like score in [0, 1].
  int sppb = 0;      ///< Short Physical Performance Battery, 0..12.
  bool falls = false;///< Fell at least once during the window.
};

/// A transient illness episode: all capacity domains dip by `depth` during
/// months [start_month, start_month + length).
struct IllnessEpisode {
  int start_month = 0;
  int length = 1;
  double depth = 0.0;
};

/// Everything generated for one patient. Latent fields (frailty, domain
/// trajectories) are the hidden ground truth — exposed for tests and
/// diagnostics, never fed to the learners.
struct PatientData {
  int64_t patient_id = 0;
  int clinic = 0;  ///< Index into CohortConfig::clinics.

  double frailty = 0.0;  ///< Hidden frailty latent in [0, 1].
  /// domain_by_month[m][d]: latent capacity of domain d during month m
  /// (illness episodes already applied).
  std::vector<std::array<double, kNumDomains>> domain_by_month;
  /// Transient illness episodes (ground truth, drives MNAR missingness).
  std::vector<IllnessEpisode> episodes;

  /// One weekly series per PRO question (num_months * weeks_per_month
  /// entries, ordinal answers 1..levels; NaN = unanswered prompt).
  std::vector<TimeSeries> pro_weekly;

  /// Daily wearable traces (num_months * days_per_month entries).
  TimeSeries steps_daily;
  TimeSeries calories_daily;
  TimeSeries sleep_daily;

  /// Raw 0/1 clinical deficits per visit: indexed [visit][deficit], visits
  /// at months 0, 9, ..., one per window start, plus the final visit.
  std::vector<std::vector<double>> deficits_at_visit;

  /// Outcomes at the end of each window (visit months 9 and 18).
  std::vector<VisitOutcomes> outcomes;
};

/// A generated cohort.
struct Cohort {
  CohortConfig config;
  ProQuestionBank questions;
  std::vector<PatientData> patients;
};

}  // namespace mysawh::cohort

#endif  // MYSAWH_COHORT_COHORT_H_
