#include "cohort/pro_questions.h"

namespace mysawh::cohort {

const char* IcDomainName(IcDomain domain) {
  switch (domain) {
    case IcDomain::kLocomotion:
      return "locomotion";
    case IcDomain::kCognition:
      return "cognition";
    case IcDomain::kPsychological:
      return "psychological";
    case IcDomain::kVitality:
      return "vitality";
    case IcDomain::kSensory:
      return "sensory";
  }
  return "unknown";
}

ProQuestionBank ProQuestionBank::Standard() {
  ProQuestionBank bank;
  // Deterministic pseudo-variation of scales/shapes across the bank,
  // cycling through plausible questionnaire designs.
  const int counts[kNumDomains] = {12, 11, 11, 11, 11};  // 56 total
  const int level_cycle[] = {5, 4, 7, 5, 10, 6, 5, 11, 4, 5, 8};
  const QuestionShape shape_cycle[] = {
      QuestionShape::kLinear,     QuestionShape::kSaturating,
      QuestionShape::kLinear,     QuestionShape::kThreshold,
      QuestionShape::kLinear,     QuestionShape::kSaturating,
      QuestionShape::kThreshold,  QuestionShape::kLinear,
  };
  int serial = 0;
  for (int d = 0; d < kNumDomains; ++d) {
    const auto domain = static_cast<IcDomain>(d);
    for (int q = 0; q < counts[d]; ++q, ++serial) {
      ProQuestion item;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "pro_%s_%02d", IcDomainName(domain),
                    q + 1);
      item.name = buf;
      item.domain = domain;
      item.levels = level_cycle[static_cast<size_t>(serial) %
                                (sizeof(level_cycle) / sizeof(int))];
      item.reversed = (serial % 3) == 2;  // about a third are reverse-coded
      item.shape = shape_cycle[static_cast<size_t>(serial) %
                               (sizeof(shape_cycle) / sizeof(QuestionShape))];
      item.shape_midpoint = 0.35 + 0.05 * static_cast<double>(serial % 7);
      item.noise_sd = 0.06 + 0.01 * static_cast<double>(serial % 5);
      bank.questions_.push_back(std::move(item));
    }
  }
  // The designated Fig 7 question: psychological stress on a 1..10 scale,
  // reverse-coded (high stress = low capacity), linear link so the KD cut
  // at 3 and the SHAP-recovered threshold are comparable.
  for (auto& q : bank.questions_) {
    if (q.domain == IcDomain::kPsychological && q.name.ends_with("_01")) {
      q.name = kStressQuestionName;
      q.levels = 10;
      q.reversed = true;
      q.shape = QuestionShape::kLinear;
      q.noise_sd = 0.05;
      break;
    }
  }
  return bank;
}

Result<int> ProQuestionBank::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < questions_.size(); ++i) {
    if (questions_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("question not found: " + name);
}

std::vector<int> ProQuestionBank::DomainQuestions(IcDomain domain) const {
  std::vector<int> out;
  for (size_t i = 0; i < questions_.size(); ++i) {
    if (questions_[i].domain == domain) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<std::string> ProQuestionBank::Names() const {
  std::vector<std::string> names;
  names.reserve(questions_.size());
  for (const auto& q : questions_) names.push_back(q.name);
  return names;
}

}  // namespace mysawh::cohort
