#include "gam/gam_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/serialization.h"
#include "util/string_util.h"

namespace mysawh::gam {

namespace {

using gbt::GradientPair;
using gbt::RegressionTree;

/// Sorted view of one feature: row order by value, missing rows separate.
struct FeatureOrder {
  std::vector<int64_t> sorted_rows;  // rows with a present value, ascending
  std::vector<int64_t> missing_rows;
};

struct Range {
  int64_t begin = 0;  // indices into FeatureOrder::sorted_rows
  int64_t end = 0;
  bool with_missing = false;  // whether missing rows belong to this node
};

/// Builds one depth-limited tree on a single feature by recursive exact
/// split search over the pre-sorted value order.
class SingleFeatureTreeBuilder {
 public:
  SingleFeatureTreeBuilder(const Dataset& data, const FeatureOrder& order,
                           const std::vector<GradientPair>& gpairs,
                           const GamParams& params, int feature)
      : data_(data),
        order_(order),
        gpairs_(gpairs),
        params_(params),
        feature_(feature) {}

  RegressionTree Build() {
    RegressionTree tree;
    Range root{0, static_cast<int64_t>(order_.sorted_rows.size()), true};
    BuildNode(&tree, 0, root, 0);
    return tree;
  }

 private:
  struct Stats {
    double g = 0, h = 0;
    int64_t count = 0;
  };

  Stats RangeStats(const Range& range) const {
    Stats s;
    for (int64_t i = range.begin; i < range.end; ++i) {
      const auto& gp = gpairs_[static_cast<size_t>(
          order_.sorted_rows[static_cast<size_t>(i)])];
      s.g += gp.grad;
      s.h += gp.hess;
      ++s.count;
    }
    if (range.with_missing) {
      for (int64_t r : order_.missing_rows) {
        const auto& gp = gpairs_[static_cast<size_t>(r)];
        s.g += gp.grad;
        s.h += gp.hess;
        ++s.count;
      }
    }
    return s;
  }

  double Score(double g, double h) const {
    return g * g / (h + params_.reg_lambda);
  }

  void BuildNode(RegressionTree* tree, int node_id, const Range& range,
                 int depth) {
    const Stats total = RangeStats(range);
    tree->mutable_node(node_id)->cover = total.h;
    const double parent_score = Score(total.g, total.h);

    bool found = false;
    double best_gain = 1e-10;
    int64_t best_pos = -1;  // split between sorted positions pos-1 and pos
    double best_threshold = 0.0;
    bool best_missing_left = true;

    if (depth < params_.max_depth &&
        total.count >= 2 * params_.min_samples_leaf) {
      Stats miss;
      if (range.with_missing) {
        for (int64_t r : order_.missing_rows) {
          const auto& gp = gpairs_[static_cast<size_t>(r)];
          miss.g += gp.grad;
          miss.h += gp.hess;
          ++miss.count;
        }
      }
      double gl = 0, hl = 0;
      int64_t cl = 0;
      for (int64_t i = range.begin; i + 1 < range.end; ++i) {
        const int64_t row = order_.sorted_rows[static_cast<size_t>(i)];
        const int64_t next_row = order_.sorted_rows[static_cast<size_t>(i + 1)];
        const auto& gp = gpairs_[static_cast<size_t>(row)];
        gl += gp.grad;
        hl += gp.hess;
        ++cl;
        const double v = data_.At(row, feature_);
        const double vn = data_.At(next_row, feature_);
        if (v == vn) continue;
        const double threshold = 0.5 * (v + vn);
        const double gr = total.g - miss.g - gl;
        const double hr = total.h - miss.h - hl;
        const int64_t cr = total.count - miss.count - cl;
        for (const bool miss_left : {true, false}) {
          const double gL = gl + (miss_left ? miss.g : 0.0);
          const double hL = hl + (miss_left ? miss.h : 0.0);
          const int64_t cL = cl + (miss_left ? miss.count : 0);
          const double gR = gr + (miss_left ? 0.0 : miss.g);
          const double hR = hr + (miss_left ? 0.0 : miss.h);
          const int64_t cR = cr + (miss_left ? 0 : miss.count);
          if (cL < params_.min_samples_leaf || cR < params_.min_samples_leaf) {
            continue;
          }
          const double gain =
              0.5 * (Score(gL, hL) + Score(gR, hR) - parent_score);
          if (gain > best_gain) {
            found = true;
            best_gain = gain;
            best_pos = i + 1;
            best_threshold = threshold;
            best_missing_left = miss_left;
          }
        }
      }
    }

    if (!found) {
      tree->mutable_node(node_id)->value =
          -params_.learning_rate * total.g / (total.h + params_.reg_lambda);
      return;
    }
    const auto [left_id, right_id] = tree->Split(
        node_id, feature_, best_threshold, best_missing_left, best_gain);
    Range left{range.begin, best_pos, range.with_missing && best_missing_left};
    Range right{best_pos, range.end,
                range.with_missing && !best_missing_left};
    BuildNode(tree, left_id, left, depth + 1);
    BuildNode(tree, right_id, right, depth + 1);
  }

  const Dataset& data_;
  const FeatureOrder& order_;
  const std::vector<GradientPair>& gpairs_;
  const GamParams& params_;
  const int feature_;
};

}  // namespace

Status GamParams::Validate() const {
  if (num_cycles < 1) return Status::InvalidArgument("num_cycles must be >= 1");
  if (max_depth < 1) return Status::InvalidArgument("max_depth must be >= 1");
  if (!(learning_rate > 0.0) || learning_rate > 1.0) {
    return Status::InvalidArgument("learning_rate must be in (0, 1]");
  }
  if (min_samples_leaf < 1) {
    return Status::InvalidArgument("min_samples_leaf must be >= 1");
  }
  if (reg_lambda < 0.0) {
    return Status::InvalidArgument("reg_lambda must be >= 0");
  }
  return Status::Ok();
}

Result<GamModel> GamModel::Train(const Dataset& train,
                                 const GamParams& params) {
  MYSAWH_RETURN_NOT_OK(params.Validate());
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("training set is empty");
  }
  if (train.num_features() == 0) {
    return Status::InvalidArgument("training set has no features");
  }
  const auto objective = gbt::MakeObjective(params.objective);
  MYSAWH_RETURN_NOT_OK(objective->ValidateLabels(train.labels()));

  GamModel model;
  model.feature_names_ = train.feature_names();
  model.objective_type_ = params.objective;
  model.base_score_ = objective->InitialRawPrediction(train.labels());

  const int64_t n = train.num_rows();
  const int64_t nf = train.num_features();

  // Pre-sort each feature once.
  std::vector<FeatureOrder> orders(static_cast<size_t>(nf));
  for (int64_t f = 0; f < nf; ++f) {
    auto& order = orders[static_cast<size_t>(f)];
    for (int64_t r = 0; r < n; ++r) {
      if (std::isnan(train.At(r, f))) {
        order.missing_rows.push_back(r);
      } else {
        order.sorted_rows.push_back(r);
      }
    }
    std::sort(order.sorted_rows.begin(), order.sorted_rows.end(),
              [&](int64_t a, int64_t b) {
                return train.At(a, f) < train.At(b, f);
              });
  }

  std::vector<double> raw(static_cast<size_t>(n), model.base_score_);
  std::vector<GradientPair> gpairs(static_cast<size_t>(n));
  for (int cycle = 0; cycle < params.num_cycles; ++cycle) {
    for (int64_t f = 0; f < nf; ++f) {
      for (int64_t i = 0; i < n; ++i) {
        gpairs[static_cast<size_t>(i)] = objective->ComputeGradient(
            train.label(i), raw[static_cast<size_t>(i)]);
      }
      SingleFeatureTreeBuilder builder(train, orders[static_cast<size_t>(f)],
                                       gpairs, params, static_cast<int>(f));
      RegressionTree tree = builder.Build();
      if (tree.num_nodes() == 1) continue;  // no useful split this step
      for (int64_t i = 0; i < n; ++i) {
        raw[static_cast<size_t>(i)] += tree.Predict(train.row(i));
      }
      model.trees_.push_back(std::move(tree));
      model.tree_feature_.push_back(static_cast<int>(f));
    }
  }
  // Per-feature mean contribution over the training rows (the Shapley
  // baseline for additive models).
  model.mean_contribution_.assign(static_cast<size_t>(nf), 0.0);
  for (size_t t = 0; t < model.trees_.size(); ++t) {
    const auto f = static_cast<size_t>(model.tree_feature_[t]);
    double total = 0.0;
    for (int64_t r = 0; r < n; ++r) {
      total += model.trees_[t].Predict(train.row(r));
    }
    model.mean_contribution_[f] += total / static_cast<double>(n);
  }
  model.expected_value_ = model.base_score_;
  for (double mean : model.mean_contribution_) {
    model.expected_value_ += mean;
  }
  return model;
}

Result<std::vector<double>> GamModel::ShapValues(const double* row) const {
  if (row == nullptr) {
    return Status::InvalidArgument("ShapValues: null row");
  }
  std::vector<double> phi(mean_contribution_.size(), 0.0);
  for (size_t i = 0; i < phi.size(); ++i) phi[i] = -mean_contribution_[i];
  for (size_t t = 0; t < trees_.size(); ++t) {
    phi[static_cast<size_t>(tree_feature_[t])] += trees_[t].Predict(row);
  }
  return phi;
}

double GamModel::PredictRow(const double* row) const {
  double raw = base_score_;
  for (const auto& tree : trees_) raw += tree.Predict(row);
  const auto objective = gbt::MakeObjective(objective_type_);
  return objective->Transform(raw);
}

Result<std::vector<double>> GamModel::Predict(const Dataset& data) const {
  if (data.num_features() != num_features()) {
    return Status::InvalidArgument("Predict: dataset width mismatch");
  }
  std::vector<double> out(static_cast<size_t>(data.num_rows()));
  for (int64_t i = 0; i < data.num_rows(); ++i) {
    out[static_cast<size_t>(i)] = PredictRow(data.row(i));
  }
  return out;
}

std::string GamModel::Serialize() const {
  std::ostringstream os;
  os << "mysawh-gam v1\n";
  os << "objective " << gbt::ObjectiveTypeName(objective_type_) << "\n";
  os << "base_score " << EncodeDouble(base_score_) << "\n";
  os << "expected_value " << EncodeDouble(expected_value_) << "\n";
  os << "num_features " << feature_names_.size() << "\n";
  for (const auto& name : feature_names_) os << "feature " << name << "\n";
  os << "mean_contributions " << EncodeDoubleVector(mean_contribution_)
     << "\n";
  os << "num_trees " << trees_.size() << "\n";
  for (size_t t = 0; t < trees_.size(); ++t) {
    os << "tree " << tree_feature_[t] << " " << trees_[t].num_nodes() << "\n";
    for (int i = 0; i < trees_[t].num_nodes(); ++i) {
      os << gbt::TreeNodeToText(trees_[t].node(i)) << "\n";
    }
  }
  return os.str();
}

Result<GamModel> GamModel::Deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  auto next_line = [&]() -> Result<std::string> {
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("model text truncated");
    }
    return line;
  };
  auto field = [&](const char* key) -> Result<std::string> {
    MYSAWH_ASSIGN_OR_RETURN(std::string l, next_line());
    const auto parts = Split(l, ' ');
    if (parts.size() != 2 || parts[0] != key) {
      return Status::InvalidArgument(std::string("bad ") + key + " line: " + l);
    }
    return parts[1];
  };
  MYSAWH_ASSIGN_OR_RETURN(std::string header, next_line());
  if (header != "mysawh-gam v1") {
    return Status::InvalidArgument("bad model header: " + header);
  }
  GamModel model;
  MYSAWH_ASSIGN_OR_RETURN(std::string obj_name, field("objective"));
  MYSAWH_ASSIGN_OR_RETURN(model.objective_type_,
                          gbt::ParseObjectiveType(obj_name));
  MYSAWH_ASSIGN_OR_RETURN(std::string base_hex, field("base_score"));
  MYSAWH_ASSIGN_OR_RETURN(model.base_score_, DecodeDouble(base_hex));
  MYSAWH_ASSIGN_OR_RETURN(std::string ev_hex, field("expected_value"));
  MYSAWH_ASSIGN_OR_RETURN(model.expected_value_, DecodeDouble(ev_hex));
  MYSAWH_ASSIGN_OR_RETURN(std::string nf_str, field("num_features"));
  MYSAWH_ASSIGN_OR_RETURN(int64_t num_features, ParseInt64(nf_str));
  if (num_features < 1) {
    return Status::InvalidArgument("bad num_features: " + nf_str);
  }
  for (int64_t i = 0; i < num_features; ++i) {
    MYSAWH_ASSIGN_OR_RETURN(std::string fline, next_line());
    if (!StartsWith(fline, "feature ")) {
      return Status::InvalidArgument("bad feature line: " + fline);
    }
    model.feature_names_.push_back(fline.substr(8));
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string mc_line, next_line());
  if (!StartsWith(mc_line, "mean_contributions")) {
    return Status::InvalidArgument("bad mean_contributions line: " + mc_line);
  }
  MYSAWH_ASSIGN_OR_RETURN(
      model.mean_contribution_,
      DecodeDoubleVector(Trim(mc_line.substr(18)), num_features));
  MYSAWH_ASSIGN_OR_RETURN(std::string nt_str, field("num_trees"));
  MYSAWH_ASSIGN_OR_RETURN(int64_t num_trees, ParseInt64(nt_str));
  for (int64_t t = 0; t < num_trees; ++t) {
    MYSAWH_ASSIGN_OR_RETURN(std::string tline, next_line());
    const auto tparts = Split(tline, ' ');
    if (tparts.size() != 3 || tparts[0] != "tree") {
      return Status::InvalidArgument("bad tree line: " + tline);
    }
    MYSAWH_ASSIGN_OR_RETURN(int64_t feature, ParseInt64(tparts[1]));
    if (feature < 0 || feature >= num_features) {
      return Status::InvalidArgument("tree feature out of range: " + tline);
    }
    MYSAWH_ASSIGN_OR_RETURN(int64_t num_nodes, ParseInt64(tparts[2]));
    if (num_nodes < 1) return Status::InvalidArgument("empty tree");
    std::vector<gbt::TreeNode> nodes;
    // Bounded reserve: corrupt counts fail on missing lines, not on a
    // giant allocation.
    nodes.reserve(static_cast<size_t>(std::min<int64_t>(num_nodes, 4096)));
    for (int64_t i = 0; i < num_nodes; ++i) {
      MYSAWH_ASSIGN_OR_RETURN(std::string nline, next_line());
      MYSAWH_ASSIGN_OR_RETURN(gbt::TreeNode node,
                              gbt::TreeNodeFromText(nline));
      nodes.push_back(node);
    }
    RegressionTree rebuilt = RegressionTree::FromNodes(std::move(nodes));
    MYSAWH_RETURN_NOT_OK(rebuilt.Validate(num_features));
    model.trees_.push_back(std::move(rebuilt));
    model.tree_feature_.push_back(static_cast<int>(feature));
  }
  return model;
}

Result<std::vector<double>> GamModel::ShapeFunction(
    int feature, const std::vector<double>& values) const {
  if (feature < 0 || feature >= num_features()) {
    return Status::OutOfRange("ShapeFunction: bad feature index");
  }
  std::vector<double> row(static_cast<size_t>(num_features()),
                          std::numeric_limits<double>::quiet_NaN());
  std::vector<double> out(values.size(), 0.0);
  for (size_t v = 0; v < values.size(); ++v) {
    row[static_cast<size_t>(feature)] = values[v];
    double acc = 0.0;
    for (size_t t = 0; t < trees_.size(); ++t) {
      if (tree_feature_[t] != feature) continue;
      acc += trees_[t].Predict(row.data());
    }
    out[v] = acc;
  }
  return out;
}

}  // namespace mysawh::gam
