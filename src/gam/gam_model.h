#ifndef MYSAWH_GAM_GAM_MODEL_H_
#define MYSAWH_GAM_GAM_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "gbt/objective.h"
#include "gbt/tree.h"
#include "model/model.h"
#include "util/status.h"

namespace mysawh::gam {

/// Hyperparameters for the additive model.
struct GamParams {
  gbt::ObjectiveType objective = gbt::ObjectiveType::kSquaredError;
  int num_cycles = 50;          ///< Boosting passes over all features.
  int max_depth = 2;            ///< Depth of each single-feature tree.
  double learning_rate = 0.1;   ///< Shrinkage.
  int min_samples_leaf = 5;     ///< Min rows per leaf.
  double reg_lambda = 1.0;      ///< L2 on leaf weights.

  /// Range checks.
  Status Validate() const;
};

/// An intelligible-by-construction generalized additive model trained by
/// cyclic gradient boosting of single-feature trees (the core of GA2M /
/// Explainable Boosting Machines, without pairwise interactions).
///
/// The paper reports that gradient boosting outperformed GA2M on the MySAwH
/// task and therefore chose XGBoost + post-hoc SHAP; this class is the
/// baseline that ablation reproduces (`bench/ablation_model_families`).
///
/// Implements the polymorphic `model::Model` interface, registered in the
/// serialization registry under kind "gam".
class GamModel : public model::Model {
 public:
  GamModel() = default;

  /// Trains by cycling through features `num_cycles` times, each step
  /// fitting one depth-limited tree on a single feature to the current
  /// loss gradients.
  static Result<GamModel> Train(const Dataset& train, const GamParams& params);

  /// Prediction for one row (transformed scale).
  double PredictRow(const double* row) const;
  /// Batch prediction (transformed scale).
  Result<std::vector<double>> Predict(const Dataset& data) const;

  // model::Model interface.
  std::string Kind() const override { return "gam"; }
  bool IsClassifier() const override {
    return objective_type_ == gbt::ObjectiveType::kLogistic;
  }
  int64_t NumFeatures() const override { return num_features(); }
  const std::vector<std::string>& FeatureNames() const override {
    return feature_names_;
  }
  double Predict(const double* row) const override { return PredictRow(row); }
  /// Serializes the full model (objective, base score, shape-function
  /// trees, Shapley baselines) to a text payload that round-trips exactly.
  std::string Serialize() const override;

  /// Parses a payload produced by Serialize().
  static Result<GamModel> Deserialize(const std::string& text);

  /// Evaluates the learned shape function of `feature` at the given values
  /// (the additive contribution f_j(x), raw scale). Missing input (NaN)
  /// yields the contribution of the missing branch.
  Result<std::vector<double>> ShapeFunction(
      int feature, const std::vector<double>& values) const;

  /// Exact Shapley values of one row (raw scale). For an additive model
  /// the Shapley value of feature j is simply f_j(x_j) - E[f_j], with the
  /// expectation taken over the training set — no sampling or tree
  /// recursion needed. Satisfies raw(x) = expected_value() + sum_j phi_j.
  Result<std::vector<double>> ShapValues(const double* row) const;

  /// Raw-scale expectation of the model over its training set.
  double expected_value() const { return expected_value_; }

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  int64_t num_features() const {
    return static_cast<int64_t>(feature_names_.size());
  }
  double base_score() const { return base_score_; }
  gbt::ObjectiveType objective_type() const { return objective_type_; }
  /// Total number of single-feature trees.
  int64_t num_trees() const { return static_cast<int64_t>(trees_.size()); }

 private:
  std::vector<gbt::RegressionTree> trees_;  // each splits on one feature
  std::vector<int> tree_feature_;           // that feature's index
  std::vector<std::string> feature_names_;
  gbt::ObjectiveType objective_type_ = gbt::ObjectiveType::kSquaredError;
  double base_score_ = 0.0;
  /// Mean of each feature's shape function over the training rows.
  std::vector<double> mean_contribution_;
  double expected_value_ = 0.0;
};

}  // namespace mysawh::gam

#endif  // MYSAWH_GAM_GAM_MODEL_H_
