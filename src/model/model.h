#ifndef MYSAWH_MODEL_MODEL_H_
#define MYSAWH_MODEL_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace mysawh::model {

/// The polymorphic model layer every trained predictor implements — the
/// pluggable train -> serialize -> load -> predict stack the study runner,
/// the CLI, and any future serving layer build on.
///
/// On-disk format: a `kind: <name>` header line followed by the family's
/// own text payload. `Model::Deserialize` dispatches the payload to the
/// factory registered for that kind, so any trained artifact can be saved
/// with `SaveToFile` and reloaded with `LoadFromFile` without the caller
/// knowing its family. Files written before the registry existed (a bare
/// GBT payload with no `kind:` header) still load via a legacy fallback.
class Model {
 public:
  virtual ~Model() = default;

  /// Registry key of this family ("gbt", "linear", "logistic", "gam").
  virtual std::string Kind() const = 0;

  /// True when the model outputs P(y = 1) rather than a regression value.
  virtual bool IsClassifier() const = 0;

  /// Width of the feature space the model was trained on.
  virtual int64_t NumFeatures() const = 0;

  /// Names of the training features, in column order.
  virtual const std::vector<std::string>& FeatureNames() const = 0;

  /// Prediction (transformed scale) for one row of NumFeatures() doubles;
  /// NaN = missing.
  virtual double Predict(const double* row) const = 0;

  /// Batch prediction; fails when the dataset's width differs. The default
  /// implementation loops Predict over the rows; families override it when
  /// they have a faster batch path.
  virtual Result<std::vector<double>> PredictBatch(const Dataset& data) const;

  /// Serializes the family payload (no `kind:` header) to a line-oriented
  /// text format that round-trips exactly through the family's Deserialize.
  virtual std::string Serialize() const = 0;

  /// Full on-disk form: `kind: <Kind()>` header line + Serialize() payload.
  std::string SerializeWithKind() const;

  /// Writes SerializeWithKind() to `path` atomically (temp + fsync +
  /// rename) inside the checksummed `mysawh-artifact v1` envelope, so a
  /// crash mid-save cannot tear the file and corruption is detectable.
  Status SaveToFile(const std::string& path) const;

  /// Parses a `kind:`-headed model text (or a legacy header-less GBT
  /// payload), dispatching to the registered factory. Returns a clean
  /// Status — never crashes — on an unknown kind or malformed payload.
  static Result<std::unique_ptr<Model>> Deserialize(const std::string& text);

  /// Reads `path` and Deserializes it. Files carrying the checksummed
  /// envelope are verified first (corruption returns `DataLoss`); files
  /// written before the envelope existed load directly.
  static Result<std::unique_ptr<Model>> LoadFromFile(const std::string& path);
};

/// Factory parsing one family's payload (the text after the `kind:` line).
using ModelFactory =
    std::function<Result<std::unique_ptr<Model>>(const std::string& payload)>;

/// Registers `factory` under `kind`; later registrations replace earlier
/// ones (latest wins), so tests can shadow a built-in.
void RegisterModelFactory(const std::string& kind, ModelFactory factory);

/// Sorted kinds currently registered (built-ins are always present).
std::vector<std::string> RegisteredModelKinds();

/// Registers the built-in families (gbt, linear, logistic, gam). Called
/// lazily by Deserialize/RegisteredModelKinds; idempotent and thread-safe.
void EnsureBuiltinFamiliesRegistered();

}  // namespace mysawh::model

#endif  // MYSAWH_MODEL_MODEL_H_
