/// Registration of the built-in model families. Lives in its own
/// translation unit, referenced from model.cc, so linking the model layer
/// always pulls in every family factory — no reliance on static-initializer
/// order or on the linker keeping unreferenced objects of a static library.

#include <mutex>

#include "gam/gam_model.h"
#include "gbt/gbt_model.h"
#include "linear/linear_model.h"
#include "model/model.h"

namespace mysawh::model {

namespace {

template <typename Family>
ModelFactory MakeFactory() {
  return [](const std::string& payload) -> Result<std::unique_ptr<Model>> {
    MYSAWH_ASSIGN_OR_RETURN(Family parsed, Family::Deserialize(payload));
    return std::unique_ptr<Model>(new Family(std::move(parsed)));
  };
}

}  // namespace

void EnsureBuiltinFamiliesRegistered() {
  static std::once_flag once;
  std::call_once(once, [] {
    RegisterModelFactory("gbt", MakeFactory<gbt::GbtModel>());
    RegisterModelFactory("linear", MakeFactory<linear::LinearModel>());
    RegisterModelFactory("logistic", MakeFactory<linear::LogisticModel>());
    RegisterModelFactory("gam", MakeFactory<gam::GamModel>());
  });
}

}  // namespace mysawh::model
