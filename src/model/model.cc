#include "model/model.h"

#include <map>
#include <mutex>

#include "util/failpoint.h"
#include "util/file_io.h"
#include "util/string_util.h"

namespace mysawh::model {

namespace {

constexpr const char kKindPrefix[] = "kind: ";

struct Registry {
  std::mutex mutex;
  std::map<std::string, ModelFactory> factories;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

}  // namespace

Result<std::vector<double>> Model::PredictBatch(const Dataset& data) const {
  if (data.num_features() != NumFeatures()) {
    return Status::InvalidArgument(
        "PredictBatch: dataset width " + std::to_string(data.num_features()) +
        " != model width " + std::to_string(NumFeatures()));
  }
  std::vector<double> out(static_cast<size_t>(data.num_rows()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    out[static_cast<size_t>(r)] = Predict(data.row(r));
  }
  return out;
}

std::string Model::SerializeWithKind() const {
  return kKindPrefix + Kind() + "\n" + Serialize();
}

Status Model::SaveToFile(const std::string& path) const {
  MYSAWH_FAILPOINT("model_save/serialize");
  // Checksummed envelope + write-temp/fsync/rename: a reader can always
  // tell a good artifact from a torn or bit-flipped one, and a crash
  // mid-save never clobbers a previously saved model.
  return WriteFileChecksummed(path, SerializeWithKind(), "model_save");
}

Result<std::unique_ptr<Model>> Model::Deserialize(const std::string& text) {
  EnsureBuiltinFamiliesRegistered();
  const size_t newline = text.find('\n');
  const std::string first_line = text.substr(0, newline);
  std::string kind;
  std::string payload;
  if (StartsWith(first_line, kKindPrefix)) {
    kind = Trim(first_line.substr(sizeof(kKindPrefix) - 1));
    payload = newline == std::string::npos ? "" : text.substr(newline + 1);
  } else if (StartsWith(first_line, "mysawh-gbt")) {
    // Legacy file written before the registry existed: a bare GBT payload.
    kind = "gbt";
    payload = text;
  } else {
    return Status::InvalidArgument(
        "not a model file: expected a 'kind: <family>' header, got: " +
        first_line);
  }
  ModelFactory factory;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    const auto it = registry.factories.find(kind);
    if (it == registry.factories.end()) {
      std::vector<std::string> known;
      for (const auto& [k, f] : registry.factories) known.push_back(k);
      return Status::NotFound("unregistered model kind: " + kind +
                              " (known: " + Join(known, ", ") + ")");
    }
    factory = it->second;
  }
  return factory(payload);
}

Result<std::unique_ptr<Model>> Model::LoadFromFile(const std::string& path) {
  MYSAWH_FAILPOINT("model_load/read");
  MYSAWH_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  if (LooksChecksummed(text)) {
    // Envelope present: verify before parsing, so corruption surfaces as
    // DataLoss instead of a confusing parse error (or worse).
    MYSAWH_ASSIGN_OR_RETURN(text, UnwrapChecksummed(text));
  }
  // Files written before the envelope existed parse directly.
  return Deserialize(text);
}

void RegisterModelFactory(const std::string& kind, ModelFactory factory) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.factories[kind] = std::move(factory);
}

std::vector<std::string> RegisteredModelKinds() {
  EnsureBuiltinFamiliesRegistered();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> kinds;
  kinds.reserve(registry.factories.size());
  for (const auto& [kind, factory] : registry.factories) kinds.push_back(kind);
  return kinds;
}

}  // namespace mysawh::model
