#ifndef MYSAWH_LINEAR_LINEAR_MODEL_H_
#define MYSAWH_LINEAR_LINEAR_MODEL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "model/model.h"
#include "util/status.h"

namespace mysawh::linear {

/// Ridge-regularized linear regression solved by normal equations. Missing
/// feature values are mean-imputed with means learned from the training set
/// (linear models, unlike the GBT, cannot route NaNs).
///
/// Implements the polymorphic `model::Model` interface, registered in the
/// serialization registry under kind "linear".
class LinearModel : public model::Model {
 public:
  LinearModel() = default;

  /// Fits weights minimizing ||y - Xw - b||^2 + lambda ||w||^2.
  /// `lambda` >= 0 (the intercept is not penalized).
  static Result<LinearModel> Train(const Dataset& train, double lambda = 1.0);

  /// Prediction for one row of num_features() values (NaN allowed).
  double PredictRow(const double* row) const;
  /// Batch prediction.
  Result<std::vector<double>> Predict(const Dataset& data) const;

  // model::Model interface.
  std::string Kind() const override { return "linear"; }
  bool IsClassifier() const override { return false; }
  int64_t NumFeatures() const override { return num_features(); }
  const std::vector<std::string>& FeatureNames() const override {
    return feature_names_;
  }
  double Predict(const double* row) const override { return PredictRow(row); }
  std::string Serialize() const override;

  /// Parses a payload produced by Serialize().
  static Result<LinearModel> Deserialize(const std::string& text);

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  int64_t num_features() const {
    return static_cast<int64_t>(feature_names_.size());
  }

 private:
  std::vector<double> weights_;
  std::vector<double> feature_means_;  // imputation values
  double intercept_ = 0.0;
  std::vector<std::string> feature_names_;
};

/// L2-regularized logistic regression fit by iteratively reweighted least
/// squares (Newton). Outputs P(y = 1). Labels must be in {0, 1}.
///
/// Registered in the serialization registry under kind "logistic".
class LogisticModel : public model::Model {
 public:
  LogisticModel() = default;

  /// Fits with ridge penalty `lambda` >= 0; stops after `max_iters` Newton
  /// steps or when the step's max-norm falls below `tol`.
  static Result<LogisticModel> Train(const Dataset& train, double lambda = 1.0,
                                     int max_iters = 50, double tol = 1e-8);

  /// P(y = 1) for one row.
  double PredictRow(const double* row) const;
  /// Batch probabilities.
  Result<std::vector<double>> Predict(const Dataset& data) const;

  // model::Model interface.
  std::string Kind() const override { return "logistic"; }
  bool IsClassifier() const override { return true; }
  int64_t NumFeatures() const override { return num_features(); }
  const std::vector<std::string>& FeatureNames() const override {
    return feature_names_;
  }
  double Predict(const double* row) const override { return PredictRow(row); }
  std::string Serialize() const override;

  /// Parses a payload produced by Serialize().
  static Result<LogisticModel> Deserialize(const std::string& text);

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }
  int64_t num_features() const {
    return static_cast<int64_t>(feature_names_.size());
  }

 private:
  std::vector<double> weights_;
  std::vector<double> feature_means_;
  double intercept_ = 0.0;
  std::vector<std::string> feature_names_;
};

}  // namespace mysawh::linear

#endif  // MYSAWH_LINEAR_LINEAR_MODEL_H_
