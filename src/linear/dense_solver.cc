#include "linear/dense_solver.h"

#include <cmath>

namespace mysawh::linear {

SquareMatrix::SquareMatrix(int64_t n)
    : n_(n), data_(static_cast<size_t>(n * n), 0.0) {}

Result<std::vector<double>> CholeskySolve(const SquareMatrix& a,
                                          const std::vector<double>& b) {
  const int64_t n = a.dim();
  if (static_cast<int64_t>(b.size()) != n) {
    return Status::InvalidArgument("CholeskySolve size mismatch");
  }
  // Lower-triangular factor L with A = L L^T.
  SquareMatrix l(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double sum = a.at(i, j);
      for (int64_t k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::InvalidArgument(
              "matrix is not positive definite (add regularization)");
        }
        l.at(i, j) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }
  // Forward substitution: L y = b.
  std::vector<double> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double sum = b[static_cast<size_t>(i)];
    for (int64_t k = 0; k < i; ++k) sum -= l.at(i, k) * y[static_cast<size_t>(k)];
    y[static_cast<size_t>(i)] = sum / l.at(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(static_cast<size_t>(n));
  for (int64_t i = n - 1; i >= 0; --i) {
    double sum = y[static_cast<size_t>(i)];
    for (int64_t k = i + 1; k < n; ++k) {
      sum -= l.at(k, i) * x[static_cast<size_t>(k)];
    }
    x[static_cast<size_t>(i)] = sum / l.at(i, i);
  }
  return x;
}

}  // namespace mysawh::linear
