#include "linear/linear_model.h"

#include <cmath>

#include "linear/dense_solver.h"

namespace mysawh::linear {

namespace {

/// Column means over present values (0 when a column is entirely missing).
std::vector<double> ComputeFeatureMeans(const Dataset& data) {
  const int64_t nf = data.num_features();
  std::vector<double> means(static_cast<size_t>(nf), 0.0);
  for (int64_t f = 0; f < nf; ++f) {
    double sum = 0.0;
    int64_t count = 0;
    for (int64_t r = 0; r < data.num_rows(); ++r) {
      const double v = data.At(r, f);
      if (!std::isnan(v)) {
        sum += v;
        ++count;
      }
    }
    means[static_cast<size_t>(f)] =
        count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  return means;
}

double ImputedAt(const Dataset& data, const std::vector<double>& means,
                 int64_t row, int64_t feature) {
  const double v = data.At(row, feature);
  return std::isnan(v) ? means[static_cast<size_t>(feature)] : v;
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double DotWithImputation(const double* row, const std::vector<double>& weights,
                         const std::vector<double>& means, double intercept) {
  double acc = intercept;
  for (size_t f = 0; f < weights.size(); ++f) {
    const double v = std::isnan(row[f]) ? means[f] : row[f];
    acc += weights[f] * v;
  }
  return acc;
}

}  // namespace

Result<LinearModel> LinearModel::Train(const Dataset& train, double lambda) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("training set is empty");
  }
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  const int64_t nf = train.num_features();
  const int64_t n = train.num_rows();
  const int64_t dim = nf + 1;  // + intercept

  LinearModel model;
  model.feature_names_ = train.feature_names();
  model.feature_means_ = ComputeFeatureMeans(train);

  // Normal equations with the intercept as an extra all-ones column.
  SquareMatrix xtx(dim);
  std::vector<double> xty(static_cast<size_t>(dim), 0.0);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t f = 0; f < nf; ++f) {
      x[static_cast<size_t>(f)] = ImputedAt(train, model.feature_means_, r, f);
    }
    x[static_cast<size_t>(nf)] = 1.0;
    const double y = train.label(r);
    for (int64_t i = 0; i < dim; ++i) {
      xty[static_cast<size_t>(i)] += x[static_cast<size_t>(i)] * y;
      for (int64_t j = 0; j <= i; ++j) {
        xtx.at(i, j) += x[static_cast<size_t>(i)] * x[static_cast<size_t>(j)];
      }
    }
  }
  for (int64_t i = 0; i < dim; ++i) {
    for (int64_t j = i + 1; j < dim; ++j) xtx.at(i, j) = xtx.at(j, i);
  }
  // Penalize weights, not the intercept; tiny jitter keeps the intercept
  // block positive definite for degenerate inputs.
  for (int64_t f = 0; f < nf; ++f) xtx.at(f, f) += lambda;
  xtx.at(nf, nf) += 1e-12;

  MYSAWH_ASSIGN_OR_RETURN(std::vector<double> solution,
                          CholeskySolve(xtx, xty));
  model.weights_.assign(solution.begin(), solution.end() - 1);
  model.intercept_ = solution.back();
  return model;
}

double LinearModel::PredictRow(const double* row) const {
  return DotWithImputation(row, weights_, feature_means_, intercept_);
}

Result<std::vector<double>> LinearModel::Predict(const Dataset& data) const {
  if (data.num_features() != num_features()) {
    return Status::InvalidArgument("Predict: dataset width mismatch");
  }
  std::vector<double> out(static_cast<size_t>(data.num_rows()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    out[static_cast<size_t>(r)] = PredictRow(data.row(r));
  }
  return out;
}

Result<LogisticModel> LogisticModel::Train(const Dataset& train, double lambda,
                                           int max_iters, double tol) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("training set is empty");
  }
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (max_iters < 1) return Status::InvalidArgument("max_iters must be >= 1");
  for (double y : train.labels()) {
    if (y != 0.0 && y != 1.0) {
      return Status::InvalidArgument("logistic labels must be 0 or 1");
    }
  }
  const int64_t nf = train.num_features();
  const int64_t n = train.num_rows();
  const int64_t dim = nf + 1;

  LogisticModel model;
  model.feature_names_ = train.feature_names();
  model.feature_means_ = ComputeFeatureMeans(train);
  std::vector<double> beta(static_cast<size_t>(dim), 0.0);

  std::vector<double> x(static_cast<size_t>(dim));
  for (int iter = 0; iter < max_iters; ++iter) {
    SquareMatrix hess(dim);
    std::vector<double> grad(static_cast<size_t>(dim), 0.0);
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t f = 0; f < nf; ++f) {
        x[static_cast<size_t>(f)] =
            ImputedAt(train, model.feature_means_, r, f);
      }
      x[static_cast<size_t>(nf)] = 1.0;
      double margin = 0.0;
      for (int64_t i = 0; i < dim; ++i) {
        margin += beta[static_cast<size_t>(i)] * x[static_cast<size_t>(i)];
      }
      const double p = Sigmoid(margin);
      const double w = std::max(p * (1.0 - p), 1e-10);
      const double residual = train.label(r) - p;
      for (int64_t i = 0; i < dim; ++i) {
        grad[static_cast<size_t>(i)] += x[static_cast<size_t>(i)] * residual;
        for (int64_t j = 0; j <= i; ++j) {
          hess.at(i, j) +=
              w * x[static_cast<size_t>(i)] * x[static_cast<size_t>(j)];
        }
      }
    }
    for (int64_t i = 0; i < dim; ++i) {
      for (int64_t j = i + 1; j < dim; ++j) hess.at(i, j) = hess.at(j, i);
    }
    // Ridge on weights: gradient -= lambda * beta, hessian += lambda I.
    for (int64_t f = 0; f < nf; ++f) {
      grad[static_cast<size_t>(f)] -= lambda * beta[static_cast<size_t>(f)];
      hess.at(f, f) += lambda;
    }
    hess.at(nf, nf) += 1e-10;

    MYSAWH_ASSIGN_OR_RETURN(std::vector<double> step,
                            CholeskySolve(hess, grad));
    double max_step = 0.0;
    for (int64_t i = 0; i < dim; ++i) {
      beta[static_cast<size_t>(i)] += step[static_cast<size_t>(i)];
      max_step = std::max(max_step, std::abs(step[static_cast<size_t>(i)]));
    }
    if (max_step < tol) break;
  }
  model.weights_.assign(beta.begin(), beta.end() - 1);
  model.intercept_ = beta.back();
  return model;
}

double LogisticModel::PredictRow(const double* row) const {
  return Sigmoid(DotWithImputation(row, weights_, feature_means_, intercept_));
}

Result<std::vector<double>> LogisticModel::Predict(const Dataset& data) const {
  if (data.num_features() != num_features()) {
    return Status::InvalidArgument("Predict: dataset width mismatch");
  }
  std::vector<double> out(static_cast<size_t>(data.num_rows()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    out[static_cast<size_t>(r)] = PredictRow(data.row(r));
  }
  return out;
}

}  // namespace mysawh::linear
